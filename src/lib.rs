//! # agent-infra-sim
//!
//! A simulation-based reproduction of *"The Cost of Dynamic Reasoning:
//! Demystifying AI Agents and Test-Time Scaling from an AI Infrastructure
//! Perspective"* (HPCA 2026).
//!
//! This facade crate re-exports the [`agentsim`] experiment API. See the
//! repository `README.md` for a guided tour, `DESIGN.md` for the system
//! inventory, and the `examples/` directory for runnable entry points.
//!
//! # Example
//!
//! ```
//! use agent_infra_sim::prelude::*;
//!
//! // Run a single ReAct request on a simulated A100 + Llama-3.1-8B stack.
//! let outcome = SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
//!     .seed(7)
//!     .run();
//! assert!(outcome.trace.llm_calls() >= 1);
//! ```

pub use agentsim::*;
