//! Benchmark harness for the `agentsim` workspace.
//!
//! Two kinds of benchmarking live here:
//!
//! * **Figure/table regeneration** — the `figures` binary runs the
//!   experiment registry (every table and figure of the paper, plus
//!   ablations) and writes text tables under `results/`:
//!
//!   ```sh
//!   cargo run -p agentsim-bench --release --bin figures            # everything
//!   cargo run -p agentsim-bench --release --bin figures fig14      # one artifact
//!   cargo run -p agentsim-bench --release --bin figures -- --quick # smaller samples
//!   ```
//!
//! * **Criterion benches** — measure the *simulator's own* performance
//!   (engine steps/s, KV allocator throughput, agent-session replays,
//!   end-to-end figure runtimes):
//!
//!   ```sh
//!   cargo bench -p agentsim-bench
//!   ```

use std::fs;
use std::path::Path;

use agentsim::{FigureResult, Scale};

/// Where the `figures` binary writes its outputs.
pub const RESULTS_DIR: &str = "results";

/// Runs one experiment and writes `<results>/<id>.txt` (and `.csv` files
/// for each table).
///
/// # Errors
///
/// Returns an error if the results directory cannot be created or a file
/// cannot be written.
pub fn write_result(dir: &Path, result: &FigureResult) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{}.txt", result.id)), result.to_string())?;
    for (i, (_, table)) in result.tables.iter().enumerate() {
        let suffix = if result.tables.len() == 1 {
            String::new()
        } else {
            format!("_{}", i + 1)
        };
        fs::write(
            dir.join(format!("{}{suffix}.csv", result.id)),
            table.to_csv(),
        )?;
    }
    Ok(())
}

/// Parses the `figures` binary's CLI: experiment ids (default all) and a
/// `--quick` flag.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> (Vec<String>, Scale) {
    let mut ids = Vec::new();
    let mut scale = Scale::paper();
    for arg in args {
        match arg.as_str() {
            "--quick" => scale = Scale::quick(),
            "all" => {}
            other if !other.starts_with('-') => ids.push(other.to_string()),
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    (ids, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_defaults_to_paper_scale_all() {
        let (ids, scale) = parse_args(Vec::new());
        assert!(ids.is_empty());
        assert_eq!(scale, Scale::paper());
    }

    #[test]
    fn parse_args_reads_ids_and_quick() {
        let (ids, scale) = parse_args(
            ["fig04", "--quick", "table3", "all"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(ids, vec!["fig04".to_string(), "table3".to_string()]);
        assert_eq!(scale, Scale::quick());
    }

    #[test]
    fn write_result_creates_files() {
        let dir = std::env::temp_dir().join("agentsim-bench-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut r = FigureResult::new("figXX", "demo");
        r.table("t", agentsim_metrics::Table::with_columns(&["a"]));
        write_result(&dir, &r).unwrap();
        assert!(dir.join("figXX.txt").exists());
        assert!(dir.join("figXX.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
