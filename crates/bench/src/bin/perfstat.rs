//! Wall-clock performance regression harness for the simulator itself.
//!
//! Times a fixed set of simulator-stressing scenarios (high-QPS agent
//! serving, a deep LATS request, a Fig. 14-style QPS sweep) and writes
//! `BENCH_engine.json` at the repository root with baseline/current pairs:
//!
//! ```sh
//! cargo run -p agentsim-bench --release --bin perfstat                # measure
//! cargo run -p agentsim-bench --release --bin perfstat -- --rebaseline
//! cargo run -p agentsim-bench --release --bin perfstat -- --check    # CI smoke
//! ```
//!
//! The first run (no `BENCH_engine.json` yet, or `--rebaseline`) records
//! the measurements as the baseline. Later runs keep the stored baseline
//! and report the speedup of the current build against it, so an
//! accidental algorithmic regression shows up as a speedup well below 1.
//! Each scenario also records a determinism fingerprint (completions,
//! solved count, latency percentiles, hit rate, preemptions) so a perf
//! change that alters simulation results is immediately visible.
//!
//! `--check` runs every scenario at a tiny scale, verifies fingerprints
//! are reproducible within the process, and does not touch
//! `BENCH_engine.json`.
//!
//! ## Fleet scaling (`--fleet`)
//!
//! The parallel fleet driver has its own harness and output file:
//!
//! ```sh
//! cargo run -p agentsim-bench --release --bin perfstat -- --fleet             # measure
//! cargo run -p agentsim-bench --release --bin perfstat -- --fleet --rebaseline
//! cargo run -p agentsim-bench --release --bin perfstat -- --fleet --threads 4 # CI smoke
//! ```
//!
//! `--fleet` times the 64-replica scaling scenario sequentially and
//! sharded, and writes `BENCH_fleet.json` (including `host_cpus` — the
//! speedups are only meaningful relative to the recording host's core
//! count). `--fleet --threads N` is the CI smoke: it runs the small
//! fleet scenario at one thread and at `N`, demands the pinned
//! fingerprint bit-for-bit from both, and fails on a >10% wall-clock
//! regression against the smoke baseline recorded in `BENCH_fleet.json`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::{EngineConfig, SchedulerPolicy};
use agentsim_serving::{
    qps_sweep, FleetConfig, FleetSim, Routing, ServingConfig, ServingReport, ServingSim,
    ServingWorkload, SingleRequest,
};
use agentsim_workloads::Benchmark;

const OUTPUT: &str = "BENCH_engine.json";
const FLEET_OUTPUT: &str = "BENCH_fleet.json";

/// Timing repetitions per scenario; the minimum is reported.
const REPS: usize = 3;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Measure,
    Rebaseline,
    Check,
}

/// Compact determinism fingerprint of a scenario's simulation output.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    completed: u64,
    solved: u64,
    p50_us: u64,
    p95_us: u64,
    kv_hit_ppm: u64,
    preemptions: u64,
}

impl Fingerprint {
    fn of_report(r: &ServingReport) -> Self {
        Fingerprint {
            completed: r.completed,
            solved: r.solved,
            p50_us: (r.p50_s * 1e6).round() as u64,
            p95_us: (r.p95_s * 1e6).round() as u64,
            kv_hit_ppm: (r.kv_hit_rate * 1e6).round() as u64,
            preemptions: r.preemptions,
        }
    }
}

struct Scenario {
    name: &'static str,
    description: &'static str,
    run: fn(check: bool) -> Fingerprint,
}

fn react_workload() -> ServingWorkload {
    ServingWorkload::Agent {
        kind: AgentKind::React,
        benchmark: Benchmark::HotpotQa,
        config: AgentConfig::default_8b(),
    }
}

/// High offered load: a deep waiting queue and a full running set every
/// step, stressing admission and step formation/completion.
fn react_high_qps(check: bool) -> Fingerprint {
    let n = if check { 10 } else { 1200 };
    let cfg = ServingConfig::new(react_workload(), 40.0, n).seed(7);
    Fingerprint::of_report(&ServingSim::new(cfg).run())
}

/// Same load under DeepestFirst, stressing priority admission.
fn react_deepest_first(check: bool) -> Fingerprint {
    let n = if check { 10 } else { 1200 };
    let cfg = ServingConfig::new(react_workload(), 40.0, n)
        .seed(7)
        .engine(EngineConfig::a100_llama8b().with_scheduler(SchedulerPolicy::DeepestFirst));
    Fingerprint::of_report(&ServingSim::new(cfg).run())
}

/// One deep LATS tree: hundreds of iterative LLM calls over a growing
/// shared context, stressing prompt hashing and prefix-cache allocation.
fn lats_single(check: bool) -> Fingerprint {
    let runner = SingleRequest::new(AgentKind::Lats, Benchmark::HotpotQa).seed(8);
    let n = if check { 1 } else { 32 };
    let outcomes = runner.run_batch(n);
    let solved = outcomes.iter().filter(|o| o.trace.outcome.solved).count() as u64;
    let e2e_us: u64 = outcomes.iter().map(|o| o.trace.e2e().as_micros()).sum();
    let calls: u64 = outcomes.iter().map(|o| o.trace.llm_calls() as u64).sum();
    let hit_ppm = (outcomes.iter().map(|o| o.kv_hit_rate).sum::<f64>() / outcomes.len() as f64
        * 1e6)
        .round() as u64;
    Fingerprint {
        completed: outcomes.len() as u64,
        solved,
        p50_us: e2e_us / outcomes.len() as u64,
        p95_us: calls,
        kv_hit_ppm: hit_ppm,
        preemptions: 0,
    }
}

/// A small Fig. 14-style capacity sweep (mixed traffic over load points).
fn fig14_sweep(check: bool) -> Fingerprint {
    let points: &[f64] = if check {
        &[0.5]
    } else {
        &[0.5, 2.0, 4.0, 8.0, 16.0, 32.0]
    };
    let n = if check { 8 } else { 200 };
    let workload = ServingWorkload::Mixed {
        agent_fraction: 0.5,
        kind: AgentKind::React,
        benchmark: Benchmark::HotpotQa,
        config: AgentConfig::default_8b(),
    };
    let sweep = qps_sweep(&EngineConfig::a100_llama8b(), &workload, points, n, 11);
    let last = &sweep.last().expect("non-empty sweep").report;
    let mut fp = Fingerprint::of_report(last);
    fp.completed = sweep.iter().map(|p| p.report.completed).sum();
    fp.solved = sweep.iter().map(|p| p.report.solved).sum();
    fp
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "react_high_qps",
            description: "ReAct/HotpotQA serving at 40 qps x 1200 requests (FCFS)",
            run: react_high_qps,
        },
        Scenario {
            name: "react_deepest_first",
            description: "same load under the DeepestFirst scheduler",
            run: react_deepest_first,
        },
        Scenario {
            name: "lats_single",
            description: "32 LATS tree-search requests on dedicated replicas",
            run: lats_single,
        },
        Scenario {
            name: "fig14_sweep",
            description: "mixed-traffic QPS sweep, 6 load points x 200 requests",
            run: fig14_sweep,
        },
    ]
}

/// Locates the repository root (directory containing `Cargo.toml` with a
/// workspace) by walking up from the current directory.
fn repo_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return std::env::current_dir().expect("cwd");
        }
    }
}

/// Pulls `"<name>"`-scoped `"baseline_s": <v>` entries out of a previous
/// `BENCH_engine.json`. The file is our own output (one key per line), so
/// a line scanner is sufficient and avoids a JSON dependency.
fn read_baselines(path: &Path) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            if let Some(name) = rest.split('"').next() {
                current = Some(name.to_string());
            }
        } else if let Some(rest) = line.strip_prefix("\"baseline_s\": ") {
            if let (Some(name), Ok(v)) =
                (current.clone(), rest.trim_end_matches(',').parse::<f64>())
            {
                out.push((name, v));
            }
        }
    }
    out
}

struct Measurement {
    name: &'static str,
    description: &'static str,
    seconds: f64,
    fingerprint: Fingerprint,
}

fn measure(s: &Scenario) -> Measurement {
    let mut best = f64::INFINITY;
    let mut fingerprint = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let fp = (s.run)(false);
        best = best.min(t0.elapsed().as_secs_f64());
        if let Some(prev) = &fingerprint {
            assert_eq!(prev, &fp, "{}: nondeterministic fingerprint", s.name);
        }
        fingerprint = Some(fp);
    }
    Measurement {
        name: s.name,
        description: s.description,
        seconds: best,
        fingerprint: fingerprint.expect("at least one rep"),
    }
}

fn write_json(path: &Path, rows: &[(Measurement, f64)]) -> std::io::Result<()> {
    let mut s = String::from("{\n  \"generated_by\": \"perfstat\",\n  \"scenarios\": [\n");
    for (i, (m, baseline)) in rows.iter().enumerate() {
        let f = &m.fingerprint;
        let _ = write!(
            s,
            "    {{\n      \"name\": \"{}\",\n      \"description\": \"{}\",\n      \
             \"baseline_s\": {:.6},\n      \"current_s\": {:.6},\n      \
             \"speedup\": {:.3},\n      \"fingerprint\": {{\n        \
             \"completed\": {},\n        \"solved\": {},\n        \
             \"p50_us\": {},\n        \"p95_us\": {},\n        \
             \"kv_hit_ppm\": {},\n        \"preemptions\": {}\n      }}\n    }}{}\n",
            m.name,
            m.description,
            baseline,
            m.seconds,
            baseline / m.seconds,
            f.completed,
            f.solved,
            f.p50_us,
            f.p95_us,
            f.kv_hit_ppm,
            f.preemptions,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

/// One fleet load point: ReAct/HotpotQA traffic over least-loaded
/// routing (the policy whose per-decision cost grows with fleet size).
#[derive(Clone, Copy)]
struct FleetScenario {
    name: &'static str,
    replicas: u32,
    qps: f64,
    requests: u64,
    seed: u64,
}

/// The headline scaling scenario: a busy 64-replica fleet serving one
/// million agent turns.
const FLEET_HEADLINE: FleetScenario = FleetScenario {
    name: "fleet_react_64x1m",
    replicas: 64,
    qps: 60.0,
    requests: 1_000_000,
    seed: 0xBEEF,
};

/// The CI smoke scenario: same shape, small enough to run on every push.
const FLEET_SMOKE: FleetScenario = FleetScenario {
    name: "fleet_react_16x2k",
    replicas: 16,
    qps: 15.0,
    requests: 2_000,
    seed: 0xBEEF,
};

/// Thread counts recorded for the headline scenario. On a many-core host
/// the 8-thread row is the speedup claim; `host_cpus` in the output
/// qualifies it.
const FLEET_THREADS: &[u32] = &[1, 8];

/// Determinism fingerprint of a fleet run (rounded, not bit-level — the
/// bit-level contract lives in the differential test suites).
#[derive(Debug, Clone, PartialEq, Eq)]
struct FleetFingerprint {
    completed: u64,
    max_live_sessions: u64,
    p50_us: u64,
    p95_us: u64,
    kv_hit_ppm: u64,
    energy_mwh: u64,
}

/// The smoke scenario's pinned fingerprint. Every thread count must
/// reproduce it exactly; drift means a semantic change to the fleet
/// simulation, not just a slowdown.
const FLEET_SMOKE_FINGERPRINT: FleetFingerprint = FleetFingerprint {
    completed: 2_000,
    max_live_sessions: 291,
    p50_us: 16_249_229,
    p95_us: 27_670_028,
    kv_hit_ppm: 571_750,
    energy_mwh: 203_609,
};

/// Wall-clock regression budget for the CI smoke, as current/baseline.
const FLEET_SMOKE_BUDGET: f64 = 1.10;

fn run_fleet(s: FleetScenario, threads: u32) -> (f64, FleetFingerprint) {
    let cfg = FleetConfig::react_hotpotqa(s.replicas, Routing::LeastLoaded, s.qps, s.requests)
        .seed(s.seed)
        .threads(threads);
    let t0 = Instant::now();
    let r = FleetSim::new(cfg).run();
    let seconds = t0.elapsed().as_secs_f64();
    let fp = FleetFingerprint {
        completed: r.completed,
        max_live_sessions: r.max_live_sessions,
        p50_us: (r.p50_s * 1e6).round() as u64,
        p95_us: (r.p95_s * 1e6).round() as u64,
        kv_hit_ppm: (r.kv_hit_rate * 1e6).round() as u64,
        energy_mwh: (r.energy_wh * 1e3).round() as u64,
    };
    (seconds, fp)
}

/// Pulls the smoke `"baseline_s"` out of a previous `BENCH_fleet.json`
/// (the value under the `"smoke"` object; same line-scanner approach as
/// [`read_baselines`]).
fn read_fleet_smoke_baseline(path: &Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut in_smoke = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("\"smoke\"") {
            in_smoke = true;
        }
        if in_smoke {
            if let Some(rest) = line.strip_prefix("\"baseline_s\": ") {
                return rest.trim_end_matches(',').parse::<f64>().ok();
            }
        }
    }
    None
}

/// Reads the stored per-thread-count headline baselines.
fn read_fleet_baselines(path: &Path) -> Vec<(u32, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut threads: Option<u32> = None;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("\"smoke\"") {
            break;
        }
        if let Some(rest) = line.strip_prefix("\"threads\": ") {
            threads = rest.trim_end_matches(',').parse::<u32>().ok();
        } else if let Some(rest) = line.strip_prefix("\"baseline_s\": ") {
            if let (Some(t), Ok(v)) = (threads, rest.trim_end_matches(',').parse::<f64>()) {
                out.push((t, v));
            }
        }
    }
    out
}

fn write_fleet_json(
    path: &Path,
    fingerprint: &FleetFingerprint,
    rows: &[(u32, f64, f64)],
    smoke: (f64, f64),
) -> std::io::Result<()> {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let s = FLEET_HEADLINE;
    let seq = rows
        .iter()
        .find(|&&(t, _, _)| t == 1)
        .map_or(f64::NAN, |&(_, _, cur)| cur);
    let mut out = format!(
        "{{\n  \"generated_by\": \"perfstat --fleet\",\n  \"host_cpus\": {host_cpus},\n  \
         \"scenario\": {{\n    \"name\": \"{}\",\n    \
         \"description\": \"ReAct/HotpotQA, least-loaded routing, {} replicas, \
         {} qps x {} requests\",\n    \"replicas\": {},\n    \"qps\": {},\n    \
         \"requests\": {},\n    \"seed\": {}\n  }},\n  \"fingerprint\": {{\n    \
         \"completed\": {},\n    \"p50_us\": {},\n    \"p95_us\": {},\n    \
         \"kv_hit_ppm\": {}\n  }},\n  \"runs\": [\n",
        s.name,
        s.replicas,
        s.qps,
        s.requests,
        s.replicas,
        s.qps,
        s.requests,
        s.seed,
        fingerprint.completed,
        fingerprint.p50_us,
        fingerprint.p95_us,
        fingerprint.kv_hit_ppm,
    );
    for (i, &(threads, baseline, current)) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"threads\": {},\n      \"baseline_s\": {:.3},\n      \
             \"current_s\": {:.3},\n      \"speedup_vs_baseline\": {:.3},\n      \
             \"speedup_vs_sequential\": {:.3}\n    }}{}\n",
            threads,
            baseline,
            current,
            baseline / current,
            seq / current,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    let (smoke_baseline, smoke_current) = smoke;
    let _ = write!(
        out,
        "  ],\n  \"smoke\": {{\n    \"name\": \"{}\",\n    \"replicas\": {},\n    \
         \"qps\": {},\n    \"requests\": {},\n    \"seed\": {},\n    \"threads\": 4,\n    \
         \"baseline_s\": {:.3},\n    \"current_s\": {:.3}\n  }}\n}}\n",
        FLEET_SMOKE.name,
        FLEET_SMOKE.replicas,
        FLEET_SMOKE.qps,
        FLEET_SMOKE.requests,
        FLEET_SMOKE.seed,
        smoke_baseline,
        smoke_current,
    );
    std::fs::write(path, out)
}

/// `--fleet --threads N`: the CI smoke. Pinned fingerprint at one thread
/// and at `N`, then the wall-clock budget against the stored baseline.
fn fleet_smoke(threads: u32) {
    let out_path = repo_root().join(FLEET_OUTPUT);
    let (_, fp_seq) = run_fleet(FLEET_SMOKE, 1);
    assert_eq!(
        fp_seq, FLEET_SMOKE_FINGERPRINT,
        "sequential fleet smoke fingerprint drifted — a routing or engine \
         change altered simulation semantics"
    );
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let (seconds, fp) = run_fleet(FLEET_SMOKE, threads);
        assert_eq!(
            fp, FLEET_SMOKE_FINGERPRINT,
            "threads({threads}) fleet smoke fingerprint diverged from the sequential driver"
        );
        best = best.min(seconds);
    }
    println!("fleet smoke threads({threads}): fingerprint ok, {best:.2}s wall");
    match read_fleet_smoke_baseline(&out_path) {
        Some(baseline) => {
            let ratio = best / baseline;
            if ratio > FLEET_SMOKE_BUDGET {
                eprintln!(
                    "fleet smoke regression: {best:.2}s vs baseline {baseline:.2}s \
                     ({ratio:.2}x > {FLEET_SMOKE_BUDGET:.2}x budget)"
                );
                std::process::exit(1);
            }
            println!("fleet smoke wall clock within budget ({ratio:.2}x of baseline)");
        }
        None => {
            eprintln!(
                "no smoke baseline in {} — run `perfstat --fleet` first",
                out_path.display()
            );
            std::process::exit(2);
        }
    }
}

/// `--fleet`: measure the headline scenario at every recorded thread
/// count and refresh `BENCH_fleet.json`.
fn fleet_measure(rebaseline: bool) {
    let out_path = repo_root().join(FLEET_OUTPUT);
    let baselines = if rebaseline {
        Vec::new()
    } else {
        read_fleet_baselines(&out_path)
    };
    // Smoke first: it doubles as the determinism gate for the long runs
    // and records the CI budget baseline.
    let (_, fp_seq) = run_fleet(FLEET_SMOKE, 1);
    let (smoke_s, fp_par) = run_fleet(FLEET_SMOKE, 4);
    assert_eq!(fp_seq, fp_par, "fleet smoke diverged across thread counts");
    assert_eq!(
        fp_seq, FLEET_SMOKE_FINGERPRINT,
        "fleet smoke fingerprint drifted — repin FLEET_SMOKE_FINGERPRINT \
         only alongside an intentional semantic change"
    );
    println!("fleet smoke: fingerprints ok ({smoke_s:.2}s at 4 threads)");
    let mut fingerprint: Option<FleetFingerprint> = None;
    let mut rows = Vec::new();
    for &threads in FLEET_THREADS {
        print!("{:<22} threads({threads}) ", FLEET_HEADLINE.name);
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        let (seconds, fp) = run_fleet(FLEET_HEADLINE, threads);
        if let Some(prev) = &fingerprint {
            assert_eq!(
                prev, &fp,
                "headline fingerprint diverged at {threads} threads"
            );
        }
        fingerprint = Some(fp);
        let baseline = baselines
            .iter()
            .find(|&&(t, _)| t == threads)
            .map_or(seconds, |&(_, v)| v);
        println!(
            "{seconds:>9.3}s  baseline {baseline:>9.3}s  speedup {:>5.2}x",
            baseline / seconds
        );
        rows.push((threads, baseline, seconds));
    }
    let fingerprint = fingerprint.expect("at least one thread count");
    if let Err(e) = write_fleet_json(&out_path, &fingerprint, &rows, (smoke_s, smoke_s)) {
        eprintln!("could not write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", out_path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--fleet") {
        match args.get(1).map(String::as_str) {
            None => fleet_measure(false),
            Some("--rebaseline") => fleet_measure(true),
            Some("--threads") => {
                let threads: u32 = args
                    .get(2)
                    .and_then(|s| s.parse().ok())
                    .expect("--threads takes a positive integer");
                fleet_smoke(threads);
            }
            Some(other) => {
                eprintln!("unknown fleet flag {other}; use --rebaseline or --threads N");
                std::process::exit(2);
            }
        }
        return;
    }
    let mode = match args.first().map(String::as_str) {
        Some("--check") => Mode::Check,
        Some("--rebaseline") => Mode::Rebaseline,
        Some(other) => {
            eprintln!("unknown flag {other}; use --check, --rebaseline, or --fleet");
            std::process::exit(2);
        }
        None => Mode::Measure,
    };

    if mode == Mode::Check {
        for s in scenarios() {
            let t0 = Instant::now();
            let a = (s.run)(true);
            let b = (s.run)(true);
            assert_eq!(a, b, "{}: check-scale fingerprint must be stable", s.name);
            println!(
                "check {:<22} ok ({:.2}s) {:?}",
                s.name,
                t0.elapsed().as_secs_f64(),
                a
            );
        }
        println!("perfstat --check passed");
        return;
    }

    let out_path = repo_root().join(OUTPUT);
    let baselines = if mode == Mode::Rebaseline {
        Vec::new()
    } else {
        read_baselines(&out_path)
    };

    let mut rows = Vec::new();
    for s in scenarios() {
        print!("{:<22} ", s.name);
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        let m = measure(&s);
        let baseline = baselines
            .iter()
            .find(|(n, _)| n == m.name)
            .map(|&(_, v)| v)
            .unwrap_or(m.seconds);
        println!(
            "{:>8.3}s  baseline {:>8.3}s  speedup {:>5.2}x",
            m.seconds,
            baseline,
            baseline / m.seconds
        );
        rows.push((m, baseline));
    }

    if let Err(e) = write_json(&out_path, &rows) {
        eprintln!("could not write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", out_path.display());
}
