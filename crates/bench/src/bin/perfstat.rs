//! Wall-clock performance regression harness for the simulator itself.
//!
//! Times a fixed set of simulator-stressing scenarios (high-QPS agent
//! serving, a deep LATS request, a Fig. 14-style QPS sweep) and writes
//! `BENCH_engine.json` at the repository root with baseline/current pairs:
//!
//! ```sh
//! cargo run -p agentsim-bench --release --bin perfstat                # measure
//! cargo run -p agentsim-bench --release --bin perfstat -- --rebaseline
//! cargo run -p agentsim-bench --release --bin perfstat -- --check    # CI smoke
//! ```
//!
//! The first run (no `BENCH_engine.json` yet, or `--rebaseline`) records
//! the measurements as the baseline. Later runs keep the stored baseline
//! and report the speedup of the current build against it, so an
//! accidental algorithmic regression shows up as a speedup well below 1.
//! Each scenario also records a determinism fingerprint (completions,
//! solved count, latency percentiles, hit rate, preemptions) so a perf
//! change that alters simulation results is immediately visible.
//!
//! `--check` runs every scenario at a tiny scale, verifies fingerprints
//! are reproducible within the process, and does not touch
//! `BENCH_engine.json`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::{EngineConfig, SchedulerPolicy};
use agentsim_serving::{
    qps_sweep, ServingConfig, ServingReport, ServingSim, ServingWorkload, SingleRequest,
};
use agentsim_workloads::Benchmark;

const OUTPUT: &str = "BENCH_engine.json";

/// Timing repetitions per scenario; the minimum is reported.
const REPS: usize = 3;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Measure,
    Rebaseline,
    Check,
}

/// Compact determinism fingerprint of a scenario's simulation output.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    completed: u64,
    solved: u64,
    p50_us: u64,
    p95_us: u64,
    kv_hit_ppm: u64,
    preemptions: u64,
}

impl Fingerprint {
    fn of_report(r: &ServingReport) -> Self {
        Fingerprint {
            completed: r.completed,
            solved: r.solved,
            p50_us: (r.p50_s * 1e6).round() as u64,
            p95_us: (r.p95_s * 1e6).round() as u64,
            kv_hit_ppm: (r.kv_hit_rate * 1e6).round() as u64,
            preemptions: r.preemptions,
        }
    }
}

struct Scenario {
    name: &'static str,
    description: &'static str,
    run: fn(check: bool) -> Fingerprint,
}

fn react_workload() -> ServingWorkload {
    ServingWorkload::Agent {
        kind: AgentKind::React,
        benchmark: Benchmark::HotpotQa,
        config: AgentConfig::default_8b(),
    }
}

/// High offered load: a deep waiting queue and a full running set every
/// step, stressing admission and step formation/completion.
fn react_high_qps(check: bool) -> Fingerprint {
    let n = if check { 10 } else { 1200 };
    let cfg = ServingConfig::new(react_workload(), 40.0, n).seed(7);
    Fingerprint::of_report(&ServingSim::new(cfg).run())
}

/// Same load under DeepestFirst, stressing priority admission.
fn react_deepest_first(check: bool) -> Fingerprint {
    let n = if check { 10 } else { 1200 };
    let cfg = ServingConfig::new(react_workload(), 40.0, n)
        .seed(7)
        .engine(EngineConfig::a100_llama8b().with_scheduler(SchedulerPolicy::DeepestFirst));
    Fingerprint::of_report(&ServingSim::new(cfg).run())
}

/// One deep LATS tree: hundreds of iterative LLM calls over a growing
/// shared context, stressing prompt hashing and prefix-cache allocation.
fn lats_single(check: bool) -> Fingerprint {
    let runner = SingleRequest::new(AgentKind::Lats, Benchmark::HotpotQa).seed(8);
    let n = if check { 1 } else { 32 };
    let outcomes = runner.run_batch(n);
    let solved = outcomes.iter().filter(|o| o.trace.outcome.solved).count() as u64;
    let e2e_us: u64 = outcomes.iter().map(|o| o.trace.e2e().as_micros()).sum();
    let calls: u64 = outcomes.iter().map(|o| o.trace.llm_calls() as u64).sum();
    let hit_ppm = (outcomes.iter().map(|o| o.kv_hit_rate).sum::<f64>() / outcomes.len() as f64
        * 1e6)
        .round() as u64;
    Fingerprint {
        completed: outcomes.len() as u64,
        solved,
        p50_us: e2e_us / outcomes.len() as u64,
        p95_us: calls,
        kv_hit_ppm: hit_ppm,
        preemptions: 0,
    }
}

/// A small Fig. 14-style capacity sweep (mixed traffic over load points).
fn fig14_sweep(check: bool) -> Fingerprint {
    let points: &[f64] = if check {
        &[0.5]
    } else {
        &[0.5, 2.0, 4.0, 8.0, 16.0, 32.0]
    };
    let n = if check { 8 } else { 200 };
    let workload = ServingWorkload::Mixed {
        agent_fraction: 0.5,
        kind: AgentKind::React,
        benchmark: Benchmark::HotpotQa,
        config: AgentConfig::default_8b(),
    };
    let sweep = qps_sweep(&EngineConfig::a100_llama8b(), &workload, points, n, 11);
    let last = &sweep.last().expect("non-empty sweep").report;
    let mut fp = Fingerprint::of_report(last);
    fp.completed = sweep.iter().map(|p| p.report.completed).sum();
    fp.solved = sweep.iter().map(|p| p.report.solved).sum();
    fp
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "react_high_qps",
            description: "ReAct/HotpotQA serving at 40 qps x 1200 requests (FCFS)",
            run: react_high_qps,
        },
        Scenario {
            name: "react_deepest_first",
            description: "same load under the DeepestFirst scheduler",
            run: react_deepest_first,
        },
        Scenario {
            name: "lats_single",
            description: "32 LATS tree-search requests on dedicated replicas",
            run: lats_single,
        },
        Scenario {
            name: "fig14_sweep",
            description: "mixed-traffic QPS sweep, 6 load points x 200 requests",
            run: fig14_sweep,
        },
    ]
}

/// Locates the repository root (directory containing `Cargo.toml` with a
/// workspace) by walking up from the current directory.
fn repo_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return std::env::current_dir().expect("cwd");
        }
    }
}

/// Pulls `"<name>"`-scoped `"baseline_s": <v>` entries out of a previous
/// `BENCH_engine.json`. The file is our own output (one key per line), so
/// a line scanner is sufficient and avoids a JSON dependency.
fn read_baselines(path: &Path) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            if let Some(name) = rest.split('"').next() {
                current = Some(name.to_string());
            }
        } else if let Some(rest) = line.strip_prefix("\"baseline_s\": ") {
            if let (Some(name), Ok(v)) =
                (current.clone(), rest.trim_end_matches(',').parse::<f64>())
            {
                out.push((name, v));
            }
        }
    }
    out
}

struct Measurement {
    name: &'static str,
    description: &'static str,
    seconds: f64,
    fingerprint: Fingerprint,
}

fn measure(s: &Scenario) -> Measurement {
    let mut best = f64::INFINITY;
    let mut fingerprint = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let fp = (s.run)(false);
        best = best.min(t0.elapsed().as_secs_f64());
        if let Some(prev) = &fingerprint {
            assert_eq!(prev, &fp, "{}: nondeterministic fingerprint", s.name);
        }
        fingerprint = Some(fp);
    }
    Measurement {
        name: s.name,
        description: s.description,
        seconds: best,
        fingerprint: fingerprint.expect("at least one rep"),
    }
}

fn write_json(path: &Path, rows: &[(Measurement, f64)]) -> std::io::Result<()> {
    let mut s = String::from("{\n  \"generated_by\": \"perfstat\",\n  \"scenarios\": [\n");
    for (i, (m, baseline)) in rows.iter().enumerate() {
        let f = &m.fingerprint;
        let _ = write!(
            s,
            "    {{\n      \"name\": \"{}\",\n      \"description\": \"{}\",\n      \
             \"baseline_s\": {:.6},\n      \"current_s\": {:.6},\n      \
             \"speedup\": {:.3},\n      \"fingerprint\": {{\n        \
             \"completed\": {},\n        \"solved\": {},\n        \
             \"p50_us\": {},\n        \"p95_us\": {},\n        \
             \"kv_hit_ppm\": {},\n        \"preemptions\": {}\n      }}\n    }}{}\n",
            m.name,
            m.description,
            baseline,
            m.seconds,
            baseline / m.seconds,
            f.completed,
            f.solved,
            f.p50_us,
            f.p95_us,
            f.kv_hit_ppm,
            f.preemptions,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

fn main() {
    let mode = match std::env::args().nth(1).as_deref() {
        Some("--check") => Mode::Check,
        Some("--rebaseline") => Mode::Rebaseline,
        Some(other) => {
            eprintln!("unknown flag {other}; use --check or --rebaseline");
            std::process::exit(2);
        }
        None => Mode::Measure,
    };

    if mode == Mode::Check {
        for s in scenarios() {
            let t0 = Instant::now();
            let a = (s.run)(true);
            let b = (s.run)(true);
            assert_eq!(a, b, "{}: check-scale fingerprint must be stable", s.name);
            println!(
                "check {:<22} ok ({:.2}s) {:?}",
                s.name,
                t0.elapsed().as_secs_f64(),
                a
            );
        }
        println!("perfstat --check passed");
        return;
    }

    let out_path = repo_root().join(OUTPUT);
    let baselines = if mode == Mode::Rebaseline {
        Vec::new()
    } else {
        read_baselines(&out_path)
    };

    let mut rows = Vec::new();
    for s in scenarios() {
        print!("{:<22} ", s.name);
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        let m = measure(&s);
        let baseline = baselines
            .iter()
            .find(|(n, _)| n == m.name)
            .map(|&(_, v)| v)
            .unwrap_or(m.seconds);
        println!(
            "{:>8.3}s  baseline {:>8.3}s  speedup {:>5.2}x",
            m.seconds,
            baseline,
            baseline / m.seconds
        );
        rows.push((m, baseline));
    }

    if let Err(e) = write_json(&out_path, &rows) {
        eprintln!("could not write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", out_path.display());
}
