//! Overload smoke driver: runs one congestion-collapse point under the
//! accept-all baseline and the adaptive admission stack and pins the
//! resulting `FleetReport` fingerprints.
//!
//! ```sh
//! cargo run -p agentsim-bench --release --bin overloadstat            # print
//! cargo run -p agentsim-bench --release --bin overloadstat -- --check # CI smoke
//! ```
//!
//! The default mode prints the fingerprints in the source-constant
//! format (the capture helper for updating the table below after an
//! intentional semantics change). `--check` recomputes all four and
//! fails loudly on any drift: deadline timers, server-side cancellation,
//! retry backoff, AIMD admission decisions, and queue sheds must all
//! replay bit-identically for a given seed — including on the sharded
//! parallel path, which is pinned to the same fingerprint as its
//! sequential twin.

use agentsim_serving::{
    AdmissionPolicy, FleetConfig, FleetReport, FleetSim, OverloadPolicy, QueueDiscipline,
    RetryPolicy, Routing,
};
use agentsim_simkit::SimDuration;

/// Past-the-knee operating point shared by every cell: 3 replicas at
/// 10 qps is deep overload, so every overload mechanism actually fires.
const QPS: f64 = 10.0;
const TURNS: u64 = 160;
const DEADLINE: SimDuration = SimDuration::from_secs(20);

fn adaptive() -> OverloadPolicy {
    OverloadPolicy::none()
        .deadline(DEADLINE)
        .cancel_on_expiry()
        .admission(AdmissionPolicy::aimd_default())
        .discipline(QueueDiscipline::Lifo)
}

/// The four pinned cells: `(label, policy, worker threads)`.
fn matrix() -> Vec<(&'static str, OverloadPolicy, u32)> {
    vec![
        ("accept-all", OverloadPolicy::none().deadline(DEADLINE), 1),
        ("adaptive", adaptive(), 1),
        ("retry", adaptive().retry(RetryPolicy::standard()), 1),
        ("adaptive/threads2", adaptive(), 2),
    ]
}

#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    completed: u64,
    late: u64,
    cancelled: u64,
    dropped: u64,
    abandoned: u64,
    retries: u64,
    goodput_bits: u64,
    wasted_bits: u64,
}

impl Fingerprint {
    fn of(r: &FleetReport) -> Self {
        Fingerprint {
            completed: r.completed,
            late: r.late,
            cancelled: r.cancelled,
            dropped: r.dropped,
            abandoned: r.abandoned,
            retries: r.retries,
            goodput_bits: r.goodput.to_bits(),
            wasted_bits: r.wasted_gpu_s.to_bits(),
        }
    }
}

fn run(policy: OverloadPolicy, threads: u32) -> FleetReport {
    let cfg = FleetConfig::react_hotpotqa(3, Routing::LeastLoaded, QPS, TURNS)
        .seed(0x10AD)
        .overload(policy)
        .threads(threads);
    FleetSim::new(cfg).run()
}

/// `(label, completed, late, cancelled, dropped, abandoned, retries,
/// goodput, wasted)` — capture with the default (print) mode after any
/// intentional semantics change.
type GoldenRow = (&'static str, u64, u64, u64, u64, u64, u64, u64, u64);
const GOLDEN: [GoldenRow; 4] = [
    (
        "accept-all",
        74,
        86,
        0,
        0,
        86,
        0,
        0x3ff7a2a373bae751,
        0x407411ac84f8f8a4,
    ),
    (
        "adaptive",
        67,
        0,
        93,
        29,
        93,
        0,
        0x3ffd3a21849a3a1e,
        0x403f17be121ee675,
    ),
    (
        "retry",
        98,
        0,
        235,
        96,
        62,
        173,
        0x3ff3addb6ee1b460,
        0x404daf652bd3c360,
    ),
    (
        "adaptive/threads2",
        67,
        0,
        93,
        29,
        93,
        0,
        0x3ffd3a21849a3a1e,
        0x403f17be121ee675,
    ),
];

fn main() {
    let check = match std::env::args().nth(1).as_deref() {
        Some("--check") => true,
        Some(other) => {
            eprintln!("unknown flag {other}; use --check");
            std::process::exit(2);
        }
        None => false,
    };

    let mut drifted = 0u32;
    for (label, policy, threads) in matrix() {
        let report = run(policy, threads);
        let f = Fingerprint::of(&report);
        assert!(
            report.goodput <= report.throughput,
            "{label}: goodput {} exceeds throughput {}",
            report.goodput,
            report.throughput
        );
        assert_eq!(
            report.completed + report.abandoned,
            TURNS,
            "{label}: every turn must resolve exactly once"
        );
        if check {
            let want = GOLDEN
                .iter()
                .find(|(l, ..)| *l == label)
                .expect("golden row present");
            let expected = Fingerprint {
                completed: want.1,
                late: want.2,
                cancelled: want.3,
                dropped: want.4,
                abandoned: want.5,
                retries: want.6,
                goodput_bits: want.7,
                wasted_bits: want.8,
            };
            if f != expected {
                drifted += 1;
                eprintln!("{label} drifted:\n  got  {f:#x?}\n  want {expected:#x?}");
            } else {
                println!("{label}: ok");
            }
        } else {
            println!(
                "(\"{label}\", {}, {}, {}, {}, {}, {}, {:#x}, {:#x}),",
                f.completed,
                f.late,
                f.cancelled,
                f.dropped,
                f.abandoned,
                f.retries,
                f.goodput_bits,
                f.wasted_bits
            );
        }
    }

    if check {
        if drifted > 0 {
            eprintln!(
                "{drifted} overload fingerprint(s) drifted — a deadline, cancellation, \
                 retry, or admission change altered simulation semantics (run \
                 overloadstat without flags to print current values)"
            );
            std::process::exit(1);
        }
        println!("overloadstat --check passed");
    }
}
