//! KV offload smoke driver: runs one KV-constrained closed-loop fleet
//! point under the bare pool, LRU tiers, and invocation-distance tiers,
//! and pins the resulting offload fingerprints.
//!
//! ```sh
//! cargo run -p agentsim-bench --release --bin kvstat            # print
//! cargo run -p agentsim-bench --release --bin kvstat -- --check # CI smoke
//! ```
//!
//! The default mode prints the fingerprints in the source-constant
//! format (the capture helper for updating the table below after an
//! intentional semantics change). `--check` recomputes every cell and
//! fails loudly on drift: demote cascades, link-priced promotions,
//! hint-driven eviction ranking, and conversation carry must all replay
//! bit-identically for a given seed — including on the sharded parallel
//! path, and including the degenerate zero-capacity tiers, which must
//! reproduce the bare-pool row exactly.

use agentsim_kvcache::EvictionPolicy;
use agentsim_llm::OffloadConfig;
use agentsim_serving::{ClientModel, FleetConfig, FleetReport, FleetSim, Routing};
use agentsim_simkit::SimDuration;

/// A KV-thrashing operating point: closed-loop multi-turn users whose
/// carried contexts overrun the shrunken HBM pool between turns.
const USERS: u32 = 6;
const TURNS: u64 = 24;
const THINK: SimDuration = SimDuration::from_secs(30);
const KV_FRACTION: f64 = 0.15;

fn tiers(policy: EvictionPolicy) -> OffloadConfig {
    OffloadConfig::tiers(2048, 8192).with_policy(policy)
}

/// The pinned cells: `(label, offload, worker threads)`.
fn matrix() -> Vec<(&'static str, Option<OffloadConfig>, u32)> {
    vec![
        ("no-offload", None, 1),
        ("offload-lru", Some(tiers(EvictionPolicy::Lru)), 1),
        (
            "offload-distance",
            Some(tiers(EvictionPolicy::InvocationDistance)),
            1,
        ),
        (
            "offload-distance/threads2",
            Some(tiers(EvictionPolicy::InvocationDistance)),
            2,
        ),
        ("zero-capacity", Some(OffloadConfig::tiers(0, 0)), 1),
    ]
}

#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    completed: u64,
    demoted: u64,
    promoted: u64,
    promoted_tokens: u64,
    dropped: u64,
    host_bytes: u64,
    nvme_bytes: u64,
    hit_bits: u64,
    ttft_p95_bits: u64,
}

impl Fingerprint {
    fn of(r: &FleetReport) -> Self {
        Fingerprint {
            completed: r.completed,
            demoted: r.offload_demoted_blocks,
            promoted: r.offload_promoted_blocks,
            promoted_tokens: r.offload_promoted_tokens,
            dropped: r.offload_dropped_blocks,
            host_bytes: r.offload_host_bytes,
            nvme_bytes: r.offload_nvme_bytes,
            hit_bits: r.kv_hit_rate.to_bits(),
            ttft_p95_bits: r.ttft_p95_s.to_bits(),
        }
    }
}

fn run(offload: Option<OffloadConfig>, threads: u32) -> FleetReport {
    let mut cfg = FleetConfig::react_hotpotqa(2, Routing::SessionAffinity, 2.0, TURNS)
        .seed(5)
        .client(ClientModel::ClosedLoop {
            concurrency: USERS,
            think_time: THINK,
        })
        .with_context_carry()
        .threads(threads)
        .map_engines(|e| e.with_kv_fraction(KV_FRACTION));
    if let Some(off) = offload {
        cfg = cfg.map_engines(|e| e.with_offload(off.clone()));
    }
    FleetSim::new(cfg).run()
}

/// `(label, completed, demoted, promoted, promoted_tokens, dropped,
/// host_bytes, nvme_bytes, hit_bits, ttft_p95_bits)` — capture with the
/// default (print) mode after any intentional semantics change.
type GoldenRow = (&'static str, u64, u64, u64, u64, u64, u64, u64, u64, u64);
const GOLDEN: [GoldenRow; 5] = [
    (
        "no-offload",
        24,
        0,
        0,
        0,
        0,
        0,
        0,
        0x3fea1b724442d216,
        0x3ff9a294141e9af6,
    ),
    (
        "offload-lru",
        24,
        7290,
        3363,
        53808,
        0,
        22340960256,
        0,
        0x3fecd7a85a5be494,
        0x3fe72f74cd31769b,
    ),
    (
        "offload-distance",
        24,
        8110,
        6594,
        105504,
        0,
        30836523008,
        0,
        0x3fed66d6f2f9c8ce,
        0x3fe509edbf8b9baa,
    ),
    (
        "offload-distance/threads2",
        24,
        8110,
        6594,
        105504,
        0,
        30836523008,
        0,
        0x3fed66d6f2f9c8ce,
        0x3fe509edbf8b9baa,
    ),
    (
        "zero-capacity",
        24,
        0,
        0,
        0,
        0,
        0,
        0,
        0x3fea1b724442d216,
        0x3ff9a294141e9af6,
    ),
];

fn main() {
    let check = match std::env::args().nth(1).as_deref() {
        Some("--check") => true,
        Some(other) => {
            eprintln!("unknown flag {other}; use --check");
            std::process::exit(2);
        }
        None => false,
    };

    let mut fingerprints: Vec<(&'static str, Fingerprint)> = Vec::new();
    for (label, offload, threads) in matrix() {
        let report = run(offload, threads);
        fingerprints.push((label, Fingerprint::of(&report)));
    }

    // Structural expectations that hold regardless of golden drift.
    let by = |label: &str| {
        &fingerprints
            .iter()
            .find(|(l, _)| *l == label)
            .expect("cell present")
            .1
    };
    assert!(
        by("offload-lru").demoted > 0 && by("offload-distance").demoted > 0,
        "the thrash point must actually spill to the tiers"
    );
    assert!(
        by("offload-distance").promoted_tokens > 0,
        "carried conversations must restore context from the tiers"
    );
    assert_eq!(
        by("offload-distance"),
        by("offload-distance/threads2"),
        "worker threads changed the offload fingerprint"
    );
    assert_eq!(
        by("zero-capacity"),
        by("no-offload"),
        "zero-capacity tiers must reproduce the bare pool bit for bit"
    );

    let mut drifted = 0u32;
    for (label, f) in &fingerprints {
        if check {
            let want = GOLDEN
                .iter()
                .find(|(l, ..)| l == label)
                .expect("golden row present");
            let expected = Fingerprint {
                completed: want.1,
                demoted: want.2,
                promoted: want.3,
                promoted_tokens: want.4,
                dropped: want.5,
                host_bytes: want.6,
                nvme_bytes: want.7,
                hit_bits: want.8,
                ttft_p95_bits: want.9,
            };
            if f != &expected {
                drifted += 1;
                eprintln!("{label} drifted:\n  got  {f:#x?}\n  want {expected:#x?}");
            } else {
                println!("{label}: ok");
            }
        } else {
            println!(
                "(\"{label}\", {}, {}, {}, {}, {}, {}, {}, {:#x}, {:#x}),",
                f.completed,
                f.demoted,
                f.promoted,
                f.promoted_tokens,
                f.dropped,
                f.host_bytes,
                f.nvme_bytes,
                f.hit_bits,
                f.ttft_p95_bits
            );
        }
    }

    if check {
        if drifted > 0 {
            eprintln!(
                "{drifted} offload fingerprint(s) drifted — a demote, promote, \
                 eviction-ranking, or carry change altered simulation semantics \
                 (run kvstat without --check to recapture after an intentional change)"
            );
            std::process::exit(1);
        }
        println!("all offload fingerprints stable");
    }
}
