//! Disaggregated-serving driver: runs the colocated baseline and a
//! 1-prefill + 1-decode split, verifies the five-phase latency
//! partition, and writes the reports plus streamed span logs.
//!
//! ```sh
//! cargo run -p agentsim-bench --release --bin disaggstat             # export
//! cargo run -p agentsim-bench --release --bin disaggstat -- --check # CI smoke
//! ```
//!
//! The default mode writes, at the repository root:
//!
//! * `DISAGG_report.json` — `{"colocated": ..., "disagg": ...}` run
//!   summaries (TTFT/TPOT/goodput/phase totals) at the same seed,
//! * `DISAGG_prefill_spans.jsonl` / `DISAGG_decode_spans.jsonl` —
//!   per-request lifecycle spans streamed incrementally from each pool
//!   (flushed as every request retires, not buffered to run end).
//!
//! `--check` runs a small workload and verifies, for every call, that
//! queue + prefill + transfer + decode + stall telescopes exactly into
//! its end-to-end latency (the transfer phase nonzero exactly for
//! migrated calls), that both report JSON summaries parse, and that the
//! streamed span lines are valid JSON; it writes nothing permanent.
//!
//! `--autoscale` replays a pinned one-flip schedule over a 2P+2D split
//! (the `autoscale_flip_schedule` golden) and checks the report
//! fingerprint bit for bit, the flip's drain/gap telescoping, and the
//! five-phase partition across the role change; it writes nothing.
//!
//! `--pipeline` replays the contended-PCIe cell twice — whole-footprint
//! serial transfers and 32-chunk layer-wise trains — pinning both
//! fingerprints bit for bit (the serial one against the pre-pipeline
//! driver's golden) and requiring the chunked arm to shrink the
//! transfer phase by at least 25%; it writes nothing.

use std::path::PathBuf;

use agentsim_gpu::{FlipCostModel, LinkSpec};
use agentsim_metrics::json;
use agentsim_serving::{
    AutoscalePolicy, DisaggConfig, DisaggReport, DisaggSim, DisaggWorkload, FlipDirection,
    SpanStreamWriter,
};
use agentsim_simkit::{SimDuration, SimTime};

/// Builds the two iso-GPU configurations compared throughout.
fn configs(requests: u64) -> (DisaggConfig, DisaggConfig) {
    let colocated =
        DisaggConfig::colocated(DisaggWorkload::react_hotpotqa(), 2, 1.0, requests).seed(7);
    let disagg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.0, requests).seed(7);
    (colocated, disagg)
}

/// Runs one configuration with streaming span writers on every replica,
/// writing prefill-pool and decode-pool spans to the given paths.
fn run_streamed(
    cfg: DisaggConfig,
    prefill_path: &std::path::Path,
    decode_path: &std::path::Path,
) -> (DisaggReport, SpanStreamWriter, SpanStreamWriter) {
    let mut sim = DisaggSim::new(cfg);
    let (np, nd) = sim.pool_sizes();
    // One engine per pool keeps every span in a single stream; the pools
    // in these runs are sized 1 (or colocated with no decode pool).
    assert!(np == 1, "streamed run expects a single prefill replica");
    let prefill_writer = SpanStreamWriter::to_file(prefill_path).expect("open prefill span log");
    sim.set_prefill_observer(0, Box::new(prefill_writer.clone()));
    let decode_writer = SpanStreamWriter::to_file(decode_path).expect("open decode span log");
    if nd > 0 {
        assert!(nd == 1, "streamed run expects a single decode replica");
        sim.set_decode_observer(0, Box::new(decode_writer.clone()));
    }
    let report = sim.run();
    prefill_writer.flush().expect("flush prefill span log");
    decode_writer.flush().expect("flush decode span log");
    (report, prefill_writer, decode_writer)
}

/// Verifies the five-phase partition over every call of a report.
fn verify_partition(label: &str, report: &DisaggReport) {
    assert!(report.completed > 0, "{label}: nothing completed");
    for call in &report.calls {
        let span = call.span();
        assert_eq!(
            span.total(),
            call.e2e(),
            "{label}: session {} call span must partition e2e exactly",
            call.session
        );
        assert_eq!(
            call.migrated(),
            span.transfer > SimDuration::ZERO,
            "{label}: transfer phase nonzero exactly for migrated calls"
        );
    }
    let phases: f64 = report.phase_totals().iter().map(|(_, s)| s).sum();
    let e2e: f64 = report.calls.iter().map(|c| c.e2e().as_secs_f64()).sum();
    assert!(
        (phases - e2e).abs() < 1e-9,
        "{label}: phase totals {phases} != summed e2e {e2e}"
    );
    json::validate(&report.to_json())
        .unwrap_or_else(|e| panic!("{label}: invalid report JSON: {e}"));
}

/// Validates a streamed span log: one JSON object per line.
fn verify_stream(label: &str, writer: &SpanStreamWriter, path: &std::path::Path) {
    assert!(
        writer.io_error().is_none(),
        "{label}: {:?}",
        writer.io_error()
    );
    assert_eq!(writer.live(), 0, "{label}: spans left unretired");
    let text = std::fs::read_to_string(path).expect("read span log");
    let mut lines = 0u64;
    for line in text.lines() {
        json::validate(line).unwrap_or_else(|e| panic!("{label}: invalid line {line}: {e}"));
        lines += 1;
    }
    assert_eq!(lines, writer.written(), "{label}: line count");
}

/// Replays the pinned one-flip schedule (the `autoscale_flip_schedule`
/// golden configuration) and checks its fingerprint bit for bit.
fn autoscale_check() {
    let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.0, 16)
        .seed(0xD15A)
        .pools(2, 2)
        .flip_cost(FlipCostModel::warm())
        .autoscale(AutoscalePolicy::Schedule(vec![(
            SimTime::from_secs_f64(8.0),
            FlipDirection::PrefillToDecode,
        )]));
    let report = DisaggSim::new(cfg).run();
    verify_partition("autoscale", &report);

    assert_eq!(report.flips.len(), 1, "the scheduled flip must execute");
    let flip = &report.flips[0];
    assert_eq!(flip.direction, FlipDirection::PrefillToDecode);
    assert!(
        flip.requested <= flip.drained && flip.drained <= flip.completed,
        "flip timestamps must telescope"
    );
    assert_eq!(
        flip.flip_gap(),
        FlipCostModel::warm().flip_time(),
        "reconfiguration gap must match the cost model"
    );

    // The pinned fingerprint of `autoscale_flip_schedule` in
    // crates/disagg/tests/golden.rs — bit-exact, no tolerance.
    let mut ttft = report.ttft();
    let mut tpot = report.tpot();
    let got = (
        report.completed,
        report.migrated_calls,
        report.transferred_bytes,
        report.p95_s.to_bits(),
        ttft.p95().to_bits(),
        tpot.percentile(99.0).to_bits(),
    );
    let want = (
        16u64,
        89u64,
        20497563648u64,
        0x403430316a055758u64,
        0x3fb1b25f633ce63au64,
        0x3f8fb69984a0e411u64,
    );
    assert_eq!(
        got, want,
        "autoscale fingerprint drifted from the pinned golden"
    );
    println!(
        "autoscale: {} calls, 1 flip (drain {:.3} s, gap {:.3} s), fingerprint ok",
        report.calls.len(),
        flip.drain_time().as_secs_f64(),
        flip.flip_gap().as_secs_f64(),
    );
}

/// Fingerprint of a pipeline-cell report: counters exact, floats as
/// bit patterns.
fn pipeline_fingerprint(report: &DisaggReport) -> (u64, u64, u64, u64, u64, u64, u64) {
    let mut ttft = report.ttft();
    let mut tpot = report.tpot();
    (
        report.completed,
        report.migrated_calls,
        report.transferred_bytes,
        report.transfer_wait.as_micros(),
        report.p95_s.to_bits(),
        ttft.p95().to_bits(),
        tpot.percentile(99.0).to_bits(),
    )
}

/// Replays the contended-PCIe cell serially and as 32-chunk pipelined
/// trains, pinning both fingerprints bit for bit. The serial constants
/// are the pre-pipeline driver's (also pinned by
/// `crates/disagg/tests/pipeline_differential.rs`); the chunked
/// constants are this driver's own golden going forward.
fn pipeline_check() {
    let cell = |chunks: u32| {
        DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.0, 20)
            .seed(0x9C1E)
            .pools(1, 1)
            .link(LinkSpec::pcie_gen4())
            .transfer_chunks(chunks)
    };

    let serial = DisaggSim::new(cell(1)).run();
    verify_partition("pipeline serial", &serial);
    assert_eq!(
        pipeline_fingerprint(&serial),
        (
            20u64,
            91u64,
            18838716416u64,
            26886u64,
            0x4032da21fafc8b00u64,
            0x3fb878316a055758u64,
            0x3f90f16f4384ba0fu64,
        ),
        "serial fingerprint drifted from the pre-pipeline golden"
    );
    assert!(
        serial.links.iter().all(|l| l.chunks == l.transfers),
        "serial arm must move exactly one chunk per transfer"
    );

    let pipelined = DisaggSim::new(cell(32)).run();
    verify_partition("pipeline chunked", &pipelined);
    assert_eq!(
        pipeline_fingerprint(&pipelined),
        (
            20u64,
            87u64,
            17957912576u64,
            63641u64,
            0x403052ec5b078d93u64,
            0x3fb5e03f705857b0u64,
            0x3f909784ec636b09u64,
        ),
        "pipelined fingerprint drifted from the pinned golden"
    );
    assert!(
        pipelined.links.iter().any(|l| l.chunks > l.transfers),
        "pipelined arm must ship multi-chunk trains"
    );

    let transfer = |r: &DisaggReport| {
        r.phase_totals()
            .iter()
            .find(|(n, _)| *n == "transfer")
            .map(|(_, s)| *s)
            .expect("transfer phase")
    };
    let (ser_t, pipe_t) = (transfer(&serial), transfer(&pipelined));
    assert!(
        pipe_t <= 0.75 * ser_t,
        "pipelining must shrink the transfer phase >=25% (serial {ser_t:.3} s, chunked {pipe_t:.3} s)"
    );
    println!(
        "pipeline: {} migrations, transfer phase {:.3} -> {:.3} s ({:.0}% smaller), \
         wait {:.1} -> {:.1} ms, both fingerprints ok",
        serial.migrated_calls,
        ser_t,
        pipe_t,
        (1.0 - pipe_t / ser_t) * 100.0,
        serial.transfer_wait.as_secs_f64() * 1e3,
        pipelined.transfer_wait.as_secs_f64() * 1e3,
    );
}

/// Locates the repository root (directory containing a workspace
/// `Cargo.toml`) by walking up from the current directory.
fn repo_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return std::env::current_dir().expect("cwd");
        }
    }
}

fn main() {
    let check = match std::env::args().nth(1).as_deref() {
        Some("--check") => true,
        Some("--autoscale") => {
            autoscale_check();
            println!("disaggstat --autoscale passed");
            return;
        }
        Some("--pipeline") => {
            pipeline_check();
            println!("disaggstat --pipeline passed");
            return;
        }
        Some(other) => {
            eprintln!("unknown flag {other}; use --check, --autoscale, or --pipeline");
            std::process::exit(2);
        }
        None => false,
    };

    let requests = if check { 10 } else { 40 };
    let root = if check {
        std::env::temp_dir().join("disaggstat_check")
    } else {
        repo_root()
    };
    if check {
        std::fs::create_dir_all(&root).expect("temp dir");
    }
    let prefill_path = root.join("DISAGG_prefill_spans.jsonl");
    let decode_path = root.join("DISAGG_decode_spans.jsonl");

    let (colocated_cfg, disagg_cfg) = configs(requests);
    let link_name = disagg_cfg.link.name;
    let colocated = DisaggSim::new(colocated_cfg).run();
    verify_partition("colocated", &colocated);
    assert_eq!(colocated.migrated_calls, 0, "colocated never migrates");

    let (disagg, prefill_writer, decode_writer) =
        run_streamed(disagg_cfg, &prefill_path, &decode_path);
    verify_partition("disagg", &disagg);
    assert!(
        disagg.migrated_calls > 0,
        "disagg migrates multi-token calls"
    );
    verify_stream("prefill spans", &prefill_writer, &prefill_path);
    verify_stream("decode spans", &decode_writer, &decode_path);
    println!(
        "colocated: {} calls; disagg: {} calls, {} migrations, {:.1} MB over {}",
        colocated.calls.len(),
        disagg.calls.len(),
        disagg.migrated_calls,
        disagg.transferred_bytes as f64 / 1e6,
        link_name,
    );

    if check {
        let _ = std::fs::remove_file(&prefill_path);
        let _ = std::fs::remove_file(&decode_path);
        let _ = std::fs::remove_dir(&root);
        println!("disaggstat --check passed");
        return;
    }

    let report_path = root.join("DISAGG_report.json");
    let combined = format!(
        "{{\"colocated\":{},\"disagg\":{}}}",
        colocated.to_json(),
        disagg.to_json()
    );
    json::validate(&combined).expect("combined report JSON");
    if let Err(e) = std::fs::write(&report_path, combined) {
        eprintln!("could not write {}: {e}", report_path.display());
        std::process::exit(1);
    }
    for path in [&report_path, &prefill_path, &decode_path] {
        println!("wrote {}", path.display());
    }
}
