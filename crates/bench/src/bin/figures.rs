//! Regenerates every table and figure of the paper (plus ablations) and
//! writes text/CSV outputs under `results/`.
//!
//! ```sh
//! cargo run -p agentsim-bench --release --bin figures            # all, paper scale
//! cargo run -p agentsim-bench --release --bin figures fig14      # one artifact
//! cargo run -p agentsim-bench --release --bin figures -- --quick # test scale
//! ```
//!
//! Exit code is non-zero if any shape check fails.

use std::path::Path;
use std::time::Instant;

use agentsim::experiments::all_experiments;
use agentsim_bench::{parse_args, write_result, RESULTS_DIR};

fn main() {
    let (ids, scale) = parse_args(std::env::args().skip(1));
    let dir = Path::new(RESULTS_DIR);
    let experiments: Vec<_> = all_experiments()
        .into_iter()
        .filter(|e| ids.is_empty() || ids.iter().any(|id| id == e.id))
        .collect();
    if experiments.is_empty() {
        eprintln!("no experiment matches {ids:?}; known ids:");
        for e in all_experiments() {
            eprintln!("  {:<18} {:<10} {}", e.id, e.paper_ref, e.title);
        }
        std::process::exit(2);
    }

    println!(
        "Running {} experiment(s) at scale {{samples: {}, serving_requests: {}}}\n",
        experiments.len(),
        scale.samples,
        scale.serving_requests
    );

    let mut failures = 0usize;
    let mut index_rows: Vec<(String, String, String, usize, bool, f64)> = Vec::new();
    let started = Instant::now();
    for e in &experiments {
        let t0 = Instant::now();
        print!("{:<18} {:<10} ... ", e.id, e.paper_ref);
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        let result = e.run(&scale);
        let ok = result.all_checks_pass();
        if !ok {
            failures += 1;
        }
        println!(
            "{} ({} checks, {:.1}s)",
            if ok { "ok" } else { "CHECK FAILURES" },
            result.checks.len(),
            t0.elapsed().as_secs_f64()
        );
        for c in result.checks.iter().filter(|c| !c.passed) {
            println!("    {c}");
        }
        index_rows.push((
            e.id.to_string(),
            e.paper_ref.to_string(),
            e.title.to_string(),
            result.checks.len(),
            ok,
            t0.elapsed().as_secs_f64(),
        ));
        if let Err(err) = write_result(dir, &result) {
            eprintln!("    could not write results: {err}");
        }
    }

    // Emit an index of the run.
    let mut index = String::from(
        "# results index\n\n| id | paper | title | checks | status | time |\n|---|---|---|---|---|---|\n",
    );
    for (id, paper, title, checks, ok, secs) in &index_rows {
        index.push_str(&format!(
            "| [{id}]({id}.txt) | {paper} | {title} | {checks} | {} | {secs:.1}s |\n",
            if *ok { "pass" } else { "FAIL" }
        ));
    }
    if let Err(err) = std::fs::write(dir.join("INDEX.md"), index) {
        eprintln!("could not write index: {err}");
    }

    println!(
        "\n{} experiment(s) in {:.0}s; outputs under {}/",
        experiments.len(),
        started.elapsed().as_secs_f64(),
        RESULTS_DIR
    );
    if failures > 0 {
        eprintln!("{failures} experiment(s) had failing shape checks");
        std::process::exit(1);
    }
}
