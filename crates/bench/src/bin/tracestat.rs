//! Trace exporter driver: runs a serving workload with a `SpanRecorder`
//! attached and writes the observability artifacts.
//!
//! ```sh
//! cargo run -p agentsim-bench --release --bin tracestat             # export
//! cargo run -p agentsim-bench --release --bin tracestat -- --check # CI smoke
//! ```
//!
//! The default mode writes, at the repository root:
//!
//! * `TRACE_serving.json` — Chrome `trace_event` JSON of an open-loop
//!   ReAct/HotpotQA run (load it in `chrome://tracing` or Perfetto),
//! * `TRACE_fleet.json` — the same format for a 3-replica round-robin
//!   fleet, one process track per replica,
//! * `TRACE_events.jsonl` — the raw engine event log of the serving run.
//!
//! `--check` runs a small workload, validates every artifact with the
//! in-tree JSON parser, verifies the span partition invariant
//! (queue + prefill + decode + stall == e2e for every request), and
//! writes nothing.

use std::path::PathBuf;

use agentsim_metrics::json;
use agentsim_serving::{
    chrome_trace, FleetConfig, FleetSim, Routing, ServingConfig, ServingSim, ServingWorkload,
    SpanRecorder,
};

/// Runs open-loop ReAct/HotpotQA serving with a recorder attached.
fn record_serving(requests: u64) -> SpanRecorder {
    let cfg = ServingConfig::new(ServingWorkload::react_hotpotqa(), 2.0, requests).seed(7);
    let mut sim = ServingSim::new(cfg);
    let recorder = sim.attach_recorder();
    sim.run();
    recorder
}

/// Runs a 3-replica round-robin fleet with one recorder per replica.
fn record_fleet(requests: u64) -> Vec<SpanRecorder> {
    let cfg = FleetConfig::react_hotpotqa(3, Routing::RoundRobin, 3.0, requests).seed(7);
    let mut sim = FleetSim::new(cfg);
    let recorders = sim.attach_recorders();
    sim.run();
    recorders
}

/// Validates one recorder's spans and exports; returns (spans, steps).
fn verify(label: &str, recorder: &SpanRecorder) -> (usize, usize) {
    let spans = recorder.spans();
    for s in &spans {
        assert!(s.is_complete(), "{label}: {} unfinished", s.id);
        assert_eq!(
            s.attributed(),
            s.e2e().expect("complete"),
            "{label}: {} span phases must partition its e2e latency",
            s.id
        );
    }
    json::validate(&recorder.chrome_trace())
        .unwrap_or_else(|e| panic!("{label}: invalid Chrome trace: {e}"));
    for line in recorder.events_jsonl().lines() {
        json::validate(line).unwrap_or_else(|e| panic!("{label}: invalid JSONL line {line}: {e}"));
    }
    (spans.len(), recorder.steps().len())
}

/// Locates the repository root (directory containing a workspace
/// `Cargo.toml`) by walking up from the current directory.
fn repo_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return std::env::current_dir().expect("cwd");
        }
    }
}

fn main() {
    let check = match std::env::args().nth(1).as_deref() {
        Some("--check") => true,
        Some(other) => {
            eprintln!("unknown flag {other}; use --check");
            std::process::exit(2);
        }
        None => false,
    };

    let serving_requests = if check { 8 } else { 40 };
    let fleet_requests = if check { 8 } else { 30 };

    let serving = record_serving(serving_requests);
    let (spans, steps) = verify("serving", &serving);
    println!("serving: {spans} request spans over {steps} engine steps");

    let fleet = record_fleet(fleet_requests);
    let labels: Vec<String> = (0..fleet.len()).map(|i| format!("replica{i}")).collect();
    let pairs: Vec<(&str, &SpanRecorder)> = labels
        .iter()
        .map(String::as_str)
        .zip(fleet.iter())
        .collect();
    for (label, recorder) in &pairs {
        let (spans, steps) = verify(label, recorder);
        println!("{label}: {spans} request spans over {steps} engine steps");
    }
    let fleet_trace = chrome_trace(&pairs);
    json::validate(&fleet_trace).unwrap_or_else(|e| panic!("invalid fleet trace: {e}"));

    if check {
        println!("tracestat --check passed");
        return;
    }

    let root = repo_root();
    for (name, content) in [
        ("TRACE_serving.json", serving.chrome_trace()),
        ("TRACE_fleet.json", fleet_trace),
        ("TRACE_events.jsonl", serving.events_jsonl()),
    ] {
        let path = root.join(name);
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
}
