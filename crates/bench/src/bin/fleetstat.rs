//! Fleet-serving smoke driver: runs every routing policy under both
//! client models (open-loop Poisson and closed-loop multi-turn) and
//! pins the resulting `FleetReport` fingerprints.
//!
//! ```sh
//! cargo run -p agentsim-bench --release --bin fleetstat            # print
//! cargo run -p agentsim-bench --release --bin fleetstat -- --check # CI smoke
//! ```
//!
//! The default mode prints the six fingerprints in the source-constant
//! format (the capture helper for updating the table below after an
//! intentional semantics change). `--check` recomputes all six and
//! fails loudly on any drift: the fleet must stay bit-deterministic for
//! a given `(routing, client, seed)` across refactors, and the shared
//! session-driver core must keep serving both client models through
//! the very same code path.

use agentsim_serving::{ClientModel, FleetConfig, FleetReport, FleetSim, Routing};
use agentsim_simkit::SimDuration;

/// The six pinned configurations: all routings under both client models.
fn matrix() -> Vec<(&'static str, Routing, ClientModel)> {
    let routings = [
        ("affinity", Routing::SessionAffinity),
        ("round-robin", Routing::RoundRobin),
        ("least-loaded", Routing::LeastLoaded),
    ];
    let mut cells = Vec::new();
    for (name, routing) in routings {
        cells.push((name, routing, ClientModel::OpenLoopPoisson));
    }
    for (name, routing) in routings {
        cells.push((
            name,
            routing,
            ClientModel::ClosedLoop {
                concurrency: 4,
                think_time: SimDuration::from_secs(2),
            },
        ));
    }
    cells
}

fn client_name(client: &ClientModel) -> &'static str {
    match client {
        ClientModel::OpenLoopPoisson => "open",
        ClientModel::ClosedLoop { .. } => "closed",
        ClientModel::TraceReplay { .. } => "trace",
    }
}

#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    completed: u64,
    max_live: u64,
    p50_bits: u64,
    p95_bits: u64,
    kv_hit_bits: u64,
    throughput_bits: u64,
}

impl Fingerprint {
    fn of(r: &FleetReport) -> Self {
        Fingerprint {
            completed: r.completed,
            max_live: r.max_live_sessions,
            p50_bits: r.p50_s.to_bits(),
            p95_bits: r.p95_s.to_bits(),
            kv_hit_bits: r.kv_hit_rate.to_bits(),
            throughput_bits: r.throughput.to_bits(),
        }
    }
}

fn run(routing: Routing, client: ClientModel) -> FleetReport {
    // Same shape as the golden_fleet integration tests: enough load on 3
    // replicas that routing decisions interleave with queueing.
    let cfg = FleetConfig::react_hotpotqa(3, routing, 4.0, 30)
        .seed(0xF1E7)
        .client(client);
    FleetSim::new(cfg).run()
}

/// `(label, client, completed, max_live, p50, p95, hit, tput)` — capture
/// with the default (print) mode after any intentional semantics change.
type GoldenRow = (&'static str, &'static str, u64, u64, u64, u64, u64, u64);
const GOLDEN: [GoldenRow; 6] = [
    (
        "affinity",
        "open",
        30,
        30,
        0x40269e2b6ae7d567,
        0x40318bfa6defc7a4,
        0x3febc9a23153bc01,
        0x3ff387d1986e41db,
    ),
    (
        "round-robin",
        "open",
        30,
        30,
        0x40257fc6759ab6d0,
        0x4034f7e5753a3ec0,
        0x3fe64fa1a26e9c5e,
        0x3ff0e2a52355c778,
    ),
    (
        "least-loaded",
        "open",
        30,
        28,
        0x4023ead948dc11e4,
        0x40333586ca89fc6e,
        0x3fe6aefbf64ebe9a,
        0x3ff34593cf11fc89,
    ),
    (
        "affinity",
        "closed",
        30,
        4,
        0x4020cae05ccc89b1,
        0x4031620f0a5efe93,
        0x3feb811be54eb5cb,
        0x3fd2c64eba21b7ab,
    ),
    (
        "round-robin",
        "closed",
        30,
        4,
        0x40213f3387160957,
        0x4032d55bbbe878fb,
        0x3fe7b4ee68d154d4,
        0x3fd26835e0c0cbeb,
    ),
    (
        "least-loaded",
        "closed",
        30,
        4,
        0x40229a9da597d49d,
        0x4031c656366d7a57,
        0x3fe809fbeddfd1c4,
        0x3fd2c053556a27f5,
    ),
];

fn main() {
    let check = match std::env::args().nth(1).as_deref() {
        Some("--check") => true,
        Some(other) => {
            eprintln!("unknown flag {other}; use --check");
            std::process::exit(2);
        }
        None => false,
    };

    let mut drifted = 0u32;
    for (label, routing, client) in matrix() {
        let cname = client_name(&client);
        let population = match &client {
            ClientModel::ClosedLoop { concurrency, .. } => Some(*concurrency as u64),
            _ => None,
        };
        let report = run(routing, client);
        let f = Fingerprint::of(&report);
        if let Some(p) = population {
            assert!(
                f.max_live <= p,
                "{label}/{cname}: {} live sessions exceed the {p}-user population",
                f.max_live
            );
        }
        if check {
            let want = GOLDEN
                .iter()
                .find(|(l, c, ..)| *l == label && *c == cname)
                .expect("golden row present");
            let expected = Fingerprint {
                completed: want.2,
                max_live: want.3,
                p50_bits: want.4,
                p95_bits: want.5,
                kv_hit_bits: want.6,
                throughput_bits: want.7,
            };
            if f != expected {
                drifted += 1;
                eprintln!("{label}/{cname} drifted:\n  got  {f:#x?}\n  want {expected:#x?}");
            } else {
                println!("{label}/{cname}: ok");
            }
        } else {
            println!(
                "(\"{label}\", \"{cname}\", {}, {}, {:#x}, {:#x}, {:#x}, {:#x}),",
                f.completed, f.max_live, f.p50_bits, f.p95_bits, f.kv_hit_bits, f.throughput_bits
            );
        }
    }

    if check {
        if drifted > 0 {
            eprintln!(
                "{drifted} fleet fingerprint(s) drifted — a routing, client-model, or \
                 engine change altered simulation semantics (run fleetstat without \
                 flags to print current values)"
            );
            std::process::exit(1);
        }
        println!("fleetstat --check passed");
    }
}
