//! Fleet-serving smoke driver: runs every routing policy under both
//! client models (open-loop Poisson and closed-loop multi-turn), plus a
//! heterogeneous cascade fleet, and pins the resulting `FleetReport`
//! fingerprints.
//!
//! ```sh
//! cargo run -p agentsim-bench --release --bin fleetstat            # print
//! cargo run -p agentsim-bench --release --bin fleetstat -- --check # CI smoke
//! ```
//!
//! The default mode prints the seven fingerprints in the source-constant
//! format (the capture helper for updating the table below after an
//! intentional semantics change). `--check` recomputes all seven and
//! fails loudly on any drift: the fleet must stay bit-deterministic for
//! a given `(routing, client, seed)` across refactors, the shared
//! session-driver core must keep serving both client models through
//! the very same code path, and tier selection plus failure-driven
//! escalation across a mixed 8B/70B fleet must stay deterministic too.

use agentsim_llm::EngineConfig;
use agentsim_serving::{
    CascadePolicy, ClientModel, FleetConfig, FleetReport, FleetSim, ReplicaPool, Routing,
};
use agentsim_simkit::SimDuration;

/// The six pinned configurations: all routings under both client models.
fn matrix() -> Vec<(&'static str, Routing, ClientModel)> {
    let routings = [
        ("affinity", Routing::SessionAffinity),
        ("round-robin", Routing::RoundRobin),
        ("least-loaded", Routing::LeastLoaded),
    ];
    let mut cells = Vec::new();
    for (name, routing) in routings {
        cells.push((name, routing, ClientModel::OpenLoopPoisson));
    }
    for (name, routing) in routings {
        cells.push((
            name,
            routing,
            ClientModel::ClosedLoop {
                concurrency: 4,
                think_time: SimDuration::from_secs(2),
            },
        ));
    }
    cells
}

fn client_name(client: &ClientModel) -> &'static str {
    match client {
        ClientModel::OpenLoopPoisson => "open",
        ClientModel::ClosedLoop { .. } => "closed",
        ClientModel::TraceReplay { .. } => "trace",
    }
}

#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    completed: u64,
    solved: u64,
    escalated: u64,
    max_live: u64,
    p50_bits: u64,
    p95_bits: u64,
    kv_hit_bits: u64,
    throughput_bits: u64,
}

impl Fingerprint {
    fn of(r: &FleetReport) -> Self {
        Fingerprint {
            completed: r.completed,
            solved: r.solved,
            escalated: r.escalated,
            max_live: r.max_live_sessions,
            p50_bits: r.p50_s.to_bits(),
            p95_bits: r.p95_s.to_bits(),
            kv_hit_bits: r.kv_hit_rate.to_bits(),
            throughput_bits: r.throughput.to_bits(),
        }
    }
}

fn run(routing: Routing, client: ClientModel) -> FleetReport {
    // Same shape as the golden_fleet integration tests: enough load on 3
    // replicas that routing decisions interleave with queueing.
    let cfg = FleetConfig::react_hotpotqa(3, routing, 4.0, 30)
        .seed(0xF1E7)
        .client(client);
    FleetSim::new(cfg).run()
}

/// The heterogeneous cell: two cheap 8B replicas fronting one 4xH100 70B
/// replica, escalating purely on observed failure (no aptitude
/// pre-screen, which would route doomed turns premium up front and
/// leave the re-issue path cold). Pins the whole tiered-routing path —
/// arrival tier selection, cross-tier re-issue, and per-pool accounting.
fn run_cascade() -> FleetReport {
    let cfg = FleetConfig::pooled(
        vec![
            ReplicaPool::new(EngineConfig::a100_llama8b(), 2),
            ReplicaPool::new(EngineConfig::h100x4_llama70b(), 1),
        ],
        Routing::SessionAffinity,
        4.0,
        30,
    )
    .seed(0xF1E7)
    .cascade(CascadePolicy {
        escalate_on_failure: true,
        aptitude_margin: None,
        max_escalations: u32::MAX,
        escalate_retries: false,
    });
    FleetSim::new(cfg).run()
}

/// `(label, client, completed, solved, escalated, max_live, p50, p95,
/// hit, tput)` — capture with the default (print) mode after any
/// intentional semantics change.
type GoldenRow = (
    &'static str,
    &'static str,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
);
const GOLDEN: [GoldenRow; 7] = [
    (
        "affinity",
        "open",
        30,
        17,
        0,
        30,
        0x40269e2b6ae7d567,
        0x40318bfa6defc7a4,
        0x3febc9a23153bc01,
        0x3ff387d1986e41db,
    ),
    (
        "round-robin",
        "open",
        30,
        17,
        0,
        30,
        0x40257fc6759ab6d0,
        0x4034f7e5753a3ec0,
        0x3fe64fa1a26e9c5e,
        0x3ff0e2a52355c778,
    ),
    (
        "least-loaded",
        "open",
        30,
        17,
        0,
        28,
        0x4023ead948dc11e4,
        0x40333586ca89fc6e,
        0x3fe6aefbf64ebe9a,
        0x3ff34593cf11fc89,
    ),
    (
        "affinity",
        "closed",
        30,
        17,
        0,
        4,
        0x4020cae05ccc89b1,
        0x4031620f0a5efe93,
        0x3feb811be54eb5cb,
        0x3fd2c64eba21b7ab,
    ),
    (
        "round-robin",
        "closed",
        30,
        17,
        0,
        4,
        0x40213f3387160957,
        0x4032d55bbbe878fb,
        0x3fe7b4ee68d154d4,
        0x3fd26835e0c0cbeb,
    ),
    (
        "least-loaded",
        "closed",
        30,
        17,
        0,
        4,
        0x40229a9da597d49d,
        0x4031c656366d7a57,
        0x3fe809fbeddfd1c4,
        0x3fd2c053556a27f5,
    ),
    (
        "cascade",
        "open",
        30,
        20,
        13,
        29,
        0x402b255171e29b6b,
        0x40404661ae70c133,
        0x3feb22b6c65a0653,
        0x3fea0e4475e7c2b2,
    ),
];

fn main() {
    let check = match std::env::args().nth(1).as_deref() {
        Some("--check") => true,
        Some(other) => {
            eprintln!("unknown flag {other}; use --check");
            std::process::exit(2);
        }
        None => false,
    };

    let mut cells: Vec<(&str, &str, Option<u64>, FleetReport)> = Vec::new();
    for (label, routing, client) in matrix() {
        let cname = client_name(&client);
        let population = match &client {
            ClientModel::ClosedLoop { concurrency, .. } => Some(*concurrency as u64),
            _ => None,
        };
        cells.push((label, cname, population, run(routing, client)));
    }
    cells.push(("cascade", "open", None, run_cascade()));

    let mut drifted = 0u32;
    for (label, cname, population, report) in cells {
        let f = Fingerprint::of(&report);
        if let Some(p) = population {
            assert!(
                f.max_live <= p,
                "{label}/{cname}: {} live sessions exceed the {p}-user population",
                f.max_live
            );
        }
        if check {
            let want = GOLDEN
                .iter()
                .find(|(l, c, ..)| *l == label && *c == cname)
                .expect("golden row present");
            let expected = Fingerprint {
                completed: want.2,
                solved: want.3,
                escalated: want.4,
                max_live: want.5,
                p50_bits: want.6,
                p95_bits: want.7,
                kv_hit_bits: want.8,
                throughput_bits: want.9,
            };
            if f != expected {
                drifted += 1;
                eprintln!("{label}/{cname} drifted:\n  got  {f:#x?}\n  want {expected:#x?}");
            } else {
                println!("{label}/{cname}: ok");
            }
        } else {
            println!(
                "(\"{label}\", \"{cname}\", {}, {}, {}, {}, {:#x}, {:#x}, {:#x}, {:#x}),",
                f.completed,
                f.solved,
                f.escalated,
                f.max_live,
                f.p50_bits,
                f.p95_bits,
                f.kv_hit_bits,
                f.throughput_bits
            );
        }
    }

    if check {
        if drifted > 0 {
            eprintln!(
                "{drifted} fleet fingerprint(s) drifted — a routing, client-model, or \
                 engine change altered simulation semantics (run fleetstat without \
                 flags to print current values)"
            );
            std::process::exit(1);
        }
        println!("fleetstat --check passed");
    }
}
