//! Criterion benches for the serving-engine simulator itself: how many
//! simulated engine steps per wall-clock second, and how request shape
//! affects simulation cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use agentsim_kvcache::TokenBuf;
use agentsim_llm::{Engine, EngineConfig};
use agentsim_simkit::SimTime;

fn drain(engine: &mut Engine) {
    let mut now = SimTime::ZERO;
    while let Some(end) = engine.start_step_if_idle(now) {
        now = end;
        black_box(engine.complete_step(now));
    }
}

fn bench_single_request(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/single_request");
    for (name, prompt, out) in [
        ("short", 256u32, 32u32),
        ("chat", 512, 256),
        ("agent_call", 2048, 64),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut e = Engine::new(EngineConfig::a100_llama8b());
                    e.submit(SimTime::ZERO, TokenBuf::from_segment(1, prompt), out, 7);
                    e
                },
                |mut e| drain(&mut e),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_batched_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/concurrent_requests");
    for batch in [4u64, 16, 64] {
        group.bench_function(format!("batch_{batch}"), |b| {
            b.iter_batched(
                || {
                    let mut e = Engine::new(EngineConfig::a100_llama8b());
                    for i in 0..batch {
                        e.submit(SimTime::ZERO, TokenBuf::from_segment(i, 512), 48, i);
                    }
                    e
                },
                |mut e| drain(&mut e),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_step_formation_large_batch(c: &mut Criterion) {
    // Step formation and completion at high occupancy: a deep waiting
    // queue feeding a full running set. This is the path the incremental
    // (O(active-set)) scheduler rewrite targets; before it, cost grew
    // quadratically with the batch size.
    let mut group = c.benchmark_group("engine/step_formation");
    group.sample_size(10);
    for batch in [64u64, 128, 256] {
        group.bench_function(format!("running_{batch}"), |b| {
            b.iter_batched(
                || {
                    let mut e = Engine::new(EngineConfig::a100_llama8b());
                    for i in 0..batch {
                        e.submit(SimTime::ZERO, TokenBuf::from_segment(i, 256), 24, i);
                    }
                    e
                },
                |mut e| drain(&mut e),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_deepest_first_admission(c: &mut Criterion) {
    // DeepestFirst admission with a deep priority-diverse waiting queue:
    // the sort-once admission path versus the old rescan-per-admission.
    use agentsim_llm::SchedulerPolicy;
    let mut group = c.benchmark_group("engine/deepest_first_admission");
    group.sample_size(10);
    for queue in [128u64, 512] {
        group.bench_function(format!("waiting_{queue}"), |b| {
            b.iter_batched(
                || {
                    let mut e = Engine::new(
                        EngineConfig::a100_llama8b().with_scheduler(SchedulerPolicy::DeepestFirst),
                    );
                    for i in 0..queue {
                        e.submit_with_priority(
                            SimTime::ZERO,
                            TokenBuf::from_segment(i, 128),
                            8,
                            i,
                            (i % 17) as u32,
                        );
                    }
                    e
                },
                |mut e| drain(&mut e),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_prefix_caching_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/prefix_caching");
    for (name, caching) in [("on", true), ("off", false)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || Engine::new(EngineConfig::a100_llama8b().with_prefix_caching(caching)),
                |mut e| {
                    // Five sequential calls sharing a growing prefix — the
                    // agent pattern that stresses the hash path.
                    let mut now = SimTime::ZERO;
                    let mut ctx = TokenBuf::from_segment(9, 1024);
                    for i in 0..5u64 {
                        e.submit(now, ctx.clone(), 32, i);
                        while let Some(end) = e.start_step_if_idle(now) {
                            now = end;
                            black_box(e.complete_step(now));
                        }
                        for j in 0..32 {
                            ctx.push_generated(i, j);
                        }
                        ctx.push_segment(100 + i, 200);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_request,
    bench_batched_decode,
    bench_step_formation_large_batch,
    bench_deepest_first_admission,
    bench_prefix_caching_overhead
);
criterion_main!(benches);
