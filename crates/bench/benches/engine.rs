//! Criterion benches for the serving-engine simulator itself: how many
//! simulated engine steps per wall-clock second, and how request shape
//! affects simulation cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use agentsim_kvcache::TokenBuf;
use agentsim_llm::{Engine, EngineConfig};
use agentsim_simkit::SimTime;

fn drain(engine: &mut Engine) {
    let mut now = SimTime::ZERO;
    while let Some(end) = engine.start_step_if_idle(now) {
        now = end;
        black_box(engine.complete_step(now));
    }
}

fn bench_single_request(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/single_request");
    for (name, prompt, out) in [
        ("short", 256u32, 32u32),
        ("chat", 512, 256),
        ("agent_call", 2048, 64),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut e = Engine::new(EngineConfig::a100_llama8b());
                    e.submit(SimTime::ZERO, TokenBuf::from_segment(1, prompt), out, 7);
                    e
                },
                |mut e| drain(&mut e),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_batched_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/concurrent_requests");
    for batch in [4u64, 16, 64] {
        group.bench_function(format!("batch_{batch}"), |b| {
            b.iter_batched(
                || {
                    let mut e = Engine::new(EngineConfig::a100_llama8b());
                    for i in 0..batch {
                        e.submit(SimTime::ZERO, TokenBuf::from_segment(i, 512), 48, i);
                    }
                    e
                },
                |mut e| drain(&mut e),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_prefix_caching_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/prefix_caching");
    for (name, caching) in [("on", true), ("off", false)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || Engine::new(EngineConfig::a100_llama8b().with_prefix_caching(caching)),
                |mut e| {
                    // Five sequential calls sharing a growing prefix — the
                    // agent pattern that stresses the hash path.
                    let mut now = SimTime::ZERO;
                    let mut ctx = TokenBuf::from_segment(9, 1024);
                    for i in 0..5u64 {
                        e.submit(now, ctx.clone(), 32, i);
                        while let Some(end) = e.start_step_if_idle(now) {
                            now = end;
                            black_box(e.complete_step(now));
                        }
                        for j in 0..32 {
                            ctx.push_generated(i, j);
                        }
                        ctx.push_segment(100 + i, 200);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_request,
    bench_batched_decode,
    bench_prefix_caching_overhead
);
criterion_main!(benches);
