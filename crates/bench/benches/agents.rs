//! Criterion benches for full agent sessions: wall-clock cost of
//! simulating one request per agent framework, and of an open-loop
//! serving run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_serving::{ServingConfig, ServingSim, ServingWorkload, SingleRequest};
use agentsim_workloads::Benchmark;

fn bench_single_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("agents/single_request");
    group.sample_size(20);
    for kind in AgentKind::ALL {
        group.bench_function(format!("{kind}"), |b| {
            let runner = SingleRequest::new(kind, Benchmark::HotpotQa).seed(3);
            let mut task = 0u64;
            b.iter(|| {
                task += 1;
                black_box(runner.clone().task_index(task % 16).run())
            })
        });
    }
    group.finish();
}

fn bench_serving_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("agents/open_loop");
    group.sample_size(10);
    group.bench_function("react_hotpotqa_30req", |b| {
        b.iter(|| {
            let cfg = ServingConfig::new(ServingWorkload::react_hotpotqa(), 1.0, 30).seed(7);
            black_box(ServingSim::new(cfg).run())
        })
    });
    group.bench_function("chatbot_60req", |b| {
        b.iter(|| {
            let cfg = ServingConfig::new(ServingWorkload::Chatbot, 4.0, 60).seed(7);
            black_box(ServingSim::new(cfg).run())
        })
    });
    group.finish();
}

fn bench_lats_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("agents/lats_width");
    group.sample_size(10);
    for children in [2u32, 8] {
        group.bench_function(format!("children_{children}"), |b| {
            let runner = SingleRequest::new(AgentKind::Lats, Benchmark::HotpotQa)
                .seed(3)
                .agent_config(AgentConfig::default_8b().with_lats_children(children));
            b.iter(|| black_box(runner.clone().run()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_sessions,
    bench_serving_run,
    bench_lats_width
);
criterion_main!(benches);
