//! Criterion benches for the KV block manager: allocation throughput on
//! the cold path, the prefix-hit fast path, and eviction churn.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use agentsim_kvcache::{KvBlockManager, KvConfig, TokenBuf};
use agentsim_simkit::SimTime;

fn cfg(blocks: u32) -> KvConfig {
    KvConfig {
        num_blocks: blocks,
        block_size: 16,
        prefix_caching: true,
    }
}

fn bench_cold_alloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvcache/cold_alloc");
    for tokens in [256u32, 2048, 8192] {
        group.bench_function(format!("{tokens}_tokens"), |b| {
            let prompt = TokenBuf::from_segment(1, tokens);
            b.iter_batched(
                || KvBlockManager::new(cfg(1024)),
                |mut mgr| {
                    let h = mgr.allocate(black_box(&prompt), SimTime::ZERO).unwrap();
                    mgr.free(h, SimTime::from_micros(1));
                    mgr
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_hit_path(c: &mut Criterion) {
    c.bench_function("kvcache/warm_alloc_2048_tokens", |b| {
        let prompt = TokenBuf::from_segment(1, 2048);
        let mut mgr = KvBlockManager::new(cfg(1024));
        let h = mgr.allocate(&prompt, SimTime::ZERO).unwrap();
        mgr.free(h, SimTime::from_micros(1));
        let mut t = 2u64;
        b.iter(|| {
            let now = SimTime::from_micros(t);
            t += 1;
            let h = mgr.allocate(black_box(&prompt), now).unwrap();
            mgr.free(h, now);
        });
    });
}

fn bench_decode_append(c: &mut Criterion) {
    c.bench_function("kvcache/append_512_tokens", |b| {
        b.iter_batched(
            || {
                let mut mgr = KvBlockManager::new(cfg(1024));
                let h = mgr
                    .allocate(&TokenBuf::from_segment(1, 64), SimTime::ZERO)
                    .unwrap();
                (mgr, h)
            },
            |(mut mgr, h)| {
                for i in 0..512u64 {
                    mgr.append_token(h, i.wrapping_mul(0x9E37), SimTime::from_micros(i))
                        .unwrap();
                }
                mgr
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_eviction_churn(c: &mut Criterion) {
    c.bench_function("kvcache/eviction_churn", |b| {
        // Pool much smaller than the working set: every allocation evicts.
        b.iter_batched(
            || KvBlockManager::new(cfg(64)),
            |mut mgr| {
                for i in 0..32u64 {
                    let prompt = TokenBuf::from_segment(i, 256);
                    let h = mgr.allocate(&prompt, SimTime::from_micros(i)).unwrap();
                    mgr.free(h, SimTime::from_micros(i));
                }
                mgr
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_cold_alloc,
    bench_hit_path,
    bench_decode_append,
    bench_eviction_churn
);
criterion_main!(benches);
