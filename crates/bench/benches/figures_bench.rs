//! Criterion benches over the experiment registry: how long each paper
//! artifact takes to regenerate at quick scale. One benchmark per
//! figure/table keeps regressions in any experiment's cost visible.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use agentsim::experiments::all_experiments;
use agentsim::Scale;

fn bench_fast_experiments(c: &mut Criterion) {
    // The cheap, single-request-based artifacts.
    let fast = [
        "table1",
        "table2",
        "fig23",
        "ablation_step",
        "fig04",
        "fig08",
    ];
    let mut group = c.benchmark_group("figures/fast");
    group.sample_size(10);
    let scale = Scale {
        samples: 5,
        serving_requests: 15,
        seed: 7,
    };
    for e in all_experiments()
        .into_iter()
        .filter(|e| fast.contains(&e.id))
    {
        group.bench_function(e.id, |b| b.iter(|| black_box(e.run(&scale))));
    }
    group.finish();
}

fn bench_serving_experiments(c: &mut Criterion) {
    // The open-loop serving artifacts dominate regeneration time.
    let heavy = ["fig07", "fig16", "fig17"];
    let mut group = c.benchmark_group("figures/serving");
    group.sample_size(10);
    let scale = Scale {
        samples: 5,
        serving_requests: 15,
        seed: 7,
    };
    for e in all_experiments()
        .into_iter()
        .filter(|e| heavy.contains(&e.id))
    {
        group.bench_function(e.id, |b| b.iter(|| black_box(e.run(&scale))));
    }
    group.finish();
}

criterion_group!(benches, bench_fast_experiments, bench_serving_experiments);
criterion_main!(benches);
