//! Engine configuration.

use agentsim_gpu::{ClusterSpec, LinkSpec};
use agentsim_kvcache::{EvictionPolicy, OffloadSpec};

/// Request admission order.
///
/// The paper's deployments use vLLM's FCFS; its Key Takeaway #7 calls for
/// *agent-aware* dispatching. [`SchedulerPolicy::DeepestFirst`] is that
/// sketch: requests carry a priority (the serving driver sets it to the
/// session's completed LLM-call count), so sessions deep in their
/// workflow — close to finishing and holding the most reusable cache
/// state — are admitted first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// First-come-first-served (vLLM default).
    #[default]
    Fcfs,
    /// Highest-priority first, FCFS within a priority level.
    DeepestFirst,
}

/// Which lifecycle stages of a request this engine executes.
///
/// Disaggregated serving (Splitwise-style) splits the fleet into a
/// prefill pool and a decode pool so compute-bound prefills stop stalling
/// the bandwidth-bound decode batch — the paper's central interference
/// pathology (its Figs. 5/13/14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineRole {
    /// Ordinary engine: prefills and decodes every request it admits.
    #[default]
    Colocated,
    /// Prefill pool member: releases each request at its first token
    /// ([`EngineEvent::Migrated`](crate::EngineEvent::Migrated)) instead
    /// of decoding it to completion. Single-token requests still complete
    /// locally — there is nothing left to decode elsewhere.
    Prefill,
    /// Decode pool member: admits mid-life requests with pre-populated KV
    /// via [`Engine::submit_prefilled`](crate::Engine::submit_prefilled).
    /// Plain submissions still work (it is a full engine), but a pure
    /// disaggregated driver never sends any.
    Decode,
}

impl EngineRole {
    /// Stable lowercase name (used by exporters and traces).
    pub fn name(self) -> &'static str {
        match self {
            EngineRole::Colocated => "colocated",
            EngineRole::Prefill => "prefill",
            EngineRole::Decode => "decode",
        }
    }
}

/// The model-capability class a replica serves.
///
/// Heterogeneous fleets group replicas into pools, each serving one tier;
/// cascade routing starts turns on [`ModelTier::Small`] and escalates hard
/// turns to [`ModelTier::Large`]. The tag is descriptive — it changes no
/// engine behaviour, only how the fleet layer routes across pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ModelTier {
    /// A small/cheap model (the 8B class).
    #[default]
    Small,
    /// A large/premium model (the 70B class).
    Large,
}

impl ModelTier {
    /// Stable lowercase name (used by exporters and reports).
    pub fn name(self) -> &'static str {
        match self {
            ModelTier::Small => "small",
            ModelTier::Large => "large",
        }
    }
}

/// KV offload tiers below HBM and the links that price their transfers.
///
/// When set on an [`EngineConfig`], the engine's block manager spills
/// evicted cached blocks into host DRAM (cascading to NVMe) instead of
/// destroying them, and restores an offloaded prefix on admission —
/// paying transfer time over `host_link`/`nvme_link` instead of
/// recompute. Demotes are asynchronous (they occupy the link but delay no
/// step); promotes gate the admitting prefill step, extending TTFT.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadConfig {
    /// Host-DRAM tier capacity in KV blocks.
    pub host_blocks: u32,
    /// NVMe tier capacity in KV blocks.
    pub nvme_blocks: u32,
    /// Eviction-victim ranking for HBM and both tiers.
    pub policy: EvictionPolicy,
    /// The HBM↔host transfer path.
    pub host_link: LinkSpec,
    /// The host↔NVMe transfer path (also charged for host-tier overflow
    /// spilling down).
    pub nvme_link: LinkSpec,
    /// Layer chunks each *promotion* ships as. With `1` (the default) a
    /// promote is one serial transfer that gates the admitting prefill
    /// end to end; higher counts pipeline the fetch against the prefill
    /// compute it unblocks, so only the non-overlapped residual lands in
    /// the admission's TTFT toll. Demotes stay serial either way.
    pub transfer_chunks: u32,
}

impl OffloadConfig {
    /// Tiers over the default physical links: PCIe DMA to host, NVMe
    /// below it, with the LRU baseline policy.
    pub fn tiers(host_blocks: u32, nvme_blocks: u32) -> Self {
        OffloadConfig {
            host_blocks,
            nvme_blocks,
            policy: EvictionPolicy::Lru,
            host_link: LinkSpec::pcie_host(),
            nvme_link: LinkSpec::nvme(),
            transfer_chunks: 1,
        }
    }

    /// Returns a copy shipping each promotion as up to `chunks` layer
    /// chunks pipelined against the admitted prefill. `1` is the serial
    /// (whole-footprint) toll.
    pub fn with_transfer_chunks(mut self, chunks: u32) -> Self {
        assert!(chunks >= 1, "transfer chunks must be >= 1");
        self.transfer_chunks = chunks;
        self
    }

    /// Returns a copy with the given eviction policy.
    pub fn with_policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with both links replaced by
    /// [`LinkSpec::zero_cost`] — offload with free transfers, isolating
    /// the capacity effect from the transfer toll.
    pub fn with_free_links(mut self) -> Self {
        self.host_link = LinkSpec::zero_cost();
        self.nvme_link = LinkSpec::zero_cost();
        self
    }

    /// The tier sizing/policy handed to the block manager.
    pub fn spec(&self) -> OffloadSpec {
        OffloadSpec {
            host_blocks: self.host_blocks,
            nvme_blocks: self.nvme_blocks,
            policy: self.policy,
        }
    }

    /// Validates the link specs.
    pub fn validate(&self) -> Result<(), String> {
        if self.host_link.bandwidth_bytes_per_s <= 0.0 {
            return Err("offload host link bandwidth must be positive".into());
        }
        if self.nvme_link.bandwidth_bytes_per_s <= 0.0 {
            return Err("offload nvme link bandwidth must be positive".into());
        }
        Ok(())
    }
}

/// Configuration of one serving engine replica.
///
/// # Example
///
/// ```
/// use agentsim_llm::EngineConfig;
///
/// let cfg = EngineConfig::a100_llama8b();
/// assert!(cfg.num_kv_blocks() > 1000, "a ~14 GiB pool holds many 16-token blocks");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Hardware + model replica description.
    pub cluster: ClusterSpec,
    /// Tokens per KV block (vLLM default 16).
    pub block_size: u32,
    /// Automatic prefix caching (vLLM `enable_prefix_caching`).
    pub prefix_caching: bool,
    /// Scheduler token budget per step (vLLM `max_num_batched_tokens`).
    pub max_batch_tokens: u32,
    /// Maximum concurrently running sequences (vLLM `max_num_seqs`).
    pub max_running: u32,
    /// Chunked prefill: co-schedule prefill chunks with decodes.
    pub chunked_prefill: bool,
    /// Request admission order.
    pub scheduler: SchedulerPolicy,
    /// Which request lifecycle stages this engine executes.
    pub role: EngineRole,
    /// Optional KV offload tiers below HBM (host DRAM / NVMe).
    pub offload: Option<OffloadConfig>,
    /// The model-capability class this replica serves (cascade routing).
    pub tier: ModelTier,
}

impl EngineConfig {
    /// The paper's default backend: one A100-40GB serving Llama-3.1-8B
    /// with prefix caching enabled.
    pub fn a100_llama8b() -> Self {
        EngineConfig {
            cluster: ClusterSpec::a100_llama8b(),
            block_size: 16,
            prefix_caching: true,
            max_batch_tokens: 8192,
            max_running: 256,
            chunked_prefill: false,
            scheduler: SchedulerPolicy::Fcfs,
            role: EngineRole::Colocated,
            offload: None,
            tier: ModelTier::Small,
        }
    }

    /// The paper's large-model setup: eight A100-40GB serving
    /// Llama-3.1-70B (tensor parallel 8).
    pub fn a100x8_llama70b() -> Self {
        EngineConfig {
            cluster: ClusterSpec::a100x8_llama70b(),
            tier: ModelTier::Large,
            ..EngineConfig::a100_llama8b()
        }
    }

    /// One H100-80GB serving Llama-3.1-8B — a premium small-model replica.
    pub fn h100_llama8b() -> Self {
        EngineConfig {
            cluster: ClusterSpec::h100_llama8b(),
            ..EngineConfig::a100_llama8b()
        }
    }

    /// Four H100-80GB serving Llama-3.1-70B (tensor parallel 4) — the
    /// premium large-model tier for heterogeneous fleets.
    pub fn h100x4_llama70b() -> Self {
        EngineConfig {
            cluster: ClusterSpec::h100x4_llama70b(),
            tier: ModelTier::Large,
            ..EngineConfig::a100_llama8b()
        }
    }

    /// One L40S-48GB serving Llama-3.1-8B — the consumer-class cheap tier.
    pub fn l40s_llama8b() -> Self {
        EngineConfig {
            cluster: ClusterSpec::l40s_llama8b(),
            ..EngineConfig::a100_llama8b()
        }
    }

    /// Returns a copy with prefix caching toggled.
    pub fn with_prefix_caching(mut self, enabled: bool) -> Self {
        self.prefix_caching = enabled;
        self
    }

    /// Returns a copy with the KV pool scaled to `fraction` of the model
    /// weight size (the paper's Fig. 17 sweep: 0.1 … 2.0).
    pub fn with_kv_fraction(mut self, fraction: f64) -> Self {
        self.cluster = self.cluster.with_kv_memory_fraction(fraction);
        self
    }

    /// Returns a copy with chunked prefill toggled.
    pub fn with_chunked_prefill(mut self, enabled: bool) -> Self {
        self.chunked_prefill = enabled;
        self
    }

    /// Returns a copy with a different scheduler policy.
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Returns a copy with a different engine role.
    pub fn with_role(mut self, role: EngineRole) -> Self {
        self.role = role;
        self
    }

    /// Returns a copy with KV offload tiers enabled.
    pub fn with_offload(mut self, offload: OffloadConfig) -> Self {
        self.offload = Some(offload);
        self
    }

    /// Bytes of KV cache stored per block.
    pub fn kv_bytes_per_block(&self) -> u64 {
        self.cluster.model.kv_bytes_per_token() * self.block_size as u64
    }

    /// Number of KV blocks the pool holds.
    pub fn num_kv_blocks(&self) -> u32 {
        (self.cluster.kv_pool_bytes() / self.kv_bytes_per_block()).max(1) as u32
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if the cluster is invalid or any knob is zero.
    pub fn validate(&self) -> Result<(), String> {
        self.cluster.validate()?;
        if self.block_size == 0 {
            return Err("block_size must be positive".into());
        }
        if self.max_batch_tokens == 0 {
            return Err("max_batch_tokens must be positive".into());
        }
        if self.max_running == 0 {
            return Err("max_running must be positive".into());
        }
        if let Some(offload) = &self.offload {
            offload.validate()?;
            if !self.prefix_caching {
                return Err("KV offload requires prefix caching".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        EngineConfig::a100_llama8b().validate().unwrap();
        EngineConfig::a100x8_llama70b().validate().unwrap();
        EngineConfig::h100_llama8b().validate().unwrap();
        EngineConfig::h100x4_llama70b().validate().unwrap();
        EngineConfig::l40s_llama8b().validate().unwrap();
    }

    #[test]
    fn tiers_tag_the_preset_family() {
        assert_eq!(EngineConfig::a100_llama8b().tier, ModelTier::Small);
        assert_eq!(EngineConfig::h100_llama8b().tier, ModelTier::Small);
        assert_eq!(EngineConfig::l40s_llama8b().tier, ModelTier::Small);
        assert_eq!(EngineConfig::a100x8_llama70b().tier, ModelTier::Large);
        assert_eq!(EngineConfig::h100x4_llama70b().tier, ModelTier::Large);
        assert!(ModelTier::Small < ModelTier::Large);
        assert_eq!(ModelTier::Small.name(), "small");
        assert_eq!(ModelTier::Large.name(), "large");
    }

    #[test]
    fn default_pool_sizes_are_plausible() {
        // 8B: pool = 0.9 x 16 GB weights ≈ 14.5 GB over 128 KiB/token
        // blocks of 16 tokens (2 MiB/block) ≈ ~6.9k blocks.
        let cfg = EngineConfig::a100_llama8b();
        let blocks = cfg.num_kv_blocks();
        assert!((5_000..9_000).contains(&blocks), "blocks {blocks}");
        // That is ~110k cacheable tokens.
        let tokens = blocks * cfg.block_size;
        assert!(tokens > 80_000, "tokens {tokens}");
    }

    #[test]
    fn kv_fraction_sweep_shrinks_pool() {
        let full = EngineConfig::a100_llama8b().with_kv_fraction(2.0);
        let tiny = EngineConfig::a100_llama8b().with_kv_fraction(0.1);
        assert!(tiny.num_kv_blocks() * 10 <= full.num_kv_blocks() + 10);
    }

    #[test]
    fn builder_style_toggles() {
        let cfg = EngineConfig::a100_llama8b()
            .with_prefix_caching(false)
            .with_chunked_prefill(true);
        assert!(!cfg.prefix_caching);
        assert!(cfg.chunked_prefill);
    }

    #[test]
    fn offload_config_defaults_and_builders() {
        let off = OffloadConfig::tiers(1024, 4096);
        assert_eq!(off.policy, EvictionPolicy::Lru);
        assert_eq!(off.host_link.name, "pcie_host");
        assert_eq!(off.nvme_link.name, "nvme");
        let spec = off.spec();
        assert_eq!(spec.host_blocks, 1024);
        assert_eq!(spec.nvme_blocks, 4096);

        let off = off
            .with_policy(EvictionPolicy::InvocationDistance)
            .with_free_links();
        assert_eq!(off.policy, EvictionPolicy::InvocationDistance);
        assert_eq!(off.host_link.name, "zero_cost");
        assert_eq!(off.nvme_link.name, "zero_cost");

        let cfg = EngineConfig::a100_llama8b().with_offload(off);
        cfg.validate().unwrap();
    }

    #[test]
    fn offload_requires_prefix_caching() {
        let cfg = EngineConfig::a100_llama8b()
            .with_prefix_caching(false)
            .with_offload(OffloadConfig::tiers(16, 0));
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("prefix caching"), "{err}");
    }
}
