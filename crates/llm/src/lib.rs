//! Discrete-event LLM serving engine simulator.
//!
//! Models the serving stack the paper measures (vLLM 0.6.6 on A100s) at
//! the granularity where its systems phenomena live — *engine steps*:
//!
//! * requests queue FCFS and are admitted when their (non-cached) prompt
//!   fits the step token budget and the KV pool has room,
//! * a step is either a **prefill** batch or a **decode** iteration over
//!   all running sequences (continuous batching); optionally prefill
//!   chunks co-run with decodes (chunked-prefill ablation),
//! * step durations come from the [`agentsim_gpu`] roofline model, so
//!   prefill is compute-bound and decode bandwidth-bound,
//! * the KV pool is a real [`agentsim_kvcache`] block manager: prefix
//!   hits shorten prefill, unreferenced blocks stay cached, memory
//!   pressure preempts the youngest running sequence (recompute),
//! * prefill-blocks-decode interference, queueing delays, and energy are
//!   all emergent from the step loop.
//!
//! Drivers own simulated time: they call [`Engine::submit`], then
//! [`Engine::start_step_if_idle`] to learn when the current step finishes,
//! and [`Engine::complete_step`] at that instant.
//!
//! # Example
//!
//! ```
//! use agentsim_llm::{Engine, EngineConfig};
//! use agentsim_kvcache::TokenBuf;
//! use agentsim_simkit::SimTime;
//!
//! let mut engine = Engine::new(EngineConfig::a100_llama8b());
//! let mut now = SimTime::ZERO;
//! engine.submit(now, TokenBuf::from_segment(1, 512), 64, 99);
//!
//! let mut done = Vec::new();
//! while let Some(end) = engine.start_step_if_idle(now) {
//!     now = end;
//!     done.extend(engine.complete_step(now));
//! }
//! assert_eq!(done.len(), 1);
//! assert_eq!(done[0].output_tokens, 64);
//! ```

pub mod config;
pub mod engine;
pub mod metrics;
pub mod observer;
pub mod request;

pub use config::{EngineConfig, EngineRole, ModelTier, OffloadConfig, SchedulerPolicy};
pub use engine::Engine;
pub use metrics::EngineMetrics;
pub use observer::{EngineEvent, EngineObserver, FanoutObserver, StepKind};
pub use request::{LlmCompletion, MigratedRequest, RequestId};
