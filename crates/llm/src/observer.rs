//! Engine observability: structured lifecycle and step events.
//!
//! The paper's time-resolved figures (prefill/decode attribution,
//! KV-occupancy-over-time, batch composition, preemption counts — its
//! Figs. 5–13) all require *step-level* visibility into the serving
//! engine, not end-of-run aggregates. An [`EngineObserver`] attached via
//! [`Engine::set_observer`](crate::Engine::set_observer) receives every
//! [`EngineEvent`] as it happens; when no observer is attached the engine
//! skips event construction entirely, so the hook costs nothing on the
//! hot path.
//!
//! Events are emitted in simulated-time order (each event's timestamp is
//! monotonically non-decreasing across the emission sequence), which lets
//! recorders feed time-series directly without sorting.
//!
//! # Example
//!
//! ```
//! use agentsim_llm::{Engine, EngineConfig, EngineEvent, EngineObserver};
//! use agentsim_kvcache::TokenBuf;
//! use agentsim_simkit::SimTime;
//!
//! /// Counts completed steps.
//! #[derive(Debug, Default)]
//! struct StepCounter(u64);
//!
//! impl EngineObserver for StepCounter {
//!     fn on_event(&mut self, event: &EngineEvent<'_>) {
//!         if matches!(event, EngineEvent::StepCompleted { .. }) {
//!             self.0 += 1;
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(EngineConfig::a100_llama8b());
//! engine.set_observer(Box::new(StepCounter::default()));
//! let mut now = SimTime::ZERO;
//! engine.submit(now, TokenBuf::from_segment(1, 128), 4, 0);
//! while let Some(end) = engine.start_step_if_idle(now) {
//!     now = end;
//!     engine.complete_step(now);
//! }
//! assert!(engine.has_observer());
//! ```

use agentsim_simkit::SimTime;

use crate::config::EngineRole;
use crate::request::{LlmCompletion, RequestId};

/// What kind of work a completed engine step performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// A prefill batch (classic scheduling).
    Prefill,
    /// One decode iteration over the running set.
    Decode,
    /// Decodes plus prefill chunks co-scheduled (chunked-prefill mode).
    Mixed,
}

impl StepKind {
    /// Stable lowercase name (used by exporters).
    pub fn name(self) -> &'static str {
        match self {
            StepKind::Prefill => "prefill",
            StepKind::Decode => "decode",
            StepKind::Mixed => "mixed",
        }
    }
}

impl std::fmt::Display for StepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured engine event. Borrowed slices refer to engine-internal
/// buffers valid for the duration of the callback.
#[derive(Debug)]
pub enum EngineEvent<'a> {
    /// A request entered the waiting queue.
    Submitted {
        /// The new request.
        id: RequestId,
        /// Submission time.
        at: SimTime,
        /// Prompt length in tokens.
        prompt_tokens: u32,
        /// Requested output tokens.
        out_tokens: u32,
        /// Scheduling priority (0 under plain FCFS submission).
        priority: u32,
    },
    /// A request was admitted into the running set (KV allocated). Fires
    /// again after each preemption when the request is re-admitted.
    Admitted {
        /// The admitted request.
        id: RequestId,
        /// Admission time (also the start of the step it joins).
        at: SimTime,
        /// Prompt tokens that must be prefilled.
        new_tokens: u32,
        /// Prompt tokens served from the prefix cache.
        cached_tokens: u32,
    },
    /// An engine step finished, with its batch composition and an
    /// occupancy snapshot. Emitted before the step's token-production
    /// effects ([`EngineEvent::Completed`] / [`EngineEvent::Preempted`]).
    StepCompleted {
        /// What the step did.
        kind: StepKind,
        /// When the step started executing.
        started: SimTime,
        /// When it finished (the event time).
        ended: SimTime,
        /// FLOPs executed by the step.
        flops: f64,
        /// Prefill participants as `(id, chunk_tokens)`.
        prefill: &'a [(RequestId, u32)],
        /// Decode participants (one token each).
        decode: &'a [RequestId],
        /// KV blocks referenced by live sequences at step end.
        kv_used_blocks: u64,
        /// Total KV blocks in the pool.
        kv_total_blocks: u64,
        /// Running sequences at step end (before completions are removed).
        running: u32,
        /// Requests waiting for admission at step end.
        waiting: u32,
    },
    /// A running sequence was preempted (KV freed, requeued for
    /// recompute-style resumption).
    Preempted {
        /// The victim.
        id: RequestId,
        /// Preemption time.
        at: SimTime,
        /// Tokens it had generated so far (preserved across requeue).
        generated: u32,
    },
    /// A request produced its final token.
    Completed {
        /// Completion time.
        at: SimTime,
        /// The full engine-side completion record.
        completion: &'a LlmCompletion,
    },
    /// A prefill-role engine released the request at its first token for
    /// decode on another pool
    /// ([`Engine::take_migrations`](crate::Engine::take_migrations) hands
    /// the caller the full [`crate::MigratedRequest`] record). Terminal on
    /// this engine, like [`EngineEvent::Completed`].
    Migrated {
        /// The released request.
        id: RequestId,
        /// Release time (end of the step that produced the first token).
        at: SimTime,
        /// Tokens generated before release (always 1: the first token).
        generated: u32,
        /// KV blocks the sequence occupied at release.
        kv_blocks: u32,
        /// KV bytes that must move to the decode pool.
        kv_bytes: u64,
    },
    /// A request was cancelled server-side before finishing — its client
    /// gave up (deadline expiry). The engine frees its KV at the next
    /// step boundary and charges the service it already received as
    /// wasted work. Terminal on this engine, like
    /// [`EngineEvent::Completed`].
    Abandoned {
        /// The cancelled request.
        id: RequestId,
        /// When the engine purged it (the enclosing step's end, or the
        /// cancellation instant on an idle engine).
        at: SimTime,
        /// Tokens it had generated before cancellation.
        generated: u32,
    },
    /// The engine finished draining and switched serving roles (pool
    /// autoscaling). Emitted by
    /// [`Engine::finish_drain`](crate::Engine::finish_drain) once the
    /// engine is empty, so every request observed before this event ran
    /// under `from` and every one after runs under `to`.
    RoleChanged {
        /// When the flip took effect.
        at: SimTime,
        /// The role the engine drained out of.
        from: EngineRole,
        /// The role it serves from now on.
        to: EngineRole,
    },
}

impl EngineEvent<'_> {
    /// The simulated time at which the event occurred.
    pub fn at(&self) -> SimTime {
        match *self {
            EngineEvent::Submitted { at, .. }
            | EngineEvent::Admitted { at, .. }
            | EngineEvent::Preempted { at, .. }
            | EngineEvent::Completed { at, .. }
            | EngineEvent::Migrated { at, .. }
            | EngineEvent::Abandoned { at, .. }
            | EngineEvent::RoleChanged { at, .. } => at,
            EngineEvent::StepCompleted { ended, .. } => ended,
        }
    }

    /// Stable lowercase event name (used by exporters).
    pub fn name(&self) -> &'static str {
        match self {
            EngineEvent::Submitted { .. } => "submit",
            EngineEvent::Admitted { .. } => "admit",
            EngineEvent::StepCompleted { .. } => "step",
            EngineEvent::Preempted { .. } => "preempt",
            EngineEvent::Completed { .. } => "complete",
            EngineEvent::Migrated { .. } => "migrate",
            EngineEvent::Abandoned { .. } => "abandon",
            EngineEvent::RoleChanged { .. } => "role",
        }
    }
}

/// A sink for [`EngineEvent`]s, attached with
/// [`Engine::set_observer`](crate::Engine::set_observer).
///
/// Implementations must not assume anything about inter-event wall-clock
/// spacing; they receive events synchronously from inside the engine's
/// submit/step methods.
///
/// The `Send` bound exists so an [`Engine`](crate::Engine) carrying an
/// observer can migrate to a worker thread in the parallel fleet drivers.
/// Shared-state observers should hold `Arc<Mutex<..>>` rather than
/// `Rc<RefCell<..>>`.
pub trait EngineObserver: std::fmt::Debug + Send {
    /// Called for every engine event, in emission order.
    fn on_event(&mut self, event: &EngineEvent<'_>);
}

/// Broadcasts every event to several observers, in insertion order.
///
/// The engine holds a single observer slot; wrap independent sinks (say,
/// an in-memory span recorder plus a streaming JSONL writer) in a fanout
/// to attach them together.
#[derive(Debug, Default)]
pub struct FanoutObserver {
    observers: Vec<Box<dyn EngineObserver>>,
}

impl FanoutObserver {
    /// Creates an empty fanout.
    pub fn new() -> Self {
        FanoutObserver::default()
    }

    /// Adds `observer` to the broadcast list, builder-style.
    pub fn with(mut self, observer: Box<dyn EngineObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Adds `observer` to the broadcast list.
    pub fn push(&mut self, observer: Box<dyn EngineObserver>) {
        self.observers.push(observer);
    }
}

impl EngineObserver for FanoutObserver {
    fn on_event(&mut self, event: &EngineEvent<'_>) {
        for observer in &mut self.observers {
            observer.on_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim_simkit::SimDuration;

    #[test]
    fn step_kind_names_are_stable() {
        assert_eq!(StepKind::Prefill.name(), "prefill");
        assert_eq!(StepKind::Decode.to_string(), "decode");
        assert_eq!(StepKind::Mixed.name(), "mixed");
    }

    #[test]
    fn event_reports_its_time_and_name() {
        let e = EngineEvent::Submitted {
            id: RequestId(3),
            at: SimTime::from_micros(42),
            prompt_tokens: 10,
            out_tokens: 4,
            priority: 0,
        };
        assert_eq!(e.at(), SimTime::from_micros(42));
        assert_eq!(e.name(), "submit");

        let c = LlmCompletion {
            id: RequestId(3),
            arrived: SimTime::ZERO,
            started: SimTime::ZERO,
            finished: SimTime::from_micros(99),
            prompt_tokens: 10,
            cached_tokens: 0,
            output_tokens: 4,
            prefill_time: SimDuration::ZERO,
            decode_time: SimDuration::ZERO,
            flops: 0.0,
            preemptions: 0,
        };
        let e = EngineEvent::Completed {
            at: SimTime::from_micros(99),
            completion: &c,
        };
        assert_eq!(e.at(), SimTime::from_micros(99));
        assert_eq!(e.name(), "complete");

        let e = EngineEvent::StepCompleted {
            kind: StepKind::Decode,
            started: SimTime::from_micros(10),
            ended: SimTime::from_micros(25),
            flops: 1.0,
            prefill: &[],
            decode: &[RequestId(3)],
            kv_used_blocks: 5,
            kv_total_blocks: 100,
            running: 1,
            waiting: 0,
        };
        assert_eq!(e.at(), SimTime::from_micros(25));
        assert_eq!(e.name(), "step");

        let e = EngineEvent::Migrated {
            id: RequestId(3),
            at: SimTime::from_micros(50),
            generated: 1,
            kv_blocks: 9,
            kv_bytes: 9 << 21,
        };
        assert_eq!(e.at(), SimTime::from_micros(50));
        assert_eq!(e.name(), "migrate");

        let e = EngineEvent::Abandoned {
            id: RequestId(3),
            at: SimTime::from_micros(60),
            generated: 2,
        };
        assert_eq!(e.at(), SimTime::from_micros(60));
        assert_eq!(e.name(), "abandon");

        let e = EngineEvent::RoleChanged {
            at: SimTime::from_micros(77),
            from: EngineRole::Prefill,
            to: EngineRole::Decode,
        };
        assert_eq!(e.at(), SimTime::from_micros(77));
        assert_eq!(e.name(), "role");
    }

    #[test]
    fn fanout_broadcasts_in_insertion_order() {
        use std::sync::{Arc, Mutex};

        #[derive(Debug)]
        struct Tagger(u8, Arc<Mutex<Vec<u8>>>);
        impl EngineObserver for Tagger {
            fn on_event(&mut self, _: &EngineEvent<'_>) {
                self.1.lock().unwrap().push(self.0);
            }
        }

        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut fanout = FanoutObserver::new()
            .with(Box::new(Tagger(1, seen.clone())))
            .with(Box::new(Tagger(2, seen.clone())));
        fanout.on_event(&EngineEvent::Preempted {
            id: RequestId(0),
            at: SimTime::ZERO,
            generated: 0,
        });
        fanout.on_event(&EngineEvent::Preempted {
            id: RequestId(0),
            at: SimTime::ZERO,
            generated: 0,
        });
        assert_eq!(*seen.lock().unwrap(), vec![1, 2, 1, 2]);
    }
}
