//! Engine-level accounting: GPU phase breakdown, energy, steps.

use agentsim_gpu::{EnergyMeter, EnergyModel, Phase};
use agentsim_simkit::{SimDuration, SimTime};

/// Aggregate engine statistics over a run.
///
/// Busy time is recorded per phase as steps complete; idle time is derived
/// at reporting time as `window - busy`, matching how the paper computes
/// GPU utilization (its Fig. 6: fraction of time kernels are resident).
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    energy_model: EnergyModel,
    /// Wall time spent in prefill steps.
    pub prefill_busy: SimDuration,
    /// Wall time spent in decode steps.
    pub decode_busy: SimDuration,
    /// Wall time spent in mixed (chunked-prefill) steps.
    pub mixed_busy: SimDuration,
    /// Number of prefill steps executed.
    pub prefill_steps: u64,
    /// Number of decode steps executed.
    pub decode_steps: u64,
    /// Number of mixed steps executed.
    pub mixed_steps: u64,
    /// Total FLOPs executed.
    pub flops: f64,
    /// Sequences preempted for lack of KV blocks.
    pub preemptions: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests released at first token for decode elsewhere (prefill
    /// role only).
    pub migrated: u64,
    /// Mid-life requests admitted with imported KV (decode role).
    pub imported: u64,
    /// Requests cancelled server-side before finishing (client gave up).
    pub abandoned: u64,
    /// Prefill service burned on requests that were later abandoned.
    pub wasted_prefill: SimDuration,
    /// Decode service burned on requests that were later abandoned.
    pub wasted_decode: SimDuration,
}

impl EngineMetrics {
    /// Creates empty metrics for a replica described by `energy_model`.
    pub fn new(energy_model: EnergyModel) -> Self {
        EngineMetrics {
            energy_model,
            prefill_busy: SimDuration::ZERO,
            decode_busy: SimDuration::ZERO,
            mixed_busy: SimDuration::ZERO,
            prefill_steps: 0,
            decode_steps: 0,
            mixed_steps: 0,
            flops: 0.0,
            preemptions: 0,
            completed: 0,
            migrated: 0,
            imported: 0,
            abandoned: 0,
            wasted_prefill: SimDuration::ZERO,
            wasted_decode: SimDuration::ZERO,
        }
    }

    /// Total service burned on abandoned requests (prefill + decode).
    pub fn wasted(&self) -> SimDuration {
        self.wasted_prefill + self.wasted_decode
    }

    /// Total busy time (any phase).
    pub fn busy(&self) -> SimDuration {
        self.prefill_busy + self.decode_busy + self.mixed_busy
    }

    /// Idle time within a window ending at `end` (assumes the engine
    /// existed from `t = 0`).
    pub fn idle_within(&self, end: SimTime) -> SimDuration {
        SimDuration::from_micros(end.as_micros()).saturating_sub(self.busy())
    }

    /// GPU utilization over a window: busy / window.
    pub fn utilization(&self, end: SimTime) -> f64 {
        let w = end.as_secs_f64();
        if w <= 0.0 {
            0.0
        } else {
            (self.busy().as_secs_f64() / w).min(1.0)
        }
    }

    /// Energy consumed over a window ending at `end`: busy phases at their
    /// phase power plus the remainder at idle power. Mixed steps are
    /// charged at prefill power (compute-saturated).
    pub fn energy_within(&self, end: SimTime) -> EnergyMeter {
        let mut meter = EnergyMeter::new(self.energy_model.clone());
        meter.add(Phase::Prefill, self.prefill_busy + self.mixed_busy);
        meter.add(Phase::Decode, self.decode_busy);
        meter.add(Phase::Idle, self.idle_within(end));
        meter
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy_model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim_gpu::ClusterSpec;

    fn metrics() -> EngineMetrics {
        EngineMetrics::new(EnergyModel::new(&ClusterSpec::a100_llama8b()))
    }

    #[test]
    fn busy_and_idle_partition_window() {
        let mut m = metrics();
        m.prefill_busy = SimDuration::from_secs(1);
        m.decode_busy = SimDuration::from_secs(3);
        let end = SimTime::from_secs_f64(10.0);
        assert_eq!(m.busy(), SimDuration::from_secs(4));
        assert_eq!(m.idle_within(end), SimDuration::from_secs(6));
        assert!((m.utilization(end) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn utilization_handles_zero_window() {
        assert_eq!(metrics().utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn energy_accounts_all_phases() {
        let mut m = metrics();
        m.prefill_busy = SimDuration::from_secs(1);
        m.decode_busy = SimDuration::from_secs(2);
        let meter = m.energy_within(SimTime::from_secs_f64(5.0));
        assert_eq!(meter.duration(Phase::Prefill), SimDuration::from_secs(1));
        assert_eq!(meter.duration(Phase::Decode), SimDuration::from_secs(2));
        assert_eq!(meter.duration(Phase::Idle), SimDuration::from_secs(2));
        assert!(meter.watt_hours() > 0.0);
    }

    #[test]
    fn busy_beyond_window_clamps_utilization() {
        let mut m = metrics();
        m.decode_busy = SimDuration::from_secs(10);
        assert_eq!(m.utilization(SimTime::from_secs_f64(5.0)), 1.0);
        assert_eq!(
            m.idle_within(SimTime::from_secs_f64(5.0)),
            SimDuration::ZERO
        );
    }
}
