//! Request identities, completion records, and migration records.

use std::fmt;

use agentsim_kvcache::TokenBuf;
use agentsim_simkit::{SimDuration, SimTime};

/// Engine-assigned request identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Everything the engine knows about a finished request.
#[derive(Debug, Clone, PartialEq)]
pub struct LlmCompletion {
    /// The request this record describes.
    pub id: RequestId,
    /// When the request entered the engine queue.
    pub arrived: SimTime,
    /// When it was first scheduled (admission into a prefill step).
    pub started: SimTime,
    /// When its last token was produced.
    pub finished: SimTime,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Prompt tokens served from the prefix cache (no prefill compute).
    pub cached_tokens: u32,
    /// Tokens generated.
    pub output_tokens: u32,
    /// Wall-clock time spent in prefill steps this request participated in.
    pub prefill_time: SimDuration,
    /// Wall-clock time spent in decode steps this request participated in.
    pub decode_time: SimDuration,
    /// FLOPs attributed to this request (its share of each step).
    pub flops: f64,
    /// Times the request was preempted and recomputed.
    pub preemptions: u32,
}

impl LlmCompletion {
    /// Time from arrival to first scheduling.
    pub fn queue_time(&self) -> SimDuration {
        self.started.saturating_since(self.arrived)
    }

    /// Time from arrival to completion.
    pub fn e2e_latency(&self) -> SimDuration {
        self.finished.saturating_since(self.arrived)
    }

    /// Fraction of the prompt served from cache, in `[0, 1]`.
    pub fn cache_hit_fraction(&self) -> f64 {
        if self.prompt_tokens == 0 {
            0.0
        } else {
            self.cached_tokens as f64 / self.prompt_tokens as f64
        }
    }
}

/// A request released by a prefill-role engine at its first token,
/// carrying everything a decode pool needs to continue it via
/// [`Engine::submit_prefilled`](crate::Engine::submit_prefilled).
///
/// Produced by [`Engine::take_migrations`](crate::Engine::take_migrations)
/// on engines configured with
/// [`EngineRole::Prefill`](crate::EngineRole::Prefill). The KV footprint
/// (`kv_blocks` / `kv_bytes`) sizes the interconnect transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct MigratedRequest {
    /// The request's id on the *prefill* engine. Resubmission on a decode
    /// engine assigns a fresh id; the driver correlates the two.
    pub id: RequestId,
    /// When the request entered the prefill engine's queue.
    pub arrived: SimTime,
    /// When it was first scheduled on the prefill engine.
    pub started: SimTime,
    /// When the prefill engine released it (first token produced).
    pub released: SimTime,
    /// Original prompt length in tokens.
    pub prompt_tokens: u32,
    /// Prompt tokens served from the prefill-side prefix cache.
    pub cached_tokens: u32,
    /// Scheduling priority the request carried.
    pub priority: u32,
    /// Full context at release: prompt plus the generated first token.
    /// This is the KV content that must reach the decode pool.
    pub ctx: TokenBuf,
    /// Tokens generated before release (always 1).
    pub generated: u32,
    /// Total requested output tokens (including the one already produced).
    pub target_out: u32,
    /// Deterministic seed that continues the same token stream.
    pub gen_seed: u64,
    /// Wall time the request spent in prefill steps.
    pub prefill_time: SimDuration,
    /// FLOPs attributed on the prefill engine.
    pub flops: f64,
    /// Preemptions suffered on the prefill engine.
    pub preemptions: u32,
    /// KV blocks occupied at release.
    pub kv_blocks: u32,
    /// KV bytes to transfer (block-granular, like the occupancy).
    pub kv_bytes: u64,
}

impl MigratedRequest {
    /// Time from arrival to first scheduling on the prefill engine.
    pub fn queue_time(&self) -> SimDuration {
        self.started.saturating_since(self.arrived)
    }

    /// Output tokens still to generate on the decode pool.
    pub fn remaining_tokens(&self) -> u32 {
        self.target_out - self.generated
    }

    /// When layer-chunk `chunk` of `chunks` became shippable, relative to
    /// a migration committed at `now`.
    ///
    /// Prefill fills KV layer by layer: by the time the last layer (and
    /// the release) lands at `now`, layer-chunk `k` of `n` has already
    /// been complete for `prefill_time * (n - 1 - k) / n` — the model's
    /// per-layer progress, reconstructed from the wall time the request
    /// spent in prefill steps. The last chunk is always ready exactly at
    /// `now`, and with `chunks == 1` this *is* `now`, which is what keeps
    /// the single-chunk path bit-identical to the serial one.
    pub fn chunk_ready(&self, now: SimTime, chunk: u32, chunks: u32) -> SimTime {
        debug_assert!(chunk < chunks, "chunk {chunk} out of {chunks}");
        let lead = self.prefill_time * u64::from(chunks - 1 - chunk) / u64::from(chunks);
        SimTime::from_micros(now.as_micros().saturating_sub(lead.as_micros()))
    }
}

impl fmt::Display for LlmCompletion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}+{} tokens ({} cached) in {} (queue {}, prefill {}, decode {})",
            self.id,
            self.prompt_tokens,
            self.output_tokens,
            self.cached_tokens,
            self.e2e_latency(),
            self.queue_time(),
            self.prefill_time,
            self.decode_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LlmCompletion {
        LlmCompletion {
            id: RequestId(1),
            arrived: SimTime::from_micros(100),
            started: SimTime::from_micros(300),
            finished: SimTime::from_micros(1_300),
            prompt_tokens: 100,
            cached_tokens: 40,
            output_tokens: 20,
            prefill_time: SimDuration::from_micros(200),
            decode_time: SimDuration::from_micros(800),
            flops: 1e12,
            preemptions: 0,
        }
    }

    #[test]
    fn derived_times() {
        let c = sample();
        assert_eq!(c.queue_time(), SimDuration::from_micros(200));
        assert_eq!(c.e2e_latency(), SimDuration::from_micros(1_200));
        assert!((c.cache_hit_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn display_includes_ids_and_tokens() {
        let s = sample().to_string();
        assert!(s.contains("req#1"));
        assert!(s.contains("100+20"));
    }
}
