//! Request identities and completion records.

use std::fmt;

use agentsim_simkit::{SimDuration, SimTime};

/// Engine-assigned request identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Everything the engine knows about a finished request.
#[derive(Debug, Clone, PartialEq)]
pub struct LlmCompletion {
    /// The request this record describes.
    pub id: RequestId,
    /// When the request entered the engine queue.
    pub arrived: SimTime,
    /// When it was first scheduled (admission into a prefill step).
    pub started: SimTime,
    /// When its last token was produced.
    pub finished: SimTime,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Prompt tokens served from the prefix cache (no prefill compute).
    pub cached_tokens: u32,
    /// Tokens generated.
    pub output_tokens: u32,
    /// Wall-clock time spent in prefill steps this request participated in.
    pub prefill_time: SimDuration,
    /// Wall-clock time spent in decode steps this request participated in.
    pub decode_time: SimDuration,
    /// FLOPs attributed to this request (its share of each step).
    pub flops: f64,
    /// Times the request was preempted and recomputed.
    pub preemptions: u32,
}

impl LlmCompletion {
    /// Time from arrival to first scheduling.
    pub fn queue_time(&self) -> SimDuration {
        self.started.saturating_since(self.arrived)
    }

    /// Time from arrival to completion.
    pub fn e2e_latency(&self) -> SimDuration {
        self.finished.saturating_since(self.arrived)
    }

    /// Fraction of the prompt served from cache, in `[0, 1]`.
    pub fn cache_hit_fraction(&self) -> f64 {
        if self.prompt_tokens == 0 {
            0.0
        } else {
            self.cached_tokens as f64 / self.prompt_tokens as f64
        }
    }
}

impl fmt::Display for LlmCompletion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}+{} tokens ({} cached) in {} (queue {}, prefill {}, decode {})",
            self.id,
            self.prompt_tokens,
            self.output_tokens,
            self.cached_tokens,
            self.e2e_latency(),
            self.queue_time(),
            self.prefill_time,
            self.decode_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LlmCompletion {
        LlmCompletion {
            id: RequestId(1),
            arrived: SimTime::from_micros(100),
            started: SimTime::from_micros(300),
            finished: SimTime::from_micros(1_300),
            prompt_tokens: 100,
            cached_tokens: 40,
            output_tokens: 20,
            prefill_time: SimDuration::from_micros(200),
            decode_time: SimDuration::from_micros(800),
            flops: 1e12,
            preemptions: 0,
        }
    }

    #[test]
    fn derived_times() {
        let c = sample();
        assert_eq!(c.queue_time(), SimDuration::from_micros(200));
        assert_eq!(c.e2e_latency(), SimDuration::from_micros(1_200));
        assert!((c.cache_hit_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn display_includes_ids_and_tokens() {
        let s = sample().to_string();
        assert!(s.contains("req#1"));
        assert!(s.contains("100+20"));
    }
}
