//! The step-loop serving engine.

use std::collections::{HashMap, VecDeque};

use agentsim_gpu::perf::PrefillItem;
use agentsim_gpu::{EnergyModel, Link, PerfModel};
use agentsim_kvcache::tokens::generated_token;
use agentsim_kvcache::{
    KvBlockManager, KvConfig, SeqHandle, Tier, TierDir, TierTransfer, TokenBuf,
};
use agentsim_simkit::{SimDuration, SimTime};

use crate::config::{EngineConfig, EngineRole, SchedulerPolicy};
use crate::metrics::EngineMetrics;
use crate::observer::{EngineEvent, EngineObserver, StepKind};
use crate::request::{LlmCompletion, MigratedRequest, RequestId};

/// A queued (not yet scheduled) request.
#[derive(Debug)]
struct Waiting {
    id: RequestId,
    priority: u32,
    prompt: TokenBuf,
    target_out: u32,
    generated: u32,
    gen_seed: u64,
    arrived: SimTime,
    orig_prompt_tokens: u32,
    /// KV content already exists elsewhere: admit via KV import, skipping
    /// prefill entirely (disaggregated decode pools).
    imported: bool,
    // Carried across preemptions:
    started: Option<SimTime>,
    prefill_time: SimDuration,
    decode_time: SimDuration,
    flops: f64,
    preemptions: u32,
}

/// A sequence in the running (decode) set, or mid-prefill when chunked.
#[derive(Debug)]
struct Running {
    id: RequestId,
    priority: u32,
    ctx: TokenBuf,
    seq: SeqHandle,
    target_out: u32,
    generated: u32,
    gen_seed: u64,
    arrived: SimTime,
    started: SimTime,
    orig_prompt_tokens: u32,
    prompt_tokens: u32,
    /// Uncached prompt tokens still to prefill (chunked mode only).
    prefill_remaining: u32,
    imported: bool,
    prefill_time: SimDuration,
    decode_time: SimDuration,
    flops: f64,
    cached_tokens: u32,
    preemptions: u32,
}

#[derive(Debug)]
struct StepInProgress {
    kind: StepKind,
    started: SimTime,
    ends: SimTime,
    duration: SimDuration,
    flops: f64,
    /// Ids participating as prefill (chunk sizes), for attribution.
    prefill_chunks: Vec<(RequestId, u32)>,
}

/// The discrete-event LLM serving engine. See the [crate docs](crate) for
/// the driving protocol and an example.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    perf: PerfModel,
    kv: KvBlockManager,
    waiting: VecDeque<Waiting>,
    running: Vec<Running>,
    step: Option<StepInProgress>,
    next_id: u64,
    metrics: EngineMetrics,
    observer: Option<Box<dyn EngineObserver>>,
    /// Requests released at first token (prefill role), awaiting pickup
    /// via [`Engine::take_migrations`].
    migrations: Vec<MigratedRequest>,
    /// Mid role-flip: refuse new submissions while in-flight work drains
    /// (see [`Engine::begin_drain`] / [`Engine::finish_drain`]).
    draining: bool,
    /// Requests marked for cancellation, purged at the next step boundary
    /// (see [`Engine::cancel`]).
    cancelled: Vec<RequestId>,
    /// End time of the most recently completed step; cancellation purges
    /// are stamped no earlier than this, so their [`EngineEvent::Abandoned`]
    /// timestamps stay monotone with step events.
    last_step_end: SimTime,
    /// HBM↔host offload path; present iff `config.offload` is.
    host_link: Option<Link>,
    /// Host↔NVMe offload path; present iff `config.offload` is.
    nvme_link: Option<Link>,
    /// Scratch buffer for draining tier-transfer events from the manager.
    tier_events: Vec<TierTransfer>,
}

impl Engine {
    /// Builds an engine from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails.
    pub fn new(config: EngineConfig) -> Self {
        config.validate().expect("invalid engine config");
        let mut kv = KvBlockManager::new(KvConfig {
            num_blocks: config.num_kv_blocks(),
            block_size: config.block_size,
            prefix_caching: config.prefix_caching,
        });
        let (host_link, nvme_link) = match &config.offload {
            Some(off) => {
                kv.enable_offload(off.spec());
                (
                    Some(Link::new(off.host_link.clone())),
                    Some(Link::new(off.nvme_link.clone())),
                )
            }
            None => (None, None),
        };
        let energy = EnergyModel::new(&config.cluster);
        Engine {
            perf: PerfModel::new(config.cluster.clone()),
            kv,
            waiting: VecDeque::new(),
            running: Vec::new(),
            step: None,
            next_id: 0,
            metrics: EngineMetrics::new(energy),
            observer: None,
            migrations: Vec::new(),
            draining: false,
            cancelled: Vec::new(),
            last_step_end: SimTime::ZERO,
            host_link,
            nvme_link,
            tier_events: Vec::new(),
            config,
        }
    }

    /// Attaches an observer that receives every [`EngineEvent`]. Replaces
    /// any previous observer. With no observer attached, event
    /// construction is skipped entirely (zero overhead).
    pub fn set_observer(&mut self, observer: Box<dyn EngineObserver>) {
        self.observer = Some(observer);
    }

    /// Detaches and returns the current observer, if any.
    pub fn clear_observer(&mut self) -> Option<Box<dyn EngineObserver>> {
        self.observer.take()
    }

    /// Whether an observer is attached.
    pub fn has_observer(&self) -> bool {
        self.observer.is_some()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The KV block manager (for occupancy and hit-rate statistics).
    pub fn kv(&self) -> &KvBlockManager {
        &self.kv
    }

    /// The HBM↔host offload link, if KV offload is configured.
    pub fn host_link(&self) -> Option<&Link> {
        self.host_link.as_ref()
    }

    /// The host↔NVMe offload link, if KV offload is configured.
    pub fn nvme_link(&self) -> Option<&Link> {
        self.nvme_link.as_ref()
    }

    /// Tells the offload hierarchy when the blocks holding `hashes` are
    /// predicted to be needed next (`at`), e.g. when the owning session's
    /// tool call returns or its user finishes thinking. A no-op unless the
    /// engine runs the invocation-distance eviction policy. `now` is only
    /// used to discard predictions that are already in the past.
    pub fn hint_next_use(&mut self, hashes: &[u64], now: SimTime, at: SimTime) {
        self.kv.hint_next_use(hashes, now, at);
    }

    /// Engine-level metrics accumulated so far.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// The roofline model in use.
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// Requests waiting for admission.
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Sequences currently running (prefilling or decoding).
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Whether any request is queued, running, or mid-step.
    pub fn has_work(&self) -> bool {
        !self.waiting.is_empty() || !self.running.is_empty() || self.step.is_some()
    }

    // ---- role flips (pool autoscaling) ----------------------------------

    /// Starts draining for a role flip: from now on the engine refuses
    /// fresh submissions ([`Engine::submit`] panics, and the driver must
    /// route around it via [`Engine::admits_new_work`]) while in-flight
    /// work runs to completion. Committed inbound migrations are still
    /// accepted via [`Engine::submit_prefilled`] — KV already in flight on
    /// the interconnect must land. Idempotent.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// Whether the engine is mid-drain for a role flip.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Whether the engine accepts fresh submissions (not draining).
    pub fn admits_new_work(&self) -> bool {
        !self.draining
    }

    /// Completes a drain: the engine flips to `role` and admits new work
    /// again. Emits [`EngineEvent::RoleChanged`] so observers can draw
    /// role timelines.
    ///
    /// # Panics
    ///
    /// Panics if the engine is not draining, still has queued/running
    /// work, or holds untaken migrations — a flip while requests are live
    /// would strand them with the wrong role's scheduling.
    pub fn finish_drain(&mut self, now: SimTime, role: EngineRole) {
        assert!(self.draining, "finish_drain without begin_drain");
        assert!(!self.has_work(), "cannot flip roles with work in flight");
        assert!(
            self.migrations.is_empty(),
            "cannot flip roles with untaken migrations"
        );
        let from = self.config.role;
        self.config.role = role;
        self.draining = false;
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_event(&EngineEvent::RoleChanged {
                at: now,
                from,
                to: role,
            });
        }
    }

    /// Enqueues a request: generate `out_tokens` tokens after `prompt`.
    ///
    /// `gen_seed` identifies the output stream so that agents replaying
    /// this output into a later prompt produce identical token ids
    /// (prefix-cache hits across iterative calls).
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty, `out_tokens` is zero, or the total
    /// sequence exceeds the model's context window.
    pub fn submit(
        &mut self,
        now: SimTime,
        prompt: TokenBuf,
        out_tokens: u32,
        gen_seed: u64,
    ) -> RequestId {
        self.submit_with_priority(now, prompt, out_tokens, gen_seed, 0)
    }

    /// Like [`Engine::submit`], with an explicit scheduling priority
    /// (higher is served first under
    /// [`SchedulerPolicy::DeepestFirst`]; ignored under FCFS).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Engine::submit`].
    pub fn submit_with_priority(
        &mut self,
        now: SimTime,
        prompt: TokenBuf,
        out_tokens: u32,
        gen_seed: u64,
        priority: u32,
    ) -> RequestId {
        assert!(!self.draining, "draining engine refuses new submissions");
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        assert!(out_tokens > 0, "out_tokens must be at least 1");
        let total = prompt.len() + out_tokens as usize;
        assert!(
            total <= self.config.cluster.model.max_context as usize,
            "sequence of {total} tokens exceeds the {}-token context window",
            self.config.cluster.model.max_context
        );
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let prompt_tokens = prompt.len() as u32;
        self.waiting.push_back(Waiting {
            id,
            priority,
            orig_prompt_tokens: prompt_tokens,
            prompt,
            target_out: out_tokens,
            generated: 0,
            gen_seed,
            arrived: now,
            imported: false,
            started: None,
            prefill_time: SimDuration::ZERO,
            decode_time: SimDuration::ZERO,
            flops: 0.0,
            preemptions: 0,
        });
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_event(&EngineEvent::Submitted {
                id,
                at: now,
                prompt_tokens,
                out_tokens,
                priority,
            });
        }
        id
    }

    /// Enqueues a mid-life request whose KV content was prefilled elsewhere
    /// and transferred in (disaggregated decode pools): `migrated.ctx` is
    /// the full context (prompt + first token), admitted via KV *import* —
    /// no prefill compute happens on this engine, and the request joins the
    /// decode set directly.
    ///
    /// Returns the fresh id assigned on this engine (the id inside
    /// `migrated` belongs to the prefill engine).
    ///
    /// # Panics
    ///
    /// Panics if the context is empty, no output tokens remain, or the
    /// total sequence exceeds the model's context window.
    pub fn submit_prefilled(&mut self, now: SimTime, migrated: &MigratedRequest) -> RequestId {
        assert!(
            !migrated.ctx.is_empty(),
            "migrated context must be non-empty"
        );
        assert!(
            migrated.remaining_tokens() > 0,
            "migrated request has no output tokens left to decode"
        );
        let total = migrated.ctx.len() + migrated.remaining_tokens() as usize;
        assert!(
            total <= self.config.cluster.model.max_context as usize,
            "sequence of {total} tokens exceeds the {}-token context window",
            self.config.cluster.model.max_context
        );
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let prompt_tokens = migrated.ctx.len() as u32;
        self.waiting.push_back(Waiting {
            id,
            priority: migrated.priority,
            orig_prompt_tokens: migrated.prompt_tokens,
            prompt: migrated.ctx.clone(),
            target_out: migrated.target_out,
            generated: migrated.generated,
            gen_seed: migrated.gen_seed,
            arrived: now,
            imported: true,
            started: None,
            prefill_time: SimDuration::ZERO,
            decode_time: SimDuration::ZERO,
            flops: 0.0,
            preemptions: 0,
        });
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_event(&EngineEvent::Submitted {
                id,
                at: now,
                prompt_tokens,
                out_tokens: migrated.target_out,
                priority: migrated.priority,
            });
        }
        id
    }

    /// Drains the requests this (prefill-role) engine released at their
    /// first token since the last call. The driver transfers their KV and
    /// resubmits them on a decode engine via [`Engine::submit_prefilled`].
    pub fn take_migrations(&mut self) -> Vec<MigratedRequest> {
        std::mem::take(&mut self.migrations)
    }

    /// Like [`take_migrations`](Self::take_migrations), but appends into a
    /// caller-provided buffer so hot loops can reuse one allocation across
    /// steps.
    pub fn take_migrations_into(&mut self, out: &mut Vec<MigratedRequest>) {
        out.append(&mut self.migrations);
    }

    /// If no step is in flight and there is work, forms the next step and
    /// returns the simulated time at which it completes. The caller must
    /// invoke [`Engine::complete_step`] exactly at that time.
    ///
    /// Returns `None` if a step is already in flight or there is nothing
    /// runnable (e.g. all queued requests are blocked on KV memory held by
    /// nothing — which panics, since that can never resolve).
    ///
    /// # Panics
    ///
    /// Panics if the pool cannot hold the head request even when idle and
    /// fully evicted (the request can never run).
    pub fn start_step_if_idle(&mut self, now: SimTime) -> Option<SimTime> {
        if self.step.is_some() {
            return None;
        }
        let step = if self.config.chunked_prefill {
            self.form_mixed_step(now)
        } else {
            self.form_classic_step(now)
        };
        if step.is_none() && self.running.is_empty() && !self.waiting.is_empty() {
            let head = self.waiting.front().expect("non-empty");
            panic!(
                "KV pool ({} blocks) can never admit {} with a {}-token prompt",
                self.kv.config().num_blocks,
                head.id,
                head.prompt.len()
            );
        }
        self.step = step;
        self.step.as_ref().map(|s| s.ends)
    }

    /// Completes the in-flight step (which must end exactly `now`) and
    /// returns any finished requests.
    ///
    /// # Panics
    ///
    /// Panics if no step is in flight or `now` is not its end time.
    pub fn complete_step(&mut self, now: SimTime) -> Vec<LlmCompletion> {
        let mut done = Vec::new();
        self.complete_step_into(now, &mut done);
        done
    }

    /// Like [`complete_step`](Self::complete_step), but appends finished
    /// requests into a caller-provided buffer so hot loops can reuse one
    /// allocation across steps.
    pub fn complete_step_into(&mut self, now: SimTime, done: &mut Vec<LlmCompletion>) {
        let step = self.step.take().expect("no step in flight");
        assert_eq!(step.ends, now, "complete_step called at the wrong time");

        // Engine-level accounting.
        self.metrics.flops += step.flops;
        match step.kind {
            StepKind::Prefill => {
                self.metrics.prefill_busy += step.duration;
                self.metrics.prefill_steps += 1;
            }
            StepKind::Decode => {
                self.metrics.decode_busy += step.duration;
                self.metrics.decode_steps += 1;
            }
            StepKind::Mixed => {
                self.metrics.mixed_busy += step.duration;
                self.metrics.mixed_steps += 1;
            }
        }

        // Per-request attribution of step wall-time and prefill progress,
        // in one pass over the running set (ids are unique per step).
        let chunk_of: HashMap<RequestId, u32> = step.prefill_chunks.iter().copied().collect();
        for r in &mut self.running {
            if let Some(&chunk) = chunk_of.get(&r.id) {
                r.prefill_time += step.duration;
                r.prefill_remaining = r.prefill_remaining.saturating_sub(chunk);
            } else if step.kind != StepKind::Prefill && r.prefill_remaining == 0 {
                r.decode_time += step.duration;
            }
        }

        // Emit the step's batch composition and occupancy snapshot before
        // token production removes completions and preempts victims.
        if self.observer.is_some() {
            let decode: Vec<RequestId> = if step.kind == StepKind::Prefill {
                Vec::new()
            } else {
                self.running
                    .iter()
                    .filter(|r| r.prefill_remaining == 0 && !chunk_of.contains_key(&r.id))
                    .map(|r| r.id)
                    .collect()
            };
            let event = EngineEvent::StepCompleted {
                kind: step.kind,
                started: step.started,
                ended: now,
                flops: step.flops,
                prefill: &step.prefill_chunks,
                decode: &decode,
                kv_used_blocks: self.kv.used_blocks() as u64,
                kv_total_blocks: self.kv.config().num_blocks as u64,
                running: self.running.len() as u32,
                waiting: self.waiting.len() as u32,
            };
            self.observer
                .as_deref_mut()
                .expect("observer checked above")
                .on_event(&event);
        }

        let done_before = done.len();

        // Sequences that just finished prefill produce their first token;
        // decode participants produce one token each.
        let mut idx = 0;
        while idx < self.running.len() {
            let was_chunk = chunk_of.contains_key(&self.running[idx].id);
            let produces = if was_chunk {
                // Prefill participants emit their first token only once
                // the whole prompt has been processed.
                self.running[idx].prefill_remaining == 0
            } else {
                // Decode participants emit one token; sequences stalled
                // mid-prefill (chunked mode) or bystanders of a pure
                // prefill step do not advance.
                step.kind != StepKind::Prefill && self.running[idx].prefill_remaining == 0
            };
            if !produces {
                idx += 1;
                continue;
            }
            match self.produce_token(idx, now) {
                TokenOutcome::Completed(c) => {
                    if let Some(obs) = self.observer.as_deref_mut() {
                        obs.on_event(&EngineEvent::Completed {
                            at: now,
                            completion: &c,
                        });
                    }
                    done.push(c);
                    // produce_token removed the entry; do not advance idx.
                }
                TokenOutcome::Continues => idx += 1,
                TokenOutcome::SelfPreempted => {
                    // The producing sequence itself was preempted; entry
                    // removed, do not advance idx.
                }
                TokenOutcome::Migrated(m) => {
                    self.metrics.migrated += 1;
                    if let Some(obs) = self.observer.as_deref_mut() {
                        obs.on_event(&EngineEvent::Migrated {
                            id: m.id,
                            at: now,
                            generated: m.generated,
                            kv_blocks: m.kv_blocks,
                            kv_bytes: m.kv_bytes,
                        });
                    }
                    self.migrations.push(m);
                    // Entry removed; do not advance idx.
                }
            }
        }
        self.metrics.completed += (done.len() - done_before) as u64;
        // Token appends can evict cached blocks into the offload tiers;
        // those demotes are asynchronous, so the stall is always zero.
        let stall = self.charge_tier_transfers(now, SimDuration::ZERO);
        debug_assert!(stall.is_zero(), "promotion outside admission");
        self.last_step_end = now;
        if !self.cancelled.is_empty() {
            self.purge_cancelled(now);
        }
    }

    // ---- server-side cancellation ---------------------------------------

    /// Marks `id` for cancellation: its client gave up (deadline expiry),
    /// so the engine should stop burning prefill/decode work on it.
    ///
    /// The purge is lazy: a step already in flight runs to its end (the
    /// GPU cannot abort mid-kernel), and the request is removed — KV
    /// freed, [`EngineEvent::Abandoned`] emitted, service-so-far charged
    /// to [`EngineMetrics::wasted_prefill`]/[`wasted_decode`] — when that
    /// step completes. On an idle engine the purge happens immediately.
    /// Cancelling an id that already finished (its completion raced the
    /// deadline) is a no-op.
    ///
    /// [`EngineMetrics::wasted_prefill`]: EngineMetrics::wasted_prefill
    /// [`wasted_decode`]: EngineMetrics::wasted_decode
    pub fn cancel(&mut self, now: SimTime, id: RequestId) {
        self.cancelled.push(id);
        if self.step.is_none() {
            // Stamp at the last step boundary if the cancellation instant
            // precedes it (a worker thread processing commands ahead of
            // the coordinator clock); event times stay monotone.
            self.purge_cancelled(now.max(self.last_step_end));
        }
    }

    /// Removes every marked request still present, freeing KV and
    /// accounting the service it consumed as wasted work. Removal is
    /// order-preserving so queue positions of surviving requests — and
    /// therefore all future scheduling — are unaffected.
    fn purge_cancelled(&mut self, at: SimTime) {
        let ids = std::mem::take(&mut self.cancelled);
        for id in ids {
            let (generated, prefill, decode) =
                if let Some(pos) = self.waiting.iter().position(|w| w.id == id) {
                    let w = self.waiting.remove(pos).expect("position found");
                    (w.generated, w.prefill_time, w.decode_time)
                } else if let Some(pos) = self.running.iter().position(|r| r.id == id) {
                    let r = self.running.remove(pos);
                    self.kv.free(r.seq, at);
                    (r.generated, r.prefill_time, r.decode_time)
                } else {
                    // Already completed or migrated in its final step.
                    continue;
                };
            self.metrics.abandoned += 1;
            self.metrics.wasted_prefill += prefill;
            self.metrics.wasted_decode += decode;
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_event(&EngineEvent::Abandoned { id, at, generated });
            }
        }
    }

    /// Drains tier-transfer events the block manager recorded since the
    /// last call and schedules each on the matching offload link, FIFO.
    /// Returns how long the caller must stall for **promotions** to land
    /// in HBM (the prefill cannot attend over KV still in flight), which
    /// the admitting step folds into its duration — the offload TTFT toll.
    /// Demotions are asynchronous: they occupy the link (delaying later
    /// transfers queued behind them) but gate nothing.
    ///
    /// `overlap` is the wall time of the prefill compute the promotions
    /// gate. With [`OffloadConfig`]`::transfer_chunks` above 1 each
    /// promote ships as a train of layer chunks and chunk `k` of `n` is
    /// only needed once the prefill reaches layer `k` — at
    /// `now + overlap * k / n` — so the stall covers just the residual
    /// the wire fails to hide behind compute. With a single chunk (the
    /// default) `overlap` is ignored and the promote gates end to end,
    /// bit-identical to the serial pricing.
    fn charge_tier_transfers(&mut self, now: SimTime, overlap: SimDuration) -> SimDuration {
        if self.host_link.is_none() {
            return SimDuration::ZERO;
        }
        self.kv.take_tier_transfers(&mut self.tier_events);
        if self.tier_events.is_empty() {
            return SimDuration::ZERO;
        }
        let bytes_per_block = self.config.kv_bytes_per_block();
        let chunks = self
            .config
            .offload
            .as_ref()
            .map_or(1, |o| o.transfer_chunks);
        let mut stall = SimDuration::ZERO;
        for ev in self.tier_events.drain(..) {
            let link = match ev.tier {
                Tier::Host => self.host_link.as_mut(),
                Tier::Nvme => self.nvme_link.as_mut(),
            };
            let link = link.expect("offload links exist whenever the hierarchy does");
            let bytes = ev.blocks as u64 * bytes_per_block;
            if ev.dir == TierDir::Promote && chunks > 1 {
                let n = u64::from(chunks).min(bytes.max(1));
                let base = bytes / n;
                let rem = bytes % n;
                let plan: Vec<(SimTime, u64)> =
                    (0..n).map(|k| (now, base + u64::from(k < rem))).collect();
                let t = link.schedule_chunked(&plan);
                for (k, c) in t.chunks().iter().enumerate() {
                    let needed = now + overlap * (k as u64) / n;
                    stall = stall.max(c.end.saturating_since(needed));
                }
            } else {
                let t = link.schedule(now, bytes);
                if ev.dir == TierDir::Promote {
                    stall = stall.max(t.end.saturating_since(now));
                }
            }
        }
        stall
    }

    // ---- step formation -------------------------------------------------

    /// Classic vLLM scheduling: a step is either a prefill batch (admitted
    /// FCFS under the token budget) or one decode iteration.
    fn form_classic_step(&mut self, now: SimTime) -> Option<StepInProgress> {
        let admitted = self.admit(now, self.config.max_batch_tokens);
        if !admitted.is_empty() {
            let items: Vec<PrefillItem> = admitted
                .iter()
                .map(|&(_, new, cached)| PrefillItem {
                    new_tokens: new as u64,
                    cached_tokens: cached as u64,
                })
                .collect();
            let cost = self.perf.prefill(&items);
            // Price any KV the admission moved through the offload
            // tiers. Promotions gate this prefill; chunked promotion
            // pricing overlaps the fetch against the prefill compute,
            // which is why the step cost must be known before the toll
            // is charged.
            let stall = self.charge_tier_transfers(now, cost.duration);
            // Newly admitted requests carry their whole uncached prompt as
            // one "chunk"; they produce their first token at step end.
            // Imported admissions may interleave with them in `running`,
            // so attribute by id rather than by tail position.
            let chunk_of: HashMap<RequestId, (u32, u32)> = admitted
                .iter()
                .map(|&(id, new, cached)| (id, (new, cached)))
                .collect();
            for r in &mut self.running {
                if let Some(&(new, cached)) = chunk_of.get(&r.id) {
                    r.flops += self.perf.prefill_flops(new as u64, cached as u64);
                }
            }
            let duration = cost.duration + stall;
            return Some(StepInProgress {
                kind: StepKind::Prefill,
                started: now,
                ends: now + duration,
                duration,
                flops: cost.flops,
                prefill_chunks: admitted.iter().map(|&(id, new, _)| (id, new)).collect(),
            });
        }
        // No admission, so nothing can have promoted — but demotes the
        // scheduler queued still need their link time charged.
        let stall = self.charge_tier_transfers(now, SimDuration::ZERO);
        debug_assert!(stall.is_zero(), "promotion without a prefill admission");
        self.form_decode_step(now)
    }

    fn form_decode_step(&mut self, now: SimTime) -> Option<StepInProgress> {
        let decoding: Vec<u64> = self
            .running
            .iter()
            .filter(|r| r.prefill_remaining == 0)
            .map(|r| r.ctx.len() as u64)
            .collect();
        if decoding.is_empty() {
            return None;
        }
        let cost = self.perf.decode_step(&decoding);
        let model = &self.config.cluster.model;
        for r in &mut self.running {
            if r.prefill_remaining == 0 {
                r.flops += model.flops_per_token(r.ctx.len() as u64);
            }
        }
        Some(StepInProgress {
            kind: StepKind::Decode,
            started: now,
            ends: now + cost.duration,
            duration: cost.duration,
            flops: cost.flops,
            prefill_chunks: Vec::new(),
        })
    }

    /// Chunked-prefill scheduling: decodes run every step; leftover token
    /// budget advances the oldest in-progress prefill.
    fn form_mixed_step(&mut self, now: SimTime) -> Option<StepInProgress> {
        let decode_count = self
            .running
            .iter()
            .filter(|r| r.prefill_remaining == 0)
            .count() as u32;
        let budget = self.config.max_batch_tokens.saturating_sub(decode_count);

        // Admit new requests while budget remains (they join mid-prefill).
        if budget > 0 && self.running.iter().all(|r| r.prefill_remaining == 0) {
            let _ = self.admit(now, budget);
        }
        // Price KV moved through the offload tiers by that admission; a
        // promotion gates this whole mixed step (the new request's first
        // chunk runs in it). Chunked promotion overlap applies to
        // classic admission only — a mixed step's prefill chunk is too
        // small a window to pipeline a whole promote against, so the
        // serial end-to-end toll is the honest price here.
        let stall = self.charge_tier_transfers(now, SimDuration::ZERO);

        // The decode set is re-derived after admission: ordinary admits
        // enter mid-prefill (excluded), while imported admits arrive with
        // their KV complete and decode immediately.
        let decoding: Vec<u64> = self
            .running
            .iter()
            .filter(|r| r.prefill_remaining == 0)
            .map(|r| r.ctx.len() as u64)
            .collect();

        // Advance in-progress prefills, oldest first, one pass: record the
        // chunk, its perf-model item, and the owner's index together.
        let mut chunks: Vec<(RequestId, u32)> = Vec::new();
        let mut chunk_idx: Vec<usize> = Vec::new();
        let mut items: Vec<PrefillItem> = Vec::new();
        let mut remaining_budget = budget;
        for (i, r) in self.running.iter().enumerate() {
            if r.prefill_remaining > 0 && remaining_budget > 0 {
                let chunk = r.prefill_remaining.min(remaining_budget);
                remaining_budget -= chunk;
                let already = (r.prompt_tokens - r.cached_tokens - r.prefill_remaining) as u64;
                items.push(PrefillItem {
                    new_tokens: chunk as u64,
                    cached_tokens: r.cached_tokens as u64 + already,
                });
                chunks.push((r.id, chunk));
                chunk_idx.push(i);
            }
        }

        if chunks.is_empty() && decoding.is_empty() {
            debug_assert!(stall.is_zero(), "promotion without an admission");
            return None;
        }

        let cost = if chunks.is_empty() {
            self.perf.decode_step(&decoding)
        } else {
            self.perf.mixed_step(&items, &decoding)
        };
        let model = &self.config.cluster.model;
        for r in &mut self.running {
            if r.prefill_remaining == 0 {
                r.flops += model.flops_per_token(r.ctx.len() as u64);
            }
        }
        for (item, &i) in items.iter().zip(&chunk_idx) {
            self.running[i].flops += self.perf.prefill_flops(item.new_tokens, item.cached_tokens);
        }
        let kind = if chunks.is_empty() {
            StepKind::Decode
        } else {
            StepKind::Mixed
        };
        let duration = cost.duration + stall;
        Some(StepInProgress {
            kind,
            started: now,
            ends: now + duration,
            duration,
            flops: cost.flops,
            prefill_chunks: chunks,
        })
    }

    /// FCFS admission under a token budget. Returns `(id, uncached,
    /// cached)` for each admitted request *that needs prefill*; KV is
    /// allocated immediately. Imported requests (KV transferred in) are
    /// also admitted here — they consume a running slot and KV blocks but
    /// no token budget, join the decode set directly, and do not appear in
    /// the returned list.
    fn admit(&mut self, now: SimTime, budget_tokens: u32) -> Vec<(RequestId, u32, u32)> {
        // Under DeepestFirst, order the whole queue once (highest priority
        // first; FCFS within a level). The key is a total order (ids are
        // unique), so popping the sorted front yields exactly the sequence
        // of per-admission maxima the previous rescan-per-admission found.
        if self.config.scheduler == SchedulerPolicy::DeepestFirst && self.waiting.len() > 1 {
            self.waiting
                .make_contiguous()
                .sort_unstable_by_key(|w| (std::cmp::Reverse(w.priority), w.arrived, w.id));
        }
        let mut admitted = Vec::new();
        let mut budget_used: u32 = 0;
        while let Some(head) = self.waiting.front() {
            if self.running.len() >= self.config.max_running as usize {
                break;
            }
            if !self.kv.can_allocate(&head.prompt) {
                break; // FCFS head-of-line blocking on memory.
            }
            if head.imported {
                let seq = match self.kv.import(&head.prompt, now) {
                    Ok(seq) => seq,
                    Err(_) => break,
                };
                let w = self.waiting.pop_front().expect("non-empty");
                let cached = w.prompt.len() as u32;
                self.metrics.imported += 1;
                self.running.push(Running {
                    id: w.id,
                    priority: w.priority,
                    ctx: w.prompt,
                    seq,
                    target_out: w.target_out,
                    generated: w.generated,
                    gen_seed: w.gen_seed,
                    arrived: w.arrived,
                    started: w.started.unwrap_or(now),
                    orig_prompt_tokens: w.orig_prompt_tokens,
                    prompt_tokens: 0, // set below
                    prefill_remaining: 0,
                    imported: true,
                    prefill_time: w.prefill_time,
                    decode_time: w.decode_time,
                    flops: w.flops,
                    cached_tokens: cached,
                    preemptions: w.preemptions,
                });
                let r = self.running.last_mut().expect("just pushed");
                r.prompt_tokens = r.ctx.len() as u32;
                let id = r.id;
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.on_event(&EngineEvent::Admitted {
                        id,
                        at: now,
                        new_tokens: 0,
                        cached_tokens: cached,
                    });
                }
                continue;
            }
            let seq = match self.kv.allocate(&head.prompt, now) {
                Ok(seq) => seq,
                Err(_) => break,
            };
            let cached = self.kv.cached_tokens(&seq) as u32;
            let uncached = head.prompt.len() as u32 - cached;
            // Budget check: a request may exceed the budget only if it is
            // the sole occupant of the step (vLLM non-chunked behaviour).
            if !admitted.is_empty() && budget_used + uncached > budget_tokens {
                self.kv.free(seq, now);
                break;
            }
            budget_used = budget_used.saturating_add(uncached);
            let w = self.waiting.pop_front().expect("non-empty");
            admitted.push((w.id, uncached, cached));
            self.running.push(Running {
                id: w.id,
                priority: w.priority,
                ctx: w.prompt,
                seq,
                target_out: w.target_out,
                generated: w.generated,
                gen_seed: w.gen_seed,
                arrived: w.arrived,
                started: w.started.unwrap_or(now),
                orig_prompt_tokens: w.orig_prompt_tokens,
                prompt_tokens: 0, // set below
                prefill_remaining: uncached,
                imported: false,
                prefill_time: w.prefill_time,
                decode_time: w.decode_time,
                flops: w.flops,
                cached_tokens: cached,
                preemptions: w.preemptions,
            });
            let r = self.running.last_mut().expect("just pushed");
            r.prompt_tokens = r.ctx.len() as u32;
            if let Some(obs) = self.observer.as_deref_mut() {
                let &(id, new_tokens, cached_tokens) = admitted.last().expect("just admitted");
                obs.on_event(&EngineEvent::Admitted {
                    id,
                    at: now,
                    new_tokens,
                    cached_tokens,
                });
            }
            if budget_used >= budget_tokens {
                break;
            }
        }
        admitted
    }

    // ---- token production and preemption --------------------------------

    /// Produces one token for `running[idx]`, preempting the newest other
    /// sequence on KV exhaustion. Returns what happened to the entry.
    fn produce_token(&mut self, idx: usize, now: SimTime) -> TokenOutcome {
        loop {
            let r = &self.running[idx];
            let token = generated_token(r.gen_seed, r.generated as u64);
            match self.kv.append_token(r.seq, token, now) {
                Ok(()) => {
                    let r = &mut self.running[idx];
                    r.ctx.extend([token]);
                    r.generated += 1;
                    if r.generated >= r.target_out {
                        let r = self.running.swap_remove(idx);
                        self.kv.free(r.seq, now);
                        return TokenOutcome::Completed(LlmCompletion {
                            id: r.id,
                            arrived: r.arrived,
                            started: r.started,
                            finished: now,
                            prompt_tokens: r.orig_prompt_tokens,
                            cached_tokens: r.cached_tokens.min(r.orig_prompt_tokens),
                            output_tokens: r.generated,
                            prefill_time: r.prefill_time,
                            decode_time: r.decode_time,
                            flops: r.flops,
                            preemptions: r.preemptions,
                        });
                    }
                    if self.config.role == EngineRole::Prefill {
                        // Prefill pool: the first token ends this engine's
                        // involvement. Export the KV (footprint sizes the
                        // interconnect transfer) and release the request.
                        let r = self.running.swap_remove(idx);
                        let tokens = self.kv.export(r.seq, now);
                        let kv_blocks = self.kv.config().blocks_for(tokens) as u32;
                        let kv_bytes = kv_blocks as u64 * self.config.kv_bytes_per_block();
                        return TokenOutcome::Migrated(MigratedRequest {
                            id: r.id,
                            arrived: r.arrived,
                            started: r.started,
                            released: now,
                            prompt_tokens: r.orig_prompt_tokens,
                            cached_tokens: r.cached_tokens.min(r.orig_prompt_tokens),
                            priority: r.priority,
                            ctx: r.ctx,
                            generated: r.generated,
                            target_out: r.target_out,
                            gen_seed: r.gen_seed,
                            prefill_time: r.prefill_time,
                            flops: r.flops,
                            preemptions: r.preemptions,
                            kv_blocks,
                            kv_bytes,
                        });
                    }
                    return TokenOutcome::Continues;
                }
                Err(_) => {
                    // Preempt the newest sequence that is not this one.
                    let victim = self
                        .running
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != idx)
                        .max_by_key(|(_, r)| (r.started, r.id))
                        .map(|(i, _)| i);
                    match victim {
                        Some(v) => {
                            self.preempt(v, now);
                            if v < idx {
                                // swap_remove moved the tail into v; idx may
                                // have shifted if idx was the tail.
                                if idx == self.running.len() {
                                    return self.resume_after_self_move(v, now);
                                }
                            }
                            continue;
                        }
                        None => {
                            // Only this sequence remains and it cannot grow.
                            self.preempt(idx, now);
                            return TokenOutcome::SelfPreempted;
                        }
                    }
                }
            }
        }
    }

    /// After a `swap_remove` moved the producing sequence into slot `v`,
    /// continue producing from its new index.
    fn resume_after_self_move(&mut self, new_idx: usize, now: SimTime) -> TokenOutcome {
        self.produce_token(new_idx, now)
    }

    /// Preempts `running[idx]`: frees its KV (hashed blocks stay cached)
    /// and requeues it at the front with its context-so-far as the prompt
    /// (recompute-style preemption).
    fn preempt(&mut self, idx: usize, now: SimTime) {
        let r = self.running.swap_remove(idx);
        self.kv.free(r.seq, now);
        self.metrics.preemptions += 1;
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_event(&EngineEvent::Preempted {
                id: r.id,
                at: now,
                generated: r.generated,
            });
        }
        self.waiting.push_front(Waiting {
            id: r.id,
            priority: r.priority,
            prompt: r.ctx,
            target_out: r.target_out,
            generated: r.generated,
            gen_seed: r.gen_seed,
            arrived: r.arrived,
            orig_prompt_tokens: r.orig_prompt_tokens,
            // Imported KV is re-fetched on re-admission (still no local
            // prefill): decode pools never run prefill steps.
            imported: r.imported,
            started: Some(r.started),
            prefill_time: r.prefill_time,
            decode_time: r.decode_time,
            flops: r.flops,
            preemptions: r.preemptions + 1,
        });
    }
}

// The parallel fleet drivers move engines onto worker threads; this fails
// to compile if a non-`Send` field (e.g. an `Rc`) sneaks into `Engine`.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Engine>();
};

/// Result of producing one token for a running sequence.
#[derive(Debug)]
enum TokenOutcome {
    /// The request finished and was removed; here is its record.
    Completed(LlmCompletion),
    /// The sequence continues decoding.
    Continues,
    /// The producing sequence itself was preempted and requeued.
    SelfPreempted,
    /// A prefill-role engine released the request at its first token.
    Migrated(MigratedRequest),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineConfig, SchedulerPolicy};

    /// Drives the engine until it has no work, returning completions and
    /// the final simulated time.
    fn drain(engine: &mut Engine, mut now: SimTime) -> (Vec<LlmCompletion>, SimTime) {
        let mut done = Vec::new();
        while let Some(end) = engine.start_step_if_idle(now) {
            now = end;
            done.extend(engine.complete_step(now));
        }
        (done, now)
    }

    fn small_config() -> EngineConfig {
        EngineConfig::a100_llama8b()
    }

    #[test]
    fn deepest_first_admits_high_priority_requests_first() {
        // Keep the engine busy with a long prefill so three requests of
        // different priority queue up, then observe admission order.
        let mut e = Engine::new(small_config().with_scheduler(SchedulerPolicy::DeepestFirst));
        e.submit(SimTime::ZERO, TokenBuf::from_segment(0, 8000), 4, 0);
        let step_end = e.start_step_if_idle(SimTime::ZERO).expect("step starts");

        let t = SimTime::from_micros(1);
        let low = e.submit_with_priority(t, TokenBuf::from_segment(1, 100), 4, 1, 0);
        let high = e.submit_with_priority(t, TokenBuf::from_segment(2, 100), 4, 2, 9);
        let mid = e.submit_with_priority(t, TokenBuf::from_segment(3, 100), 4, 3, 5);

        let mut now = step_end;
        let mut done = e.complete_step(now);
        while let Some(end) = e.start_step_if_idle(now) {
            now = end;
            done.extend(e.complete_step(now));
        }
        let started = |id: RequestId| done.iter().find(|c| c.id == id).unwrap().started;
        assert!(started(high) <= started(mid), "priority 9 before 5");
        assert!(started(mid) <= started(low), "priority 5 before 0");
    }

    #[test]
    fn fcfs_ignores_priorities() {
        let mut e = Engine::new(small_config());
        e.submit(SimTime::ZERO, TokenBuf::from_segment(0, 8000), 4, 0);
        let step_end = e.start_step_if_idle(SimTime::ZERO).expect("step starts");
        let t = SimTime::from_micros(1);
        let first = e.submit_with_priority(t, TokenBuf::from_segment(1, 100), 4, 1, 0);
        let second = e.submit_with_priority(t, TokenBuf::from_segment(2, 100), 4, 2, 9);
        let mut now = step_end;
        let mut done = e.complete_step(now);
        while let Some(end) = e.start_step_if_idle(now) {
            now = end;
            done.extend(e.complete_step(now));
        }
        let started = |id: RequestId| done.iter().find(|c| c.id == id).unwrap().started;
        assert!(
            started(first) <= started(second),
            "FCFS must keep arrival order regardless of priority"
        );
    }

    #[test]
    fn single_request_runs_to_completion() {
        let mut e = Engine::new(small_config());
        let id = e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 1000), 100, 7);
        let (done, end) = drain(&mut e, SimTime::ZERO);
        assert_eq!(done.len(), 1);
        let c = &done[0];
        assert_eq!(c.id, id);
        assert_eq!(c.prompt_tokens, 1000);
        assert_eq!(c.output_tokens, 100);
        assert_eq!(c.cached_tokens, 0);
        assert_eq!(c.finished, end);
        assert!(c.prefill_time > SimDuration::ZERO);
        assert!(c.decode_time > SimDuration::ZERO);
        // 99 decode steps at ~13-15 ms + prefill ≈ 1.3-1.7 s.
        let s = c.e2e_latency().as_secs_f64();
        assert!((0.8..3.0).contains(&s), "latency {s}");
        assert!(!e.has_work());
        e.kv().check_invariants().unwrap();
        assert_eq!(e.kv().live_sequences(), 0);
    }

    #[test]
    fn decode_dominates_for_generation_heavy_requests() {
        // CoT-style: moderate prompt, long output => decode >> prefill
        // (paper Fig. 10, CoT bar).
        let mut e = Engine::new(small_config());
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 600), 400, 7);
        let (done, _) = drain(&mut e, SimTime::ZERO);
        let c = &done[0];
        assert!(c.decode_time.as_secs_f64() > 10.0 * c.prefill_time.as_secs_f64());
    }

    #[test]
    fn second_identical_prompt_hits_prefix_cache() {
        let mut e = Engine::new(small_config());
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 2048), 8, 7);
        let (first, t1) = drain(&mut e, SimTime::ZERO);
        e.submit(t1, TokenBuf::from_segment(1, 2048), 8, 8);
        let (second, _) = drain(&mut e, t1);
        assert_eq!(first[0].cached_tokens, 0);
        assert!(
            second[0].cached_tokens > 1900,
            "cached {}",
            second[0].cached_tokens
        );
        assert!(second[0].prefill_time < first[0].prefill_time);
    }

    #[test]
    fn prefix_caching_disabled_never_hits() {
        let mut e = Engine::new(small_config().with_prefix_caching(false));
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 2048), 8, 7);
        let (_, t1) = drain(&mut e, SimTime::ZERO);
        e.submit(t1, TokenBuf::from_segment(1, 2048), 8, 8);
        let (second, _) = drain(&mut e, t1);
        assert_eq!(second[0].cached_tokens, 0);
    }

    #[test]
    fn concurrent_requests_batch_and_all_finish() {
        let mut e = Engine::new(small_config());
        for i in 0..8 {
            e.submit(SimTime::ZERO, TokenBuf::from_segment(100 + i, 512), 64, i);
        }
        let (done, end) = drain(&mut e, SimTime::ZERO);
        assert_eq!(done.len(), 8);
        // Batched: total time far less than 8x a single request.
        let mut solo = Engine::new(small_config());
        solo.submit(SimTime::ZERO, TokenBuf::from_segment(100, 512), 64, 0);
        let (_, solo_end) = drain(&mut solo, SimTime::ZERO);
        assert!(
            end.as_secs_f64() < 3.0 * solo_end.as_secs_f64(),
            "batched {end}, solo {solo_end}"
        );
        e.kv().check_invariants().unwrap();
    }

    #[test]
    fn fcfs_order_of_first_scheduling() {
        let mut e = Engine::new(small_config());
        let a = e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 5000), 4, 0);
        let b = e.submit(
            SimTime::from_micros(1),
            TokenBuf::from_segment(2, 100),
            4,
            1,
        );
        let (done, _) = drain(&mut e, SimTime::from_micros(1));
        let ca = done.iter().find(|c| c.id == a).unwrap();
        let cb = done.iter().find(|c| c.id == b).unwrap();
        assert!(ca.started <= cb.started, "FCFS violated");
    }

    #[test]
    fn shared_prefix_across_concurrent_requests() {
        // Agent-style: same instruction+fewshot prefix, distinct questions.
        let mut e = Engine::new(small_config());
        let mut prompts = Vec::new();
        for i in 0..4u64 {
            let mut p = TokenBuf::from_segment(0xCAFE, 1024); // shared prefix
            p.push_segment(i + 1, 128);
            prompts.push(p);
        }
        for (i, p) in prompts.into_iter().enumerate() {
            e.submit(SimTime::ZERO, p, 16, i as u64);
        }
        let (done, _) = drain(&mut e, SimTime::ZERO);
        let total_cached: u32 = done.iter().map(|c| c.cached_tokens).sum();
        // Later requests reuse the first's prefix blocks.
        assert!(total_cached >= 3 * 1000, "cached {total_cached}");
    }

    #[test]
    fn metrics_partition_busy_time() {
        let mut e = Engine::new(small_config());
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 1024), 64, 7);
        let (_, end) = drain(&mut e, SimTime::ZERO);
        let m = e.metrics();
        assert_eq!(m.prefill_steps, 1);
        assert_eq!(m.decode_steps, 63);
        assert_eq!(m.completed, 1);
        assert!(m.flops > 0.0);
        assert_eq!(
            m.busy() + m.idle_within(end),
            SimDuration::from_micros(end.as_micros())
        );
    }

    #[test]
    fn tiny_kv_pool_forces_preemption_or_blocking_but_completes() {
        // Pool sized ~2.5% of weights: a few hundred blocks.
        let mut e = Engine::new(small_config().with_kv_fraction(0.025));
        for i in 0..6u64 {
            e.submit(SimTime::ZERO, TokenBuf::from_segment(50 + i, 800), 200, i);
        }
        let (done, _) = drain(&mut e, SimTime::ZERO);
        assert_eq!(done.len(), 6, "all requests must eventually finish");
        e.kv().check_invariants().unwrap();
        assert_eq!(e.kv().live_sequences(), 0);
    }

    #[test]
    fn chunked_prefill_overlaps_and_completes() {
        let mut e = Engine::new(small_config().with_chunked_prefill(true));
        for i in 0..4u64 {
            e.submit(SimTime::ZERO, TokenBuf::from_segment(10 + i, 3000), 32, i);
        }
        let (done, _) = drain(&mut e, SimTime::ZERO);
        assert_eq!(done.len(), 4);
        assert!(e.metrics().mixed_steps > 0, "mixed steps should occur");
        e.kv().check_invariants().unwrap();
    }

    #[test]
    fn iterative_calls_reuse_history_including_generated_tokens() {
        // An agent's second call includes the first call's prompt + output.
        let mut e = Engine::new(small_config());
        let prompt1 = TokenBuf::from_segment(1, 1024);
        e.submit(SimTime::ZERO, prompt1.clone(), 64, 42);
        let (done1, t1) = drain(&mut e, SimTime::ZERO);
        assert_eq!(done1.len(), 1);

        let mut prompt2 = prompt1;
        for i in 0..64u64 {
            prompt2.push_generated(42, i);
        }
        prompt2.push_segment(2, 200); // tool observation
        e.submit(t1, prompt2, 64, 43);
        let (done2, _) = drain(&mut e, t1);
        // 1024 + 64 = 1088 history tokens; 68 full blocks = 1088 cached.
        assert!(
            done2[0].cached_tokens >= 1024,
            "history should hit, cached {}",
            done2[0].cached_tokens
        );
    }

    #[test]
    #[should_panic(expected = "out_tokens")]
    fn zero_output_rejected() {
        let mut e = Engine::new(small_config());
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 10), 0, 0);
    }

    #[test]
    #[should_panic(expected = "can never admit")]
    fn impossible_prompt_panics() {
        // 0.4% of weights ≈ 64 MB ≈ 32 blocks = 512 tokens; a 4096-token
        // prompt can never fit.
        let mut e = Engine::new(small_config().with_kv_fraction(0.004));
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 4096), 4, 0);
        let _ = e.start_step_if_idle(SimTime::ZERO);
    }

    /// Collects a compact transcript of every observed event.
    #[derive(Debug, Default)]
    struct EventLog {
        entries: std::sync::Arc<std::sync::Mutex<Vec<String>>>,
    }

    impl EngineObserver for EventLog {
        fn on_event(&mut self, event: &EngineEvent<'_>) {
            let line = match *event {
                EngineEvent::Submitted { id, .. } => format!("submit {id}"),
                EngineEvent::Admitted { id, .. } => format!("admit {id}"),
                EngineEvent::StepCompleted { kind, .. } => format!("step {kind}"),
                EngineEvent::Preempted { id, .. } => format!("preempt {id}"),
                EngineEvent::Completed { completion, .. } => {
                    format!("complete {}", completion.id)
                }
                EngineEvent::Migrated { id, .. } => format!("migrate {id}"),
                EngineEvent::Abandoned { id, .. } => format!("abandon {id}"),
                EngineEvent::RoleChanged { from, to, .. } => {
                    format!("role {from:?}->{to:?}")
                }
            };
            self.entries.lock().unwrap().push(line);
        }
    }

    #[test]
    fn observer_sees_full_lifecycle_in_order() {
        let mut e = Engine::new(small_config());
        let log = EventLog::default();
        let entries = log.entries.clone();
        e.set_observer(Box::new(log));
        let id = e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 512), 3, 7);
        let (done, _) = drain(&mut e, SimTime::ZERO);
        assert_eq!(done.len(), 1);

        let lines = entries.lock().unwrap();
        assert_eq!(lines[0], format!("submit {id}"));
        assert_eq!(lines[1], format!("admit {id}"));
        assert_eq!(lines[2], "step prefill");
        // 2 decode steps follow (first token at prefill end), then the
        // completion fires at the final decode step.
        assert_eq!(lines.last().unwrap(), &format!("complete {id}"));
        assert_eq!(
            lines.iter().filter(|l| *l == "step decode").count() as u64,
            e.metrics().decode_steps
        );
        assert!(e.has_observer());
        assert!(e.clear_observer().is_some());
        assert!(!e.has_observer());
    }

    #[test]
    fn observer_sees_preemptions_and_readmissions() {
        let mut e = Engine::new(small_config().with_kv_fraction(0.02));
        let log = EventLog::default();
        let entries = log.entries.clone();
        e.set_observer(Box::new(log));
        for i in 0..5u64 {
            e.submit(SimTime::ZERO, TokenBuf::from_segment(10 + i, 700), 300, i);
        }
        let (done, _) = drain(&mut e, SimTime::ZERO);
        assert_eq!(done.len(), 5);
        let lines = entries.lock().unwrap();
        let preempts = lines.iter().filter(|l| l.starts_with("preempt")).count();
        assert_eq!(preempts as u64, e.metrics().preemptions);
        assert!(preempts > 0, "tiny pool must preempt");
        // Every preempted request is later re-admitted: admits > requests.
        let admits = lines.iter().filter(|l| l.starts_with("admit")).count();
        assert!(admits > 5, "admits {admits}");
    }

    #[test]
    fn observer_sees_abandonment_after_the_step_boundary() {
        let mut e = Engine::new(small_config());
        let log = EventLog::default();
        let entries = log.entries.clone();
        e.set_observer(Box::new(log));
        let id = e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 512), 50, 7);
        let end = e.start_step_if_idle(SimTime::ZERO).expect("step forms");
        e.cancel(SimTime::ZERO, id);
        e.complete_step(end);
        assert!(!e.has_work(), "purged at the boundary");
        let lines = entries.lock().unwrap();
        assert_eq!(lines.last().unwrap(), &format!("abandon {id}"));
    }

    #[test]
    fn observer_does_not_change_results() {
        let run = |observe: bool| {
            let mut e = Engine::new(small_config().with_kv_fraction(0.025));
            if observe {
                e.set_observer(Box::new(EventLog::default()));
            }
            for i in 0..6u64 {
                e.submit(SimTime::ZERO, TokenBuf::from_segment(50 + i, 800), 200, i);
            }
            let (mut done, end) = drain(&mut e, SimTime::ZERO);
            done.sort_by_key(|c| c.id);
            (done, end)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn seventy_b_is_slower_per_request() {
        let mut e8 = Engine::new(EngineConfig::a100_llama8b());
        e8.submit(SimTime::ZERO, TokenBuf::from_segment(1, 1000), 200, 0);
        let (_, t8) = drain(&mut e8, SimTime::ZERO);
        let mut e70 = Engine::new(EngineConfig::a100x8_llama70b());
        e70.submit(SimTime::ZERO, TokenBuf::from_segment(1, 1000), 200, 0);
        let (_, t70) = drain(&mut e70, SimTime::ZERO);
        assert!(t70 > t8, "8B {t8} vs 70B {t70}");
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::config::EngineConfig;

    fn drain(engine: &mut Engine, mut now: SimTime) -> (Vec<LlmCompletion>, SimTime) {
        let mut done = Vec::new();
        while let Some(end) = engine.start_step_if_idle(now) {
            now = end;
            done.extend(engine.complete_step(now));
        }
        (done, now)
    }

    #[test]
    fn single_output_token_completes_at_prefill() {
        // out_tokens == 1: the prefill step's first token finishes it.
        let mut e = Engine::new(EngineConfig::a100_llama8b());
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 100), 1, 0);
        let (done, _) = drain(&mut e, SimTime::ZERO);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].output_tokens, 1);
        assert_eq!(done[0].decode_time, SimDuration::ZERO);
        assert!(done[0].prefill_time > SimDuration::ZERO);
        assert_eq!(e.metrics().decode_steps, 0);
    }

    #[test]
    fn cancel_waiting_request_purges_at_step_boundary() {
        let mut e = Engine::new(EngineConfig::a100_llama8b());
        let a = e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 1000), 50, 0);
        let end = e.start_step_if_idle(SimTime::ZERO).expect("step forms");
        // b arrives while a's prefill runs, then its client gives up.
        let b = e.submit(SimTime::ZERO, TokenBuf::from_segment(2, 1000), 50, 1);
        e.cancel(SimTime::ZERO, b);
        assert_eq!(e.queue_len(), 1, "purge is deferred to the step boundary");
        e.complete_step(end);
        assert_eq!(e.queue_len(), 0);
        assert_eq!(e.metrics().abandoned, 1);
        // Never scheduled: no service was burned on it.
        assert_eq!(e.metrics().wasted(), SimDuration::ZERO);
        let (done, _) = drain(&mut e, end);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, a);
    }

    #[test]
    fn cancel_running_request_frees_kv_and_charges_wasted_work() {
        let mut e = Engine::new(EngineConfig::a100_llama8b());
        let a = e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 1000), 400, 0);
        let mut now = SimTime::ZERO;
        // Prefill plus a couple of decode steps accrue real service.
        for _ in 0..3 {
            let end = e.start_step_if_idle(now).expect("step forms");
            now = end;
            e.complete_step(now);
        }
        assert_eq!(e.running_len(), 1);
        let end = e.start_step_if_idle(now).expect("step forms");
        e.cancel(now, a);
        assert_eq!(e.running_len(), 1, "mid-step cancel waits for the boundary");
        let done = e.complete_step(end);
        assert!(done.is_empty());
        assert_eq!(e.running_len(), 0);
        assert!(!e.has_work(), "KV released, nothing left to run");
        assert_eq!(e.metrics().abandoned, 1);
        assert!(e.metrics().wasted_prefill > SimDuration::ZERO);
        assert!(e.metrics().wasted_decode > SimDuration::ZERO);
        assert_eq!(e.metrics().completed, 0);
    }

    #[test]
    fn cancel_is_immediate_when_idle_and_noop_for_finished_requests() {
        let mut e = Engine::new(EngineConfig::a100_llama8b());
        let a = e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 200), 4, 0);
        let (done, end) = drain(&mut e, SimTime::ZERO);
        assert_eq!(done.len(), 1);
        // a already finished: its completion raced the deadline.
        e.cancel(end, a);
        assert_eq!(e.metrics().abandoned, 0);
        // A queued request on an idle engine is purged on the spot.
        let _b = e.submit(end, TokenBuf::from_segment(2, 200), 4, 1);
        let c = e.submit(end, TokenBuf::from_segment(3, 200), 4, 2);
        e.cancel(end, c);
        assert_eq!(e.queue_len(), 1);
        assert_eq!(e.metrics().abandoned, 1);
        let (done, _) = drain(&mut e, end);
        assert_eq!(done.len(), 1, "the surviving request still completes");
    }

    #[test]
    fn one_token_prompt_works() {
        let mut e = Engine::new(EngineConfig::a100_llama8b());
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 1), 4, 0);
        let (done, _) = drain(&mut e, SimTime::ZERO);
        assert_eq!(done[0].prompt_tokens, 1);
        assert_eq!(done[0].output_tokens, 4);
        e.kv().check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "context window")]
    fn context_window_guard_rejects_oversized_requests() {
        let mut e = Engine::new(EngineConfig::a100_llama8b());
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 131_000), 200, 0);
    }

    #[test]
    fn late_arrivals_join_the_running_batch() {
        let mut e = Engine::new(EngineConfig::a100_llama8b());
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 256), 64, 0);
        // Run a few steps, then a second request arrives mid-flight.
        let mut now = SimTime::ZERO;
        for _ in 0..5 {
            let end = e.start_step_if_idle(now).expect("work pending");
            now = end;
            let _ = e.complete_step(now);
        }
        let second = e.submit(now, TokenBuf::from_segment(2, 256), 8, 1);
        let (done, _) = drain(&mut e, now);
        assert!(done.iter().any(|c| c.id == second));
        assert_eq!(e.metrics().completed, 2);
    }

    #[test]
    fn preempted_request_reports_its_preemptions() {
        let mut e = Engine::new(EngineConfig::a100_llama8b().with_kv_fraction(0.02));
        for i in 0..5u64 {
            e.submit(SimTime::ZERO, TokenBuf::from_segment(10 + i, 700), 300, i);
        }
        let (done, _) = drain(&mut e, SimTime::ZERO);
        assert_eq!(done.len(), 5);
        let total_preemptions: u32 = done.iter().map(|c| c.preemptions).sum();
        assert_eq!(total_preemptions as u64, e.metrics().preemptions);
        // Every preempted request still produced exactly its target.
        for c in &done {
            assert_eq!(c.output_tokens, 300);
        }
        e.kv().check_invariants().unwrap();
    }

    #[test]
    fn queue_and_running_counters_track_lifecycle() {
        let mut e = Engine::new(EngineConfig::a100_llama8b());
        assert!(!e.has_work());
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 64), 4, 0);
        assert_eq!(e.queue_len(), 1);
        assert_eq!(e.running_len(), 0);
        let end = e.start_step_if_idle(SimTime::ZERO).expect("prefill");
        assert_eq!(e.queue_len(), 0);
        assert_eq!(e.running_len(), 1);
        let mut now = end;
        let mut done = e.complete_step(now);
        while done.is_empty() {
            now = e.start_step_if_idle(now).expect("decoding");
            done = e.complete_step(now);
        }
        assert_eq!(e.running_len(), 0);
        assert!(!e.has_work());
    }

    #[test]
    fn prefill_role_releases_at_first_token() {
        let mut e = Engine::new(EngineConfig::a100_llama8b().with_role(EngineRole::Prefill));
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 512), 64, 7);
        let (done, _) = drain(&mut e, SimTime::ZERO);
        assert!(done.is_empty(), "prefill role must not complete locally");
        let migrations = e.take_migrations();
        assert_eq!(migrations.len(), 1);
        let m = &migrations[0];
        assert_eq!(m.generated, 1);
        assert_eq!(m.target_out, 64);
        assert_eq!(m.remaining_tokens(), 63);
        assert_eq!(m.ctx.len(), 513, "prompt plus the first token");
        assert_eq!(m.prompt_tokens, 512);
        assert!(m.prefill_time > SimDuration::ZERO);
        let blocks = e.kv().config().blocks_for(513) as u32;
        assert_eq!(m.kv_blocks, blocks);
        assert_eq!(m.kv_bytes, blocks as u64 * e.config().kv_bytes_per_block());
        assert_eq!(e.metrics().migrated, 1);
        assert_eq!(e.metrics().decode_steps, 0, "no decode on the prefill pool");
        assert_eq!(e.kv().stats().exported_tokens, 513);
        assert_eq!(e.kv().live_sequences(), 0);
        assert!(!e.has_work());
        assert!(e.take_migrations().is_empty(), "drained");
        e.kv().check_invariants().unwrap();
    }

    #[test]
    fn prefill_role_completes_single_token_requests_locally() {
        // out_tokens == 1: nothing is left to decode elsewhere.
        let mut e = Engine::new(EngineConfig::a100_llama8b().with_role(EngineRole::Prefill));
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 100), 1, 0);
        let (done, _) = drain(&mut e, SimTime::ZERO);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].output_tokens, 1);
        assert!(e.take_migrations().is_empty());
        assert_eq!(e.metrics().migrated, 0);
    }

    #[test]
    fn migrated_request_resumes_on_decode_engine() {
        // Colocated reference run.
        let mut reference = Engine::new(EngineConfig::a100_llama8b());
        reference.submit(SimTime::ZERO, TokenBuf::from_segment(1, 512), 8, 7);
        let (ref_done, _) = drain(&mut reference, SimTime::ZERO);

        // Prefill half.
        let mut p = Engine::new(EngineConfig::a100_llama8b().with_role(EngineRole::Prefill));
        p.submit(SimTime::ZERO, TokenBuf::from_segment(1, 512), 8, 7);
        let (_, released_at) = drain(&mut p, SimTime::ZERO);
        let m = p.take_migrations().pop().expect("one migration");

        // Decode half resumes it with imported KV.
        let mut d = Engine::new(EngineConfig::a100_llama8b().with_role(EngineRole::Decode));
        let id = d.submit_prefilled(released_at, &m);
        let (done, _) = drain(&mut d, released_at);
        assert_eq!(done.len(), 1);
        let c = &done[0];
        assert_eq!(c.id, id);
        assert_eq!(c.output_tokens, 8, "total including the prefill-side token");
        assert_eq!(
            c.prefill_time,
            SimDuration::ZERO,
            "decode pool never prefills"
        );
        assert!(c.decode_time > SimDuration::ZERO);
        assert_eq!(d.metrics().prefill_steps, 0);
        assert_eq!(d.metrics().mixed_steps, 0);
        assert_eq!(d.metrics().imported, 1);
        assert_eq!(d.kv().stats().imported_tokens, 513);
        assert_eq!(d.kv().stats().miss_tokens, 0);
        // 7 decode-side tokens => 7 decode steps.
        assert_eq!(d.metrics().decode_steps, 7);
        // Same deterministic token stream as the colocated run.
        assert_eq!(ref_done[0].output_tokens, c.output_tokens);
        e_kv_clean(&d);
    }

    fn e_kv_clean(e: &Engine) {
        e.kv().check_invariants().unwrap();
        assert_eq!(e.kv().live_sequences(), 0);
    }

    #[test]
    fn drain_then_flip_switches_roles_cleanly() {
        let mut e = Engine::new(EngineConfig::a100_llama8b().with_role(EngineRole::Prefill));
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 512), 64, 7);
        assert!(e.admits_new_work());
        e.begin_drain();
        assert!(e.is_draining());
        assert!(!e.admits_new_work());
        // In-flight work still runs: the request migrates out as usual.
        let (_, t) = drain(&mut e, SimTime::ZERO);
        assert_eq!(e.take_migrations().len(), 1);
        e.finish_drain(t, EngineRole::Decode);
        assert!(!e.is_draining());
        assert_eq!(e.config().role, EngineRole::Decode);
        e_kv_clean(&e);
    }

    #[test]
    #[should_panic(expected = "refuses new submissions")]
    fn draining_engine_rejects_submissions() {
        let mut e = Engine::new(EngineConfig::a100_llama8b());
        e.begin_drain();
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 10), 4, 0);
    }

    #[test]
    #[should_panic(expected = "work in flight")]
    fn flip_with_live_work_panics() {
        let mut e = Engine::new(EngineConfig::a100_llama8b());
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 10), 4, 0);
        e.begin_drain();
        e.finish_drain(SimTime::ZERO, EngineRole::Prefill);
    }

    #[test]
    #[should_panic(expected = "untaken migrations")]
    fn flip_with_untaken_migrations_panics() {
        let mut e = Engine::new(EngineConfig::a100_llama8b().with_role(EngineRole::Prefill));
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 512), 64, 7);
        e.begin_drain();
        let (_, t) = drain(&mut e, SimTime::ZERO);
        e.finish_drain(t, EngineRole::Decode);
    }

    #[test]
    fn draining_decode_engine_still_accepts_committed_migrations() {
        // KV already in flight on the interconnect must land even if the
        // destination started draining meanwhile.
        let mut p = Engine::new(EngineConfig::a100_llama8b().with_role(EngineRole::Prefill));
        p.submit(SimTime::ZERO, TokenBuf::from_segment(1, 512), 8, 7);
        let (_, released_at) = drain(&mut p, SimTime::ZERO);
        let m = p.take_migrations().pop().expect("one migration");

        let mut d = Engine::new(EngineConfig::a100_llama8b().with_role(EngineRole::Decode));
        d.begin_drain();
        let id = d.submit_prefilled(released_at, &m);
        let (done, t) = drain(&mut d, released_at);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        d.finish_drain(t, EngineRole::Prefill);
        assert_eq!(d.config().role, EngineRole::Prefill);
        e_kv_clean(&d);
    }

    #[test]
    fn finish_drain_emits_role_changed() {
        use crate::observer::EngineObserver;
        #[derive(Debug, Default)]
        struct RoleLog(std::sync::Arc<std::sync::Mutex<Vec<String>>>);
        impl EngineObserver for RoleLog {
            fn on_event(&mut self, event: &EngineEvent<'_>) {
                if let EngineEvent::RoleChanged { at, from, to } = *event {
                    self.0
                        .lock()
                        .unwrap()
                        .push(format!("{}us {from:?}->{to:?}", at.as_micros()));
                }
            }
        }
        let mut e = Engine::new(EngineConfig::a100_llama8b().with_role(EngineRole::Prefill));
        let log = RoleLog::default();
        let seen = log.0.clone();
        e.set_observer(Box::new(log));
        e.begin_drain();
        e.finish_drain(SimTime::from_micros(5), EngineRole::Decode);
        assert_eq!(
            *seen.lock().unwrap(),
            vec!["5us Prefill->Decode".to_string()]
        );
    }

    #[test]
    fn chunked_prefill_matches_classic_results() {
        // Same requests, both schedulers: identical outputs, different
        // step patterns.
        let run = |chunked: bool| {
            let mut e = Engine::new(EngineConfig::a100_llama8b().with_chunked_prefill(chunked));
            for i in 0..4u64 {
                e.submit(SimTime::ZERO, TokenBuf::from_segment(i, 1200), 32, i);
            }
            let (mut done, end) = drain(&mut e, SimTime::ZERO);
            done.sort_by_key(|c| c.id);
            let outs: Vec<u32> = done.iter().map(|c| c.output_tokens).collect();
            (outs, end, e.metrics().mixed_steps)
        };
        let (classic_outs, _, classic_mixed) = run(false);
        let (chunked_outs, _, chunked_mixed) = run(true);
        assert_eq!(classic_outs, chunked_outs);
        assert_eq!(classic_mixed, 0);
        assert!(chunked_mixed > 0);
    }
}

#[cfg(test)]
mod offload_tests {
    use super::*;
    use crate::config::OffloadConfig;
    use agentsim_kvcache::EvictionPolicy;

    fn drain(engine: &mut Engine, mut now: SimTime) -> (Vec<LlmCompletion>, SimTime) {
        let mut done = Vec::new();
        while let Some(end) = engine.start_step_if_idle(now) {
            now = end;
            done.extend(engine.complete_step(now));
        }
        (done, now)
    }

    /// A KV-starved replica: ~80 blocks (~1.3k cacheable tokens).
    fn engine_with(offload: Option<OffloadConfig>) -> Engine {
        let mut cfg = EngineConfig::a100_llama8b().with_kv_fraction(0.01);
        if let Some(off) = offload {
            cfg = cfg.with_offload(off);
        }
        Engine::new(cfg)
    }

    /// Prompt A, a pool-flushing prompt B, then A again — serially, so
    /// the pool pressure (and thus eviction traffic) is identical across
    /// configurations. Returns the three completions in order.
    fn thrash(e: &mut Engine) -> Vec<LlmCompletion> {
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        for (seg, len) in [(1u64, 512u32), (2, 1000), (1, 512)] {
            e.submit(now, TokenBuf::from_segment(seg, len), 4, seg);
            let (done, t) = drain(e, now);
            out.extend(done);
            now = t + SimDuration::from_micros(10);
        }
        e.kv().check_invariants().unwrap();
        assert_eq!(out.len(), 3);
        out
    }

    #[test]
    fn evicted_prefix_is_restored_from_the_host_tier() {
        let mut e = engine_with(Some(OffloadConfig::tiers(64, 64)));
        let done = thrash(&mut e);
        // B's admission demoted part of A's cached prefix instead of
        // destroying it; A's re-admission promoted it back.
        let stats = e.kv().stats();
        assert!(stats.demoted_blocks_host > 0, "{stats:?}");
        assert!(stats.promoted_blocks_host > 0, "{stats:?}");
        assert!(stats.promoted_tokens > 0, "{stats:?}");
        assert!(
            done[2].cached_tokens > 0,
            "restored prefix counts as cached"
        );
        // The transfers moved real bytes over the PCIe link.
        let host = e.host_link().expect("offload configured");
        assert!(host.transfers() > 0);
        assert_eq!(
            host.bytes_moved(),
            (stats.demoted_blocks_host + stats.promoted_blocks_host)
                * e.config().kv_bytes_per_block(),
        );
    }

    #[test]
    fn promotion_gates_the_admitting_prefill_but_demotion_gates_nothing() {
        let mut priced = engine_with(Some(OffloadConfig::tiers(64, 64)));
        let with_cost = thrash(&mut priced);
        let mut free = engine_with(Some(OffloadConfig::tiers(64, 64).with_free_links()));
        let no_cost = thrash(&mut free);

        // Identical block-level decisions: only timing may differ.
        assert_eq!(
            priced.kv().stats().promoted_tokens,
            free.kv().stats().promoted_tokens
        );
        // B's admission only demotes (A's blocks leave HBM); demotes are
        // asynchronous, so B's prefill is identical under both pricings.
        assert_eq!(with_cost[1].prefill_time, no_cost[1].prefill_time);
        // A's re-admission promotes; the PCIe wire time extends its
        // prefill (the TTFT toll), which free links do not charge.
        assert!(
            with_cost[2].prefill_time > no_cost[2].prefill_time,
            "{} !> {}",
            with_cost[2].prefill_time,
            no_cost[2].prefill_time
        );
    }

    #[test]
    fn promotion_is_cheaper_than_recompute() {
        // The whole point of the hierarchy: restoring KV at PCIe speed
        // beats re-prefilling it at roofline speed.
        let mut offloaded = engine_with(Some(OffloadConfig::tiers(64, 64)));
        let tiered = thrash(&mut offloaded);
        let mut plain = engine_with(None);
        let recomputed = thrash(&mut plain);
        assert!(tiered[2].cached_tokens > recomputed[2].cached_tokens);
        assert!(
            tiered[2].prefill_time < recomputed[2].prefill_time,
            "{} !< {}",
            tiered[2].prefill_time,
            recomputed[2].prefill_time
        );
    }

    #[test]
    fn zero_capacity_tiers_reproduce_the_plain_engine_exactly() {
        let mut tiered = engine_with(Some(OffloadConfig::tiers(0, 0)));
        let a = thrash(&mut tiered);
        let mut plain = engine_with(None);
        let b = thrash(&mut plain);
        assert_eq!(a, b, "zero-capacity tiers must be a complete no-op");
        let host = tiered.host_link().expect("links exist even at zero cap");
        assert_eq!(host.transfers(), 0);
        assert_eq!(tiered.nvme_link().unwrap().transfers(), 0);
    }

    #[test]
    fn hints_reach_the_manager_through_the_engine() {
        let off = OffloadConfig::tiers(64, 64).with_policy(EvictionPolicy::InvocationDistance);
        let mut e = engine_with(Some(off));
        let prompt = TokenBuf::from_segment(1, 512);
        let hashes =
            agentsim_kvcache::hash::chain_hashes(prompt.as_slice(), e.config().block_size as usize);
        e.submit(SimTime::ZERO, prompt, 4, 1);
        let (_, t) = drain(&mut e, SimTime::ZERO);
        // Predict A's prompt is needed again soon: its blocks now outrank
        // unhinted ones in eviction order.
        e.hint_next_use(&hashes, t, t + SimDuration::from_secs_f64(0.5));
        e.kv().check_invariants().unwrap();
    }
}
