//! Property-based tests for the serving engine: arbitrary request mixes
//! all complete, scheduling respects FCFS, accounting balances, and
//! prefix caching changes cost but never results.

use agentsim_kvcache::TokenBuf;
use agentsim_llm::{Engine, EngineConfig, LlmCompletion};
use agentsim_simkit::{SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Req {
    seed: u64,
    prompt_tokens: u32,
    out_tokens: u32,
    arrival_us: u64,
}

fn req_strategy() -> impl Strategy<Value = Req> {
    (0u64..8, 16u32..1500, 1u32..120, 0u64..2_000_000).prop_map(
        |(seed, prompt_tokens, out_tokens, arrival_us)| Req {
            seed,
            prompt_tokens,
            out_tokens,
            arrival_us,
        },
    )
}

fn drive(engine: &mut Engine, reqs: &[Req]) -> Vec<LlmCompletion> {
    let mut reqs: Vec<Req> = reqs.to_vec();
    reqs.sort_by_key(|r| r.arrival_us);
    let mut done = Vec::new();
    let mut now = SimTime::ZERO;
    let mut next = 0usize;
    loop {
        // Admit everything that has arrived.
        while next < reqs.len() && SimTime::from_micros(reqs[next].arrival_us) <= now {
            let r = &reqs[next];
            engine.submit(
                SimTime::from_micros(r.arrival_us).max(now),
                TokenBuf::from_segment(r.seed, r.prompt_tokens),
                r.out_tokens,
                r.seed ^ 0xDEAD ^ next as u64,
            );
            next += 1;
        }
        if let Some(end) = engine.start_step_if_idle(now) {
            now = end;
            done.extend(engine.complete_step(now));
            continue;
        }
        if next < reqs.len() {
            now = SimTime::from_micros(reqs[next].arrival_us);
            continue;
        }
        if !engine.has_work() {
            return done;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_request_completes_exactly_once(
        reqs in prop::collection::vec(req_strategy(), 1..24),
    ) {
        let mut engine = Engine::new(EngineConfig::a100_llama8b());
        let done = drive(&mut engine, &reqs);
        prop_assert_eq!(done.len(), reqs.len());
        let mut ids: Vec<u64> = done.iter().map(|c| c.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), reqs.len());
        prop_assert_eq!(engine.kv().live_sequences(), 0);
        engine.kv().check_invariants().unwrap();
    }

    #[test]
    fn output_token_counts_are_exact(
        reqs in prop::collection::vec(req_strategy(), 1..16),
    ) {
        let mut engine = Engine::new(EngineConfig::a100_llama8b());
        let done = drive(&mut engine, &reqs);
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|r| r.arrival_us);
        for c in &done {
            let r = &sorted[c.id.0 as usize];
            prop_assert_eq!(c.output_tokens, r.out_tokens);
            prop_assert_eq!(c.prompt_tokens, r.prompt_tokens);
        }
    }

    #[test]
    fn first_scheduling_is_fcfs(
        reqs in prop::collection::vec(req_strategy(), 2..16),
    ) {
        let mut engine = Engine::new(EngineConfig::a100_llama8b());
        let done = drive(&mut engine, &reqs);
        // Submission order == id order; started times must be monotone in
        // id (no preemption happens at this pool size).
        let mut by_id = done.clone();
        by_id.sort_by_key(|c| c.id);
        for w in by_id.windows(2) {
            prop_assert!(
                w[0].started <= w[1].started,
                "FCFS violated: {} started {} after {} started {}",
                w[0].id, w[0].started, w[1].id, w[1].started
            );
        }
    }

    #[test]
    fn time_is_monotone_and_accounting_balances(
        reqs in prop::collection::vec(req_strategy(), 1..16),
    ) {
        let mut engine = Engine::new(EngineConfig::a100_llama8b());
        let done = drive(&mut engine, &reqs);
        let end = done.iter().map(|c| c.finished).max().expect("non-empty");
        for c in &done {
            prop_assert!(c.arrived <= c.started);
            prop_assert!(c.started <= c.finished);
            prop_assert!(c.prefill_time + c.decode_time <= c.e2e_latency() + SimDuration::from_micros(1));
        }
        let m = engine.metrics();
        prop_assert!(m.busy() <= SimDuration::from_micros(end.as_micros()));
        prop_assert_eq!(m.completed, reqs.len() as u64);
        prop_assert!(m.flops > 0.0);
    }

    #[test]
    fn prefix_caching_changes_cost_not_results(
        reqs in prop::collection::vec(req_strategy(), 1..12),
    ) {
        let mut with = Engine::new(EngineConfig::a100_llama8b());
        let mut without = Engine::new(EngineConfig::a100_llama8b().with_prefix_caching(false));
        let a = drive(&mut with, &reqs);
        let b = drive(&mut without, &reqs);
        prop_assert_eq!(a.len(), b.len());
        let total = |v: &[LlmCompletion]| -> u64 {
            v.iter().map(|c| c.output_tokens as u64).sum()
        };
        prop_assert_eq!(total(&a), total(&b));
        // Caching can only reduce FLOPs.
        prop_assert!(with.metrics().flops <= without.metrics().flops * 1.000001);
        // And never reports hits when disabled.
        prop_assert_eq!(b.iter().map(|c| c.cached_tokens).max().unwrap_or(0), 0);
    }

    #[test]
    fn tiny_pools_still_complete_everything(
        reqs in prop::collection::vec(req_strategy(), 1..10),
    ) {
        // A pool of ~2.5% of weights forces queueing and preemption, but
        // liveness must hold.
        let mut engine = Engine::new(EngineConfig::a100_llama8b().with_kv_fraction(0.025));
        let done = drive(&mut engine, &reqs);
        prop_assert_eq!(done.len(), reqs.len());
        engine.kv().check_invariants().unwrap();
    }
}
