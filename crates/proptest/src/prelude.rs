//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Path alias so `prop::collection::vec` / `prop::sample::select` resolve
/// after a prelude glob import, as with the real crate.
pub use crate as prop;
