//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::CaseRng;

/// Picks uniformly among the given options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

/// See [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut CaseRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_covers_all_options() {
        let s = select(vec![1, 2, 3]);
        let mut rng = CaseRng::for_case("select", 0);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }
}
