//! Value-generation strategies.

use std::ops::Range;

use crate::test_runner::CaseRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value from the stream.
    fn generate(&self, rng: &mut CaseRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Chains generation: each source value picks the strategy the final
    /// value is drawn from, so one draw can parameterize the next (e.g.
    /// a drawn length choosing how many elements to generate).
    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
        U: Strategy,
    {
        FlatMap { source: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait StrategyObj<V> {
    fn generate_obj(&self, rng: &mut CaseRng) -> V;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut CaseRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn StrategyObj<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut CaseRng) -> V {
        self.0.generate_obj(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut CaseRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut CaseRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: Strategy,
{
    type Value = U::Value;
    fn generate(&self, rng: &mut CaseRng) -> U::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice among same-typed strategies (see `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut CaseRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "whole domain" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut CaseRng) -> Self;
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut CaseRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut CaseRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut CaseRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut CaseRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut CaseRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut CaseRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u64 - self.start as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut CaseRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut CaseRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        // Guard against rounding up onto the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut CaseRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = CaseRng::for_case("ranges", 0);
        for _ in 0..2000 {
            let a = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&a));
            let b = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&b));
            let c = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&c));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let s = crate::prop_oneof![
            (0u64..4).prop_map(|x| x * 10),
            (100u64..104).prop_map(|x| x),
        ];
        let mut rng = CaseRng::for_case("union", 1);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v % 10 == 0 && v < 40 || (100..104).contains(&v), "{v}");
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = CaseRng::for_case("tuple", 0);
        let (a, b, c) = (0u8..2, 10u64..20, 0.0f64..1.0).generate(&mut rng);
        assert!(a < 2 && (10..20).contains(&b) && (0.0..1.0).contains(&c));
    }

    #[test]
    fn just_repeats() {
        let mut rng = CaseRng::for_case("just", 0);
        assert_eq!(Just(7u32).generate(&mut rng), 7);
    }

    #[test]
    fn flat_map_parameterizes_the_second_draw() {
        // The first draw picks a length; the second draws a vec of
        // exactly that length.
        let s = (1usize..5).prop_flat_map(|len| {
            crate::collection::vec(0u64..10, len..len + 1).prop_map(move |v| (len, v))
        });
        let mut rng = CaseRng::for_case("flat_map", 0);
        for _ in 0..200 {
            let (len, v) = s.generate(&mut rng);
            assert_eq!(v.len(), len);
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
