//! Deterministic case generation.

/// How many cases each property runs, mirroring
/// `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The per-case random stream: a SplitMix64 counter generator seeded from
/// the fully-qualified test name and the case index, so every run of a
/// test binary generates identical cases.
#[derive(Debug, Clone)]
pub struct CaseRng {
    state: u64,
}

const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CaseRng {
    /// Creates the stream for one `(test, case)` pair.
    pub fn for_case(test_key: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in test_key.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        CaseRng {
            state: mix(h ^ mix(case.wrapping_mul(PHI))),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(PHI);
        mix(self.state)
    }

    /// Unbiased uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n || low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = CaseRng::for_case("x", 3);
        let mut b = CaseRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn cases_differ() {
        let mut a = CaseRng::for_case("x", 0);
        let mut b = CaseRng::for_case("x", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = CaseRng::for_case("bound", 0);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }
}
