//! A minimal, self-contained property-testing harness.
//!
//! Implements the subset of the `proptest` crate's API that this workspace
//! uses — the [`proptest!`] macro, range/tuple/`prop_map`/`prop_oneof!`
//! strategies, `prop::collection::vec`, `prop::sample::select`, and the
//! `prop_assert*` family — so the workspace builds and tests with **zero
//! network access**. Cases are generated from a deterministic per-test
//! stream (no shrinking; failures print the generating inputs instead).

pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, BoxedStrategy, Just, Strategy};
pub use test_runner::{CaseRng, ProptestConfig};

/// Declares property tests: each `#[test] fn name(arg in strategy, ..)`
/// runs `ProptestConfig::cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          #[test]
          fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let test_key = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut __rng = $crate::CaseRng::for_case(test_key, case as u64);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    let __inputs = format!("{:?}", ( $( &$arg, )* ));
                    let outcome = (move || -> ::core::result::Result<(), ::std::string::String> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest {} case {}/{} failed: {}\n  inputs: {}",
                            stringify!($name), case, config.cases, msg, __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::core::result::Result::Err(format!(
                        "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), left, right
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::core::result::Result::Err(format!($($fmt)+));
                }
            }
        }
    };
}

/// Fails the current case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                if *left == *right {
                    return ::core::result::Result::Err(format!(
                        "assertion failed: `{}` != `{}`\n  both: {:?}",
                        stringify!($a), stringify!($b), left
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                if *left == *right {
                    return ::core::result::Result::Err(format!($($fmt)+));
                }
            }
        }
    };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            // Without a shrink/retry loop, an unmet assumption simply
            // passes the case; generators keep the skip rate low.
            return ::core::result::Result::Ok(());
        }
    };
}

/// Chooses uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::Strategy::boxed($strat) ),+
        ])
    };
}
