//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::CaseRng;

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut CaseRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_element_bounds() {
        let s = vec(0u64..5, 2..7);
        let mut rng = CaseRng::for_case("vec", 0);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
