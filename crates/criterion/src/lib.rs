//! Minimal drop-in for the `criterion` benchmark harness so the workspace
//! builds and benches run fully offline.
//!
//! Supports the subset this repo uses: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs a
//! short calibration pass, then `sample_size` timed samples, and prints
//! min/median/mean per-iteration times.
//!
//! `--bench` (passed by `cargo bench`) is accepted and ignored. A `--test`
//! flag (passed by `cargo test --benches`) runs each benchmark exactly
//! once so benches stay cheap under the test profile. Any other non-flag
//! argument is treated as a substring filter on benchmark ids.

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. The shim runs one setup per
/// routine invocation regardless of variant, which keeps timing honest for
/// the sizes used here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Top-level harness state.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Criterion {
    /// Builds a harness from the process arguments.
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--test" => test_mode = true,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id, 100, self.filter.as_deref(), self.test_mode, f);
        self
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args()
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(
            &full,
            self.sample_size,
            self.criterion.filter.as_deref(),
            self.criterion.test_mode,
            f,
        );
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; owns the timing loops.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    durations: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine` back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        let iters = calibrate(|| {
            std::hint::black_box(routine());
        });
        self.iters_per_sample = iters;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.durations.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        let samples = if self.test_mode { 1 } else { self.samples };
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }
}

/// Picks an iteration count so one sample takes roughly a millisecond.
fn calibrate(mut routine: impl FnMut()) -> u64 {
    let start = Instant::now();
    routine();
    let once = start.elapsed().max(Duration::from_nanos(1));
    let target = Duration::from_millis(1);
    ((target.as_nanos() / once.as_nanos()).clamp(1, 10_000)) as u64
}

fn run_benchmark<F>(id: &str, samples: usize, filter: Option<&str>, test_mode: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = filter {
        if !id.contains(filter) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples,
        test_mode,
        durations: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    if test_mode {
        println!("bench {id}: ok (test mode)");
        return;
    }
    if bencher.durations.is_empty() {
        println!("bench {id}: no samples");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .durations
        .iter()
        .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "bench {id}: min {} median {} mean {} ({} samples)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        per_iter.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut ran = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(10).bench_function("f", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("zzz".into()),
            test_mode: true,
        };
        let mut ran = false;
        c.bench_function("abc", |b| b.iter(|| ran = true));
        assert!(!ran);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut total = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| total += x, BatchSize::SmallInput)
        });
        assert_eq!(total, 21);
    }
}
