//! Property-based tests for the roofline and energy models.

use agentsim_gpu::perf::PrefillItem;
use agentsim_gpu::{ClusterSpec, EnergyMeter, EnergyModel, PerfModel, Phase};
use agentsim_simkit::SimDuration;
use proptest::prelude::*;

fn perf() -> PerfModel {
    PerfModel::new(ClusterSpec::a100_llama8b())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn prefill_cost_is_monotone_in_tokens(a in 1u64..4000, b in 1u64..4000) {
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        let p = perf();
        let cost_small = p.prefill(&[PrefillItem { new_tokens: small, cached_tokens: 0 }]);
        let cost_large = p.prefill(&[PrefillItem { new_tokens: large, cached_tokens: 0 }]);
        prop_assert!(cost_large.duration >= cost_small.duration);
        prop_assert!(cost_large.flops >= cost_small.flops);
    }

    #[test]
    fn caching_tokens_never_raises_prefill_cost(
        total in 32u64..4000,
        cached_frac in 0.0f64..1.0,
    ) {
        let cached = (total as f64 * cached_frac) as u64;
        let p = perf();
        let cold = p.prefill(&[PrefillItem { new_tokens: total, cached_tokens: 0 }]);
        let warm = p.prefill(&[PrefillItem {
            new_tokens: total - cached,
            cached_tokens: cached,
        }]);
        prop_assert!(warm.duration <= cold.duration);
        prop_assert!(warm.flops <= cold.flops);
    }

    #[test]
    fn decode_step_cost_grows_with_batch_but_sublinearly(
        batch in 2usize..128,
        ctx in 64u64..8000,
    ) {
        let p = perf();
        let one = p.decode_step(&[ctx]).duration.as_secs_f64();
        let many = p.decode_step(&vec![ctx; batch]).duration.as_secs_f64();
        prop_assert!(many >= one, "bigger batches take longer in absolute terms");
        prop_assert!(
            many < one * batch as f64,
            "batching must amortize: {many} !< {one} * {batch}"
        );
    }

    #[test]
    fn longer_contexts_cost_more_decode(a in 16u64..16_000, b in 16u64..16_000) {
        let (short, long) = if a <= b { (a, b) } else { (b, a) };
        let p = perf();
        prop_assert!(
            p.decode_step(&[long]).duration >= p.decode_step(&[short]).duration
        );
    }

    #[test]
    fn energy_is_additive_and_phase_ordered(
        prefill_s in 0.0f64..100.0,
        decode_s in 0.0f64..100.0,
        idle_s in 0.0f64..100.0,
    ) {
        let model = EnergyModel::new(&ClusterSpec::a100_llama8b());
        let mut m = EnergyMeter::new(model.clone());
        m.add(Phase::Prefill, SimDuration::from_secs_f64(prefill_s));
        m.add(Phase::Decode, SimDuration::from_secs_f64(decode_s));
        m.add(Phase::Idle, SimDuration::from_secs_f64(idle_s));
        let expected = model.power_w(Phase::Prefill) * prefill_s
            + model.power_w(Phase::Decode) * decode_s
            + model.power_w(Phase::Idle) * idle_s;
        // SimDuration rounds to whole microseconds, so allow the
        // corresponding energy slack (≤ 0.5 us x ~700 W per phase).
        prop_assert!((m.joules() - expected).abs() < 1e-2);
        // Swapping decode time into prefill can only raise the bill.
        let mut hotter = EnergyMeter::new(model.clone());
        hotter.add(Phase::Prefill, SimDuration::from_secs_f64(prefill_s + decode_s));
        hotter.add(Phase::Idle, SimDuration::from_secs_f64(idle_s));
        prop_assert!(hotter.joules() >= m.joules() - 1e-6);
    }

    #[test]
    fn step_costs_are_deterministic(tokens in 1u64..4000) {
        let p = perf();
        let a = p.prefill(&[PrefillItem { new_tokens: tokens, cached_tokens: 0 }]);
        let b = p.prefill(&[PrefillItem { new_tokens: tokens, cached_tokens: 0 }]);
        prop_assert_eq!(a, b);
    }
}
