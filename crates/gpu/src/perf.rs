//! Roofline performance model for LLM engine steps.
//!
//! The model captures the two regimes the paper's analysis rests on:
//!
//! * **prefill** — large matrix multiplies; throughput-bound by peak FLOPs,
//! * **decode** — one token per sequence per step; bound by HBM bandwidth
//!   (weights are re-read every step, plus each sequence's KV cache).
//!
//! Step time is `max(compute time, memory time) + fixed overhead`, where
//! the overhead models kernel launch, scheduling and (for tensor-parallel
//! replicas) collective synchronization.

use agentsim_simkit::SimDuration;

use crate::cluster::ClusterSpec;

/// Cost of one engine step as predicted by the roofline model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepCost {
    /// Wall-clock duration of the step.
    pub duration: SimDuration,
    /// Dense + attention FLOPs executed.
    pub flops: f64,
    /// Bytes moved through HBM (weights + KV reads/writes).
    pub hbm_bytes: f64,
    /// Time the step would take if purely compute-bound.
    pub compute_time_s: f64,
    /// Time the step would take if purely memory-bound.
    pub memory_time_s: f64,
}

impl StepCost {
    /// Whether the step is limited by memory bandwidth rather than compute.
    pub fn is_memory_bound(&self) -> bool {
        self.memory_time_s >= self.compute_time_s
    }
}

/// A batch element entering prefill: `new_tokens` to be processed on top of
/// `cached_tokens` already present in the KV cache (prefix-cache hits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillItem {
    /// Tokens whose KV must be computed in this step.
    pub new_tokens: u64,
    /// Tokens already cached (skipped work — the prefix-caching win).
    pub cached_tokens: u64,
}

/// Analytical performance model for one model replica.
///
/// # Example
///
/// ```
/// use agentsim_gpu::{ClusterSpec, PerfModel};
/// use agentsim_gpu::perf::PrefillItem;
///
/// let perf = PerfModel::new(ClusterSpec::a100_llama8b());
/// let full = perf.prefill(&[PrefillItem { new_tokens: 2048, cached_tokens: 0 }]);
/// let cached = perf.prefill(&[PrefillItem { new_tokens: 256, cached_tokens: 1792 }]);
/// assert!(cached.duration < full.duration, "prefix caching must shorten prefill");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PerfModel {
    cluster: ClusterSpec,
    /// Fraction of peak FLOPs achieved during prefill (large GEMMs).
    pub prefill_efficiency: f64,
    /// Fraction of peak FLOPs achieved during decode GEMVs.
    pub decode_compute_efficiency: f64,
    /// Fraction of peak HBM bandwidth achieved.
    pub bandwidth_efficiency: f64,
    /// Fixed per-step overhead (scheduler iteration, kernel launches).
    pub step_overhead: SimDuration,
}

impl PerfModel {
    /// Creates a performance model with calibrated default efficiencies.
    pub fn new(cluster: ClusterSpec) -> Self {
        PerfModel {
            cluster,
            prefill_efficiency: 0.55,
            decode_compute_efficiency: 0.70,
            bandwidth_efficiency: 0.80,
            step_overhead: SimDuration::from_micros(2_000),
        }
    }

    /// The cluster this model describes.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    fn achieved_flops(&self, efficiency: f64) -> f64 {
        self.cluster.total_flops() * efficiency
    }

    fn achieved_bandwidth(&self) -> f64 {
        self.cluster.total_bandwidth() * self.bandwidth_efficiency
    }

    /// FLOPs to prefill `new` tokens whose context already holds `past`
    /// tokens (dense work plus causal-attention work).
    pub fn prefill_flops(&self, new: u64, past: u64) -> f64 {
        let m = &self.cluster.model;
        let dense = m.flops_per_token_dense() * new as f64;
        // Token i (0-based within the new chunk) attends over past + i + 1
        // positions; summing gives past*new + new*(new+1)/2.
        let attended = past as f64 * new as f64 + new as f64 * (new as f64 + 1.0) / 2.0;
        let attn = 4.0 * m.layers as f64 * m.heads as f64 * m.head_dim as f64 * attended;
        dense + attn
    }

    /// Cost of a prefill step over a batch of items.
    ///
    /// Cached tokens contribute no FLOPs (their KV is reused), which is how
    /// prefix caching shortens the prefill phase.
    pub fn prefill(&self, items: &[PrefillItem]) -> StepCost {
        let m = &self.cluster.model;
        let mut flops = 0.0;
        let mut kv_written = 0.0;
        for it in items {
            flops += self.prefill_flops(it.new_tokens, it.cached_tokens);
            kv_written += (it.new_tokens * m.kv_bytes_per_token()) as f64;
        }
        // Weights are streamed at least once per step.
        let hbm = m.weight_bytes() as f64 + kv_written;
        let compute = flops / self.achieved_flops(self.prefill_efficiency);
        let memory = hbm / self.achieved_bandwidth();
        self.finish(flops, hbm, compute, memory)
    }

    /// Cost of one decode step for a batch of sequences with the given
    /// context lengths (one new token per sequence).
    pub fn decode_step(&self, context_lens: &[u64]) -> StepCost {
        let m = &self.cluster.model;
        let batch = context_lens.len() as f64;
        let total_ctx: u64 = context_lens.iter().sum();

        let flops: f64 = m.flops_per_token_dense() * batch
            + context_lens
                .iter()
                .map(|&c| m.flops_per_token_attn(c))
                .sum::<f64>();
        // Weights once per step; each sequence reads its whole KV cache and
        // writes one token of KV.
        let hbm = m.weight_bytes() as f64
            + (total_ctx + context_lens.len() as u64) as f64 * m.kv_bytes_per_token() as f64;

        let compute = flops / self.achieved_flops(self.decode_compute_efficiency);
        let memory = hbm / self.achieved_bandwidth();
        self.finish(flops, hbm, compute, memory)
    }

    /// Cost of a mixed step (chunked prefill co-scheduled with decodes) —
    /// used by the chunked-prefill ablation.
    pub fn mixed_step(&self, prefill: &[PrefillItem], decode_ctx: &[u64]) -> StepCost {
        let p = self.prefill(prefill);
        let d = self.decode_step(decode_ctx);
        let flops = p.flops + d.flops;
        let m = &self.cluster.model;
        // Weights counted once, not twice.
        let hbm = p.hbm_bytes + d.hbm_bytes - m.weight_bytes() as f64;
        let compute = p.compute_time_s + d.compute_time_s;
        let memory = hbm / self.achieved_bandwidth();
        self.finish(flops, hbm, compute, memory)
    }

    fn finish(&self, flops: f64, hbm: f64, compute: f64, memory: f64) -> StepCost {
        let roofline = compute.max(memory);
        let overhead = self.step_overhead.as_secs_f64() + self.cluster.tp_sync_s();
        StepCost {
            duration: SimDuration::from_secs_f64(roofline + overhead),
            flops,
            hbm_bytes: hbm,
            compute_time_s: compute,
            memory_time_s: memory,
        }
    }

    /// A hard lower bound on the duration of *any* step this model can
    /// produce.
    ///
    /// Every step kind (prefill, decode, mixed) reads the full weights once,
    /// so its memory time is at least `weight_bytes / achieved_bandwidth`,
    /// and [`finish`](Self::finish) adds the same fixed overhead on top of
    /// the roofline. Both the bound and the real duration go through the
    /// same monotone float-to-micros rounding, so the bound is sound at
    /// microsecond granularity. Parallel drivers use it as the conservative
    /// lookahead window: a step kicked at `t` cannot end before
    /// `t + min_step_duration()`.
    pub fn min_step_duration(&self) -> SimDuration {
        let weights = self.cluster.model.weight_bytes() as f64;
        let memory = weights / self.achieved_bandwidth();
        let overhead = self.step_overhead.as_secs_f64() + self.cluster.tp_sync_s();
        SimDuration::from_secs_f64(memory + overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf_8b() -> PerfModel {
        PerfModel::new(ClusterSpec::a100_llama8b())
    }

    fn perf_70b() -> PerfModel {
        PerfModel::new(ClusterSpec::a100x8_llama70b())
    }

    #[test]
    fn single_decode_token_is_weight_read_bound() {
        // 16 GB weights over ~1.24 TB/s effective ≈ 13 ms, plus overhead.
        let step = perf_8b().decode_step(&[1000]);
        assert!(step.is_memory_bound());
        let s = step.duration.as_secs_f64();
        assert!((0.010..0.025).contains(&s), "decode step {s} s");
    }

    #[test]
    fn min_step_duration_bounds_every_step_kind() {
        for perf in [perf_8b(), perf_70b()] {
            let floor = perf.min_step_duration();
            assert!(floor > SimDuration::ZERO);
            let steps = [
                perf.decode_step(&[1]),
                perf.decode_step(&[8000; 64]),
                perf.prefill(&[PrefillItem {
                    new_tokens: 1,
                    cached_tokens: 0,
                }]),
                perf.mixed_step(
                    &[PrefillItem {
                        new_tokens: 16,
                        cached_tokens: 0,
                    }],
                    &[128; 4],
                ),
            ];
            for step in steps {
                assert!(
                    step.duration >= floor,
                    "step {} below floor {}",
                    step.duration,
                    floor
                );
            }
        }
    }

    #[test]
    fn decode_batches_amortize_weight_reads() {
        let perf = perf_8b();
        let one = perf.decode_step(&[1000]).duration.as_secs_f64();
        let thirty_two = perf.decode_step(&[1000; 32]).duration.as_secs_f64();
        // 32 sequences cost far less than 32x one sequence.
        assert!(thirty_two < 4.0 * one, "one={one} batch32={thirty_two}");
    }

    #[test]
    fn prefill_is_compute_bound_for_long_prompts() {
        let step = perf_8b().prefill(&[PrefillItem {
            new_tokens: 4096,
            cached_tokens: 0,
        }]);
        assert!(!step.is_memory_bound());
        // 4096 tokens x 16 GFLOPs/token ≈ 66 TFLOP at ~172 TFLOPS ≈ 0.38 s.
        let s = step.duration.as_secs_f64();
        assert!((0.2..0.8).contains(&s), "prefill {s} s");
    }

    #[test]
    fn cached_tokens_cut_prefill_time() {
        let perf = perf_8b();
        let cold = perf.prefill(&[PrefillItem {
            new_tokens: 3000,
            cached_tokens: 0,
        }]);
        let warm = perf.prefill(&[PrefillItem {
            new_tokens: 300,
            cached_tokens: 2700,
        }]);
        assert!(warm.duration.as_secs_f64() < cold.duration.as_secs_f64() / 3.0);
        assert!(warm.flops < cold.flops / 5.0);
    }

    #[test]
    fn seventy_b_decode_is_slower_despite_eight_gpus() {
        let d8 = perf_8b().decode_step(&[2000]).duration.as_secs_f64();
        let d70 = perf_70b().decode_step(&[2000]).duration.as_secs_f64();
        assert!(d70 > d8, "8B {d8} s vs 70B {d70} s");
    }

    #[test]
    fn longer_contexts_cost_more_decode_time() {
        let perf = perf_8b();
        let short = perf.decode_step(&[500; 8]).duration;
        let long = perf.decode_step(&[8000; 8]).duration;
        assert!(long > short);
    }

    #[test]
    fn prefill_flops_match_closed_form() {
        let perf = perf_8b();
        // No past: attended = n(n+1)/2.
        let f = perf.prefill_flops(100, 0);
        let m = ModelShape::of(perf.cluster());
        let expected = 2.0 * m.params * 100.0 + 4.0 * m.layers * m.heads * m.head_dim * 5050.0;
        assert!((f - expected).abs() / expected < 1e-12);
    }

    struct ModelShape {
        params: f64,
        layers: f64,
        heads: f64,
        head_dim: f64,
    }
    impl ModelShape {
        fn of(c: &ClusterSpec) -> Self {
            ModelShape {
                params: c.model.params as f64,
                layers: c.model.layers as f64,
                heads: c.model.heads as f64,
                head_dim: c.model.head_dim as f64,
            }
        }
    }

    #[test]
    fn mixed_step_counts_weights_once() {
        let perf = perf_8b();
        let p = perf.prefill(&[PrefillItem {
            new_tokens: 512,
            cached_tokens: 0,
        }]);
        let d = perf.decode_step(&[1000; 4]);
        let m = perf.mixed_step(
            &[PrefillItem {
                new_tokens: 512,
                cached_tokens: 0,
            }],
            &[1000; 4],
        );
        let weights = perf.cluster().model.weight_bytes() as f64;
        assert!((m.hbm_bytes - (p.hbm_bytes + d.hbm_bytes - weights)).abs() < 1.0);
        // Mixing is cheaper than running the two steps back-to-back.
        assert!(m.duration < p.duration + d.duration);
    }

    #[test]
    fn empty_decode_step_is_just_overhead_plus_weights() {
        let perf = perf_8b();
        let step = perf.decode_step(&[]);
        assert_eq!(step.flops, 0.0);
        assert!(step.duration >= perf.step_overhead);
    }
}
