//! Hardware and model cost models for the `agentsim` workspace.
//!
//! The paper measures agents on NVIDIA A100 GPUs serving Llama-3.1 8B/70B
//! through vLLM. This crate replaces the physical hardware with an
//! analytical substitute:
//!
//! * [`GpuSpec`] — peak FLOP/s, HBM bandwidth, and power envelope,
//! * [`ModelSpec`] — transformer shape (layers, heads, KV heads, params)
//!   from which weight bytes, KV-cache bytes/token, and FLOPs/token follow,
//! * [`ClusterSpec`] — how many GPUs serve one model replica (tensor
//!   parallelism),
//! * [`PerfModel`] — a roofline model: prefill is compute-bound, decode is
//!   bandwidth-bound, matching the published behaviour the paper leans on
//!   (its Fig. 6 and 10),
//! * [`EnergyModel`] — phase-dependent power draw integrated into
//!   energy-per-request (its Table III),
//! * [`LinkSpec`] / [`interconnect::Link`] — interconnect presets
//!   (NVLink/PCIe/RDMA) with FIFO serialization, pricing KV migration in
//!   disaggregated prefill/decode serving,
//! * [`FlipCostModel`] — the idle gap a replica pays to change serving
//!   roles under pool autoscaling (cold weight reload vs. warm reconfig).
//!
//! # Example
//!
//! ```
//! use agentsim_gpu::{ClusterSpec, PerfModel};
//!
//! let cluster = ClusterSpec::a100_llama8b();
//! let perf = PerfModel::new(cluster);
//! // Decoding one token for one request reads all weights once: ~13 ms.
//! let step = perf.decode_step(&[1024]);
//! assert!(step.duration.as_secs_f64() > 0.005);
//! assert!(step.duration.as_secs_f64() < 0.05);
//! ```

pub mod cluster;
pub mod energy;
pub mod flip;
pub mod interconnect;
pub mod model;
pub mod perf;
pub mod spec;

pub use cluster::ClusterSpec;
pub use energy::{EnergyMeter, EnergyModel, Phase};
pub use flip::FlipCostModel;
pub use interconnect::{ChunkedTransfer, Link, LinkSpec, Transfer};
pub use model::ModelSpec;
pub use perf::{PerfModel, StepCost};
pub use spec::GpuSpec;
