//! Cluster specifications: how many GPUs serve one model replica.

use std::fmt;

use crate::model::ModelSpec;
use crate::spec::GpuSpec;

/// One model replica: a model sharded (tensor-parallel) across `gpu_count`
/// identical GPUs.
///
/// The paper serves the 8B model on one A100 and the 70B model on eight
/// (GCP `a2-highgpu-1g` / `a2-highgpu-8g`).
///
/// # Example
///
/// ```
/// use agentsim_gpu::ClusterSpec;
///
/// let c = ClusterSpec::a100x8_llama70b();
/// assert_eq!(c.gpu_count, 8);
/// assert!(c.kv_pool_bytes() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// The GPU model used for every shard.
    pub gpu: GpuSpec,
    /// Number of GPUs in the tensor-parallel group.
    pub gpu_count: u32,
    /// The model served by this replica.
    pub model: ModelSpec,
    /// Fraction of post-weight HBM reserved for the KV cache pool
    /// (vLLM's `gpu_memory_utilization` analog). Default 0.9.
    pub kv_memory_fraction: f64,
    /// Per-step tensor-parallel synchronization cost in seconds per layer
    /// (all-reduce latency); zero when `gpu_count == 1`.
    pub tp_sync_per_layer_s: f64,
}

impl ClusterSpec {
    /// One A100-40GB serving Llama-3.1-8B — the paper's default setup.
    pub fn a100_llama8b() -> Self {
        ClusterSpec {
            gpu: GpuSpec::a100_40gb(),
            gpu_count: 1,
            model: ModelSpec::llama3_8b(),
            kv_memory_fraction: 0.9,
            tp_sync_per_layer_s: 0.0,
        }
    }

    /// Eight A100-40GB serving Llama-3.1-70B (tensor parallel 8).
    pub fn a100x8_llama70b() -> Self {
        ClusterSpec {
            gpu: GpuSpec::a100_40gb(),
            gpu_count: 8,
            model: ModelSpec::llama3_70b(),
            kv_memory_fraction: 0.9,
            tp_sync_per_layer_s: 20e-6,
        }
    }

    /// One H100-80GB serving Llama-3.1-8B — a premium small-model replica
    /// for heterogeneous fleets.
    pub fn h100_llama8b() -> Self {
        ClusterSpec {
            gpu: GpuSpec::h100_80gb(),
            gpu_count: 1,
            model: ModelSpec::llama3_8b(),
            kv_memory_fraction: 0.9,
            tp_sync_per_layer_s: 0.0,
        }
    }

    /// Four H100-80GB serving Llama-3.1-70B (tensor parallel 4) — the
    /// premium large-model tier: 141 GiB of weights fit in 320 GiB of HBM.
    pub fn h100x4_llama70b() -> Self {
        ClusterSpec {
            gpu: GpuSpec::h100_80gb(),
            gpu_count: 4,
            model: ModelSpec::llama3_70b(),
            kv_memory_fraction: 0.9,
            tp_sync_per_layer_s: 15e-6,
        }
    }

    /// One L40S-48GB serving Llama-3.1-8B — the consumer-class cheap tier.
    pub fn l40s_llama8b() -> Self {
        ClusterSpec {
            gpu: GpuSpec::l40s_48gb(),
            gpu_count: 1,
            model: ModelSpec::llama3_8b(),
            kv_memory_fraction: 0.9,
            tp_sync_per_layer_s: 0.0,
        }
    }

    /// Returns a copy with a different KV memory fraction (used by the
    /// paper's Fig. 17 KV-pool sweep).
    pub fn with_kv_memory_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction > 0.0,
            "kv memory fraction must be positive, got {fraction}"
        );
        self.kv_memory_fraction = fraction;
        self
    }

    /// Aggregate peak FLOP/s across the replica.
    pub fn total_flops(&self) -> f64 {
        self.gpu.peak_flops * self.gpu_count as f64
    }

    /// Aggregate HBM bandwidth across the replica.
    pub fn total_bandwidth(&self) -> f64 {
        self.gpu.hbm_bandwidth * self.gpu_count as f64
    }

    /// Aggregate HBM capacity across the replica.
    pub fn total_hbm_bytes(&self) -> u64 {
        self.gpu.hbm_bytes * self.gpu_count as u64
    }

    /// HBM left after weights, before the KV fraction is applied.
    ///
    /// # Panics
    ///
    /// Panics if the model does not fit on the cluster at all.
    pub fn free_after_weights(&self) -> u64 {
        let weights = self.model.weight_bytes();
        let total = self.total_hbm_bytes();
        assert!(
            weights < total,
            "{} ({} GiB) does not fit on {}x {}",
            self.model.name,
            weights >> 30,
            self.gpu_count,
            self.gpu.name
        );
        total - weights
    }

    /// Bytes available for the KV cache pool.
    ///
    /// `kv_memory_fraction` is expressed relative to the *weight size* when
    /// reproducing the paper's Fig. 17 ("reserved memory size relative to
    /// the LLM model weight size"), so values above 1.0 are allowed; the
    /// result is always capped by physically free HBM.
    pub fn kv_pool_bytes(&self) -> u64 {
        let by_fraction = (self.model.weight_bytes() as f64 * self.kv_memory_fraction) as u64;
        by_fraction.min(self.free_after_weights())
    }

    /// Per-decode-step tensor-parallel synchronization overhead in seconds.
    pub fn tp_sync_s(&self) -> f64 {
        if self.gpu_count <= 1 {
            0.0
        } else {
            self.tp_sync_per_layer_s * self.model.layers as f64
        }
    }

    /// Validates the composite specification.
    ///
    /// # Errors
    ///
    /// Returns a message if any component is invalid, `gpu_count == 0`, or
    /// the weights do not fit.
    pub fn validate(&self) -> Result<(), String> {
        self.gpu.validate()?;
        self.model.validate()?;
        if self.gpu_count == 0 {
            return Err("gpu_count must be at least 1".to_string());
        }
        if !(self.kv_memory_fraction.is_finite() && self.kv_memory_fraction > 0.0) {
            return Err(format!(
                "kv_memory_fraction must be positive, got {}",
                self.kv_memory_fraction
            ));
        }
        if self.model.weight_bytes() >= self.total_hbm_bytes() {
            return Err(format!(
                "{} does not fit on {}x {}",
                self.model.name, self.gpu_count, self.gpu.name
            ));
        }
        Ok(())
    }
}

impl fmt::Display for ClusterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x {} serving {}",
            self.gpu_count, self.gpu.name, self.model.name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        ClusterSpec::a100_llama8b().validate().unwrap();
        ClusterSpec::a100x8_llama70b().validate().unwrap();
        ClusterSpec::h100_llama8b().validate().unwrap();
        ClusterSpec::h100x4_llama70b().validate().unwrap();
        ClusterSpec::l40s_llama8b().validate().unwrap();
    }

    #[test]
    fn heterogeneous_presets_differ_in_step_floor_inputs() {
        // The parallel drivers' per-replica lookahead depends on
        // weights / bandwidth: make sure the presets actually spread.
        let a100 = ClusterSpec::a100_llama8b();
        let h100 = ClusterSpec::h100_llama8b();
        let l40s = ClusterSpec::l40s_llama8b();
        assert!(h100.total_bandwidth() > a100.total_bandwidth());
        assert!(l40s.total_bandwidth() < a100.total_bandwidth());
        let b70 = ClusterSpec::h100x4_llama70b();
        assert!(b70.model.weight_bytes() < b70.total_hbm_bytes());
        assert!(b70.tp_sync_s() > 0.0);
    }

    #[test]
    fn kv_pool_is_bounded_by_free_hbm() {
        // 8B weights are ~16 GiB on a 40 GiB card: a 2.0x-weights pool
        // (32 GiB) exceeds the ~24 GiB free and must be capped.
        let c = ClusterSpec::a100_llama8b().with_kv_memory_fraction(2.0);
        assert_eq!(c.kv_pool_bytes(), c.free_after_weights());
        // A 0.1x pool fits comfortably.
        let small = ClusterSpec::a100_llama8b().with_kv_memory_fraction(0.1);
        assert!(small.kv_pool_bytes() < c.kv_pool_bytes());
    }

    #[test]
    fn seventy_b_needs_eight_gpus() {
        let mut c = ClusterSpec::a100x8_llama70b();
        c.gpu_count = 2;
        assert!(c.validate().is_err(), "141 GiB of weights on 80 GiB");
    }

    #[test]
    fn tp_sync_only_with_multiple_gpus() {
        assert_eq!(ClusterSpec::a100_llama8b().tp_sync_s(), 0.0);
        let c = ClusterSpec::a100x8_llama70b();
        assert!(c.tp_sync_s() > 0.0);
        assert!((c.tp_sync_s() - 80.0 * 20e-6).abs() < 1e-12);
    }

    #[test]
    fn totals_scale_with_gpu_count() {
        let one = ClusterSpec::a100_llama8b();
        let eight = ClusterSpec::a100x8_llama70b();
        assert_eq!(eight.total_flops(), 8.0 * one.total_flops());
        assert_eq!(eight.total_hbm_bytes(), 8 * one.total_hbm_bytes());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_fraction_rejected() {
        let _ = ClusterSpec::a100_llama8b().with_kv_memory_fraction(0.0);
    }
}
