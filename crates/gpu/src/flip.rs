//! The cost of flipping a replica between serving roles.
//!
//! Pool autoscaling (Splitwise-style "mixed pool" rebalancing) moves a
//! replica between the prefill and decode pools at runtime. The flip is
//! not free: in the conservative deployment the replica reloads model
//! weights from host memory (cold flip), while an optimized deployment
//! keeps weights resident and only pays a scheduler/runtime
//! reconfiguration pause (warm flip). [`FlipCostModel`] prices that
//! pause; the serving driver keeps the replica idle for
//! [`FlipCostModel::flip_time`] between drain completion and rejoining
//! the target pool.
//!
//! # Example
//!
//! ```
//! use agentsim_gpu::{ClusterSpec, FlipCostModel};
//!
//! let cold = FlipCostModel::pcie_reload(&ClusterSpec::a100_llama8b());
//! let warm = FlipCostModel::warm();
//! // Reloading ~16 GiB of weights over PCIe dwarfs a warm reconfig.
//! assert!(cold.flip_time() > warm.flip_time());
//! assert!(FlipCostModel::zero().flip_time().is_zero());
//! ```

use agentsim_simkit::SimDuration;

use crate::cluster::ClusterSpec;

/// Prices the idle gap a replica pays when it changes serving roles.
#[derive(Debug, Clone, PartialEq)]
pub struct FlipCostModel {
    /// Stable preset name (used in reports and traces).
    pub name: &'static str,
    /// Bytes that must be (re)loaded before the replica can serve in its
    /// new role — model weights for a cold flip, zero for a warm one.
    pub reload_bytes: u64,
    /// Sustained bandwidth of the reload path in bytes per second
    /// (ignored when `reload_bytes == 0`).
    pub bandwidth_bytes_per_s: f64,
    /// Fixed reconfiguration overhead paid by every flip regardless of
    /// reload size (scheduler restart, KV-pool reshape, CUDA graph
    /// capture).
    pub overhead: SimDuration,
}

impl FlipCostModel {
    /// Cold flip: reload the cluster's full weights over a PCIe Gen4 x16
    /// host link (~24 GB/s sustained) plus a one-second runtime restart.
    pub fn pcie_reload(cluster: &ClusterSpec) -> Self {
        FlipCostModel {
            name: "pcie_reload",
            reload_bytes: cluster.model.weight_bytes(),
            bandwidth_bytes_per_s: 24e9,
            overhead: SimDuration::from_secs(1),
        }
    }

    /// Warm flip: weights stay resident; the replica only pays a 250 ms
    /// scheduler/KV-pool reconfiguration pause.
    pub fn warm() -> Self {
        FlipCostModel {
            name: "warm",
            reload_bytes: 0,
            bandwidth_bytes_per_s: f64::INFINITY,
            overhead: SimDuration::from_millis(250),
        }
    }

    /// Free flips (what-if upper bound, and differential tests).
    pub fn zero() -> Self {
        FlipCostModel {
            name: "zero",
            reload_bytes: 0,
            bandwidth_bytes_per_s: f64::INFINITY,
            overhead: SimDuration::ZERO,
        }
    }

    /// The idle gap between finishing the drain and serving in the new
    /// role.
    pub fn flip_time(&self) -> SimDuration {
        let reload_s = if self.reload_bytes == 0 {
            0.0
        } else {
            self.reload_bytes as f64 / self.bandwidth_bytes_per_s
        };
        self.overhead + SimDuration::from_secs_f64(reload_s)
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns a message if the bandwidth is non-positive or NaN while
    /// bytes must move, or the overhead would not be representable.
    pub fn validate(&self) -> Result<(), String> {
        if self.reload_bytes > 0
            && !(self.bandwidth_bytes_per_s.is_finite() && self.bandwidth_bytes_per_s > 0.0)
        {
            return Err(format!(
                "flip model '{}' moves {} bytes but has bandwidth {}",
                self.name, self.reload_bytes, self.bandwidth_bytes_per_s
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        FlipCostModel::pcie_reload(&ClusterSpec::a100_llama8b())
            .validate()
            .unwrap();
        FlipCostModel::warm().validate().unwrap();
        FlipCostModel::zero().validate().unwrap();
    }

    #[test]
    fn cold_flip_is_reload_dominated() {
        let cluster = ClusterSpec::a100_llama8b();
        let cold = FlipCostModel::pcie_reload(&cluster);
        let reload_s = cluster.model.weight_bytes() as f64 / 24e9;
        let total = cold.flip_time().as_secs_f64();
        assert!((total - (reload_s + 1.0)).abs() < 1e-6, "flip {total}s");
        // ~16 GiB over 24 GB/s is several hundred ms on top of overhead.
        assert!(total > 1.5, "cold flip {total}s");
    }

    #[test]
    fn warm_flip_is_overhead_only() {
        assert_eq!(
            FlipCostModel::warm().flip_time(),
            SimDuration::from_millis(250)
        );
        assert!(FlipCostModel::zero().flip_time().is_zero());
    }

    #[test]
    fn invalid_bandwidth_rejected() {
        let bad = FlipCostModel {
            name: "bad",
            reload_bytes: 1,
            bandwidth_bytes_per_s: 0.0,
            overhead: SimDuration::ZERO,
        };
        assert!(bad.validate().is_err());
    }
}
