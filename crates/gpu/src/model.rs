//! Transformer model specifications.

use std::fmt;

/// Architectural shape of a decoder-only transformer checkpoint.
///
/// Everything the serving simulator needs — weight bytes, KV bytes per
/// token, FLOPs per token — derives from these fields.
///
/// # Example
///
/// ```
/// use agentsim_gpu::ModelSpec;
///
/// let m = ModelSpec::llama3_8b();
/// // 2 (K+V) x 32 layers x 8 KV heads x 128 head dim x 2 bytes = 128 KiB.
/// assert_eq!(m.kv_bytes_per_token(), 131_072);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Checkpoint name, e.g. `"Llama-3.1-8B-Instruct"`.
    pub name: &'static str,
    /// Total parameter count.
    pub params: u64,
    /// Number of transformer layers.
    pub layers: u32,
    /// Model (residual stream) width.
    pub hidden: u32,
    /// Number of attention (query) heads.
    pub heads: u32,
    /// Number of key/value heads (grouped-query attention).
    pub kv_heads: u32,
    /// Dimension of each attention head.
    pub head_dim: u32,
    /// Bytes per parameter / activation element (2 for FP16/BF16).
    pub dtype_bytes: u32,
    /// Maximum context window in tokens.
    pub max_context: u32,
}

impl ModelSpec {
    /// Llama-3.1-8B-Instruct — the paper's default backend LLM.
    pub fn llama3_8b() -> Self {
        ModelSpec {
            name: "Llama-3.1-8B-Instruct",
            params: 8_030_000_000,
            layers: 32,
            hidden: 4096,
            heads: 32,
            kv_heads: 8,
            head_dim: 128,
            dtype_bytes: 2,
            max_context: 131_072,
        }
    }

    /// Llama-3.1-70B-Instruct — used in the paper's Section V model-size
    /// study.
    pub fn llama3_70b() -> Self {
        ModelSpec {
            name: "Llama-3.1-70B-Instruct",
            params: 70_600_000_000,
            layers: 80,
            hidden: 8192,
            heads: 64,
            kv_heads: 8,
            head_dim: 128,
            dtype_bytes: 2,
            max_context: 131_072,
        }
    }

    /// Bytes of KV cache stored per token across all layers
    /// (`2 x layers x kv_heads x head_dim x dtype_bytes`).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.layers as u64
            * self.kv_heads as u64
            * self.head_dim as u64
            * self.dtype_bytes as u64
    }

    /// Bytes occupied by the model weights.
    pub fn weight_bytes(&self) -> u64 {
        self.params * self.dtype_bytes as u64
    }

    /// Dense FLOPs to process one token through the MLP/projection weights
    /// (the classic `2 x params` estimate).
    pub fn flops_per_token_dense(&self) -> f64 {
        2.0 * self.params as f64
    }

    /// Attention FLOPs for one token attending over a context of
    /// `context_len` tokens (`4 x layers x heads x head_dim x context`,
    /// covering the QKᵀ and AV matmuls).
    pub fn flops_per_token_attn(&self, context_len: u64) -> f64 {
        4.0 * self.layers as f64 * self.heads as f64 * self.head_dim as f64 * context_len as f64
    }

    /// Total FLOPs to process one token at the given context length.
    pub fn flops_per_token(&self, context_len: u64) -> f64 {
        self.flops_per_token_dense() + self.flops_per_token_attn(context_len)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message if any dimension is zero or `kv_heads > heads`.
    pub fn validate(&self) -> Result<(), String> {
        if self.params == 0
            || self.layers == 0
            || self.hidden == 0
            || self.heads == 0
            || self.kv_heads == 0
            || self.head_dim == 0
            || self.dtype_bytes == 0
            || self.max_context == 0
        {
            return Err(format!("{}: all dimensions must be positive", self.name));
        }
        if self.kv_heads > self.heads {
            return Err(format!(
                "{}: kv_heads ({}) exceeds heads ({})",
                self.name, self.kv_heads, self.heads
            ));
        }
        Ok(())
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.1}B params, {} layers, {} KiB KV/token)",
            self.name,
            self.params as f64 / 1e9,
            self.layers,
            self.kv_bytes_per_token() / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        ModelSpec::llama3_8b().validate().unwrap();
        ModelSpec::llama3_70b().validate().unwrap();
    }

    #[test]
    fn kv_bytes_match_architecture() {
        // 8B: 2*32*8*128*2 = 128 KiB/token; 70B: 2*80*8*128*2 = 320 KiB/token.
        assert_eq!(ModelSpec::llama3_8b().kv_bytes_per_token(), 131_072);
        assert_eq!(ModelSpec::llama3_70b().kv_bytes_per_token(), 327_680);
    }

    #[test]
    fn weight_bytes_are_fp16() {
        let m = ModelSpec::llama3_8b();
        assert_eq!(m.weight_bytes(), m.params * 2);
        // ~16 GB (≈15 GiB): does not fit twice in a 40 GB A100.
        assert!(m.weight_bytes() > 14 * (1u64 << 30));
    }

    #[test]
    fn attention_flops_grow_with_context() {
        let m = ModelSpec::llama3_8b();
        assert!(m.flops_per_token(4096) > m.flops_per_token(1024));
        assert_eq!(m.flops_per_token_attn(0), 0.0);
    }

    #[test]
    fn dense_flops_dominate_short_contexts() {
        let m = ModelSpec::llama3_8b();
        assert!(m.flops_per_token_dense() > m.flops_per_token_attn(1000));
    }

    #[test]
    fn validate_catches_gqa_inversion() {
        let mut m = ModelSpec::llama3_8b();
        m.kv_heads = 64;
        assert!(m.validate().is_err());
    }
}
