//! Interconnect model for moving KV-cache state between replicas.
//!
//! Disaggregated prefill/decode serving (Splitwise-style) migrates a
//! request's KV blocks from the prefill pool to the decode pool after the
//! first token. The cost of that migration is what this module prices: a
//! [`LinkSpec`] gives a link's effective bandwidth and base latency, and a
//! stateful [`Link`] adds FIFO serialization — transfers on the same link
//! queue behind each other, so a burst of migrations sees head-of-line
//! waiting on top of the wire time.
//!
//! # Example
//!
//! ```
//! use agentsim_gpu::interconnect::{Link, LinkSpec};
//! use agentsim_simkit::SimTime;
//!
//! let mut link = Link::new(LinkSpec::pcie_gen4());
//! let a = link.schedule(SimTime::ZERO, 64 << 20); // 64 MiB
//! let b = link.schedule(SimTime::ZERO, 64 << 20); // queues behind `a`
//! assert_eq!(b.start, a.end);
//! assert!(b.wait > agentsim_simkit::SimDuration::ZERO);
//! ```

use agentsim_simkit::{SimDuration, SimTime};

/// Static description of one interconnect link: effective bandwidth plus a
/// fixed per-transfer latency (setup, descriptor exchange, first-byte
/// latency).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Human-readable name, used in reports.
    pub name: &'static str,
    /// Effective (not peak) bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Fixed latency charged to every transfer regardless of size.
    pub latency: SimDuration,
}

impl LinkSpec {
    /// NVLink 4 within a node: ~450 GB/s peak per direction, ~300 GB/s
    /// effective for bulk KV copies, microsecond-scale latency.
    pub fn nvlink4() -> Self {
        LinkSpec {
            name: "nvlink4",
            bandwidth_bytes_per_s: 300e9,
            latency: SimDuration::from_micros(5),
        }
    }

    /// PCIe Gen4 x16 host path: 32 GB/s peak, ~24 GB/s effective.
    pub fn pcie_gen4() -> Self {
        LinkSpec {
            name: "pcie_gen4",
            bandwidth_bytes_per_s: 24e9,
            latency: SimDuration::from_micros(15),
        }
    }

    /// Cross-node RDMA over 400 Gb/s fabric: 50 GB/s line rate, ~40 GB/s
    /// effective, with network round-trip setup latency.
    pub fn rdma_400g() -> Self {
        LinkSpec {
            name: "rdma_400g",
            bandwidth_bytes_per_s: 40e9,
            latency: SimDuration::from_micros(25),
        }
    }

    /// GPU↔host-DRAM DMA path for KV offload: the same PCIe Gen4 x16 wire
    /// as [`LinkSpec::pcie_gen4`], but with a shorter per-transfer setup —
    /// demote/promote copies are driver-initiated DMA, not a cross-replica
    /// descriptor exchange.
    pub fn pcie_host() -> Self {
        LinkSpec {
            name: "pcie_host",
            bandwidth_bytes_per_s: 24e9,
            latency: SimDuration::from_micros(10),
        }
    }

    /// Host↔NVMe tier for cold KV: a striped pair of datacenter Gen4
    /// drives, ~3 GB/s effective for large sequential KV segments, with
    /// flash-read latency per transfer.
    pub fn nvme() -> Self {
        LinkSpec {
            name: "nvme",
            bandwidth_bytes_per_s: 3e9,
            latency: SimDuration::from_micros(100),
        }
    }

    /// An idealized free link: infinite bandwidth, zero latency. Used by
    /// conservation tests to show disaggregation with no transfer cost
    /// reproduces colocated behaviour.
    pub fn zero_cost() -> Self {
        LinkSpec {
            name: "zero_cost",
            bandwidth_bytes_per_s: f64::INFINITY,
            latency: SimDuration::ZERO,
        }
    }

    /// Wire time for `bytes` on an idle link: latency + bytes/bandwidth.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_s)
    }

    /// Panics if the spec is not physically meaningful.
    pub fn validate(&self) {
        assert!(
            self.bandwidth_bytes_per_s > 0.0,
            "link bandwidth must be positive, got {}",
            self.bandwidth_bytes_per_s
        );
    }
}

/// The outcome of scheduling one transfer on a [`Link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the transfer begins moving bytes (>= the request time when the
    /// link is busy).
    pub start: SimTime,
    /// When the last byte arrives.
    pub end: SimTime,
    /// Head-of-line wait before the transfer started.
    pub wait: SimDuration,
    /// Pure wire time (latency + serialization), excluding the wait.
    pub duration: SimDuration,
}

/// A transfer split into FIFO-interleaved layer chunks on one [`Link`].
///
/// Each chunk carries its own [`Transfer`] schedule; the chunks of one
/// migration reserve the link back-to-back (no foreign transfer lands
/// between them), so the train's last `end` is when the full footprint has
/// arrived. Produced by [`Link::schedule_chunked`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkedTransfer {
    chunks: Vec<Transfer>,
    bytes: u64,
    /// The link's `busy_until` before this train was scheduled — where the
    /// reservation rolls back to if the transfer is reclaimed while still
    /// the newest thing on the link.
    reserved_from: SimTime,
}

impl ChunkedTransfer {
    /// Per-chunk schedules, in shipping order.
    pub fn chunks(&self) -> &[Transfer] {
        &self.chunks
    }

    /// Total payload across all chunks.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// When the first chunk begins moving bytes.
    pub fn start(&self) -> SimTime {
        self.chunks[0].start
    }

    /// When the last byte of the last chunk arrives.
    pub fn end(&self) -> SimTime {
        self.chunks[self.chunks.len() - 1].end
    }

    /// Head-of-line wait before the first chunk started. Later chunks
    /// queue only behind their own predecessors, which is pipeline
    /// occupancy rather than contention, so it is not counted here.
    pub fn wait(&self) -> SimDuration {
        self.chunks[0].wait
    }

    /// Total wire time across all chunks — exactly the serial
    /// [`LinkSpec::transfer_time`] of the whole footprint, by the
    /// cumulative-prefix pricing in [`Link::schedule_chunked`].
    pub fn duration(&self) -> SimDuration {
        self.chunks.iter().map(|c| c.duration).sum()
    }
}

/// A stateful link that serializes transfers FIFO: each transfer starts no
/// earlier than the previous one finished.
#[derive(Debug, Clone)]
pub struct Link {
    spec: LinkSpec,
    busy_until: SimTime,
    transfers: u64,
    chunks: u64,
    bytes_moved: u64,
    busy_time: SimDuration,
    wait_time: SimDuration,
}

impl Link {
    /// A new idle link.
    pub fn new(spec: LinkSpec) -> Self {
        spec.validate();
        Link {
            spec,
            busy_until: SimTime::ZERO,
            transfers: 0,
            chunks: 0,
            bytes_moved: 0,
            busy_time: SimDuration::ZERO,
            wait_time: SimDuration::ZERO,
        }
    }

    /// The static spec this link was built from.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// Schedules a transfer of `bytes` requested at `now`; it starts once
    /// the link is free and occupies it for the full wire time.
    pub fn schedule(&mut self, now: SimTime, bytes: u64) -> Transfer {
        let start = now.max(self.busy_until);
        let duration = self.spec.transfer_time(bytes);
        let end = start + duration;
        let wait = start.saturating_since(now);
        self.busy_until = end;
        self.transfers += 1;
        self.chunks += 1;
        self.bytes_moved += bytes;
        self.busy_time += duration;
        self.wait_time += wait;
        Transfer {
            start,
            end,
            wait,
            duration,
        }
    }

    /// Schedules one logical transfer as a train of chunks, each a
    /// `(ready, bytes)` pair: the chunk may not start moving before
    /// `ready` (its layer has not finished prefilling yet) and may not
    /// start before the previous chunk — FIFO per link, and the train
    /// reserves the link atomically so no other transfer interleaves.
    ///
    /// Chunk wire time is priced by cumulative prefix: chunk `k` costs
    /// `D(prefix_k) - D(prefix_{k-1})` where `D(b)` is the serialization
    /// time of `b` bytes, with the fixed link latency charged to chunk 0
    /// only. The per-chunk durations therefore telescope to exactly the
    /// serial [`LinkSpec::transfer_time`] of the whole footprint in
    /// integer microseconds — so a chunked train on an idle link never
    /// finishes later than the serial transfer would have, and a
    /// single-chunk plan reproduces [`Link::schedule`] bit for bit.
    ///
    /// Ready times earlier than the caller's clock are legal and are the
    /// whole point: they model layers that finished prefilling before the
    /// migration was committed, retroactively overlapping wire time with
    /// compute. Ready times must be nondecreasing.
    pub fn schedule_chunked(&mut self, plan: &[(SimTime, u64)]) -> ChunkedTransfer {
        assert!(!plan.is_empty(), "a chunked transfer needs >= 1 chunk");
        let reserved_from = self.busy_until;
        let mut chunks = Vec::with_capacity(plan.len());
        let mut bytes = 0u64;
        let mut wired = SimDuration::ZERO;
        for (k, &(ready, chunk_bytes)) in plan.iter().enumerate() {
            debug_assert!(
                k == 0 || ready >= plan[k - 1].0,
                "chunk ready times must be nondecreasing"
            );
            bytes += chunk_bytes;
            let cumulative =
                SimDuration::from_secs_f64(bytes as f64 / self.spec.bandwidth_bytes_per_s);
            let mut duration = cumulative - wired;
            wired = cumulative;
            if k == 0 {
                duration = self.spec.latency + duration;
            }
            let start = ready.max(self.busy_until);
            let end = start + duration;
            let wait = start.saturating_since(ready);
            self.busy_until = end;
            self.busy_time += duration;
            // Chunks after the first only ever queue behind their own
            // train, so head-of-line wait is chunk 0's alone.
            if k == 0 {
                self.wait_time += wait;
            }
            chunks.push(Transfer {
                start,
                end,
                wait,
                duration,
            });
        }
        self.transfers += 1;
        self.chunks += plan.len() as u64;
        self.bytes_moved += bytes;
        ChunkedTransfer {
            chunks,
            bytes,
            reserved_from,
        }
    }

    /// Rolls back a previously scheduled chunked transfer whose payload
    /// was cancelled before it mattered: the counters stop claiming its
    /// bytes and wire time as useful work, and — if the train is still
    /// the newest reservation on the link — the link's availability
    /// horizon rolls back so later traffic no longer queues behind KV
    /// that will never ship. Returns `true` when the reservation itself
    /// was recovered; `false` when later transfers already queued behind
    /// it (their schedules are committed, so the hole in the timeline
    /// stays, but it is no longer accounted as busy time).
    pub fn reclaim(&mut self, transfer: &ChunkedTransfer) -> bool {
        self.transfers -= 1;
        self.chunks -= transfer.chunks.len() as u64;
        self.bytes_moved -= transfer.bytes;
        self.busy_time = self.busy_time.saturating_sub(transfer.duration());
        self.wait_time = self.wait_time.saturating_sub(transfer.wait());
        if self.busy_until == transfer.end() {
            self.busy_until = transfer.reserved_from;
            true
        } else {
            false
        }
    }

    /// Number of transfers scheduled so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Number of chunks scheduled so far (== transfers when every
    /// transfer is serial).
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Total bytes moved across all transfers.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total wire time across all transfers.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Total head-of-line wait across all transfers.
    pub fn wait_time(&self) -> SimDuration {
        self.wait_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_serialization() {
        let spec = LinkSpec {
            name: "test",
            bandwidth_bytes_per_s: 1e9,
            latency: SimDuration::from_micros(10),
        };
        // 1 MB at 1 GB/s = 1 ms, plus 10 us latency.
        assert_eq!(
            spec.transfer_time(1_000_000),
            SimDuration::from_micros(1_010)
        );
    }

    #[test]
    fn presets_are_ordered_by_bandwidth() {
        let nv = LinkSpec::nvlink4();
        let pcie = LinkSpec::pcie_gen4();
        let rdma = LinkSpec::rdma_400g();
        nv.validate();
        pcie.validate();
        rdma.validate();
        assert!(nv.bandwidth_bytes_per_s > rdma.bandwidth_bytes_per_s);
        assert!(rdma.bandwidth_bytes_per_s > pcie.bandwidth_bytes_per_s);
        let bytes = 256 << 20;
        assert!(nv.transfer_time(bytes) < rdma.transfer_time(bytes));
        assert!(rdma.transfer_time(bytes) < pcie.transfer_time(bytes));
    }

    #[test]
    fn offload_presets_sit_below_the_migration_links() {
        let host = LinkSpec::pcie_host();
        let nvme = LinkSpec::nvme();
        host.validate();
        nvme.validate();
        // The offload hierarchy is strictly slower per tier: host DRAM is
        // PCIe-bound, NVMe is an order of magnitude below that.
        assert!(LinkSpec::nvlink4().bandwidth_bytes_per_s > host.bandwidth_bytes_per_s);
        assert!(host.bandwidth_bytes_per_s > nvme.bandwidth_bytes_per_s);
        assert!(host.latency < nvme.latency);
        // A 2 MiB KV block (16 tokens of the 8B preset) promotes from host
        // in well under a millisecond, but an NVMe read is ~0.8 ms — the
        // gap the invocation-distance policy exists to hide.
        let block = 2 << 20;
        assert!(host.transfer_time(block) < SimDuration::from_micros(200));
        assert!(nvme.transfer_time(block) > SimDuration::from_micros(500));
    }

    #[test]
    fn zero_cost_link_is_free() {
        let spec = LinkSpec::zero_cost();
        assert_eq!(spec.transfer_time(u64::MAX), SimDuration::ZERO);
        let mut link = Link::new(spec);
        let t = link.schedule(SimTime::from_micros(42), 1 << 30);
        assert_eq!(t.start, SimTime::from_micros(42));
        assert_eq!(t.end, SimTime::from_micros(42));
        assert_eq!(t.wait, SimDuration::ZERO);
    }

    #[test]
    fn back_to_back_transfers_serialize_fifo() {
        let mut link = Link::new(LinkSpec {
            name: "test",
            bandwidth_bytes_per_s: 1e9,
            latency: SimDuration::ZERO,
        });
        let a = link.schedule(SimTime::ZERO, 1_000_000); // 1 ms
        let b = link.schedule(SimTime::from_micros(400), 1_000_000);
        assert_eq!(a.end, SimTime::from_micros(1_000));
        assert_eq!(b.start, a.end);
        assert_eq!(b.wait, SimDuration::from_micros(600));
        assert_eq!(b.end, SimTime::from_micros(2_000));
        // After the link drains, a later transfer starts immediately.
        let c = link.schedule(SimTime::from_micros(5_000), 500_000);
        assert_eq!(c.start, SimTime::from_micros(5_000));
        assert_eq!(c.wait, SimDuration::ZERO);
        assert_eq!(link.transfers(), 3);
        assert_eq!(link.chunks(), 3);
        assert_eq!(link.bytes_moved(), 2_500_000);
        assert_eq!(link.wait_time(), SimDuration::from_micros(600));
    }

    fn test_spec() -> LinkSpec {
        LinkSpec {
            name: "test",
            bandwidth_bytes_per_s: 1e9,
            latency: SimDuration::from_micros(10),
        }
    }

    #[test]
    fn single_chunk_plan_matches_serial_schedule_bit_for_bit() {
        for bytes in [0u64, 1, 999, 1_000_000, (64 << 20) + 7] {
            for now_us in [0u64, 42, 123_456] {
                let now = SimTime::from_micros(now_us);
                let mut serial = Link::new(test_spec());
                let mut chunked = Link::new(test_spec());
                // Pre-load both links with identical traffic.
                serial.schedule(SimTime::ZERO, 500_000);
                chunked.schedule(SimTime::ZERO, 500_000);
                let a = serial.schedule(now, bytes);
                let b = chunked.schedule_chunked(&[(now, bytes)]);
                assert_eq!(b.chunks(), &[a]);
                assert_eq!(
                    (b.start(), b.end(), b.wait(), b.duration()),
                    (a.start, a.end, a.wait, a.duration)
                );
                assert_eq!(serial.busy_time(), chunked.busy_time());
                assert_eq!(serial.wait_time(), chunked.wait_time());
                assert_eq!(serial.chunks(), chunked.chunks());
            }
        }
    }

    #[test]
    fn chunk_durations_telescope_to_the_serial_wire_time() {
        // Chosen so naive per-chunk rounding would overshoot: 5.6 us per
        // chunk rounds to 6, but the prefix pricing keeps the sum at
        // round(11.2) = 11 plus latency.
        let mut link = Link::new(test_spec());
        let t = link.schedule_chunked(&[(SimTime::ZERO, 5_600), (SimTime::ZERO, 5_600)]);
        assert_eq!(t.duration(), test_spec().transfer_time(11_200));
        assert_eq!(t.end(), SimTime::ZERO + t.duration());
    }

    #[test]
    fn chunked_train_never_finishes_after_the_serial_transfer() {
        for n in [1usize, 2, 3, 7, 32] {
            let bytes = 96_000_007u64;
            let now = SimTime::from_micros(50_000);
            let mut serial = Link::new(test_spec());
            let mut chunked = Link::new(test_spec());
            let a = serial.schedule(now, bytes);
            // Layer k finished prefilling (n-1-k) * 1ms before now.
            let base = bytes / n as u64;
            let rem = (bytes % n as u64) as usize;
            let plan: Vec<(SimTime, u64)> = (0..n)
                .map(|k| {
                    let lead = 1_000 * (n - 1 - k) as u64;
                    let ready = SimTime::from_micros(now.as_micros() - lead);
                    (ready, base + u64::from(k < rem))
                })
                .collect();
            let b = chunked.schedule_chunked(&plan);
            assert_eq!(b.bytes(), bytes);
            assert!(b.end() <= a.end, "n={n}: {:?} > {:?}", b.end(), a.end);
            // FIFO within the train: chunks never overlap on the wire.
            for w in b.chunks().windows(2) {
                assert!(w[1].start >= w[0].end);
            }
        }
    }

    #[test]
    fn early_ready_chunks_overlap_wire_time_with_compute() {
        // 4 chunks of 1 ms each; chunks became ready 3/2/1/0 ms before
        // the migration committed at t=10ms. The train back-fills the
        // idle wire and only the last chunk's tail is exposed.
        let mut link = Link::new(LinkSpec {
            name: "test",
            bandwidth_bytes_per_s: 1e9,
            latency: SimDuration::ZERO,
        });
        let plan: Vec<(SimTime, u64)> = (0..4)
            .map(|k| (SimTime::from_micros(7_000 + 1_000 * k), 1_000_000u64))
            .collect();
        let t = link.schedule_chunked(&plan);
        assert_eq!(t.start(), SimTime::from_micros(7_000));
        assert_eq!(t.end(), SimTime::from_micros(11_000));
        // Serial would have been 10ms + 4ms = 14ms.
        assert_eq!(t.wait(), SimDuration::ZERO);
    }

    #[test]
    fn reclaim_rolls_back_the_tail_reservation() {
        let mut link = Link::new(test_spec());
        let a = link.schedule(SimTime::ZERO, 1_000_000);
        let b = link.schedule_chunked(&[(SimTime::ZERO, 400_000), (SimTime::ZERO, 600_000)]);
        assert_eq!(link.transfers(), 2);
        assert_eq!(link.chunks(), 3);
        assert!(link.reclaim(&b));
        assert_eq!(link.transfers(), 1);
        assert_eq!(link.chunks(), 1);
        assert_eq!(link.bytes_moved(), 1_000_000);
        assert_eq!(link.busy_time(), a.duration);
        // The wire is free again right after `a`: a new transfer starts
        // where the cancelled train would have.
        let c = link.schedule(SimTime::ZERO, 1_000);
        assert_eq!(c.start, a.end);
    }

    #[test]
    fn reclaim_behind_later_traffic_keeps_the_hole_but_fixes_counters() {
        let mut link = Link::new(test_spec());
        let a = link.schedule_chunked(&[(SimTime::ZERO, 1_000_000)]);
        let b = link.schedule(SimTime::ZERO, 1_000_000);
        assert!(!link.reclaim(&a));
        assert_eq!(link.transfers(), 1);
        assert_eq!(link.bytes_moved(), 1_000_000);
        // `b`'s committed schedule still stands.
        let c = link.schedule(SimTime::ZERO, 1_000);
        assert_eq!(c.start, b.end);
    }
}
