//! Interconnect model for moving KV-cache state between replicas.
//!
//! Disaggregated prefill/decode serving (Splitwise-style) migrates a
//! request's KV blocks from the prefill pool to the decode pool after the
//! first token. The cost of that migration is what this module prices: a
//! [`LinkSpec`] gives a link's effective bandwidth and base latency, and a
//! stateful [`Link`] adds FIFO serialization — transfers on the same link
//! queue behind each other, so a burst of migrations sees head-of-line
//! waiting on top of the wire time.
//!
//! # Example
//!
//! ```
//! use agentsim_gpu::interconnect::{Link, LinkSpec};
//! use agentsim_simkit::SimTime;
//!
//! let mut link = Link::new(LinkSpec::pcie_gen4());
//! let a = link.schedule(SimTime::ZERO, 64 << 20); // 64 MiB
//! let b = link.schedule(SimTime::ZERO, 64 << 20); // queues behind `a`
//! assert_eq!(b.start, a.end);
//! assert!(b.wait > agentsim_simkit::SimDuration::ZERO);
//! ```

use agentsim_simkit::{SimDuration, SimTime};

/// Static description of one interconnect link: effective bandwidth plus a
/// fixed per-transfer latency (setup, descriptor exchange, first-byte
/// latency).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Human-readable name, used in reports.
    pub name: &'static str,
    /// Effective (not peak) bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Fixed latency charged to every transfer regardless of size.
    pub latency: SimDuration,
}

impl LinkSpec {
    /// NVLink 4 within a node: ~450 GB/s peak per direction, ~300 GB/s
    /// effective for bulk KV copies, microsecond-scale latency.
    pub fn nvlink4() -> Self {
        LinkSpec {
            name: "nvlink4",
            bandwidth_bytes_per_s: 300e9,
            latency: SimDuration::from_micros(5),
        }
    }

    /// PCIe Gen4 x16 host path: 32 GB/s peak, ~24 GB/s effective.
    pub fn pcie_gen4() -> Self {
        LinkSpec {
            name: "pcie_gen4",
            bandwidth_bytes_per_s: 24e9,
            latency: SimDuration::from_micros(15),
        }
    }

    /// Cross-node RDMA over 400 Gb/s fabric: 50 GB/s line rate, ~40 GB/s
    /// effective, with network round-trip setup latency.
    pub fn rdma_400g() -> Self {
        LinkSpec {
            name: "rdma_400g",
            bandwidth_bytes_per_s: 40e9,
            latency: SimDuration::from_micros(25),
        }
    }

    /// GPU↔host-DRAM DMA path for KV offload: the same PCIe Gen4 x16 wire
    /// as [`LinkSpec::pcie_gen4`], but with a shorter per-transfer setup —
    /// demote/promote copies are driver-initiated DMA, not a cross-replica
    /// descriptor exchange.
    pub fn pcie_host() -> Self {
        LinkSpec {
            name: "pcie_host",
            bandwidth_bytes_per_s: 24e9,
            latency: SimDuration::from_micros(10),
        }
    }

    /// Host↔NVMe tier for cold KV: a striped pair of datacenter Gen4
    /// drives, ~3 GB/s effective for large sequential KV segments, with
    /// flash-read latency per transfer.
    pub fn nvme() -> Self {
        LinkSpec {
            name: "nvme",
            bandwidth_bytes_per_s: 3e9,
            latency: SimDuration::from_micros(100),
        }
    }

    /// An idealized free link: infinite bandwidth, zero latency. Used by
    /// conservation tests to show disaggregation with no transfer cost
    /// reproduces colocated behaviour.
    pub fn zero_cost() -> Self {
        LinkSpec {
            name: "zero_cost",
            bandwidth_bytes_per_s: f64::INFINITY,
            latency: SimDuration::ZERO,
        }
    }

    /// Wire time for `bytes` on an idle link: latency + bytes/bandwidth.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_s)
    }

    /// Panics if the spec is not physically meaningful.
    pub fn validate(&self) {
        assert!(
            self.bandwidth_bytes_per_s > 0.0,
            "link bandwidth must be positive, got {}",
            self.bandwidth_bytes_per_s
        );
    }
}

/// The outcome of scheduling one transfer on a [`Link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the transfer begins moving bytes (>= the request time when the
    /// link is busy).
    pub start: SimTime,
    /// When the last byte arrives.
    pub end: SimTime,
    /// Head-of-line wait before the transfer started.
    pub wait: SimDuration,
    /// Pure wire time (latency + serialization), excluding the wait.
    pub duration: SimDuration,
}

/// A stateful link that serializes transfers FIFO: each transfer starts no
/// earlier than the previous one finished.
#[derive(Debug, Clone)]
pub struct Link {
    spec: LinkSpec,
    busy_until: SimTime,
    transfers: u64,
    bytes_moved: u64,
    busy_time: SimDuration,
    wait_time: SimDuration,
}

impl Link {
    /// A new idle link.
    pub fn new(spec: LinkSpec) -> Self {
        spec.validate();
        Link {
            spec,
            busy_until: SimTime::ZERO,
            transfers: 0,
            bytes_moved: 0,
            busy_time: SimDuration::ZERO,
            wait_time: SimDuration::ZERO,
        }
    }

    /// The static spec this link was built from.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// Schedules a transfer of `bytes` requested at `now`; it starts once
    /// the link is free and occupies it for the full wire time.
    pub fn schedule(&mut self, now: SimTime, bytes: u64) -> Transfer {
        let start = now.max(self.busy_until);
        let duration = self.spec.transfer_time(bytes);
        let end = start + duration;
        let wait = start.saturating_since(now);
        self.busy_until = end;
        self.transfers += 1;
        self.bytes_moved += bytes;
        self.busy_time += duration;
        self.wait_time += wait;
        Transfer {
            start,
            end,
            wait,
            duration,
        }
    }

    /// Number of transfers scheduled so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved across all transfers.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total wire time across all transfers.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Total head-of-line wait across all transfers.
    pub fn wait_time(&self) -> SimDuration {
        self.wait_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_serialization() {
        let spec = LinkSpec {
            name: "test",
            bandwidth_bytes_per_s: 1e9,
            latency: SimDuration::from_micros(10),
        };
        // 1 MB at 1 GB/s = 1 ms, plus 10 us latency.
        assert_eq!(
            spec.transfer_time(1_000_000),
            SimDuration::from_micros(1_010)
        );
    }

    #[test]
    fn presets_are_ordered_by_bandwidth() {
        let nv = LinkSpec::nvlink4();
        let pcie = LinkSpec::pcie_gen4();
        let rdma = LinkSpec::rdma_400g();
        nv.validate();
        pcie.validate();
        rdma.validate();
        assert!(nv.bandwidth_bytes_per_s > rdma.bandwidth_bytes_per_s);
        assert!(rdma.bandwidth_bytes_per_s > pcie.bandwidth_bytes_per_s);
        let bytes = 256 << 20;
        assert!(nv.transfer_time(bytes) < rdma.transfer_time(bytes));
        assert!(rdma.transfer_time(bytes) < pcie.transfer_time(bytes));
    }

    #[test]
    fn offload_presets_sit_below_the_migration_links() {
        let host = LinkSpec::pcie_host();
        let nvme = LinkSpec::nvme();
        host.validate();
        nvme.validate();
        // The offload hierarchy is strictly slower per tier: host DRAM is
        // PCIe-bound, NVMe is an order of magnitude below that.
        assert!(LinkSpec::nvlink4().bandwidth_bytes_per_s > host.bandwidth_bytes_per_s);
        assert!(host.bandwidth_bytes_per_s > nvme.bandwidth_bytes_per_s);
        assert!(host.latency < nvme.latency);
        // A 2 MiB KV block (16 tokens of the 8B preset) promotes from host
        // in well under a millisecond, but an NVMe read is ~0.8 ms — the
        // gap the invocation-distance policy exists to hide.
        let block = 2 << 20;
        assert!(host.transfer_time(block) < SimDuration::from_micros(200));
        assert!(nvme.transfer_time(block) > SimDuration::from_micros(500));
    }

    #[test]
    fn zero_cost_link_is_free() {
        let spec = LinkSpec::zero_cost();
        assert_eq!(spec.transfer_time(u64::MAX), SimDuration::ZERO);
        let mut link = Link::new(spec);
        let t = link.schedule(SimTime::from_micros(42), 1 << 30);
        assert_eq!(t.start, SimTime::from_micros(42));
        assert_eq!(t.end, SimTime::from_micros(42));
        assert_eq!(t.wait, SimDuration::ZERO);
    }

    #[test]
    fn back_to_back_transfers_serialize_fifo() {
        let mut link = Link::new(LinkSpec {
            name: "test",
            bandwidth_bytes_per_s: 1e9,
            latency: SimDuration::ZERO,
        });
        let a = link.schedule(SimTime::ZERO, 1_000_000); // 1 ms
        let b = link.schedule(SimTime::from_micros(400), 1_000_000);
        assert_eq!(a.end, SimTime::from_micros(1_000));
        assert_eq!(b.start, a.end);
        assert_eq!(b.wait, SimDuration::from_micros(600));
        assert_eq!(b.end, SimTime::from_micros(2_000));
        // After the link drains, a later transfer starts immediately.
        let c = link.schedule(SimTime::from_micros(5_000), 500_000);
        assert_eq!(c.start, SimTime::from_micros(5_000));
        assert_eq!(c.wait, SimDuration::ZERO);
        assert_eq!(link.transfers(), 3);
        assert_eq!(link.bytes_moved(), 2_500_000);
        assert_eq!(link.wait_time(), SimDuration::from_micros(600));
    }
}
