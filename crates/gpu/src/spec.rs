//! GPU hardware specifications.

use std::fmt;

/// Peak capabilities and power envelope of one GPU.
///
/// The numbers are public spec-sheet values; the efficiency factors that
/// translate peaks into achieved rates live in [`crate::PerfModel`].
///
/// # Example
///
/// ```
/// use agentsim_gpu::GpuSpec;
///
/// let a100 = GpuSpec::a100_40gb();
/// assert_eq!(a100.hbm_bytes, 40 * (1 << 30));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"NVIDIA A100-SXM4-40GB"`.
    pub name: &'static str,
    /// Peak dense FP16/BF16 throughput in FLOP/s.
    pub peak_flops: f64,
    /// HBM capacity in bytes.
    pub hbm_bytes: u64,
    /// Peak HBM bandwidth in bytes/s.
    pub hbm_bandwidth: f64,
    /// Power draw when idle (no kernels resident), in watts.
    pub idle_power_w: f64,
    /// Board power at full load (TDP), in watts.
    pub peak_power_w: f64,
}

impl GpuSpec {
    /// NVIDIA A100-SXM4-40GB — the GPU used throughout the paper
    /// (GCP `a2-highgpu` instances).
    pub fn a100_40gb() -> Self {
        GpuSpec {
            name: "NVIDIA A100-SXM4-40GB",
            peak_flops: 312e12,
            hbm_bytes: 40 * (1 << 30),
            hbm_bandwidth: 1_555e9,
            idle_power_w: 60.0,
            peak_power_w: 400.0,
        }
    }

    /// NVIDIA H100-SXM5-80GB — provided for what-if extensions beyond the
    /// paper's testbed.
    pub fn h100_80gb() -> Self {
        GpuSpec {
            name: "NVIDIA H100-SXM5-80GB",
            peak_flops: 989e12,
            hbm_bytes: 80 * (1 << 30),
            hbm_bandwidth: 3_350e9,
            idle_power_w: 75.0,
            peak_power_w: 700.0,
        }
    }

    /// NVIDIA L40S-48GB — a consumer-adjacent inference card (GDDR6, no
    /// NVLink) used for the heterogeneous-fleet cheap tier.
    pub fn l40s_48gb() -> Self {
        GpuSpec {
            name: "NVIDIA L40S-48GB",
            peak_flops: 362e12,
            hbm_bytes: 48 * (1 << 30),
            hbm_bandwidth: 864e9,
            idle_power_w: 30.0,
            peak_power_w: 350.0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message if any field is non-positive or the
    /// idle power exceeds the peak power.
    pub fn validate(&self) -> Result<(), String> {
        if self.peak_flops <= 0.0 {
            return Err(format!("{}: peak_flops must be positive", self.name));
        }
        if self.hbm_bytes == 0 {
            return Err(format!("{}: hbm_bytes must be positive", self.name));
        }
        if self.hbm_bandwidth <= 0.0 {
            return Err(format!("{}: hbm_bandwidth must be positive", self.name));
        }
        if self.idle_power_w < 0.0 || self.peak_power_w <= self.idle_power_w {
            return Err(format!(
                "{}: power envelope invalid (idle {} W, peak {} W)",
                self.name, self.idle_power_w, self.peak_power_w
            ));
        }
        Ok(())
    }
}

impl fmt::Display for GpuSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.0} TFLOPS, {} GiB @ {:.0} GB/s, {:.0}-{:.0} W)",
            self.name,
            self.peak_flops / 1e12,
            self.hbm_bytes >> 30,
            self.hbm_bandwidth / 1e9,
            self.idle_power_w,
            self.peak_power_w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        GpuSpec::a100_40gb().validate().unwrap();
        GpuSpec::h100_80gb().validate().unwrap();
        GpuSpec::l40s_48gb().validate().unwrap();
    }

    #[test]
    fn a100_matches_spec_sheet() {
        let g = GpuSpec::a100_40gb();
        assert_eq!(g.peak_flops, 312e12);
        assert_eq!(g.hbm_bandwidth, 1_555e9);
        assert!(g.peak_power_w > g.idle_power_w);
    }

    #[test]
    fn validate_catches_bad_power() {
        let mut g = GpuSpec::a100_40gb();
        g.peak_power_w = 10.0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn display_is_informative() {
        let s = GpuSpec::a100_40gb().to_string();
        assert!(s.contains("A100"));
        assert!(s.contains("312"));
    }
}
