//! Phase-dependent GPU power and per-request energy accounting.
//!
//! The paper's Table III reports GPU energy per query (Wh) and scales it to
//! datacenter power. We model power as phase-dependent: prefill runs the
//! GPU near its TDP, decode is memory-bound and draws less (further reduced
//! per-GPU under tensor parallelism, where collectives stall compute), and
//! idle draws the baseline.

use std::fmt;

use agentsim_simkit::SimDuration;

use crate::cluster::ClusterSpec;

/// Execution phase of the serving replica, for power accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Prompt processing: compute-saturated.
    Prefill,
    /// Token generation: bandwidth-bound.
    Decode,
    /// No kernels resident (e.g. the agent is waiting on a tool).
    Idle,
}

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; 3] = [Phase::Prefill, Phase::Decode, Phase::Idle];
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Prefill => "prefill",
            Phase::Decode => "decode",
            Phase::Idle => "idle",
        })
    }
}

/// Maps phases to replica-wide power draw (watts across all GPUs).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    prefill_w: f64,
    decode_w: f64,
    idle_w: f64,
    gpu_count: u32,
}

impl EnergyModel {
    /// Activity factor (fraction of the idle→peak power range) during
    /// prefill.
    pub const PREFILL_ACTIVITY: f64 = 0.95;

    /// Creates an energy model for one replica.
    ///
    /// Decode activity shrinks with tensor-parallel degree: collectives and
    /// bandwidth stalls keep each GPU further from its TDP.
    pub fn new(cluster: &ClusterSpec) -> Self {
        let g = &cluster.gpu;
        let n = cluster.gpu_count;
        let decode_activity = 0.60 / (1.0 + 0.10 * (n.saturating_sub(1)) as f64);
        let per = |activity: f64| g.idle_power_w + (g.peak_power_w - g.idle_power_w) * activity;
        EnergyModel {
            prefill_w: per(Self::PREFILL_ACTIVITY) * n as f64,
            decode_w: per(decode_activity) * n as f64,
            idle_w: g.idle_power_w * n as f64,
            gpu_count: n,
        }
    }

    /// Replica-wide power draw in the given phase, in watts.
    pub fn power_w(&self, phase: Phase) -> f64 {
        match phase {
            Phase::Prefill => self.prefill_w,
            Phase::Decode => self.decode_w,
            Phase::Idle => self.idle_w,
        }
    }

    /// Number of GPUs in the replica.
    pub fn gpu_count(&self) -> u32 {
        self.gpu_count
    }
}

/// Accumulates energy over phase-labelled time spans.
///
/// # Example
///
/// ```
/// use agentsim_gpu::{ClusterSpec, EnergyMeter, EnergyModel, Phase};
/// use agentsim_simkit::SimDuration;
///
/// let model = EnergyModel::new(&ClusterSpec::a100_llama8b());
/// let mut meter = EnergyMeter::new(model);
/// meter.add(Phase::Decode, SimDuration::from_secs(10));
/// meter.add(Phase::Idle, SimDuration::from_secs(5));
/// assert!(meter.watt_hours() > 0.0);
/// assert_eq!(meter.duration(Phase::Idle), SimDuration::from_secs(5));
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    model: EnergyModel,
    joules: f64,
    durations: [SimDuration; 3],
}

impl EnergyMeter {
    /// Creates a meter over the given energy model.
    pub fn new(model: EnergyModel) -> Self {
        EnergyMeter {
            model,
            joules: 0.0,
            durations: [SimDuration::ZERO; 3],
        }
    }

    /// Records `duration` spent in `phase`.
    pub fn add(&mut self, phase: Phase, duration: SimDuration) {
        self.joules += self.model.power_w(phase) * duration.as_secs_f64();
        self.durations[Self::slot(phase)] += duration;
    }

    /// Total accumulated energy in joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Total accumulated energy in watt-hours (the paper's unit).
    pub fn watt_hours(&self) -> f64 {
        self.joules / 3600.0
    }

    /// Time recorded in a phase.
    pub fn duration(&self, phase: Phase) -> SimDuration {
        self.durations[Self::slot(phase)]
    }

    /// Total time recorded across all phases.
    pub fn total_duration(&self) -> SimDuration {
        self.durations.iter().copied().sum()
    }

    /// The underlying energy model.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// Merges another meter's accumulation into this one.
    ///
    /// # Panics
    ///
    /// Panics if the meters were built from different energy models.
    pub fn merge(&mut self, other: &EnergyMeter) {
        assert_eq!(
            self.model, other.model,
            "cannot merge meters over different energy models"
        );
        self.joules += other.joules;
        for (i, d) in other.durations.iter().enumerate() {
            self.durations[i] += *d;
        }
    }

    fn slot(phase: Phase) -> usize {
        match phase {
            Phase::Prefill => 0,
            Phase::Decode => 1,
            Phase::Idle => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_8b() -> EnergyModel {
        EnergyModel::new(&ClusterSpec::a100_llama8b())
    }

    fn model_70b() -> EnergyModel {
        EnergyModel::new(&ClusterSpec::a100x8_llama70b())
    }

    #[test]
    fn phase_power_ordering() {
        let m = model_8b();
        assert!(m.power_w(Phase::Prefill) > m.power_w(Phase::Decode));
        assert!(m.power_w(Phase::Decode) > m.power_w(Phase::Idle));
    }

    #[test]
    fn single_a100_decode_power_is_calibrated() {
        // ~264 W keeps a ShareGPT query (≈4 s of decode) near the paper's
        // 0.32 Wh figure.
        let w = model_8b().power_w(Phase::Decode);
        assert!((240.0..290.0).contains(&w), "decode power {w} W");
    }

    #[test]
    fn tensor_parallel_lowers_per_gpu_decode_power() {
        let per_gpu_8 = model_70b().power_w(Phase::Decode) / 8.0;
        let per_gpu_1 = model_8b().power_w(Phase::Decode);
        assert!(per_gpu_8 < per_gpu_1);
    }

    #[test]
    fn sharegpt_style_query_energy_in_band() {
        // ≈0.2 s prefill + 4 s decode on one A100.
        let mut meter = EnergyMeter::new(model_8b());
        meter.add(Phase::Prefill, SimDuration::from_millis(200));
        meter.add(Phase::Decode, SimDuration::from_secs(4));
        let wh = meter.watt_hours();
        assert!(
            (0.2..0.5).contains(&wh),
            "query energy {wh} Wh (paper: 0.32)"
        );
    }

    #[test]
    fn meter_accumulates_and_merges() {
        let mut a = EnergyMeter::new(model_8b());
        a.add(Phase::Decode, SimDuration::from_secs(1));
        let mut b = EnergyMeter::new(model_8b());
        b.add(Phase::Idle, SimDuration::from_secs(2));
        a.merge(&b);
        assert_eq!(a.duration(Phase::Decode), SimDuration::from_secs(1));
        assert_eq!(a.duration(Phase::Idle), SimDuration::from_secs(2));
        assert_eq!(a.total_duration(), SimDuration::from_secs(3));
        let expected = model_8b().power_w(Phase::Decode) + 2.0 * model_8b().power_w(Phase::Idle);
        assert!((a.joules() - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "different energy models")]
    fn merge_rejects_mismatched_models() {
        let mut a = EnergyMeter::new(model_8b());
        let b = EnergyMeter::new(model_70b());
        a.merge(&b);
    }

    #[test]
    fn idle_energy_is_nonzero() {
        let mut m = EnergyMeter::new(model_8b());
        m.add(Phase::Idle, SimDuration::from_secs(60));
        assert!((m.joules() - 3600.0).abs() < 1.0, "60 W x 60 s");
    }
}
