//! Property-based tests for the statistics utilities.

use agentsim_metrics::{Histogram, Samples, Summary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn summary_merge_equals_concatenation(
        a in prop::collection::vec(-1e6f64..1e6, 0..100),
        b in prop::collection::vec(-1e6f64..1e6, 0..100),
    ) {
        let mut left: Summary = a.iter().copied().collect();
        let right: Summary = b.iter().copied().collect();
        left.merge(&right);
        let whole: Summary = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(left.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((left.variance() - whole.variance()).abs() < 1e-3);
            prop_assert_eq!(left.min(), whole.min());
            prop_assert_eq!(left.max(), whole.max());
        }
    }

    #[test]
    fn percentiles_are_monotone_and_bounded(
        values in prop::collection::vec(-1e6f64..1e6, 1..200),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let mut s: Samples = values.iter().copied().collect();
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let vlo = s.percentile(lo);
        let vhi = s.percentile(hi);
        prop_assert!(vlo <= vhi, "percentile must be monotone: p{lo}={vlo} > p{hi}={vhi}");
        prop_assert!(vlo >= s.summary().min());
        prop_assert!(vhi <= s.summary().max());
    }

    #[test]
    fn median_is_an_actual_sample(values in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let mut s: Samples = values.iter().copied().collect();
        let m = s.median();
        prop_assert!(values.contains(&m), "nearest-rank median must be a sample");
    }

    #[test]
    fn histogram_conserves_mass(
        values in prop::collection::vec(-50.0f64..150.0, 0..300),
    ) {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        let binned: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
        prop_assert_eq!(binned, values.len() as u64);
    }

    #[test]
    fn tail_fraction_is_a_probability(
        values in prop::collection::vec(0.0f64..100.0, 1..100),
        cut in 0.0f64..100.0,
    ) {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for &v in &values {
            h.record(v);
        }
        let t = h.tail_fraction(cut);
        prop_assert!((0.0..=1.0).contains(&t));
        prop_assert!(h.tail_fraction(0.0) >= t, "tail shrinks with the cut");
    }

    #[test]
    fn summary_scale_invariance(values in prop::collection::vec(1.0f64..1e3, 2..50)) {
        let s: Summary = values.iter().copied().collect();
        let doubled: Summary = values.iter().map(|v| v * 2.0).collect();
        prop_assert!((doubled.mean() - 2.0 * s.mean()).abs() < 1e-9);
        prop_assert!((doubled.std_dev() - 2.0 * s.std_dev()).abs() < 1e-6);
    }
}
