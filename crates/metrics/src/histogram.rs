//! Fixed-width histograms for latency distributions.

use std::fmt;

/// A fixed-width histogram over `[lo, hi)` with values outside the range
/// clamped into the first/last bin.
///
/// # Example
///
/// ```
/// use agentsim_metrics::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.record(0.5);
/// h.record(1.5);
/// h.record(1.7);
/// assert_eq!(h.count(0), 1);
/// assert_eq!(h.count(1), 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "invalid histogram range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Records one value (clamped into range).
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite (NaN would otherwise fail both
    /// range comparisons and be silently miscounted in the first bin).
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "histogram values must be finite");
        let bins = self.counts.len();
        let idx = if value < self.lo {
            0
        } else if value >= self.hi {
            bins - 1
        } else {
            (((value - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
    }

    /// Count in bin `idx`.
    pub fn count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// `(bin_start, bin_end, count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts.iter().enumerate().map(move |(i, &c)| {
            (
                self.lo + i as f64 * width,
                self.lo + (i + 1) as f64 * width,
                c,
            )
        })
    }

    /// Fraction of mass at or above `value` (tail weight).
    ///
    /// Bins entirely at or above `value` count in full; a bin straddled
    /// mid-bin contributes pro rata by the covered width (assuming mass
    /// is uniform within the bin). Without the straddled share, a
    /// threshold just past a bin start would drop that whole bin and
    /// quantize the tail to bin boundaries.
    pub fn tail_fraction(&self, value: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let tail: f64 = self
            .iter()
            .map(|(start, end, c)| {
                if start >= value {
                    c as f64
                } else if end > value {
                    // Straddled bin: the share of its width above `value`.
                    c as f64 * (end - value) / (end - start)
                } else {
                    0.0
                }
            })
            .sum();
        tail / total as f64
    }

    /// Renders an ASCII bar chart (one line per non-empty bin).
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (start, end, c) in self.iter() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat(((c as f64 / max as f64) * width as f64).ceil() as usize);
            out.push_str(&format!("{start:8.2}-{end:<8.2} {c:6} {bar}\n"));
        }
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram[{} bins over {}..{}, n={}]",
            self.bins(),
            self.lo,
            self.hi,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for v in 0..100 {
            h.record(v as f64);
        }
        for i in 0..10 {
            assert_eq!(h.count(i), 10);
        }
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-5.0);
        h.record(50.0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(4), 1);
    }

    #[test]
    fn tail_fraction_measures_mass() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for v in [1.0, 2.0, 8.5, 9.5] {
            h.record(v);
        }
        assert!((h.tail_fraction(8.0) - 0.5).abs() < 1e-12);
        assert_eq!(h.tail_fraction(20.0), 0.0);
    }

    #[test]
    fn tail_fraction_includes_straddled_bin_pro_rata() {
        // Four values all inside bin [8, 9). A mid-bin threshold used to
        // drop the whole bin (tail quantized to 0); pro-rata keeps the
        // covered share: (9 - 8.5) / 1 of the bin's 4 observations.
        let mut h = Histogram::new(0.0, 10.0, 10);
        for v in [8.1, 8.2, 8.6, 8.9] {
            h.record(v);
        }
        assert!((h.tail_fraction(8.5) - 0.5).abs() < 1e-12);
        // Threshold exactly on a bin edge keeps full-bin semantics.
        assert!((h.tail_fraction(8.0) - 1.0).abs() < 1e-12);
        assert!((h.tail_fraction(9.0) - 0.0).abs() < 1e-12);
        // Thresholds below the range cover everything.
        assert!((h.tail_fraction(-1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_fraction_is_monotone_in_threshold() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        let mut prev = 1.0;
        for i in 0..=100 {
            let t = i as f64 / 10.0;
            let f = h.tail_fraction(t);
            assert!(f <= prev + 1e-12, "tail_fraction({t}) = {f} > {prev}");
            prev = f;
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinity_rejected() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(f64::INFINITY);
    }

    #[test]
    fn render_skips_empty_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(1.0);
        let s = h.render(20);
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
