//! Exact percentile computation over collected samples.

use std::fmt;

use crate::summary::Summary;

/// A collected sample set with exact percentile queries.
///
/// Sorting is cached and invalidated on insertion, so repeated percentile
/// queries over a finished run are cheap.
///
/// # Example
///
/// ```
/// use agentsim_metrics::Samples;
///
/// let mut s: Samples = (1..=1000).map(|v| v as f64).collect();
/// assert_eq!(s.percentile(50.0), 500.0);
/// assert_eq!(s.percentile(99.0), 990.0);
/// assert_eq!(s.median(), 500.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
    summary: Summary,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn push(&mut self, value: f64) {
        self.summary.push(value);
        self.values.push(value);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Streaming summary of the same observations.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// The `p`-th percentile (nearest-rank method), `p` in `[0, 100]`.
    ///
    /// An empty set has no percentiles: asking for one is a caller bug
    /// (an all-timeouts run would otherwise report p95 = 0s, which reads
    /// as perfect latency). Use [`Samples::try_percentile`] at report
    /// boundaries where emptiness is a legitimate outcome.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or if the set is empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        self.try_percentile(p)
            .expect("percentile of an empty sample set")
    }

    /// The `p`-th percentile, or `None` for an empty set.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn try_percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.values.len();
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        Some(self.values[rank - 1])
    }

    /// The 50th percentile.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty (see [`Samples::percentile`]).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// The 95th percentile (the paper's tail-latency metric).
    ///
    /// # Panics
    ///
    /// Panics if the set is empty (see [`Samples::percentile`]).
    pub fn p95(&mut self) -> f64 {
        self.percentile(95.0)
    }

    /// The 50th percentile, or `None` for an empty set.
    pub fn try_median(&mut self) -> Option<f64> {
        self.try_percentile(50.0)
    }

    /// The 95th percentile, or `None` for an empty set.
    pub fn try_p95(&mut self) -> Option<f64> {
        self.try_percentile(95.0)
    }

    /// The raw values in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
            self.sorted = true;
        }
    }
}

impl Extend<f64> for Samples {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Samples::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for Samples {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut copy = self.clone();
        write!(
            f,
            "n={} p50={:.3} p95={:.3} max={:.3}",
            copy.len(),
            copy.try_median().unwrap_or(f64::NAN),
            copy.try_p95().unwrap_or(f64::NAN),
            copy.summary().max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut s: Samples = (1..=100).map(|v| v as f64).collect();
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(1.0), 1.0);
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(95.0), 95.0);
        assert_eq!(s.percentile(100.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "percentile of an empty sample set")]
    fn empty_percentile_panics() {
        let mut s = Samples::new();
        let _ = s.p95();
    }

    #[test]
    fn try_percentile_is_none_on_empty_and_some_otherwise() {
        let mut s = Samples::new();
        assert_eq!(s.try_percentile(50.0), None);
        assert_eq!(s.try_median(), None);
        assert_eq!(s.try_p95(), None);
        s.push(4.0);
        assert_eq!(s.try_median(), Some(4.0));
        assert_eq!(s.try_p95(), Some(4.0));
    }

    #[test]
    fn empty_display_shows_nan_not_zero() {
        let s = Samples::new();
        let rendered = format!("{s}");
        assert!(rendered.contains("p50=NaN"), "{rendered}");
        assert!(rendered.contains("p95=NaN"), "{rendered}");
    }

    #[test]
    fn insertion_after_query_invalidates_cache() {
        let mut s: Samples = [5.0, 1.0, 3.0].into_iter().collect();
        assert_eq!(s.median(), 3.0);
        s.push(0.0);
        s.push(0.0);
        assert_eq!(s.median(), 1.0);
    }

    #[test]
    fn summary_agrees_with_values() {
        let s: Samples = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.summary().count(), 3);
        assert_eq!(s.summary().mean(), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_range_checked() {
        let mut s: Samples = [1.0].into_iter().collect();
        let _ = s.percentile(101.0);
    }
}
