//! Datacenter power projections (the paper's Table III).
//!
//! The projection is the paper's formula:
//! `P = (Wh/query) x (queries/day) / 24 h`.

use std::fmt;

/// Daily query volume of today's ChatGPT traffic under the paper's
/// conservative assumption (≈500 M weekly actives → 71.4 M queries/day).
pub const CHATGPT_QUERIES_PER_DAY: f64 = 71.4e6;

/// Daily query volume of Google-search-scale traffic (13.7 B/day).
pub const GOOGLE_QUERIES_PER_DAY: f64 = 13.7e9;

/// Scales per-query energy to a sustained datacenter power draw.
///
/// # Example
///
/// ```
/// use agentsim_metrics::PowerProjection;
///
/// // The paper's ShareGPT/8B anchor: 0.32 Wh/query at 71.4M queries/day
/// // is about a megawatt.
/// let p = PowerProjection::new(0.32);
/// let mw = p.watts(agentsim_metrics::power::CHATGPT_QUERIES_PER_DAY) / 1e6;
/// assert!((0.8..1.2).contains(&mw), "{mw} MW");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerProjection {
    wh_per_query: f64,
}

impl PowerProjection {
    /// Creates a projection from per-query energy in watt-hours.
    ///
    /// # Panics
    ///
    /// Panics if `wh_per_query` is negative or not finite.
    pub fn new(wh_per_query: f64) -> Self {
        assert!(
            wh_per_query.is_finite() && wh_per_query >= 0.0,
            "invalid per-query energy {wh_per_query} Wh"
        );
        PowerProjection { wh_per_query }
    }

    /// Per-query energy in watt-hours.
    pub fn wh_per_query(&self) -> f64 {
        self.wh_per_query
    }

    /// Sustained power (watts) to serve `queries_per_day`.
    pub fn watts(&self, queries_per_day: f64) -> f64 {
        self.wh_per_query * queries_per_day / 24.0
    }

    /// Daily energy (GWh) to serve `queries_per_day`.
    pub fn gwh_per_day(&self, queries_per_day: f64) -> f64 {
        self.wh_per_query * queries_per_day / 1e9
    }
}

/// Formats a wattage with an engineering prefix (`1.0 M`, `23.7 G`, …),
/// mirroring the paper's Table III cells.
pub fn format_watts(watts: f64) -> String {
    if watts >= 1e9 {
        format!("{:.1} GW", watts / 1e9)
    } else if watts >= 1e6 {
        format!("{:.1} MW", watts / 1e6)
    } else if watts >= 1e3 {
        format!("{:.1} kW", watts / 1e3)
    } else {
        format!("{watts:.1} W")
    }
}

impl fmt::Display for PowerProjection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} Wh/query", self.wh_per_query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_sharegpt_8b_anchor() {
        // Paper: 0.32 Wh/query -> 1.0 MW @ 71.4M qpd, 182.7 MW @ 13.7B qpd.
        let p = PowerProjection::new(0.32);
        assert!((p.watts(CHATGPT_QUERIES_PER_DAY) / 1e6 - 0.95).abs() < 0.1);
        assert!((p.watts(GOOGLE_QUERIES_PER_DAY) / 1e6 - 182.7).abs() < 2.0);
    }

    #[test]
    fn table3_reflexion_70b_anchor() {
        // Paper: 348.41 Wh/query -> ~1.0 GW @ 71.4M, ~198.9 GW @ 13.7B.
        let p = PowerProjection::new(348.41);
        assert!((p.watts(CHATGPT_QUERIES_PER_DAY) / 1e9 - 1.04).abs() < 0.05);
        assert!((p.watts(GOOGLE_QUERIES_PER_DAY) / 1e9 - 198.9).abs() < 2.0);
    }

    #[test]
    fn daily_energy_matches_seattle_comparison() {
        // Paper: Reflexion/70B at 71.4M queries/day ≈ 24.89 GWh/day.
        let p = PowerProjection::new(348.41);
        let gwh = p.gwh_per_day(CHATGPT_QUERIES_PER_DAY);
        assert!((gwh - 24.89).abs() < 0.3, "{gwh} GWh/day");
    }

    #[test]
    fn formatting_uses_engineering_prefixes() {
        assert_eq!(format_watts(950.0), "950.0 W");
        assert_eq!(format_watts(1.0e6), "1.0 MW");
        assert_eq!(format_watts(23.7e9), "23.7 GW");
        assert_eq!(format_watts(1.5e3), "1.5 kW");
    }

    #[test]
    #[should_panic(expected = "invalid per-query energy")]
    fn rejects_negative_energy() {
        let _ = PowerProjection::new(-1.0);
    }
}
