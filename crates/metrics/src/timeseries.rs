//! Event-time series: record `(time, value)` observations and query
//! aggregate statistics over the run.

use agentsim_simkit::SimTime;

/// A recorded series of gauge observations (e.g. engine queue depth at
/// every scheduling event).
///
/// Observations are step functions: the value holds from its timestamp
/// until the next observation. Time-weighted statistics therefore weight
/// each value by how long it persisted.
///
/// # Example
///
/// ```
/// use agentsim_metrics::TimeSeries;
/// use agentsim_simkit::SimTime;
///
/// let mut ts = TimeSeries::new();
/// ts.record(SimTime::from_micros(0), 2.0);
/// ts.record(SimTime::from_micros(1_000_000), 6.0);
/// // 2.0 for 1 s, then 6.0 for 1 s.
/// let mean = ts.time_weighted_mean(SimTime::from_micros(2_000_000));
/// assert!((mean - 4.0).abs() < 1e-9);
/// assert_eq!(ts.max(), 6.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Records an observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite or `at` precedes the previous
    /// observation (series are recorded in event order).
    pub fn record(&mut self, at: SimTime, value: f64) {
        assert!(value.is_finite(), "series values must be finite");
        if let Some(&(last, _)) = self.points.last() {
            assert!(at >= last, "observations must be time-ordered");
        }
        self.points.push((at, value));
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw `(time, value)` points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Largest observed value (0 if empty).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Last observed value (0 if empty).
    pub fn last(&self) -> f64 {
        self.points.last().map_or(0.0, |&(_, v)| v)
    }

    /// Time-weighted mean over `[first observation, end]`.
    ///
    /// Returns 0 for an empty series or a zero-length window.
    pub fn time_weighted_mean(&self, end: SimTime) -> f64 {
        let Some(&(start, _)) = self.points.first() else {
            return 0.0;
        };
        let window = end.saturating_since(start).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        let mut area = 0.0;
        for pair in self.points.windows(2) {
            let (t0, v) = pair[0];
            let (t1, _) = pair[1];
            area += v * t1.saturating_since(t0).as_secs_f64();
        }
        let (t_last, v_last) = *self.points.last().expect("non-empty");
        area += v_last * end.saturating_since(t_last).as_secs_f64();
        area / window
    }

    /// Fraction of the window during which the value was at least
    /// `threshold`.
    pub fn fraction_at_least(&self, threshold: f64, end: SimTime) -> f64 {
        let Some(&(start, _)) = self.points.first() else {
            return 0.0;
        };
        let window = end.saturating_since(start).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        let mut above = 0.0;
        for pair in self.points.windows(2) {
            let (t0, v) = pair[0];
            let (t1, _) = pair[1];
            if v >= threshold {
                above += t1.saturating_since(t0).as_secs_f64();
            }
        }
        let (t_last, v_last) = *self.points.last().expect("non-empty");
        if v_last >= threshold {
            above += end.saturating_since(t_last).as_secs_f64();
        }
        above / window
    }

    /// Downsamples to at most `max_points` evenly spaced observations
    /// (for compact reporting). The first and last points are kept.
    pub fn downsample(&self, max_points: usize) -> TimeSeries {
        if self.points.len() <= max_points || max_points < 2 {
            return self.clone();
        }
        let stride = (self.points.len() - 1) as f64 / (max_points - 1) as f64;
        let points = (0..max_points)
            .map(|i| self.points[(i as f64 * stride).round() as usize])
            .collect();
        TimeSeries { points }
    }
}

impl Extend<(SimTime, f64)> for TimeSeries {
    fn extend<I: IntoIterator<Item = (SimTime, f64)>>(&mut self, iter: I) {
        for (at, v) in iter {
            self.record(at, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn weighted_mean_accounts_durations() {
        let mut ts = TimeSeries::new();
        ts.record(t(0.0), 10.0);
        ts.record(t(3.0), 0.0);
        // 10 for 3 s, 0 for 1 s => 30/4.
        assert!((ts.time_weighted_mean(t(4.0)) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn empty_series_is_zeroes() {
        let ts = TimeSeries::new();
        assert_eq!(ts.time_weighted_mean(t(5.0)), 0.0);
        assert_eq!(ts.max(), 0.0);
        assert_eq!(ts.last(), 0.0);
        assert!(ts.is_empty());
    }

    #[test]
    fn fraction_at_least_measures_busy_time() {
        let mut ts = TimeSeries::new();
        ts.record(t(0.0), 1.0);
        ts.record(t(2.0), 5.0);
        ts.record(t(3.0), 0.0);
        // >= 2.0 only during [2, 3): 1 s of 4.
        assert!((ts.fraction_at_least(2.0, t(4.0)) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let mut ts = TimeSeries::new();
        for i in 0..100 {
            ts.record(t(i as f64), i as f64);
        }
        let d = ts.downsample(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.points()[0], (t(0.0), 0.0));
        assert_eq!(d.points()[9], (t(99.0), 99.0));
        // Small series pass through untouched.
        assert_eq!(d.downsample(50), d);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_out_of_order() {
        let mut ts = TimeSeries::new();
        ts.record(t(2.0), 1.0);
        ts.record(t(1.0), 1.0);
    }
}
