//! Plain-text table rendering for figure/table reproduction output.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use agentsim_metrics::Table;
///
/// let mut t = Table::new(vec!["agent".into(), "llm calls".into()]);
/// t.row(vec!["CoT".into(), "1.0".into()]);
/// t.row(vec!["LATS".into(), "71.0".into()]);
/// let s = t.to_string();
/// assert!(s.contains("agent"));
/// assert!(s.contains("71.0"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Convenience: builds the header from string slices.
    pub fn with_columns(cols: &[&str]) -> Self {
        Table::new(cols.iter().map(|c| c.to_string()).collect())
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Appends a row of displayable cells.
    pub fn row_of<T: fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The header labels.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as CSV (for downstream plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
                first = false;
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::with_columns(&["name", "value"]);
        t.row_of(&["a", "1"]);
        t.row_of(&["long-name", "2"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn csv_round_trip_structure() {
        let mut t = Table::with_columns(&["x", "y"]);
        t.row_of(&[1, 2]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::with_columns(&["a"]).row(vec!["1".into(), "2".into()]);
    }
}
