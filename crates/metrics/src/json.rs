//! Minimal JSON utilities for the exporters: string escaping and a
//! dependency-free validity checker.
//!
//! The workspace builds fully offline (no serde), yet the observability
//! exporters emit Chrome `trace_event` JSON and JSONL event logs that CI
//! must be able to verify are well-formed. [`validate`] is a strict
//! recursive-descent parser over the JSON grammar (RFC 8259) that checks
//! syntax without building a document tree.
//!
//! # Example
//!
//! ```
//! use agentsim_metrics::json;
//!
//! json::validate(r#"{"a": [1, 2.5e-3, "x\n", true, null]}"#).unwrap();
//! assert!(json::validate("{broken").is_err());
//! assert_eq!(json::escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
//! ```

/// Escapes a string for embedding inside a JSON string literal (without
/// the surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Checks that `text` is exactly one well-formed JSON value (with
/// optional surrounding whitespace). Returns the byte offset and a
/// description on the first error.
pub fn validate(text: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> String {
        format!("byte {}: {}", self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.error("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.error("bad escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits()?,
            _ => return Err(self.error("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }

    fn digits(&mut self) -> Result<(), String> {
        let mut any = false;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            any = true;
        }
        if any {
            Ok(())
        } else {
            Err(self.error("expected digit"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "-0.5e+10",
            "\"\"",
            r#""é\n""#,
            "[]",
            "{}",
            "[1, [2, {\"a\": null}], \"b\"]",
            r#"{"traceEvents": [{"name": "x", "ph": "X", "ts": 1.5, "dur": 2}]}"#,
            "  {\n\t\"k\" : [ ] }  ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a: 1}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"ctrl \u{0}\"",
            "[1] trailing",
            "NaN",
        ] {
            assert!(validate(doc).is_err(), "accepted invalid {doc:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_validate() {
        let nasty = "he said \"hi\\bye\"\nctrl:\u{1} tab\t";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        validate(&doc).unwrap();
    }
}
