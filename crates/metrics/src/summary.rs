//! Streaming summary statistics (Welford's algorithm).

use std::fmt;

/// Count, mean, variance, min and max of a stream of values, in O(1)
/// memory.
///
/// # Example
///
/// ```
/// use agentsim_metrics::Summary;
///
/// let s: Summary = [2.0, 4.0, 6.0].into_iter().collect();
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 6.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn push(&mut self, value: f64) {
        assert!(value.is_finite(), "summary values must be finite");
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.mean += delta * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a: Summary = (0..50).map(f64::from).collect();
        let b: Summary = (50..100).map(f64::from).collect();
        a.merge(&b);
        let c: Summary = (0..100).map(f64::from).collect();
        assert_eq!(a.count(), c.count());
        assert!((a.mean() - c.mean()).abs() < 1e-9);
        assert!((a.variance() - c.variance()).abs() < 1e-6);
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Summary::new().push(f64::NAN);
    }
}
