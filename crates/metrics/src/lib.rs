//! Statistics and reporting utilities for serving experiments.
//!
//! * [`Summary`] — streaming count/mean/min/max/variance,
//! * [`Samples`] — exact percentiles over collected values (p50/p95/p99),
//! * [`Histogram`] — fixed-width binning for latency distributions
//!   (the paper's Fig. 7),
//! * [`TimeSeries`] — time-weighted gauges (queue depth, batch size),
//! * [`json`] — escape helper and a dependency-free JSON validity
//!   checker backing the trace exporters,
//! * [`power`] — per-query energy → datacenter power projections
//!   (its Table III),
//! * [`Table`] — plain-text table rendering for the `figures` binary.
//!
//! # Example
//!
//! ```
//! use agentsim_metrics::Samples;
//!
//! let mut s = Samples::new();
//! for v in 1..=100 {
//!     s.push(v as f64);
//! }
//! assert_eq!(s.percentile(50.0), 50.0);
//! assert_eq!(s.percentile(95.0), 95.0);
//! ```

pub mod histogram;
pub mod json;
pub mod power;
pub mod samples;
pub mod summary;
pub mod table;
pub mod timeseries;

pub use histogram::Histogram;
pub use power::PowerProjection;
pub use samples::Samples;
pub use summary::Summary;
pub use table::Table;
pub use timeseries::TimeSeries;
