//! Span recording and trace export over [`agentsim_llm`] engine events.
//!
//! A [`SpanRecorder`] implements [`EngineObserver`] and turns the raw
//! event stream into:
//!
//! * **per-request lifecycle spans** ([`RequestSpan`]) — queue, prefill,
//!   decode, and stall segments whose durations sum *exactly* to the
//!   request's end-to-end latency (the invariant the paper's Fig. 5/10
//!   breakdowns rely on),
//! * **engine time-series** — KV block occupancy, running/waiting depth,
//!   and per-step batch token composition, as
//!   [`agentsim_metrics::TimeSeries`],
//! * **exporters** — Chrome `trace_event` JSON
//!   ([`chrome_trace`](SpanRecorder::chrome_trace), loadable in
//!   `chrome://tracing` or Perfetto) and a JSONL event log
//!   ([`events_jsonl`](SpanRecorder::events_jsonl)).
//!
//! The recorder is a cheap clonable handle (`Arc<Mutex<..>>`): attach
//! one clone to the engine as its observer and keep another to read the
//! results after the run. [`ServingSim::attach_recorder`] and
//! [`FleetSim::attach_recorders`] do exactly that.
//!
//! [`ServingSim::attach_recorder`]: crate::ServingSim::attach_recorder
//! [`FleetSim::attach_recorders`]: crate::FleetSim::attach_recorders
//!
//! # Example
//!
//! ```
//! use agentsim_serving::{ServingConfig, ServingSim, ServingWorkload};
//!
//! let cfg = ServingConfig::new(ServingWorkload::Chatbot, 1.0, 5).seed(1);
//! let mut sim = ServingSim::new(cfg);
//! let recorder = sim.attach_recorder();
//! let report = sim.run();
//!
//! let spans = recorder.spans();
//! assert_eq!(spans.len() as u64, report.completed);
//! for span in &spans {
//!     // Queue + prefill + decode + stall reconstruct e2e exactly.
//!     assert_eq!(span.attributed(), span.e2e().unwrap());
//! }
//! agentsim_metrics::json::validate(&recorder.chrome_trace()).unwrap();
//! ```

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use agentsim_llm::{EngineEvent, EngineObserver, RequestId, StepKind};
use agentsim_metrics::{json, TimeSeries};
use agentsim_simkit::{SimDuration, SimTime};

/// What a request was doing during a [`Segment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for admission (initial queueing or post-preemption requeue).
    Queue,
    /// Participating in a prefill batch or prefill chunk.
    Prefill,
    /// Participating in a decode iteration.
    Decode,
    /// KV blocks in flight between a prefill and a decode pool
    /// (disaggregated serving; appears only in stitched spans — see
    /// [`stitch_disagg_span`]).
    Transfer,
    /// Admitted but not advancing (mid-prefill stall in chunked mode, or
    /// a decode-ready bystander of a pure prefill step).
    Stall,
}

impl Phase {
    /// Stable lowercase name (used by exporters).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Queue => "queue",
            Phase::Prefill => "prefill",
            Phase::Decode => "decode",
            Phase::Transfer => "transfer",
            Phase::Stall => "stall",
        }
    }
}

/// A contiguous interval of one request's lifetime in one [`Phase`].
/// Adjacent same-phase intervals are merged as they are recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// The phase.
    pub phase: Phase,
    /// Interval start.
    pub start: SimTime,
    /// Interval end (exclusive).
    pub end: SimTime,
}

impl Segment {
    /// Interval length.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Where a span currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpanState {
    /// In the waiting queue since the given time.
    Queued(SimTime),
    /// In the running set; attributed up to the given time.
    Running(SimTime),
    /// Completed (or migrated off this engine).
    Done,
}

/// The reconstructed lifecycle of one engine request.
///
/// Invariant (verified by tests): for a finished span,
/// `queue_time + prefill_time + decode_time + stall_time` equals the
/// end-to-end latency exactly (integer microseconds), and the prefill and
/// decode components match the engine's own per-completion attribution.
#[derive(Debug, Clone)]
pub struct RequestSpan {
    /// The engine-assigned request id.
    pub id: RequestId,
    /// Submission time.
    pub submitted: SimTime,
    /// Prompt length at submission.
    pub prompt_tokens: u32,
    /// Requested output tokens.
    pub target_out: u32,
    /// First admission into the running set, if it happened.
    pub first_admitted: Option<SimTime>,
    /// Completion time, if the request finished.
    pub finished: Option<SimTime>,
    /// Total time in the waiting queue (including post-preemption).
    pub queue_time: SimDuration,
    /// Total wall time in prefill steps it participated in.
    pub prefill_time: SimDuration,
    /// Total wall time in decode steps it participated in.
    pub decode_time: SimDuration,
    /// KV-migration time (non-zero only in stitched disaggregated spans).
    pub transfer_time: SimDuration,
    /// Total admitted-but-not-advancing time.
    pub stall_time: SimDuration,
    /// Times the request was preempted.
    pub preemptions: u32,
    /// Prompt tokens served from the prefix cache (from the completion).
    pub cached_tokens: u32,
    /// Tokens generated (from the completion).
    pub output_tokens: u32,
    /// Whether the span ended by migrating to a decode pool rather than
    /// by completing (prefill-role engines).
    pub migrated: bool,
    /// Whether the span ended by server-side cancellation (the client
    /// abandoned the request and the engine purged it at a step
    /// boundary). `finished` is the purge time.
    pub abandoned: bool,
    /// Phase timeline, merged and in time order.
    pub segments: Vec<Segment>,
    pub(crate) state: SpanState,
}

impl RequestSpan {
    pub(crate) fn new(id: RequestId, at: SimTime, prompt_tokens: u32, target_out: u32) -> Self {
        RequestSpan {
            id,
            submitted: at,
            prompt_tokens,
            target_out,
            first_admitted: None,
            finished: None,
            queue_time: SimDuration::ZERO,
            prefill_time: SimDuration::ZERO,
            decode_time: SimDuration::ZERO,
            transfer_time: SimDuration::ZERO,
            stall_time: SimDuration::ZERO,
            preemptions: 0,
            cached_tokens: 0,
            output_tokens: 0,
            migrated: false,
            abandoned: false,
            segments: Vec::new(),
            state: SpanState::Queued(at),
        }
    }

    /// Whether the request ran to completion.
    pub fn is_complete(&self) -> bool {
        self.finished.is_some()
    }

    /// End-to-end latency (`None` until finished).
    pub fn e2e(&self) -> Option<SimDuration> {
        self.finished.map(|f| f.saturating_since(self.submitted))
    }

    /// Sum of all attributed phase durations. For a finished span this
    /// equals [`RequestSpan::e2e`] exactly.
    pub fn attributed(&self) -> SimDuration {
        self.queue_time
            + self.prefill_time
            + self.decode_time
            + self.transfer_time
            + self.stall_time
    }

    /// Queue time from submission to first admission only.
    pub fn initial_queue_time(&self) -> SimDuration {
        self.first_admitted
            .map_or(SimDuration::ZERO, |a| a.saturating_since(self.submitted))
    }

    pub(crate) fn push_segment(&mut self, phase: Phase, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        let dur = end.saturating_since(start);
        match phase {
            Phase::Queue => self.queue_time += dur,
            Phase::Prefill => self.prefill_time += dur,
            Phase::Decode => self.decode_time += dur,
            Phase::Transfer => self.transfer_time += dur,
            Phase::Stall => self.stall_time += dur,
        }
        if let Some(last) = self.segments.last_mut() {
            if last.phase == phase && last.end == start {
                last.end = end;
                return;
            }
        }
        self.segments.push(Segment { phase, start, end });
    }

    /// Attributes `[started, ended]` to `phase`, charging any gap since
    /// the last attribution mark as stall.
    pub(crate) fn mark_phase(&mut self, phase: Phase, started: SimTime, ended: SimTime) {
        let SpanState::Running(mark) = self.state else {
            panic!("{}: {phase:?} attribution while not running", self.id);
        };
        if mark < started {
            self.push_segment(Phase::Stall, mark, started);
        }
        self.push_segment(phase, started.max(mark), ended);
        self.state = SpanState::Running(ended);
    }
}

/// One completed engine step (batch composition and cost).
#[derive(Debug, Clone, Copy)]
pub struct StepRecord {
    /// What the step did.
    pub kind: StepKind,
    /// When it started.
    pub started: SimTime,
    /// When it finished.
    pub ended: SimTime,
    /// FLOPs executed.
    pub flops: f64,
    /// Prefill tokens processed across all chunks.
    pub prefill_tokens: u32,
    /// Sequences participating as prefill.
    pub prefill_seqs: u32,
    /// Sequences participating as decode (one token each).
    pub decode_seqs: u32,
}

impl StepRecord {
    /// Step wall time.
    pub fn duration(&self) -> SimDuration {
        self.ended.saturating_since(self.started)
    }
}

#[derive(Debug, Default)]
struct RecorderInner {
    spans: Vec<RequestSpan>,
    steps: Vec<StepRecord>,
    kv_used_blocks: TimeSeries,
    running_depth: TimeSeries,
    waiting_depth: TimeSeries,
    batch_prefill_tokens: TimeSeries,
    batch_decode_seqs: TimeSeries,
    kv_total_blocks: u64,
    jsonl: String,
}

impl RecorderInner {
    fn span_mut(&mut self, id: RequestId) -> &mut RequestSpan {
        self.spans
            .get_mut(id.0 as usize)
            .unwrap_or_else(|| panic!("unobserved request {id}"))
    }

    fn log_line(&mut self, line: std::fmt::Arguments<'_>) {
        let _ = writeln!(self.jsonl, "{line}");
    }

    fn apply(&mut self, event: &EngineEvent<'_>) {
        match *event {
            EngineEvent::Submitted {
                id,
                at,
                prompt_tokens,
                out_tokens,
                priority,
            } => {
                assert_eq!(
                    self.spans.len(),
                    id.0 as usize,
                    "a SpanRecorder must observe a single engine from its first request"
                );
                self.spans
                    .push(RequestSpan::new(id, at, prompt_tokens, out_tokens));
                self.log_line(format_args!(
                    "{{\"event\":\"submit\",\"t_us\":{},\"id\":{},\"prompt_tokens\":{},\
                     \"out_tokens\":{},\"priority\":{}}}",
                    at.as_micros(),
                    id.0,
                    prompt_tokens,
                    out_tokens,
                    priority
                ));
            }
            EngineEvent::Admitted {
                id,
                at,
                new_tokens,
                cached_tokens,
            } => {
                let span = self.span_mut(id);
                let SpanState::Queued(since) = span.state else {
                    panic!("{id}: admitted while not queued");
                };
                span.push_segment(Phase::Queue, since, at);
                if span.first_admitted.is_none() {
                    span.first_admitted = Some(at);
                }
                span.state = SpanState::Running(at);
                self.log_line(format_args!(
                    "{{\"event\":\"admit\",\"t_us\":{},\"id\":{},\"new_tokens\":{},\
                     \"cached_tokens\":{}}}",
                    at.as_micros(),
                    id.0,
                    new_tokens,
                    cached_tokens
                ));
            }
            EngineEvent::StepCompleted {
                kind,
                started,
                ended,
                flops,
                prefill,
                decode,
                kv_used_blocks,
                kv_total_blocks,
                running,
                waiting,
            } => {
                self.kv_total_blocks = kv_total_blocks;
                self.kv_used_blocks.record(ended, kv_used_blocks as f64);
                self.running_depth.record(ended, running as f64);
                self.waiting_depth.record(ended, waiting as f64);
                let prefill_tokens: u32 = prefill.iter().map(|&(_, chunk)| chunk).sum();
                self.batch_prefill_tokens
                    .record(ended, prefill_tokens as f64);
                self.batch_decode_seqs.record(ended, decode.len() as f64);
                self.steps.push(StepRecord {
                    kind,
                    started,
                    ended,
                    flops,
                    prefill_tokens,
                    prefill_seqs: prefill.len() as u32,
                    decode_seqs: decode.len() as u32,
                });
                for &(id, _) in prefill {
                    self.span_mut(id).mark_phase(Phase::Prefill, started, ended);
                }
                for &id in decode {
                    self.span_mut(id).mark_phase(Phase::Decode, started, ended);
                }
                // Everything else still running is stalled for this step.
                for span in &mut self.spans {
                    if let SpanState::Running(mark) = span.state {
                        if mark < ended {
                            span.push_segment(Phase::Stall, mark, ended);
                            span.state = SpanState::Running(ended);
                        }
                    }
                }
                self.log_line(format_args!(
                    "{{\"event\":\"step\",\"kind\":\"{}\",\"t_us\":{},\"dur_us\":{},\
                     \"flops\":{:.3e},\"prefill_tokens\":{},\"prefill_seqs\":{},\
                     \"decode_seqs\":{},\"kv_used_blocks\":{},\"kv_total_blocks\":{},\
                     \"running\":{},\"waiting\":{}}}",
                    kind.name(),
                    ended.as_micros(),
                    ended.saturating_since(started).as_micros(),
                    flops,
                    prefill_tokens,
                    prefill.len(),
                    decode.len(),
                    kv_used_blocks,
                    kv_total_blocks,
                    running,
                    waiting
                ));
            }
            EngineEvent::Preempted { id, at, generated } => {
                let span = self.span_mut(id);
                let SpanState::Running(mark) = span.state else {
                    panic!("{id}: preempted while not running");
                };
                span.push_segment(Phase::Stall, mark, at);
                span.preemptions += 1;
                span.state = SpanState::Queued(at);
                self.log_line(format_args!(
                    "{{\"event\":\"preempt\",\"t_us\":{},\"id\":{},\"generated\":{}}}",
                    at.as_micros(),
                    id.0,
                    generated
                ));
            }
            EngineEvent::Completed { at, completion } => {
                let span = self.span_mut(completion.id);
                let SpanState::Running(mark) = span.state else {
                    panic!("{}: completed while not running", completion.id);
                };
                span.push_segment(Phase::Stall, mark, at);
                span.finished = Some(at);
                span.cached_tokens = completion.cached_tokens;
                span.output_tokens = completion.output_tokens;
                span.state = SpanState::Done;
                self.log_line(format_args!(
                    "{{\"event\":\"complete\",\"t_us\":{},\"id\":{},\"output_tokens\":{},\
                     \"cached_tokens\":{},\"preemptions\":{},\"queue_us\":{},\
                     \"prefill_us\":{},\"decode_us\":{}}}",
                    at.as_micros(),
                    completion.id.0,
                    completion.output_tokens,
                    completion.cached_tokens,
                    completion.preemptions,
                    completion.queue_time().as_micros(),
                    completion.prefill_time.as_micros(),
                    completion.decode_time.as_micros()
                ));
            }
            EngineEvent::Migrated {
                id,
                at,
                generated,
                kv_blocks,
                kv_bytes,
            } => {
                let span = self.span_mut(id);
                let SpanState::Running(mark) = span.state else {
                    panic!("{id}: migrated while not running");
                };
                span.push_segment(Phase::Stall, mark, at);
                span.finished = Some(at);
                span.output_tokens = generated;
                span.migrated = true;
                span.state = SpanState::Done;
                self.log_line(format_args!(
                    "{{\"event\":\"migrate\",\"t_us\":{},\"id\":{},\"generated\":{},\
                     \"kv_blocks\":{},\"kv_bytes\":{}}}",
                    at.as_micros(),
                    id.0,
                    generated,
                    kv_blocks,
                    kv_bytes
                ));
            }
            EngineEvent::Abandoned { id, at, generated } => {
                let span = self.span_mut(id);
                // The purge can catch the request waiting (queued) or
                // admitted (running); close the open phase either way so
                // the span partition still telescopes to end-to-end.
                match span.state {
                    SpanState::Running(mark) => span.push_segment(Phase::Stall, mark, at),
                    SpanState::Queued(since) => span.push_segment(Phase::Queue, since, at),
                    SpanState::Done => panic!("{id}: abandoned after finishing"),
                }
                span.finished = Some(at);
                span.output_tokens = generated;
                span.abandoned = true;
                span.state = SpanState::Done;
                self.log_line(format_args!(
                    "{{\"event\":\"abandon\",\"t_us\":{},\"id\":{},\"generated\":{}}}",
                    at.as_micros(),
                    id.0,
                    generated
                ));
            }
            EngineEvent::RoleChanged { at, from, to } => {
                // Pool autoscaling flipped this engine's role; no span is
                // touched (the engine is empty by contract), but the log
                // keeps the role timeline.
                self.log_line(format_args!(
                    "{{\"event\":\"role\",\"t_us\":{},\"from\":\"{}\",\"to\":\"{}\"}}",
                    at.as_micros(),
                    from.name(),
                    to.name()
                ));
            }
        }
    }
}

/// A clonable [`EngineObserver`] that records request spans, step
/// records, and engine time-series. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl SpanRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        SpanRecorder::default()
    }

    /// All observed request spans, in request-id order.
    pub fn spans(&self) -> Vec<RequestSpan> {
        self.inner.lock().unwrap().spans.clone()
    }

    /// All completed step records, in time order.
    pub fn steps(&self) -> Vec<StepRecord> {
        self.inner.lock().unwrap().steps.clone()
    }

    /// KV block occupancy sampled at every step completion.
    pub fn kv_used_blocks(&self) -> TimeSeries {
        self.inner.lock().unwrap().kv_used_blocks.clone()
    }

    /// Total KV pool size in blocks (0 until the first step completes).
    pub fn kv_total_blocks(&self) -> u64 {
        self.inner.lock().unwrap().kv_total_blocks
    }

    /// Running-set depth sampled at every step completion.
    pub fn running_depth(&self) -> TimeSeries {
        self.inner.lock().unwrap().running_depth.clone()
    }

    /// Waiting-queue depth sampled at every step completion.
    pub fn waiting_depth(&self) -> TimeSeries {
        self.inner.lock().unwrap().waiting_depth.clone()
    }

    /// Prefill tokens per step (batch composition).
    pub fn batch_prefill_tokens(&self) -> TimeSeries {
        self.inner.lock().unwrap().batch_prefill_tokens.clone()
    }

    /// Decode participants per step (batch composition).
    pub fn batch_decode_seqs(&self) -> TimeSeries {
        self.inner.lock().unwrap().batch_decode_seqs.clone()
    }

    /// The JSONL event log: one JSON object per line, in emission order.
    pub fn events_jsonl(&self) -> String {
        self.inner.lock().unwrap().jsonl.clone()
    }

    /// Chrome `trace_event` JSON for this recorder alone (process 0).
    ///
    /// Load the result in `chrome://tracing` or
    /// [Perfetto](https://ui.perfetto.dev): one track (`tid`) per
    /// request with its queue/prefill/decode/stall spans, plus counter
    /// tracks for KV occupancy and running/waiting depth.
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&[("engine", self)])
    }
}

impl EngineObserver for SpanRecorder {
    fn on_event(&mut self, event: &EngineEvent<'_>) {
        self.inner.lock().unwrap().apply(event);
    }
}

/// Chrome `trace_event` JSON combining several recorders, one process
/// (`pid`) per `(label, recorder)` pair — e.g. one per fleet replica.
pub fn chrome_trace(recorders: &[(&str, &SpanRecorder)]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, line: &str| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(line);
    };
    for (pid, &(label, recorder)) in recorders.iter().enumerate() {
        let inner = recorder.inner.lock().unwrap();
        push(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json::escape(label)
            ),
        );
        for span in &inner.spans {
            push(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\
                     \"args\":{{\"name\":\"req#{}\"}}}}",
                    span.id.0, span.id.0
                ),
            );
            for seg in &span.segments {
                push(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"{}\",\"cat\":\"request\",\"ph\":\"X\",\"pid\":{pid},\
                         \"tid\":{},\"ts\":{},\"dur\":{}}}",
                        seg.phase.name(),
                        span.id.0,
                        seg.start.as_micros(),
                        seg.duration().as_micros()
                    ),
                );
            }
        }
        for (name, series) in [
            ("kv_used_blocks", &inner.kv_used_blocks),
            ("running", &inner.running_depth),
            ("waiting", &inner.waiting_depth),
            ("prefill_tokens", &inner.batch_prefill_tokens),
            ("decode_seqs", &inner.batch_decode_seqs),
        ] {
            for &(at, value) in series.points() {
                push(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":{pid},\"ts\":{},\
                         \"args\":{{\"value\":{value}}}}}",
                        at.as_micros()
                    ),
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Joins a prefill-side span (ended by migration) and the decode-side
/// span of the same request into one end-to-end span with an explicit
/// [`Phase::Transfer`] segment covering the KV migration.
///
/// `prefill` must have ended in migration and `decode` must have been
/// submitted at or after the migration instant (the transfer arrival).
/// The stitched span's phase durations telescope exactly: for a finished
/// decode span, `attributed() == e2e()` still holds, with the transfer
/// charged as its own phase.
pub fn stitch_disagg_span(prefill: &RequestSpan, decode: &RequestSpan) -> RequestSpan {
    assert!(
        prefill.migrated,
        "{}: prefill-side span did not end in migration",
        prefill.id
    );
    let released = prefill
        .finished
        .expect("migrated span always has a finish time");
    assert!(
        decode.submitted >= released,
        "{}: decode submission precedes migration",
        prefill.id
    );
    let mut segments = prefill.segments.clone();
    if decode.submitted > released {
        segments.push(Segment {
            phase: Phase::Transfer,
            start: released,
            end: decode.submitted,
        });
    }
    segments.extend(decode.segments.iter().copied());
    RequestSpan {
        id: prefill.id,
        submitted: prefill.submitted,
        prompt_tokens: prefill.prompt_tokens,
        target_out: decode.target_out.max(prefill.target_out),
        first_admitted: prefill.first_admitted,
        finished: decode.finished,
        queue_time: prefill.queue_time + decode.queue_time,
        prefill_time: prefill.prefill_time + decode.prefill_time,
        decode_time: prefill.decode_time + decode.decode_time,
        transfer_time: decode.submitted.saturating_since(released),
        stall_time: prefill.stall_time + decode.stall_time,
        preemptions: prefill.preemptions + decode.preemptions,
        cached_tokens: prefill.cached_tokens,
        // The decode-side completion already counts the token produced at
        // prefill release (generation resumes from it), so it is the total.
        output_tokens: decode.output_tokens.max(prefill.output_tokens),
        migrated: false,
        abandoned: decode.abandoned,
        segments,
        state: decode.state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::open_loop::{ServingConfig, ServingSim, ServingWorkload};
    use agentsim_kvcache::TokenBuf;
    use agentsim_llm::{Engine, EngineConfig};

    fn drain(engine: &mut Engine, mut now: SimTime) -> SimTime {
        while let Some(end) = engine.start_step_if_idle(now) {
            now = end;
            engine.complete_step(now);
        }
        now
    }

    #[test]
    fn single_request_span_partitions_latency() {
        let mut e = Engine::new(EngineConfig::a100_llama8b());
        let recorder = SpanRecorder::new();
        e.set_observer(Box::new(recorder.clone()));
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 1000), 50, 7);
        drain(&mut e, SimTime::ZERO);

        let spans = recorder.spans();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert!(s.is_complete());
        assert_eq!(s.attributed(), s.e2e().unwrap());
        assert!(s.prefill_time > SimDuration::ZERO);
        assert!(s.decode_time > SimDuration::ZERO);
        // A lone request on an idle engine never queues or stalls.
        assert_eq!(s.queue_time, SimDuration::ZERO);
        assert_eq!(s.stall_time, SimDuration::ZERO);
        // Segments merged: prefill then one contiguous decode span.
        assert_eq!(s.segments.len(), 2);
        assert_eq!(s.segments[0].phase, Phase::Prefill);
        assert_eq!(s.segments[1].phase, Phase::Decode);
    }

    #[test]
    fn concurrent_spans_reconstruct_latency_with_queue_and_stall() {
        let mut e = Engine::new(EngineConfig::a100_llama8b());
        let recorder = SpanRecorder::new();
        e.set_observer(Box::new(recorder.clone()));
        for i in 0..6u64 {
            e.submit(SimTime::ZERO, TokenBuf::from_segment(i, 2000), 40, i);
        }
        drain(&mut e, SimTime::ZERO);

        let spans = recorder.spans();
        assert_eq!(spans.len(), 6);
        let queued: u32 = spans
            .iter()
            .map(|s| (s.queue_time > SimDuration::ZERO) as u32)
            .sum();
        assert!(queued > 0, "later arrivals must queue behind prefills");
        for s in &spans {
            assert_eq!(s.attributed(), s.e2e().unwrap(), "{}", s.id);
        }
        // Time series were sampled at every step.
        assert_eq!(recorder.steps().len(), recorder.running_depth().len());
        assert!(recorder.kv_used_blocks().max() > 0.0);
        assert!(recorder.kv_total_blocks() > 0);
    }

    #[test]
    fn preempted_span_reconstructs_latency_including_requeue() {
        let mut e = Engine::new(EngineConfig::a100_llama8b().with_kv_fraction(0.02));
        let recorder = SpanRecorder::new();
        e.set_observer(Box::new(recorder.clone()));
        for i in 0..5u64 {
            e.submit(SimTime::ZERO, TokenBuf::from_segment(10 + i, 700), 300, i);
        }
        drain(&mut e, SimTime::ZERO);

        let spans = recorder.spans();
        let preempted: u32 = spans.iter().map(|s| s.preemptions).sum();
        assert!(preempted > 0, "tiny pool must preempt");
        for s in &spans {
            assert!(s.is_complete());
            assert_eq!(s.attributed(), s.e2e().unwrap(), "{}", s.id);
        }
    }

    #[test]
    fn chunked_prefill_spans_include_stalls() {
        let mut e = Engine::new(EngineConfig::a100_llama8b().with_chunked_prefill(true));
        let recorder = SpanRecorder::new();
        e.set_observer(Box::new(recorder.clone()));
        for i in 0..4u64 {
            e.submit(SimTime::ZERO, TokenBuf::from_segment(10 + i, 3000), 32, i);
        }
        drain(&mut e, SimTime::ZERO);
        for s in recorder.spans() {
            assert_eq!(s.attributed(), s.e2e().unwrap(), "{}", s.id);
        }
        assert!(
            recorder
                .steps()
                .iter()
                .any(|s| s.kind == StepKind::Mixed && s.decode_seqs > 0 && s.prefill_seqs > 0),
            "mixed steps must co-schedule prefill chunks and decodes"
        );
    }

    #[test]
    fn exporters_emit_valid_json() {
        let cfg = ServingConfig::new(ServingWorkload::react_hotpotqa(), 1.0, 6).seed(3);
        let mut sim = ServingSim::new(cfg);
        let recorder = sim.attach_recorder();
        let report = sim.run();
        assert_eq!(report.completed, 6);

        let trace = recorder.chrome_trace();
        json::validate(&trace).unwrap();
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("kv_used_blocks"));

        let jsonl = recorder.events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(!lines.is_empty());
        for line in &lines {
            json::validate(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        // The log covers every lifecycle event class.
        for needle in ["\"submit\"", "\"admit\"", "\"step\"", "\"complete\""] {
            assert!(jsonl.contains(needle), "missing {needle}");
        }

        // Multi-recorder export assigns distinct pids.
        let combined = chrome_trace(&[("replica0", &recorder), ("replica1", &recorder)]);
        json::validate(&combined).unwrap();
        assert!(combined.contains("\"pid\":1"));
    }

    #[test]
    fn migrated_span_stitches_into_exact_five_phase_partition() {
        use agentsim_llm::EngineRole;
        use agentsim_simkit::SimDuration;

        let mut prefill = Engine::new(EngineConfig::a100_llama8b().with_role(EngineRole::Prefill));
        let p_rec = SpanRecorder::new();
        prefill.set_observer(Box::new(p_rec.clone()));
        prefill.submit(SimTime::ZERO, TokenBuf::from_segment(1, 513), 8, 0);
        drain(&mut prefill, SimTime::ZERO);

        let migrations = prefill.take_migrations();
        assert_eq!(migrations.len(), 1);
        let p_span = &p_rec.spans()[0];
        assert!(p_span.migrated);
        assert_eq!(p_span.attributed(), p_span.e2e().unwrap());
        assert_eq!(p_span.transfer_time, SimDuration::ZERO);

        // KV transfer takes 100µs, then the decode pool takes over.
        let handoff = migrations[0].released + SimDuration::from_micros(100);
        let mut decode = Engine::new(EngineConfig::a100_llama8b().with_role(EngineRole::Decode));
        let d_rec = SpanRecorder::new();
        decode.set_observer(Box::new(d_rec.clone()));
        decode.submit_prefilled(handoff, &migrations[0]);
        drain(&mut decode, handoff);

        let d_span = &d_rec.spans()[0];
        assert!(d_span.is_complete() && !d_span.migrated);
        assert_eq!(d_span.prefill_time, SimDuration::ZERO);

        let stitched = stitch_disagg_span(p_span, d_span);
        assert_eq!(stitched.output_tokens, 8);
        assert_eq!(stitched.transfer_time, SimDuration::from_micros(100));
        assert_eq!(stitched.attributed(), stitched.e2e().unwrap());
        assert!(
            stitched.segments.iter().any(
                |s| s.phase == Phase::Transfer && s.duration() == SimDuration::from_micros(100)
            ),
            "stitched timeline must carry an explicit transfer segment"
        );
        // The migrate event reached the prefill-side JSONL log.
        assert!(p_rec.events_jsonl().contains("\"migrate\""));
    }
}
