//! Shared-replica serving simulation driven by a pluggable client model.
//!
//! Mirrors the paper's §IV-C methodology: requests arrive following the
//! configured [`ClientModel`] (open-loop Poisson by default), each served
//! by an asynchronous worker that walks the agent workflow; all workers'
//! LLM calls are batched by the shared engine (continuous batching with
//! FCFS admission).
//!
//! The per-session state machine lives in
//! [`agentsim_session::SessionRunner`]; this driver only owns what is
//! specific to a single shared replica: the engine, the event queue, and
//! report aggregation.

use std::collections::HashMap;

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::{Engine, EngineConfig, RequestId};
use agentsim_session::{
    seeds, Arrival, ArrivalProcess, CallDone, ClientModel, SessionCmd, SessionRunner, ToolRng,
};
use agentsim_simkit::{EventQueue, SimDuration, SimRng, SimTime};
use agentsim_tools::ToolExecutor;
use agentsim_workloads::{Benchmark, ShareGptGenerator, TaskGenerator};

use crate::report::ServingReport;

/// What kind of traffic the server receives.
#[derive(Debug, Clone)]
pub enum ServingWorkload {
    /// Non-agentic single-turn chatbot traffic (ShareGPT).
    Chatbot,
    /// Agentic traffic: every request runs this agent on this benchmark.
    Agent {
        /// The agent framework.
        kind: AgentKind,
        /// The benchmark tasks are drawn from.
        benchmark: Benchmark,
        /// The agent configuration.
        config: AgentConfig,
    },
    /// Multi-tenant mix: each arrival is an agent request with
    /// probability `agent_fraction`, otherwise a chatbot request.
    Mixed {
        /// Fraction of arrivals that are agentic, in `[0, 1]`.
        agent_fraction: f64,
        /// The agent framework for agentic arrivals.
        kind: AgentKind,
        /// The benchmark for agentic arrivals.
        benchmark: Benchmark,
        /// The agent configuration.
        config: AgentConfig,
    },
}

impl ServingWorkload {
    /// A ReAct-on-HotpotQA workload with default configuration (the
    /// paper's canonical agent serving setup).
    pub fn react_hotpotqa() -> Self {
        ServingWorkload::Agent {
            kind: AgentKind::React,
            benchmark: Benchmark::HotpotQa,
            config: AgentConfig::default(),
        }
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Engine (replica) configuration.
    pub engine: EngineConfig,
    /// Traffic description.
    pub workload: ServingWorkload,
    /// Offered load, requests per second (open-loop clients only;
    /// closed-loop load is set by population and think time).
    pub qps: f64,
    /// Turns to issue.
    pub num_requests: u64,
    /// Root seed.
    pub seed: u64,
    /// Who submits the turns, and when.
    pub client: ClientModel,
}

impl ServingConfig {
    /// A small default run: the given workload under an open-loop
    /// Poisson client at `qps`.
    pub fn new(workload: ServingWorkload, qps: f64, num_requests: u64) -> Self {
        agentsim_session::validate_load(qps, num_requests);
        ServingConfig {
            engine: EngineConfig::a100_llama8b(),
            workload,
            qps,
            num_requests,
            seed: 0,
            client: ClientModel::OpenLoopPoisson,
        }
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the engine configuration.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Replaces the client model.
    pub fn client(mut self, client: ClientModel) -> Self {
        self.client = client;
        self
    }
}

#[derive(Debug)]
enum Event {
    Arrival(Arrival),
    EngineStepDone,
    ToolsDone(u64),
}

/// The serving simulator. Create with [`ServingSim::new`] and consume
/// with [`ServingSim::run`].
pub struct ServingSim {
    config: ServingConfig,
    engine: Engine,
    tools: ToolExecutor,
    queue: EventQueue<Event>,
    client: Box<dyn ArrivalProcess>,
    sessions: Vec<Option<SessionRunner>>,
    /// In-flight engine request -> (session slot, call seq within op).
    request_owner: HashMap<RequestId, (u64, u32)>,
    root_rng: SimRng,
    report_latencies: Vec<f64>,
    agent_latencies: Vec<f64>,
    chatbot_latencies: Vec<f64>,
    llm_latencies: Vec<f64>,
    completed: u64,
    solved: u64,
    last_finish: SimTime,
    queue_depth: agentsim_metrics::TimeSeries,
}

impl ServingSim {
    /// Builds the simulator (the first arrivals are scheduled; the rest
    /// chain lazily as the run progresses).
    pub fn new(config: ServingConfig) -> Self {
        let engine = Engine::new(config.engine.clone());
        let root_rng = SimRng::seed_from(config.seed ^ seeds::SERVING_ROOT);
        let mut client = config.client.build(
            config.qps,
            config.num_requests,
            root_rng.fork(seeds::ARRIVALS),
        );
        let mut queue = EventQueue::new();
        for a in client.initial() {
            queue.push(a.at, Event::Arrival(a));
        }
        let sessions = (0..config.client.sessions(config.num_requests))
            .map(|_| None)
            .collect();
        ServingSim {
            engine,
            tools: ToolExecutor::new(),
            queue,
            client,
            sessions,
            request_owner: HashMap::new(),
            root_rng,
            report_latencies: Vec::new(),
            agent_latencies: Vec::new(),
            chatbot_latencies: Vec::new(),
            llm_latencies: Vec::new(),
            completed: 0,
            solved: 0,
            last_finish: SimTime::ZERO,
            queue_depth: agentsim_metrics::TimeSeries::new(),
            config,
        }
    }

    /// Attaches a fresh [`crate::SpanRecorder`] as the engine's observer
    /// and returns a handle to read spans/series/exports after
    /// [`ServingSim::run`]. Replaces any previously attached observer.
    pub fn attach_recorder(&mut self) -> crate::SpanRecorder {
        let recorder = crate::SpanRecorder::new();
        self.engine.set_observer(Box::new(recorder.clone()));
        recorder
    }

    /// Attaches an arbitrary engine observer (replacing any prior one).
    /// Use [`agentsim_llm::FanoutObserver`] to combine several sinks —
    /// e.g. a recorder plus a streaming [`crate::SpanStreamWriter`].
    pub fn set_observer(&mut self, observer: Box<dyn agentsim_llm::EngineObserver>) {
        self.engine.set_observer(observer);
    }

    /// Runs to completion and reports.
    pub fn run(mut self) -> ServingReport {
        while let Some((now, event)) = self.queue.pop() {
            match event {
                Event::Arrival(a) => self.on_arrival(a, now),
                Event::EngineStepDone => self.on_step_done(now),
                Event::ToolsDone(sid) => {
                    let cmd = self.sessions[sid as usize]
                        .as_mut()
                        .expect("live session")
                        .on_tools_done(&self.tools, now);
                    self.exec(sid, cmd, now);
                }
            }
            self.kick_engine(now);
        }
        let expected = self.config.client.total_turns(self.config.num_requests);
        assert_eq!(self.completed, expected, "all turns must finish");
        self.into_report()
    }

    fn on_arrival(&mut self, a: Arrival, now: SimTime) {
        // Chain the next arrival first, so it precedes any event this
        // one schedules at the same instant.
        if let Some(next) = self.client.after_arrival(now) {
            self.queue.push(next.at, Event::Arrival(next));
        }
        // Every workload payload is `Copy`, so classify in place instead
        // of cloning the whole workload per arrival.
        let (runner, cmd) = match self.config.workload {
            ServingWorkload::Chatbot => self.start_chatbot(a.turn, now),
            ServingWorkload::Agent {
                kind,
                benchmark,
                config,
            } => self.start_agent(a.turn, now, kind, benchmark, config),
            ServingWorkload::Mixed {
                agent_fraction,
                kind,
                benchmark,
                config,
            } => {
                // Deterministic per-turn class draw.
                let mut class_rng = self.root_rng.fork(a.turn ^ seeds::MIXED_CLASS);
                if class_rng.chance(agent_fraction) {
                    self.start_agent(a.turn, now, kind, benchmark, config)
                } else {
                    self.start_chatbot(a.turn, now)
                }
            }
        };
        let slot = &mut self.sessions[a.session as usize];
        assert!(slot.is_none(), "session {} already live", a.session);
        *slot = Some(runner);
        self.exec(a.session, cmd, now);
    }

    fn start_chatbot(&mut self, turn: u64, now: SimTime) -> (SessionRunner, SessionCmd) {
        let query = ShareGptGenerator::new(self.config.seed).query(turn);
        SessionRunner::chatbot(
            query.prompt,
            query.output_tokens,
            query.gen_seed,
            turn,
            self.root_rng.fork(turn ^ seeds::CHATBOT_SESSION),
            now,
        )
    }

    fn start_agent(
        &mut self,
        turn: u64,
        now: SimTime,
        kind: AgentKind,
        benchmark: Benchmark,
        config: AgentConfig,
    ) -> (SessionRunner, SessionCmd) {
        let task = TaskGenerator::new(benchmark, self.config.seed).task(turn);
        SessionRunner::agent(
            kind,
            &task,
            config,
            self.root_rng.fork(turn ^ seeds::AGENT_SESSION),
            ToolRng::ForkByTime,
            &self.tools,
            now,
        )
    }

    /// Executes a session command against this driver's engine and
    /// event queue.
    fn exec(&mut self, sid: u64, cmd: SessionCmd, now: SimTime) {
        match cmd {
            SessionCmd::Llm(op) => {
                for (seq, call) in op.calls.into_iter().enumerate() {
                    let id = self.engine.submit_with_priority(
                        now,
                        call.prompt,
                        call.out_tokens,
                        call.gen_seed,
                        op.priority,
                    );
                    self.request_owner.insert(id, (sid, seq as u32));
                }
            }
            SessionCmd::Tools { wake } => {
                self.queue.push(wake, Event::ToolsDone(sid));
            }
            SessionCmd::Finish(outcome) => {
                let runner = self.sessions[sid as usize]
                    .take()
                    .expect("live session finishing");
                let latency = runner.trace().e2e().as_secs_f64();
                self.report_latencies.push(latency);
                if runner.is_agent() {
                    self.agent_latencies.push(latency);
                    self.solved += outcome.solved as u64;
                } else {
                    self.chatbot_latencies.push(latency);
                }
                self.completed += 1;
                self.last_finish = self.last_finish.max(now);
                if let Some(next) = self.client.after_finish(sid, now) {
                    self.queue.push(next.at, Event::Arrival(next));
                }
            }
        }
    }

    fn on_step_done(&mut self, now: SimTime) {
        let completions = self.engine.complete_step(now);
        for completion in completions {
            let (sid, seq) = self
                .request_owner
                .remove(&completion.id)
                .expect("completion belongs to a session");
            self.llm_latencies
                .push(completion.e2e_latency().as_secs_f64());
            let cmd = self.sessions[sid as usize]
                .as_mut()
                .expect("live session")
                .on_call_done(seq, CallDone::from_completion(completion), &self.tools, now);
            if let Some(cmd) = cmd {
                self.exec(sid, cmd, now);
            }
        }
    }

    fn kick_engine(&mut self, now: SimTime) {
        self.queue_depth.record(
            now,
            (self.engine.queue_len() + self.engine.running_len()) as f64,
        );
        if let Some(end) = self.engine.start_step_if_idle(now) {
            self.queue.push(end, Event::EngineStepDone);
        }
    }

    fn into_report(self) -> ServingReport {
        let makespan = SimDuration::from_micros(self.last_finish.as_micros());
        let mut latencies: agentsim_metrics::Samples =
            self.report_latencies.iter().copied().collect();
        let llm_latencies: agentsim_metrics::Samples = self.llm_latencies.iter().copied().collect();
        let agent_latencies: agentsim_metrics::Samples =
            self.agent_latencies.iter().copied().collect();
        let chatbot_latencies: agentsim_metrics::Samples =
            self.chatbot_latencies.iter().copied().collect();
        let p50_s = latencies.try_median().unwrap_or(f64::NAN);
        let p95_s = latencies.try_p95().unwrap_or(f64::NAN);
        let queue_depth_mean = self.queue_depth.time_weighted_mean(self.last_finish);
        let queue_depth_max = self.queue_depth.max();
        let metrics = self.engine.metrics();
        let kv = self.engine.kv().stats();
        let block_bytes = self.config.engine.kv_bytes_per_block();
        ServingReport {
            offered_qps: self.config.qps,
            completed: self.completed,
            solved: self.solved,
            makespan,
            p50_s,
            p95_s,
            energy_wh: metrics.energy_within(self.last_finish).watt_hours(),
            utilization: metrics.utilization(self.last_finish),
            kv_avg_bytes: kv.used_blocks.average(self.last_finish) * block_bytes as f64,
            kv_max_bytes: kv.used_blocks.peak() * block_bytes,
            kv_hit_rate: kv.hit_rate(),
            preemptions: metrics.preemptions,
            evictions: kv.evictions,
            latencies,
            llm_latencies,
            agent_latencies,
            chatbot_latencies,
            queue_depth_mean,
            queue_depth_max,
        }
    }
}

impl std::fmt::Debug for ServingSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingSim")
            .field("qps", &self.config.qps)
            .field("num_requests", &self.config.num_requests)
            .field("completed", &self.completed)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chatbot(qps: f64, n: u64) -> ServingReport {
        ServingSim::new(ServingConfig::new(ServingWorkload::Chatbot, qps, n).seed(1)).run()
    }

    fn react(qps: f64, n: u64) -> ServingReport {
        ServingSim::new(ServingConfig::new(ServingWorkload::react_hotpotqa(), qps, n).seed(1)).run()
    }

    #[test]
    fn chatbot_completes_all_requests() {
        let r = chatbot(1.0, 30);
        assert_eq!(r.completed, 30);
        assert!(r.p50_s > 1.0, "p50 {}", r.p50_s);
        assert!(r.p95_s >= r.p50_s);
        assert!(r.utilization > 0.0);
        assert!(
            r.queue_depth_max >= 1.0,
            "at least one request was in flight"
        );
        assert!(r.queue_depth_mean > 0.0);
        assert!(r.queue_depth_mean <= r.queue_depth_max);
    }

    #[test]
    fn chatbot_latency_band_matches_fig7() {
        // Paper Fig. 7: most ShareGPT responses complete in 3-7 s at low
        // load on the A100/8B stack.
        let mut r = chatbot(0.2, 40);
        let p50 = r.latencies.median();
        assert!((2.0..9.0).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn react_serving_completes_and_is_slower() {
        let agent = react(0.2, 15);
        let bot = chatbot(0.2, 15);
        assert_eq!(agent.completed, 15);
        assert!(
            agent.p50_s > bot.p50_s,
            "agent {} vs chatbot {}",
            agent.p50_s,
            bot.p50_s
        );
    }

    #[test]
    fn agent_latency_spread_exceeds_chatbot() {
        // Fig. 7: agents show a much broader, heavier-tailed distribution
        // (ShareGPT clusters in 3-7 s; ReAct spans tens of seconds).
        let agent = react(0.1, 25);
        let bot = chatbot(0.1, 25);
        let spread = |r: &ServingReport| r.p95_s - r.p50_s;
        assert!(
            spread(&agent) > 1.2 * spread(&bot),
            "agent spread {} vs chatbot {}",
            spread(&agent),
            spread(&bot)
        );
        assert!(
            agent.p95_s > 1.4 * bot.p95_s,
            "agent tail {} vs chatbot tail {}",
            agent.p95_s,
            bot.p95_s
        );
    }

    #[test]
    fn higher_load_raises_tail_latency() {
        // Past the knee (~2.6 qps on this stack, matching the paper),
        // queueing inflates the tail. Needs enough requests for a
        // backlog to form.
        let low = react(0.1, 30);
        let high = react(6.0, 60);
        assert!(
            high.p50_s > low.p50_s + 3.0,
            "p50 at 6 qps {} vs 0.1 qps {} (queueing delay)",
            high.p50_s,
            low.p50_s
        );
        assert!(high.p95_s > high.p50_s, "tail above median");
    }

    #[test]
    fn concurrency_beats_sequential_execution() {
        // §IV-C: concurrent execution yields large throughput gains
        // because tool waits are overlapped with other requests.
        let concurrent = react(1.0, 20);
        // Sequential lower bound: sum of single-request latencies.
        let single = crate::single::SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
            .seed(1)
            .run_batch(20);
        let sequential_time: f64 = single.iter().map(|o| o.trace.e2e().as_secs_f64()).sum();
        let seq_tput = 20.0 / sequential_time;
        assert!(
            concurrent.throughput() > 2.0 * seq_tput,
            "concurrent {} vs sequential {}",
            concurrent.throughput(),
            seq_tput
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = react(0.5, 10);
        let b = react(0.5, 10);
        assert_eq!(a.p95_s, b.p95_s);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.preemptions, b.preemptions);
    }

    #[test]
    fn mixed_workload_serves_both_classes() {
        let workload = ServingWorkload::Mixed {
            agent_fraction: 0.4,
            kind: AgentKind::React,
            benchmark: Benchmark::HotpotQa,
            config: AgentConfig::default_8b(),
        };
        let r = ServingSim::new(ServingConfig::new(workload, 0.5, 30).seed(2)).run();
        assert_eq!(r.completed, 30);
        assert!(!r.agent_latencies.is_empty(), "some agents arrived");
        assert!(
            !r.chatbot_latencies.is_empty(),
            "some chatbot requests arrived"
        );
        assert_eq!(
            r.agent_latencies.len() + r.chatbot_latencies.len(),
            30,
            "every request is classified exactly once"
        );
        // Agent requests are much slower than chatbot ones even coexisting.
        let agent_mean = r.agent_latencies.summary().mean();
        let chat_mean = r.chatbot_latencies.summary().mean();
        assert!(
            agent_mean > chat_mean,
            "agent {agent_mean} vs chatbot {chat_mean}"
        );
    }

    #[test]
    fn prefix_caching_raises_hit_rate_in_serving() {
        let with = react(0.5, 15);
        let cfg = ServingConfig::new(ServingWorkload::react_hotpotqa(), 0.5, 15)
            .seed(1)
            .engine(EngineConfig::a100_llama8b().with_prefix_caching(false));
        let without = ServingSim::new(cfg).run();
        assert!(with.kv_hit_rate > 0.3, "hit rate {}", with.kv_hit_rate);
        assert_eq!(without.kv_hit_rate, 0.0);
    }

    #[test]
    fn closed_loop_completes_exact_turn_budget() {
        let cfg = ServingConfig::new(ServingWorkload::react_hotpotqa(), 1.0, 24)
            .seed(3)
            .client(ClientModel::ClosedLoop {
                concurrency: 4,
                think_time: SimDuration::from_secs(2),
            });
        let r = ServingSim::new(cfg).run();
        assert_eq!(r.completed, 24);
        assert!(r.p50_s > 0.0);
    }

    #[test]
    fn closed_loop_deterministic_given_seed() {
        let run = || {
            let cfg = ServingConfig::new(ServingWorkload::react_hotpotqa(), 1.0, 16)
                .seed(5)
                .client(ClientModel::ClosedLoop {
                    concurrency: 3,
                    think_time: SimDuration::from_secs(1),
                });
            ServingSim::new(cfg).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.p95_s.to_bits(), b.p95_s.to_bits());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.solved, b.solved);
    }

    #[test]
    fn trace_replay_follows_recorded_gaps() {
        let gaps: Vec<SimDuration> = (0..12).map(|_| SimDuration::from_millis(500)).collect();
        let cfg = ServingConfig::new(ServingWorkload::Chatbot, 1.0, 1)
            .seed(1)
            .client(ClientModel::TraceReplay { gaps });
        let r = ServingSim::new(cfg).run();
        assert_eq!(r.completed, 12, "trace length overrides num_requests");
    }
}
