//! Open-loop serving simulation: Poisson arrivals over a shared replica.
//!
//! Mirrors the paper's §IV-C methodology: requests arrive at a fixed QPS
//! following a Poisson process, each served by an asynchronous worker
//! that walks the agent workflow; all workers' LLM calls are batched by
//! the shared engine (continuous batching with FCFS admission).

use std::collections::HashMap;

use agentsim_agents::{
    build_agent, AgentConfig, AgentKind, AgentOp, AgentPolicy, LlmCallSpec, LlmOutput, OpResult,
};
use agentsim_llm::{Engine, EngineConfig, LlmCompletion, RequestId};
use agentsim_simkit::dist::{Exponential, Sample};
use agentsim_simkit::{EventQueue, SimDuration, SimRng, SimTime};
use agentsim_tools::{ToolCall, ToolExecutor, ToolResult};
use agentsim_workloads::{Benchmark, ShareGptGenerator, TaskGenerator};

use crate::report::ServingReport;
use crate::trace::{LlmCallRecord, RequestTrace};

/// What kind of traffic the server receives.
#[derive(Debug, Clone)]
pub enum ServingWorkload {
    /// Non-agentic single-turn chatbot traffic (ShareGPT).
    Chatbot,
    /// Agentic traffic: every request runs this agent on this benchmark.
    Agent {
        /// The agent framework.
        kind: AgentKind,
        /// The benchmark tasks are drawn from.
        benchmark: Benchmark,
        /// The agent configuration.
        config: AgentConfig,
    },
    /// Multi-tenant mix: each arrival is an agent request with
    /// probability `agent_fraction`, otherwise a chatbot request.
    Mixed {
        /// Fraction of arrivals that are agentic, in `[0, 1]`.
        agent_fraction: f64,
        /// The agent framework for agentic arrivals.
        kind: AgentKind,
        /// The benchmark for agentic arrivals.
        benchmark: Benchmark,
        /// The agent configuration.
        config: AgentConfig,
    },
}

impl ServingWorkload {
    /// A ReAct-on-HotpotQA workload with default configuration (the
    /// paper's canonical agent serving setup).
    pub fn react_hotpotqa() -> Self {
        ServingWorkload::Agent {
            kind: AgentKind::React,
            benchmark: Benchmark::HotpotQa,
            config: AgentConfig::default(),
        }
    }
}

/// Configuration of one open-loop run.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Engine (replica) configuration.
    pub engine: EngineConfig,
    /// Traffic description.
    pub workload: ServingWorkload,
    /// Offered load, requests per second.
    pub qps: f64,
    /// Requests to issue.
    pub num_requests: u64,
    /// Root seed.
    pub seed: u64,
}

impl ServingConfig {
    /// A small default run: ReAct/HotpotQA at the given QPS.
    pub fn new(workload: ServingWorkload, qps: f64, num_requests: u64) -> Self {
        assert!(qps > 0.0, "offered load must be positive");
        assert!(num_requests > 0, "need at least one request");
        ServingConfig {
            engine: EngineConfig::a100_llama8b(),
            workload,
            qps,
            num_requests,
            seed: 0,
        }
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the engine configuration.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }
}

#[derive(Debug)]
enum Event {
    Arrival(u64),
    EngineStepDone,
    ToolsDone(u64),
}

struct Session {
    policy: Option<Box<dyn AgentPolicy>>,
    trace: RequestTrace,
    rng: SimRng,
    /// Outstanding LLM calls of the current op: id -> spec.
    pending_llm: Vec<(RequestId, LlmCallSpec)>,
    done_llm: Vec<(RequestId, LlmCompletion)>,
    /// Tool results scheduled to land at a `ToolsDone` event.
    scheduled_tools: Vec<ToolResult>,
    /// Tools to launch when the overlapped planner call finishes.
    overlap_tools: Option<(Vec<ToolCall>, f64)>,
    op_start: SimTime,
}

/// The open-loop serving simulator. Create with [`ServingSim::new`] and
/// consume with [`ServingSim::run`].
pub struct ServingSim {
    config: ServingConfig,
    engine: Engine,
    tools: ToolExecutor,
    queue: EventQueue<Event>,
    sessions: Vec<Option<Session>>,
    request_owner: HashMap<RequestId, u64>,
    root_rng: SimRng,
    report_latencies: Vec<f64>,
    agent_latencies: Vec<f64>,
    chatbot_latencies: Vec<f64>,
    llm_latencies: Vec<f64>,
    completed: u64,
    solved: u64,
    last_finish: SimTime,
    queue_depth: agentsim_metrics::TimeSeries,
}

impl ServingSim {
    /// Builds the simulator (arrivals pre-scheduled).
    pub fn new(config: ServingConfig) -> Self {
        let engine = Engine::new(config.engine.clone());
        let root_rng = SimRng::seed_from(config.seed ^ 0x5E61);
        let mut queue = EventQueue::new();
        let gaps = Exponential::with_rate(config.qps);
        let mut arrival_rng = root_rng.fork(0xA221);
        let mut t = SimTime::ZERO;
        for i in 0..config.num_requests {
            t += SimDuration::from_secs_f64(gaps.sample(&mut arrival_rng));
            queue.push(t, Event::Arrival(i));
        }
        let sessions = (0..config.num_requests).map(|_| None).collect();
        ServingSim {
            engine,
            tools: ToolExecutor::new(),
            queue,
            sessions,
            request_owner: HashMap::new(),
            root_rng,
            report_latencies: Vec::new(),
            agent_latencies: Vec::new(),
            chatbot_latencies: Vec::new(),
            llm_latencies: Vec::new(),
            completed: 0,
            solved: 0,
            last_finish: SimTime::ZERO,
            queue_depth: agentsim_metrics::TimeSeries::new(),
            config,
        }
    }

    /// Attaches a fresh [`crate::SpanRecorder`] as the engine's observer
    /// and returns a handle to read spans/series/exports after
    /// [`ServingSim::run`]. Replaces any previously attached observer.
    pub fn attach_recorder(&mut self) -> crate::SpanRecorder {
        let recorder = crate::SpanRecorder::new();
        self.engine.set_observer(Box::new(recorder.clone()));
        recorder
    }

    /// Attaches an arbitrary engine observer (replacing any prior one).
    /// Use [`agentsim_llm::FanoutObserver`] to combine several sinks —
    /// e.g. a recorder plus a streaming [`crate::SpanStreamWriter`].
    pub fn set_observer(&mut self, observer: Box<dyn agentsim_llm::EngineObserver>) {
        self.engine.set_observer(observer);
    }

    /// Runs to completion and reports.
    pub fn run(mut self) -> ServingReport {
        while let Some((now, event)) = self.queue.pop() {
            match event {
                Event::Arrival(i) => self.on_arrival(i, now),
                Event::EngineStepDone => self.on_step_done(now),
                Event::ToolsDone(sid) => self.on_tools_done(sid, now),
            }
            self.kick_engine(now);
        }
        assert_eq!(
            self.completed, self.config.num_requests,
            "all requests must finish"
        );
        self.into_report()
    }

    fn on_arrival(&mut self, i: u64, now: SimTime) {
        // Every workload payload is `Copy`, so classify in place instead
        // of cloning the whole workload per arrival.
        match self.config.workload {
            ServingWorkload::Chatbot => self.arrive_chatbot(i, now),
            ServingWorkload::Agent {
                kind,
                benchmark,
                config,
            } => self.arrive_agent(i, now, kind, benchmark, config),
            ServingWorkload::Mixed {
                agent_fraction,
                kind,
                benchmark,
                config,
            } => {
                // Deterministic per-arrival class draw.
                let mut class_rng = self.root_rng.fork(i ^ 0x111C);
                if class_rng.chance(agent_fraction) {
                    self.arrive_agent(i, now, kind, benchmark, config);
                } else {
                    self.arrive_chatbot(i, now);
                }
            }
        }
    }

    fn arrive_chatbot(&mut self, i: u64, now: SimTime) {
        let query = ShareGptGenerator::new(self.config.seed).query(i);
        let mut s = Session {
            policy: None,
            trace: RequestTrace::new(
                AgentKind::Cot, // label unused for chatbot
                Benchmark::ShareGpt,
                i,
                now,
            ),
            rng: self.root_rng.fork(i ^ 0xC4A7),
            pending_llm: Vec::new(),
            done_llm: Vec::new(),
            scheduled_tools: Vec::new(),
            overlap_tools: None,
            op_start: now,
        };
        // The prompt moves into the engine (the spec never reads it back),
        // so the engine reuses its memoized block hashes instead of
        // re-hashing a copy.
        let id = self
            .engine
            .submit(now, query.prompt, query.output_tokens, query.gen_seed);
        self.request_owner.insert(id, i);
        s.pending_llm.push((
            id,
            LlmCallSpec {
                prompt: Default::default(),
                out_tokens: query.output_tokens,
                gen_seed: query.gen_seed,
                kind: agentsim_agents::OutputKind::Answer,
                breakdown: Default::default(),
            },
        ));
        self.sessions[i as usize] = Some(s);
    }

    fn arrive_agent(
        &mut self,
        i: u64,
        now: SimTime,
        kind: AgentKind,
        benchmark: Benchmark,
        config: AgentConfig,
    ) {
        let task = TaskGenerator::new(benchmark, self.config.seed).task(i);
        let mut s = Session {
            policy: Some(build_agent(kind, &task, config)),
            trace: RequestTrace::new(kind, benchmark, i, now),
            rng: self.root_rng.fork(i ^ 0xA6E7),
            pending_llm: Vec::new(),
            done_llm: Vec::new(),
            scheduled_tools: Vec::new(),
            overlap_tools: None,
            op_start: now,
        };
        let op = s
            .policy
            .as_mut()
            .expect("agent session")
            .next(&OpResult::empty(), &mut s.rng);
        self.sessions[i as usize] = Some(s);
        self.dispatch(i, op, now);
    }

    fn dispatch(&mut self, sid: u64, op: AgentOp, now: SimTime) {
        match op {
            AgentOp::Llm(spec) => self.dispatch_llm(sid, vec![spec], now),
            AgentOp::LlmBatch(specs) => self.dispatch_llm(sid, specs, now),
            AgentOp::Tools(calls) => {
                let tools = &self.tools;
                let session = self.sessions[sid as usize].as_mut().expect("live session");
                session.op_start = now;
                let mut rng = session.rng.fork(now.as_micros());
                let results: Vec<ToolResult> = tools.execute_batch(&calls, &mut rng);
                let wall = results
                    .iter()
                    .map(|r| r.latency)
                    .max()
                    .unwrap_or(SimDuration::ZERO);
                session.trace.tool_wall += wall;
                session.scheduled_tools = results;
                self.queue.push(now + wall, Event::ToolsDone(sid));
            }
            AgentOp::OverlappedPlan {
                llm,
                tools,
                overlap,
            } => {
                let session = self.sessions[sid as usize].as_mut().expect("live session");
                session.overlap_tools = Some((tools, overlap));
                self.dispatch_llm(sid, vec![llm], now);
            }
            AgentOp::Finish(outcome) => {
                let session = self.sessions[sid as usize]
                    .take()
                    .expect("live session finishing");
                let mut trace = session.trace;
                trace.outcome = outcome;
                trace.finished = now;
                let latency = trace.e2e().as_secs_f64();
                self.report_latencies.push(latency);
                self.agent_latencies.push(latency);
                self.completed += 1;
                self.solved += outcome.solved as u64;
                self.last_finish = self.last_finish.max(now);
            }
        }
    }

    fn dispatch_llm(&mut self, sid: u64, specs: Vec<LlmCallSpec>, now: SimTime) {
        let session = self.sessions[sid as usize].as_mut().expect("live session");
        session.op_start = now;
        session.done_llm.clear();
        // Agent-aware priority: sessions deeper into their workflow are
        // closer to completion (and hold warmer cache state). Ignored by
        // the FCFS policy.
        let priority = session.trace.llm_calls() as u32;
        for mut spec in specs {
            // Move the prompt (and its memoized hashes) into the engine;
            // the retained spec only needs its metadata.
            let prompt = std::mem::take(&mut spec.prompt);
            let id = self.engine.submit_with_priority(
                now,
                prompt,
                spec.out_tokens,
                spec.gen_seed,
                priority,
            );
            self.request_owner.insert(id, sid);
            session.pending_llm.push((id, spec));
        }
    }

    fn on_step_done(&mut self, now: SimTime) {
        let completions = self.engine.complete_step(now);
        for completion in completions {
            let sid = self
                .request_owner
                .remove(&completion.id)
                .expect("completion belongs to a session");
            self.llm_latencies
                .push(completion.e2e_latency().as_secs_f64());
            let finished_op = {
                let session = self.sessions[sid as usize].as_mut().expect("live session");
                session.done_llm.push((completion.id, completion));
                session.done_llm.len() == session.pending_llm.len()
            };
            if finished_op {
                self.finish_llm_op(sid, now);
            }
        }
    }

    /// All LLM calls of the current op completed: record them and advance
    /// the session.
    fn finish_llm_op(&mut self, sid: u64, now: SimTime) {
        let session = self.sessions[sid as usize].as_mut().expect("live session");
        let pending = std::mem::take(&mut session.pending_llm);
        let mut done: HashMap<RequestId, LlmCompletion> = session.done_llm.drain(..).collect();
        let mut outputs = Vec::with_capacity(pending.len());
        for (id, spec) in pending {
            let completion = done.remove(&id).expect("every pending call completed");
            let mut breakdown = spec.breakdown;
            breakdown.output = completion.output_tokens;
            outputs.push(LlmOutput {
                tokens: completion.output_tokens,
                gen_seed: spec.gen_seed,
            });
            session.trace.llm.push(LlmCallRecord {
                completion,
                kind: spec.kind,
                breakdown,
            });
        }
        let op_time = now.saturating_since(session.op_start);

        // Chatbot sessions finish after their single call.
        if session.policy.is_none() {
            session.trace.llm_wall += op_time;
            let session = self.sessions[sid as usize].take().expect("live session");
            let mut trace = session.trace;
            trace.finished = now;
            let latency = trace.e2e().as_secs_f64();
            self.report_latencies.push(latency);
            self.chatbot_latencies.push(latency);
            self.completed += 1;
            self.last_finish = self.last_finish.max(now);
            return;
        }

        // LLMCompiler overlapped plan: launch the planned tools with the
        // overlap credit already elapsed during planning.
        if let Some((calls, overlap)) = session.overlap_tools.take() {
            let tools = &self.tools;
            let mut rng = session.rng.fork(now.as_micros() ^ 0x0B);
            let results: Vec<ToolResult> = tools.execute_batch(&calls, &mut rng);
            let wall = results
                .iter()
                .map(|r| r.latency)
                .max()
                .unwrap_or(SimDuration::ZERO);
            let credit = op_time.mul_f64(overlap.clamp(0.0, 1.0));
            let overlapped = wall.min(credit);
            let extra = wall.saturating_sub(credit);
            session.trace.llm_wall += op_time.saturating_sub(overlapped);
            session.trace.overlap_wall += overlapped;
            session.trace.tool_wall += extra;
            session.scheduled_tools = results;
            self.queue.push(now + extra, Event::ToolsDone(sid));
            return;
        }

        session.trace.llm_wall += op_time;
        let result = OpResult {
            llm: outputs,
            tools: Vec::new(),
        };
        let op = session
            .policy
            .as_mut()
            .expect("agent session")
            .next(&result, &mut session.rng);
        self.dispatch(sid, op, now);
    }

    fn on_tools_done(&mut self, sid: u64, now: SimTime) {
        let session = self.sessions[sid as usize].as_mut().expect("live session");
        let results = std::mem::take(&mut session.scheduled_tools);
        session.trace.tools.extend(results.iter().cloned());
        let result = OpResult {
            llm: Vec::new(),
            tools: results,
        };
        let op = session
            .policy
            .as_mut()
            .expect("agent session")
            .next(&result, &mut session.rng);
        self.dispatch(sid, op, now);
    }

    fn kick_engine(&mut self, now: SimTime) {
        self.queue_depth.record(
            now,
            (self.engine.queue_len() + self.engine.running_len()) as f64,
        );
        if let Some(end) = self.engine.start_step_if_idle(now) {
            self.queue.push(end, Event::EngineStepDone);
        }
    }

    fn into_report(self) -> ServingReport {
        let makespan = SimDuration::from_micros(self.last_finish.as_micros());
        let mut latencies: agentsim_metrics::Samples =
            self.report_latencies.iter().copied().collect();
        let llm_latencies: agentsim_metrics::Samples = self.llm_latencies.iter().copied().collect();
        let agent_latencies: agentsim_metrics::Samples =
            self.agent_latencies.iter().copied().collect();
        let chatbot_latencies: agentsim_metrics::Samples =
            self.chatbot_latencies.iter().copied().collect();
        let p50_s = latencies.median();
        let p95_s = latencies.p95();
        let queue_depth_mean = self.queue_depth.time_weighted_mean(self.last_finish);
        let queue_depth_max = self.queue_depth.max();
        let metrics = self.engine.metrics();
        let kv = self.engine.kv().stats();
        let block_bytes = self.config.engine.kv_bytes_per_block();
        ServingReport {
            offered_qps: self.config.qps,
            completed: self.completed,
            solved: self.solved,
            makespan,
            p50_s,
            p95_s,
            energy_wh: metrics.energy_within(self.last_finish).watt_hours(),
            utilization: metrics.utilization(self.last_finish),
            kv_avg_bytes: kv.used_blocks.average(self.last_finish) * block_bytes as f64,
            kv_max_bytes: kv.used_blocks.peak() * block_bytes,
            kv_hit_rate: kv.hit_rate(),
            preemptions: metrics.preemptions,
            evictions: kv.evictions,
            latencies,
            llm_latencies,
            agent_latencies,
            chatbot_latencies,
            queue_depth_mean,
            queue_depth_max,
        }
    }
}

impl std::fmt::Debug for ServingSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingSim")
            .field("qps", &self.config.qps)
            .field("num_requests", &self.config.num_requests)
            .field("completed", &self.completed)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chatbot(qps: f64, n: u64) -> ServingReport {
        ServingSim::new(ServingConfig::new(ServingWorkload::Chatbot, qps, n).seed(1)).run()
    }

    fn react(qps: f64, n: u64) -> ServingReport {
        ServingSim::new(ServingConfig::new(ServingWorkload::react_hotpotqa(), qps, n).seed(1)).run()
    }

    #[test]
    fn chatbot_completes_all_requests() {
        let r = chatbot(1.0, 30);
        assert_eq!(r.completed, 30);
        assert!(r.p50_s > 1.0, "p50 {}", r.p50_s);
        assert!(r.p95_s >= r.p50_s);
        assert!(r.utilization > 0.0);
        assert!(
            r.queue_depth_max >= 1.0,
            "at least one request was in flight"
        );
        assert!(r.queue_depth_mean > 0.0);
        assert!(r.queue_depth_mean <= r.queue_depth_max);
    }

    #[test]
    fn chatbot_latency_band_matches_fig7() {
        // Paper Fig. 7: most ShareGPT responses complete in 3-7 s at low
        // load on the A100/8B stack.
        let mut r = chatbot(0.2, 40);
        let p50 = r.latencies.median();
        assert!((2.0..9.0).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn react_serving_completes_and_is_slower() {
        let agent = react(0.2, 15);
        let bot = chatbot(0.2, 15);
        assert_eq!(agent.completed, 15);
        assert!(
            agent.p50_s > bot.p50_s,
            "agent {} vs chatbot {}",
            agent.p50_s,
            bot.p50_s
        );
    }

    #[test]
    fn agent_latency_spread_exceeds_chatbot() {
        // Fig. 7: agents show a much broader, heavier-tailed distribution
        // (ShareGPT clusters in 3-7 s; ReAct spans tens of seconds).
        let agent = react(0.1, 25);
        let bot = chatbot(0.1, 25);
        let spread = |r: &ServingReport| r.p95_s - r.p50_s;
        assert!(
            spread(&agent) > 1.2 * spread(&bot),
            "agent spread {} vs chatbot {}",
            spread(&agent),
            spread(&bot)
        );
        assert!(
            agent.p95_s > 1.4 * bot.p95_s,
            "agent tail {} vs chatbot tail {}",
            agent.p95_s,
            bot.p95_s
        );
    }

    #[test]
    fn higher_load_raises_tail_latency() {
        // Past the knee (~2.6 qps on this stack, matching the paper),
        // queueing inflates the tail. Needs enough requests for a
        // backlog to form.
        let low = react(0.1, 30);
        let high = react(6.0, 60);
        assert!(
            high.p50_s > low.p50_s + 3.0,
            "p50 at 6 qps {} vs 0.1 qps {} (queueing delay)",
            high.p50_s,
            low.p50_s
        );
        assert!(high.p95_s > high.p50_s, "tail above median");
    }

    #[test]
    fn concurrency_beats_sequential_execution() {
        // §IV-C: concurrent execution yields large throughput gains
        // because tool waits are overlapped with other requests.
        let concurrent = react(1.0, 20);
        // Sequential lower bound: sum of single-request latencies.
        let single = crate::single::SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
            .seed(1)
            .run_batch(20);
        let sequential_time: f64 = single.iter().map(|o| o.trace.e2e().as_secs_f64()).sum();
        let seq_tput = 20.0 / sequential_time;
        assert!(
            concurrent.throughput() > 2.0 * seq_tput,
            "concurrent {} vs sequential {}",
            concurrent.throughput(),
            seq_tput
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = react(0.5, 10);
        let b = react(0.5, 10);
        assert_eq!(a.p95_s, b.p95_s);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.preemptions, b.preemptions);
    }

    #[test]
    fn mixed_workload_serves_both_classes() {
        let workload = ServingWorkload::Mixed {
            agent_fraction: 0.4,
            kind: AgentKind::React,
            benchmark: Benchmark::HotpotQa,
            config: AgentConfig::default_8b(),
        };
        let r = ServingSim::new(ServingConfig::new(workload, 0.5, 30).seed(2)).run();
        assert_eq!(r.completed, 30);
        assert!(!r.agent_latencies.is_empty(), "some agents arrived");
        assert!(
            !r.chatbot_latencies.is_empty(),
            "some chatbot requests arrived"
        );
        assert_eq!(
            r.agent_latencies.len() + r.chatbot_latencies.len(),
            30,
            "every request is classified exactly once"
        );
        // Agent requests are much slower than chatbot ones even coexisting.
        let agent_mean = r.agent_latencies.summary().mean();
        let chat_mean = r.chatbot_latencies.summary().mean();
        assert!(
            agent_mean > chat_mean,
            "agent {agent_mean} vs chatbot {chat_mean}"
        );
    }

    #[test]
    fn prefix_caching_raises_hit_rate_in_serving() {
        let with = react(0.5, 15);
        let cfg = ServingConfig::new(ServingWorkload::react_hotpotqa(), 0.5, 15)
            .seed(1)
            .engine(EngineConfig::a100_llama8b().with_prefix_caching(false));
        let without = ServingSim::new(cfg).run();
        assert!(with.kv_hit_rate > 0.3, "hit rate {}", with.kv_hit_rate);
        assert_eq!(without.kv_hit_rate, 0.0);
    }
}
