//! Multi-replica fleet serving: several engine replicas behind a router.
//!
//! The paper's datacenter projections (§VI) assume fleets of replicas;
//! this module asks the follow-on systems question: *how should agent
//! requests be routed across replicas?* Because an agent session's
//! iterative calls share a growing prefix, routing is not
//! load-balancing-neutral — sending call *k+1* to a different replica
//! than call *k* forfeits the prefix-cache state the paper shows is
//! critical (its Fig. 15).

use std::collections::HashMap;

use agentsim_agents::{
    build_agent, AgentConfig, AgentKind, AgentOp, AgentPolicy, LlmCallSpec, LlmOutput, OpResult,
};
use agentsim_llm::{Engine, EngineConfig, LlmCompletion, RequestId};
use agentsim_metrics::Samples;
use agentsim_simkit::dist::{Exponential, Sample};
use agentsim_simkit::{EventQueue, SimDuration, SimRng, SimTime};
use agentsim_tools::{ToolCall, ToolExecutor, ToolResult};
use agentsim_workloads::{Benchmark, TaskGenerator};

/// How the router assigns each LLM call to a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// All calls of a session go to one replica (hash by session id):
    /// keeps every iterative call's prefix warm.
    SessionAffinity,
    /// Calls rotate across replicas regardless of session: classic
    /// stateless load balancing, destroys cross-call prefix reuse.
    RoundRobin,
    /// Each call goes to the replica with the fewest in-flight requests.
    LeastLoaded,
}

impl std::fmt::Display for Routing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Routing::SessionAffinity => "session-affinity",
            Routing::RoundRobin => "round-robin",
            Routing::LeastLoaded => "least-loaded",
        })
    }
}

/// Configuration of a fleet run (agentic traffic).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-replica engine configuration.
    pub engine: EngineConfig,
    /// Number of replicas.
    pub replicas: u32,
    /// Routing policy.
    pub routing: Routing,
    /// Agent framework served.
    pub kind: AgentKind,
    /// Benchmark tasks are drawn from.
    pub benchmark: Benchmark,
    /// Agent configuration.
    pub agent: AgentConfig,
    /// Offered load, requests/second (fleet-wide).
    pub qps: f64,
    /// Requests to issue.
    pub num_requests: u64,
    /// Root seed.
    pub seed: u64,
}

impl FleetConfig {
    /// ReAct/HotpotQA on `replicas` default 8B replicas.
    pub fn react_hotpotqa(replicas: u32, routing: Routing, qps: f64, num_requests: u64) -> Self {
        assert!(replicas > 0, "fleet needs at least one replica");
        assert!(qps > 0.0, "offered load must be positive");
        assert!(num_requests > 0, "need at least one request");
        FleetConfig {
            engine: EngineConfig::a100_llama8b(),
            replicas,
            routing,
            kind: AgentKind::React,
            benchmark: Benchmark::HotpotQa,
            agent: AgentConfig::default_8b(),
            qps,
            num_requests,
            seed: 0,
        }
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Results of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Offered load.
    pub offered_qps: f64,
    /// Requests completed.
    pub completed: u64,
    /// End-to-end latencies (seconds).
    pub latencies: Samples,
    /// Median latency.
    pub p50_s: f64,
    /// Tail latency.
    pub p95_s: f64,
    /// Fleet-aggregate prefix-cache hit rate.
    pub kv_hit_rate: f64,
    /// Fleet-aggregate energy (Wh).
    pub energy_wh: f64,
    /// Per-replica utilization.
    pub utilization: Vec<f64>,
    /// Achieved throughput (requests/second).
    pub throughput: f64,
}

#[derive(Debug)]
enum Event {
    Arrival(u64),
    StepDone(usize),
    ToolsDone(u64),
}

struct Session {
    policy: Box<dyn AgentPolicy>,
    rng: SimRng,
    arrived: SimTime,
    pending: Vec<(usize, RequestId, LlmCallSpec)>,
    done: Vec<(RequestId, LlmCompletion)>,
    scheduled_tools: Vec<ToolResult>,
    overlap_tools: Option<(Vec<ToolCall>, f64)>,
    op_start: SimTime,
    calls_made: u32,
}

/// The fleet simulator. Build with [`FleetSim::new`], consume with
/// [`FleetSim::run`].
pub struct FleetSim {
    config: FleetConfig,
    engines: Vec<Engine>,
    tools: ToolExecutor,
    queue: EventQueue<Event>,
    sessions: Vec<Option<Session>>,
    owner: HashMap<(usize, RequestId), u64>,
    root_rng: SimRng,
    rr_counter: usize,
    latencies: Vec<f64>,
    completed: u64,
    last_finish: SimTime,
}

impl std::fmt::Debug for FleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSim")
            .field("replicas", &self.engines.len())
            .field("routing", &self.config.routing)
            .finish_non_exhaustive()
    }
}

impl FleetSim {
    /// Builds the fleet (arrivals pre-scheduled).
    pub fn new(config: FleetConfig) -> Self {
        let engines = (0..config.replicas)
            .map(|_| Engine::new(config.engine.clone()))
            .collect();
        let root_rng = SimRng::seed_from(config.seed ^ 0xF1EE7);
        let mut queue = EventQueue::new();
        let gaps = Exponential::with_rate(config.qps);
        let mut arrival_rng = root_rng.fork(0xA221);
        let mut t = SimTime::ZERO;
        for i in 0..config.num_requests {
            t += SimDuration::from_secs_f64(gaps.sample(&mut arrival_rng));
            queue.push(t, Event::Arrival(i));
        }
        let sessions = (0..config.num_requests).map(|_| None).collect();
        FleetSim {
            engines,
            tools: ToolExecutor::new(),
            queue,
            sessions,
            owner: HashMap::new(),
            root_rng,
            rr_counter: 0,
            latencies: Vec::new(),
            completed: 0,
            last_finish: SimTime::ZERO,
            config,
        }
    }

    /// Attaches one fresh [`crate::SpanRecorder`] per replica (as each
    /// engine's observer) and returns the handles, indexed by replica.
    /// Combine them with [`crate::chrome_trace`] for a single trace file
    /// with one process track per replica.
    pub fn attach_recorders(&mut self) -> Vec<crate::SpanRecorder> {
        self.engines
            .iter_mut()
            .map(|engine| {
                let recorder = crate::SpanRecorder::new();
                engine.set_observer(Box::new(recorder.clone()));
                recorder
            })
            .collect()
    }

    /// Runs to completion and reports.
    pub fn run(mut self) -> FleetReport {
        while let Some((now, event)) = self.queue.pop() {
            match event {
                Event::Arrival(i) => self.on_arrival(i, now),
                Event::StepDone(r) => self.on_step_done(r, now),
                Event::ToolsDone(sid) => self.on_tools_done(sid, now),
            }
            for r in 0..self.engines.len() {
                self.kick(r, now);
            }
        }
        assert_eq!(self.completed, self.config.num_requests, "all must finish");
        self.into_report()
    }

    fn route(&mut self, sid: u64) -> usize {
        let n = self.engines.len();
        match self.config.routing {
            Routing::SessionAffinity => (sid as usize) % n,
            Routing::RoundRobin => {
                // Post-increment: the first dispatch lands on replica 0.
                // (Pre-incrementing skewed dispatch order so replica 0 was
                // systematically served last.)
                let replica = self.rr_counter % n;
                self.rr_counter = (replica + 1) % n;
                replica
            }
            Routing::LeastLoaded => (0..n)
                .min_by_key(|&r| self.engines[r].queue_len() + self.engines[r].running_len())
                .expect("non-empty fleet"),
        }
    }

    fn on_arrival(&mut self, i: u64, now: SimTime) {
        let task = TaskGenerator::new(self.config.benchmark, self.config.seed).task(i);
        let mut s = Session {
            policy: build_agent(self.config.kind, &task, self.config.agent),
            rng: self.root_rng.fork(i ^ 0xA6E7),
            arrived: now,
            pending: Vec::new(),
            done: Vec::new(),
            scheduled_tools: Vec::new(),
            overlap_tools: None,
            op_start: now,
            calls_made: 0,
        };
        let op = s.policy.next(&OpResult::empty(), &mut s.rng);
        self.sessions[i as usize] = Some(s);
        self.dispatch(i, op, now);
    }

    fn dispatch(&mut self, sid: u64, op: AgentOp, now: SimTime) {
        match op {
            AgentOp::Llm(spec) => self.dispatch_llm(sid, vec![spec], now),
            AgentOp::LlmBatch(specs) => self.dispatch_llm(sid, specs, now),
            AgentOp::Tools(calls) => {
                let tools = &self.tools;
                let session = self.sessions[sid as usize].as_mut().expect("live");
                session.op_start = now;
                let mut rng = session.rng.fork(now.as_micros());
                let results = tools.execute_batch(&calls, &mut rng);
                let wall = results
                    .iter()
                    .map(|r| r.latency)
                    .max()
                    .unwrap_or(SimDuration::ZERO);
                session.scheduled_tools = results;
                self.queue.push(now + wall, Event::ToolsDone(sid));
            }
            AgentOp::OverlappedPlan {
                llm,
                tools,
                overlap,
            } => {
                let session = self.sessions[sid as usize].as_mut().expect("live");
                session.overlap_tools = Some((tools, overlap));
                self.dispatch_llm(sid, vec![llm], now);
            }
            AgentOp::Finish(_) => {
                let session = self.sessions[sid as usize].take().expect("live");
                self.latencies
                    .push(now.saturating_since(session.arrived).as_secs_f64());
                self.completed += 1;
                self.last_finish = self.last_finish.max(now);
            }
        }
    }

    fn dispatch_llm(&mut self, sid: u64, specs: Vec<LlmCallSpec>, now: SimTime) {
        let replica = self.route(sid);
        let session = self.sessions[sid as usize].as_mut().expect("live");
        session.op_start = now;
        session.done.clear();
        let priority = session.calls_made;
        session.calls_made += specs.len() as u32;
        for mut spec in specs {
            // Move the prompt (and its memoized hashes) into the engine;
            // the retained spec only needs its metadata.
            let prompt = std::mem::take(&mut spec.prompt);
            let id = self.engines[replica].submit_with_priority(
                now,
                prompt,
                spec.out_tokens,
                spec.gen_seed,
                priority,
            );
            self.owner.insert((replica, id), sid);
            session.pending.push((replica, id, spec));
        }
    }

    fn on_step_done(&mut self, replica: usize, now: SimTime) {
        for completion in self.engines[replica].complete_step(now) {
            let sid = self
                .owner
                .remove(&(replica, completion.id))
                .expect("owned completion");
            let finished = {
                let session = self.sessions[sid as usize].as_mut().expect("live");
                session.done.push((completion.id, completion));
                session.done.len() == session.pending.len()
            };
            if finished {
                self.finish_llm_op(sid, now);
            }
        }
    }

    fn finish_llm_op(&mut self, sid: u64, now: SimTime) {
        let session = self.sessions[sid as usize].as_mut().expect("live");
        let pending = std::mem::take(&mut session.pending);
        let mut done: HashMap<RequestId, LlmCompletion> = session.done.drain(..).collect();
        let mut outputs = Vec::with_capacity(pending.len());
        for (_, id, spec) in &pending {
            let completion = done.remove(id).expect("completed");
            outputs.push(LlmOutput {
                tokens: completion.output_tokens,
                gen_seed: spec.gen_seed,
            });
        }
        if let Some((calls, overlap)) = session.overlap_tools.take() {
            let tools = &self.tools;
            let mut rng = session.rng.fork(now.as_micros() ^ 0x0B);
            let results = tools.execute_batch(&calls, &mut rng);
            let wall = results
                .iter()
                .map(|r| r.latency)
                .max()
                .unwrap_or(SimDuration::ZERO);
            let plan_time = now.saturating_since(session.op_start);
            let credit = plan_time.mul_f64(overlap.clamp(0.0, 1.0));
            let extra = wall.saturating_sub(credit);
            session.scheduled_tools = results;
            self.queue.push(now + extra, Event::ToolsDone(sid));
            return;
        }
        let result = OpResult {
            llm: outputs,
            tools: Vec::new(),
        };
        let op = session.policy.next(&result, &mut session.rng);
        self.dispatch(sid, op, now);
    }

    fn on_tools_done(&mut self, sid: u64, now: SimTime) {
        let session = self.sessions[sid as usize].as_mut().expect("live");
        let results = std::mem::take(&mut session.scheduled_tools);
        let result = OpResult {
            llm: Vec::new(),
            tools: results,
        };
        let op = session.policy.next(&result, &mut session.rng);
        self.dispatch(sid, op, now);
    }

    fn kick(&mut self, replica: usize, now: SimTime) {
        if let Some(end) = self.engines[replica].start_step_if_idle(now) {
            self.queue.push(end, Event::StepDone(replica));
        }
    }

    fn into_report(self) -> FleetReport {
        let mut latencies: Samples = self.latencies.iter().copied().collect();
        let p50_s = latencies.median();
        let p95_s = latencies.p95();
        let (mut hits, mut lookups) = (0u64, 0u64);
        let mut energy_wh = 0.0;
        let mut utilization = Vec::with_capacity(self.engines.len());
        for e in &self.engines {
            let kv = e.kv().stats();
            hits += kv.hit_tokens;
            lookups += kv.hit_tokens + kv.miss_tokens;
            energy_wh += e.metrics().energy_within(self.last_finish).watt_hours();
            utilization.push(e.metrics().utilization(self.last_finish));
        }
        let makespan = self.last_finish.as_secs_f64();
        FleetReport {
            offered_qps: self.config.qps,
            completed: self.completed,
            p50_s,
            p95_s,
            kv_hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
            energy_wh,
            utilization,
            throughput: if makespan > 0.0 {
                self.completed as f64 / makespan
            } else {
                0.0
            },
            latencies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(routing: Routing, replicas: u32) -> FleetReport {
        FleetSim::new(FleetConfig::react_hotpotqa(replicas, routing, 2.0, 40).seed(3)).run()
    }

    #[test]
    fn round_robin_dispatch_order_starts_at_replica_zero() {
        let mut sim = FleetSim::new(FleetConfig::react_hotpotqa(3, Routing::RoundRobin, 1.0, 3));
        let order: Vec<usize> = (0..7).map(|sid| sim.route(sid)).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2, 0], "post-increment rotation");
    }

    #[test]
    fn session_affinity_pins_sessions_to_replicas() {
        let mut sim = FleetSim::new(FleetConfig::react_hotpotqa(
            4,
            Routing::SessionAffinity,
            1.0,
            3,
        ));
        for sid in 0..16u64 {
            assert_eq!(sim.route(sid), (sid % 4) as usize);
            // Repeated calls of the same session stay put.
            assert_eq!(sim.route(sid), (sid % 4) as usize);
        }
    }

    #[test]
    fn least_loaded_picks_an_idle_replica_first() {
        let mut sim = FleetSim::new(FleetConfig::react_hotpotqa(3, Routing::LeastLoaded, 1.0, 3));
        // All replicas idle: ties break toward the lowest index.
        assert_eq!(sim.route(9), 0);
    }

    #[test]
    fn fleet_completes_all_requests() {
        let r = run(Routing::SessionAffinity, 3);
        assert_eq!(r.completed, 40);
        assert_eq!(r.utilization.len(), 3);
        assert!(r.throughput > 0.0);
    }

    #[test]
    fn affinity_beats_round_robin_on_hit_rate() {
        // Iterative calls only reuse their history prefix if they land on
        // the same replica.
        let affinity = run(Routing::SessionAffinity, 4);
        let rr = run(Routing::RoundRobin, 4);
        assert!(
            affinity.kv_hit_rate > rr.kv_hit_rate + 0.1,
            "affinity {:.2} vs round-robin {:.2}",
            affinity.kv_hit_rate,
            rr.kv_hit_rate
        );
    }

    #[test]
    fn all_policies_are_deterministic() {
        for routing in [
            Routing::SessionAffinity,
            Routing::RoundRobin,
            Routing::LeastLoaded,
        ] {
            let a = run(routing, 2);
            let b = run(routing, 2);
            assert_eq!(a.p95_s, b.p95_s, "{routing} must be deterministic");
            assert_eq!(a.kv_hit_rate, b.kv_hit_rate);
        }
    }

    #[test]
    fn more_replicas_raise_capacity() {
        let one = FleetSim::new(
            FleetConfig::react_hotpotqa(1, Routing::SessionAffinity, 6.0, 60).seed(4),
        )
        .run();
        let four = FleetSim::new(
            FleetConfig::react_hotpotqa(4, Routing::SessionAffinity, 6.0, 60).seed(4),
        )
        .run();
        assert!(
            four.throughput > one.throughput,
            "4 replicas {:.2} vs 1 replica {:.2} QPS",
            four.throughput,
            one.throughput
        );
        assert!(four.p95_s < one.p95_s);
    }
}
