//! Multi-replica fleet serving: several engine replicas behind a router.
//!
//! The paper's datacenter projections (§VI) assume fleets of replicas;
//! this module asks the follow-on systems question: *how should agent
//! requests be routed across replicas?* Because an agent session's
//! iterative calls share a growing prefix, routing is not
//! load-balancing-neutral — sending call *k+1* to a different replica
//! than call *k* forfeits the prefix-cache state the paper shows is
//! critical (its Fig. 15). Closed-loop clients sharpen the question
//! further: a user population re-submitting turns under stable session
//! ids gives affinity routing cross-*turn* state to preserve, not just
//! cross-call.
//!
//! # Overload resilience
//!
//! With an [`OverloadPolicy`] attached, the fleet additionally models how
//! real serving stacks behave past saturation: clients abandon turns
//! after a deadline, the server optionally cancels the abandoned work
//! (engines release KV and stop burning steps), front-ends retry with
//! exponential backoff, and a per-replica admission controller bounds
//! concurrency with a pluggable dispatch-queue discipline. Admission is
//! gated at the door: only an attempt's *first* op waits for a slot —
//! once a session has consumed engine time, its continuation ops submit
//! immediately, because making admitted work queue behind fresh
//! arrivals leaves sessions half-served at their deadline with nothing
//! to show for the GPU time already spent. Every one of those decisions
//! is made on the coordinator thread, so the sharded parallel path
//! stays bit-identical at any thread count. The default
//! policy ([`OverloadPolicy::none`]) reproduces the historical
//! no-deadline behaviour bit-for-bit.

mod par;

use std::collections::{HashMap, VecDeque};

use agentsim_agents::{AgentConfig, AgentKind, Cognition};
use agentsim_kvcache::{EvictionPolicy, TokenBuf};
use agentsim_llm::{Engine, EngineConfig, LlmCompletion, ModelTier, RequestId};
use agentsim_metrics::Samples;
use agentsim_session::{
    seeds, validate_load, AdmissionController, Arrival, ArrivalProcess, CallDone, CascadePolicy,
    ClientModel, LlmSubmit, OverloadPolicy, QueueDiscipline, SessionCmd, SessionRunner, ToolRng,
};
use agentsim_simkit::{EventQueue, SimDuration, SimRng, SimTime};
use agentsim_tools::ToolExecutor;
use agentsim_workloads::{Benchmark, Task, TaskGenerator};

/// How the router assigns each LLM call to a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// All calls of a session go to one replica (hash by session id):
    /// keeps every iterative call's prefix warm.
    SessionAffinity,
    /// Calls rotate across replicas regardless of session: classic
    /// stateless load balancing, destroys cross-call prefix reuse.
    RoundRobin,
    /// Each call goes to the replica with the fewest in-flight requests.
    LeastLoaded,
}

impl std::fmt::Display for Routing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Routing::SessionAffinity => "session-affinity",
            Routing::RoundRobin => "round-robin",
            Routing::LeastLoaded => "least-loaded",
        })
    }
}

/// One homogeneous group of replicas inside a (possibly heterogeneous)
/// fleet: an engine spec, a count, and the agent configuration whose
/// model quality matches the model the pool serves.
#[derive(Debug, Clone)]
pub struct ReplicaPool {
    /// Engine configuration cloned per replica of this pool.
    pub engine: EngineConfig,
    /// Number of replicas in the pool.
    pub replicas: u32,
    /// Agent configuration for turns served by this pool (its
    /// `model_quality` should describe the pool's model).
    pub agent: AgentConfig,
}

impl ReplicaPool {
    /// A pool of `replicas` copies of `engine`, with the agent config
    /// inferred from the engine's [`ModelTier`] (8B quality for
    /// [`ModelTier::Small`], 70B for [`ModelTier::Large`]).
    pub fn new(engine: EngineConfig, replicas: u32) -> Self {
        assert!(replicas > 0, "pool needs at least one replica");
        let agent = match engine.tier {
            ModelTier::Small => AgentConfig::default_8b(),
            ModelTier::Large => AgentConfig::default_70b(),
        };
        ReplicaPool {
            engine,
            replicas,
            agent,
        }
    }

    /// Returns a copy with a different agent configuration.
    pub fn with_agent(mut self, agent: AgentConfig) -> Self {
        self.agent = agent;
        self
    }
}

/// Configuration of a fleet run (agentic traffic).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Replica pools, ordered cheap-to-premium. Replicas are numbered
    /// contiguously in pool order; a single pool reproduces the
    /// historical homogeneous fleet exactly.
    pub pools: Vec<ReplicaPool>,
    /// Routing policy (applied *within* a tier's pool — the cascade
    /// policy picks the tier, the routing policy picks the replica).
    pub routing: Routing,
    /// Agent framework served.
    pub kind: AgentKind,
    /// Benchmark tasks are drawn from.
    pub benchmark: Benchmark,
    /// Tier selection and failure-driven escalation across pools.
    /// [`CascadePolicy::none`] (the default) keeps every turn on tier 0,
    /// reproducing the historical single-tier behaviour bit-for-bit.
    pub cascade: CascadePolicy,
    /// Offered load, requests/second (fleet-wide, open-loop clients).
    pub qps: f64,
    /// Turns to issue.
    pub num_requests: u64,
    /// Root seed.
    pub seed: u64,
    /// Who submits the turns, and when.
    pub client: ClientModel,
    /// Deadlines, retries, admission control (default: none of them).
    pub overload: OverloadPolicy,
    /// Worker threads for the parallel driver (`1` = sequential path).
    pub threads: u32,
    /// Carry each session's conversation across turns: a follow-up turn's
    /// prompts are prefixed with the session's prior final context, so
    /// cross-turn KV reuse (and the offload tiers that preserve it through
    /// think time) becomes possible. Off by default — turns are
    /// independent tasks.
    pub carry_context: bool,
}

impl FleetConfig {
    /// ReAct/HotpotQA on `replicas` default 8B replicas — single-pool
    /// sugar over [`FleetConfig::pooled`].
    pub fn react_hotpotqa(replicas: u32, routing: Routing, qps: f64, num_requests: u64) -> Self {
        Self::pooled(
            vec![ReplicaPool::new(EngineConfig::a100_llama8b(), replicas)],
            routing,
            qps,
            num_requests,
        )
    }

    /// ReAct/HotpotQA across an explicit set of replica pools, ordered
    /// cheap-to-premium.
    pub fn pooled(pools: Vec<ReplicaPool>, routing: Routing, qps: f64, num_requests: u64) -> Self {
        assert!(!pools.is_empty(), "fleet needs at least one pool");
        validate_load(qps, num_requests);
        FleetConfig {
            pools,
            routing,
            kind: AgentKind::React,
            benchmark: Benchmark::HotpotQa,
            cascade: CascadePolicy::none(),
            qps,
            num_requests,
            seed: 0,
            client: ClientModel::OpenLoopPoisson,
            overload: OverloadPolicy::none(),
            threads: 1,
            carry_context: false,
        }
    }

    /// Total replicas across all pools.
    pub fn total_replicas(&self) -> u32 {
        self.pools.iter().map(|p| p.replicas).sum()
    }

    /// Applies `f` to every pool's engine configuration (e.g. to shrink
    /// the KV pool or attach offload tiers fleet-wide).
    pub fn map_engines(mut self, f: impl Fn(EngineConfig) -> EngineConfig) -> Self {
        for pool in &mut self.pools {
            pool.engine = f(pool.engine.clone());
        }
        self
    }

    /// Attaches a cascade policy (tier selection and escalation).
    pub fn cascade(mut self, cascade: CascadePolicy) -> Self {
        self.cascade = cascade;
        self
    }

    /// Enables cross-turn conversation carry (see
    /// [`FleetConfig::carry_context`]).
    pub fn with_context_carry(mut self) -> Self {
        self.carry_context = true;
        self
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the client model.
    pub fn client(mut self, client: ClientModel) -> Self {
        self.client = client;
        self
    }

    /// Attaches an overload policy (deadlines, retries, admission
    /// control). Validated against the client model at build time.
    pub fn overload(mut self, overload: OverloadPolicy) -> Self {
        self.overload = overload;
        self
    }

    /// Shards replicas across `threads` worker threads. `1` (the default)
    /// is the sequential path; any other count produces bit-identical
    /// reports — see the [`agentsim_session::shard`] module docs.
    pub fn threads(mut self, threads: u32) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }
}

/// Results of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Offered load.
    pub offered_qps: f64,
    /// Turns completed *within their deadline* (all turns when the run
    /// has no deadline).
    pub completed: u64,
    /// On-time turns whose agent actually solved its task (the
    /// cognition-model verdict) — the accuracy numerator cascade
    /// experiments trade off against cost and latency.
    pub solved: u64,
    /// Failure-driven re-routes of unsolved turns to a higher tier.
    pub escalated: u64,
    /// End-to-end latencies of on-time turns (seconds).
    pub latencies: Samples,
    /// Median latency.
    pub p50_s: f64,
    /// Tail latency.
    pub p95_s: f64,
    /// Fleet-aggregate prefix-cache hit rate.
    pub kv_hit_rate: f64,
    /// Fleet-aggregate energy (Wh).
    pub energy_wh: f64,
    /// Per-replica utilization.
    pub utilization: Vec<f64>,
    /// Finished turns per second, late ones included.
    pub throughput: f64,
    /// On-time turns per second — the paper's "useful" throughput. Equals
    /// `throughput` when no deadline is set.
    pub goodput: f64,
    /// Delivery attempts processed (initial turns plus retries).
    pub attempts: u64,
    /// Re-issues scheduled after deadline expiries.
    pub retries: u64,
    /// Logical turns the client gave up on (deadline expired, retry
    /// budget exhausted).
    pub abandoned: u64,
    /// Attempts that finished after their deadline (only possible without
    /// server-side cancellation — the work completes but nobody reads it).
    pub late: u64,
    /// Attempts torn down server-side at deadline expiry.
    pub cancelled: u64,
    /// Queued ops dropped at dispatch (dead or expired sessions).
    pub dropped: u64,
    /// GPU service seconds burned on work no live client received:
    /// engine-side partial service of cancelled requests plus completed
    /// service delivered after the client gave up.
    pub wasted_gpu_s: f64,
    /// Peak number of simultaneously live sessions (bounded by the
    /// population under a closed-loop client).
    pub max_live_sessions: u64,
    /// Median time-to-first-token across every finished engine call
    /// (queueing plus prefill — the latency the KV offload tiers tax).
    pub ttft_p50_s: f64,
    /// Tail time-to-first-token across every finished engine call.
    pub ttft_p95_s: f64,
    /// Median time-per-output-token across every finished engine call
    /// with more than one output token (seconds/token).
    pub tpot_p50_s: f64,
    /// p99 time-per-output-token — the decode-interference tail the
    /// cascade's premium pool must keep short.
    pub tpot_p99_s: f64,
    /// Blocks demoted out of HBM into the offload tiers, fleet-wide
    /// (zero without [`agentsim_llm::OffloadConfig`]).
    pub offload_demoted_blocks: u64,
    /// Blocks promoted back into HBM from the offload tiers, fleet-wide.
    pub offload_promoted_blocks: u64,
    /// Prompt tokens served from an offload tier instead of recomputed —
    /// the hierarchy's prefill savings, fleet-wide.
    pub offload_promoted_tokens: u64,
    /// Blocks that fell off the bottom of the hierarchy, fleet-wide.
    pub offload_dropped_blocks: u64,
    /// Bytes moved over the HBM↔host offload links, fleet-wide.
    pub offload_host_bytes: u64,
    /// Bytes moved over the host↔NVMe offload links, fleet-wide.
    pub offload_nvme_bytes: u64,
    /// Wire time the HBM↔host offload links spent moving KV, fleet-wide
    /// (seconds) — with promotion pipelining this includes wire time
    /// hidden behind prefill compute.
    pub offload_host_busy_s: f64,
    /// Head-of-line queueing delay on the HBM↔host links, fleet-wide
    /// (seconds).
    pub offload_host_wait_s: f64,
    /// Wire time the host↔NVMe offload links spent moving KV (seconds).
    pub offload_nvme_busy_s: f64,
    /// Head-of-line queueing delay on the host↔NVMe links (seconds).
    pub offload_nvme_wait_s: f64,
}

#[derive(Debug)]
enum Event {
    Arrival(Arrival),
    StepDone(usize),
    ToolsDone { sid: u64, epoch: u64 },
    DeadlineExpired { sid: u64, epoch: u64 },
}

/// Per-attempt bookkeeping for a live session slot.
struct SessionMeta {
    /// Global turn index (for retry re-issue).
    turn: u64,
    /// Delivery attempt (0 = client-issued).
    attempt: u32,
    /// Pool tier this attempt runs on (index into `config.pools`).
    tier: usize,
    /// Failure-driven escalations this turn has consumed so far.
    escalations: u32,
    /// When the turn's current delivery attempt first started (carried
    /// across escalations so cascade latency spans the whole chain).
    started_at: SimTime,
    /// Occupancy counter of the slot, guarding stale wake-ups.
    epoch: u64,
    /// Absolute expiry of this attempt, if the run has deadlines.
    deadline: Option<SimTime>,
    /// The deadline passed but the attempt was left running (no
    /// cancellation): its remaining work is wasted.
    expired: bool,
    /// The attempt's first op was admitted to an engine: later ops
    /// bypass the admission queue (gate at the door, then run to done).
    started: bool,
    /// Engine calls currently in flight, as `(replica, id)`.
    calls: Vec<(usize, RequestId)>,
    /// The session's engine-side context — last submitted prompt plus
    /// its generated output — and that call's generation seed. Tracked
    /// only when offload hints are enabled, and only for single-call
    /// ops (a fan-out has no one context to predict for).
    kv_ctx: Option<(TokenBuf, u64)>,
    /// Replica holding that context.
    kv_replica: usize,
}

/// An op waiting in a replica's dispatch queue for an admission slot.
struct PendingOp {
    sid: u64,
    /// Slot epoch at enqueue time; a mismatch at dispatch means the
    /// attempt was torn down and the op must be dropped.
    epoch: u64,
    deadline: Option<SimTime>,
    calls: Vec<LlmSubmit>,
    priority: u32,
}

/// The fleet simulator. Build with [`FleetSim::new`], consume with
/// [`FleetSim::run`].
pub struct FleetSim {
    config: FleetConfig,
    engines: Vec<Engine>,
    tools: ToolExecutor,
    queue: EventQueue<Event>,
    client: Box<dyn ArrivalProcess>,
    sessions: Vec<Option<SessionRunner>>,
    meta: Vec<Option<SessionMeta>>,
    /// Occupancy counter per session slot; bumped at each arrival so
    /// events addressed to a torn-down attempt can be recognized.
    epochs: Vec<u64>,
    owner: HashMap<(usize, RequestId), (u64, u32)>,
    /// Ops waiting for an admission slot, per replica.
    dispatch: Vec<VecDeque<PendingOp>>,
    /// Engine calls held by each replica's dispatch queue (counted into
    /// the least-loaded routing metric; always 0 under accept-all).
    dispatch_calls: Vec<usize>,
    /// Engine calls admitted and not yet completed, per replica.
    in_flight: Vec<usize>,
    admission: Vec<Box<dyn AdmissionController>>,
    root_rng: SimRng,
    /// Pool index of each replica (replicas are numbered contiguously in
    /// pool order).
    pool_of: Vec<usize>,
    /// Replica index range of each pool.
    tier_ranges: Vec<std::ops::Range<usize>>,
    /// Round-robin cursor per pool (tier-local rotation).
    rr_counters: Vec<usize>,
    /// Whether to feed next-invocation predictions to the engines' KV
    /// offload hierarchies (offload configured with
    /// [`EvictionPolicy::InvocationDistance`]).
    hints: bool,
    /// Whether to snapshot per-session contexts (needed by hints and by
    /// conversation carry).
    track_ctx: bool,
    /// Per-session carried conversation: the final context of the
    /// session's last completed turn, prefixed onto its next turn's
    /// prompts when [`FleetConfig::carry_context`] is set.
    carry: Vec<Option<TokenBuf>>,
    latencies: Vec<f64>,
    /// Per-call time-to-first-token samples (seconds).
    ttfts: Vec<f64>,
    /// Per-call time-per-output-token samples (seconds/token).
    tpots: Vec<f64>,
    completed: u64,
    solved: u64,
    escalated: u64,
    attempts: u64,
    retries: u64,
    abandoned: u64,
    late: u64,
    cancelled: u64,
    dropped: u64,
    /// Service seconds delivered to clients that had already given up.
    wasted_service: f64,
    last_finish: SimTime,
    live: u64,
    max_live: u64,
    /// Reused per-step completion buffer (sequential path hot loop).
    step_scratch: Vec<LlmCompletion>,
}

impl std::fmt::Debug for FleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSim")
            .field("replicas", &self.engines.len())
            .field("routing", &self.config.routing)
            .finish_non_exhaustive()
    }
}

impl FleetSim {
    /// Builds the fleet (the first arrivals are scheduled; the rest
    /// chain lazily as the run progresses).
    pub fn new(config: FleetConfig) -> Self {
        validate_load(config.qps, config.num_requests);
        config.overload.validate(&config.client);
        assert!(!config.pools.is_empty(), "fleet needs at least one pool");
        // Flatten the pools into one contiguous replica index space.
        let mut engines = Vec::new();
        let mut pool_of = Vec::new();
        let mut tier_ranges = Vec::new();
        for (tier, p) in config.pools.iter().enumerate() {
            assert!(p.replicas > 0, "pool {tier} needs at least one replica");
            let start = engines.len();
            for _ in 0..p.replicas {
                engines.push(Engine::new(p.engine.clone()));
                pool_of.push(tier);
            }
            tier_ranges.push(start..engines.len());
        }
        let replicas = engines.len();
        let root_rng = SimRng::seed_from(config.seed ^ seeds::FLEET_ROOT);
        let mut client = config.client.build(
            config.qps,
            config.num_requests,
            root_rng.fork(seeds::ARRIVALS),
        );
        let mut queue = EventQueue::new();
        for a in client.initial() {
            queue.push(a.at, Event::Arrival(a));
        }
        let slots = config.client.sessions(config.num_requests) as usize;
        let hints = config.pools.iter().any(|p| {
            p.engine
                .offload
                .as_ref()
                .is_some_and(|o| o.policy == EvictionPolicy::InvocationDistance)
        });
        // An escalated turn re-arrives on the premium tier carrying the
        // conversation it built on the cheap one, so cascade runs track
        // contexts even without hints or explicit carry.
        let cascade_active = config.cascade.escalate_on_failure && config.pools.len() > 1;
        FleetSim {
            engines,
            tools: ToolExecutor::new(),
            queue,
            client,
            sessions: (0..slots).map(|_| None).collect(),
            meta: (0..slots).map(|_| None).collect(),
            epochs: vec![0; slots],
            owner: HashMap::new(),
            dispatch: (0..replicas).map(|_| VecDeque::new()).collect(),
            dispatch_calls: vec![0; replicas],
            in_flight: vec![0; replicas],
            admission: (0..replicas)
                .map(|_| config.overload.admission.build())
                .collect(),
            root_rng,
            rr_counters: vec![0; config.pools.len()],
            pool_of,
            tier_ranges,
            hints,
            track_ctx: hints || config.carry_context || cascade_active,
            carry: (0..slots).map(|_| None).collect(),
            latencies: Vec::new(),
            ttfts: Vec::new(),
            tpots: Vec::new(),
            completed: 0,
            solved: 0,
            escalated: 0,
            attempts: 0,
            retries: 0,
            abandoned: 0,
            late: 0,
            cancelled: 0,
            dropped: 0,
            wasted_service: 0.0,
            last_finish: SimTime::ZERO,
            live: 0,
            max_live: 0,
            step_scratch: Vec::new(),
            config,
        }
    }

    /// Attaches one fresh [`crate::SpanRecorder`] per replica (as each
    /// engine's observer) and returns the handles, indexed by replica.
    /// Combine them with [`crate::chrome_trace`] for a single trace file
    /// with one process track per replica.
    pub fn attach_recorders(&mut self) -> Vec<crate::SpanRecorder> {
        self.engines
            .iter_mut()
            .map(|engine| {
                let recorder = crate::SpanRecorder::new();
                engine.set_observer(Box::new(recorder.clone()));
                recorder
            })
            .collect()
    }

    /// Runs to completion and reports.
    pub fn run(mut self) -> FleetReport {
        let threads = (self.config.threads as usize).min(self.engines.len());
        if threads > 1 {
            return self.run_parallel(threads);
        }
        while let Some((now, event)) = self.queue.pop() {
            match event {
                Event::Arrival(a) => self.on_arrival_with(None, a, now),
                Event::StepDone(r) => self.on_step_done(r, now),
                Event::ToolsDone { sid, epoch } => self.on_tools_done_event(None, sid, epoch, now),
                Event::DeadlineExpired { sid, epoch } => self.on_deadline(None, sid, epoch, now),
            }
            self.drain_all(None, now);
            for r in 0..self.engines.len() {
                self.kick(r, now);
            }
        }
        self.check_end_state();
        self.into_report()
    }

    /// Every turn must resolve exactly once, and every attempt must end
    /// exactly one way.
    fn check_end_state(&self) {
        let expected = self.config.client.total_turns(self.config.num_requests);
        if self.config.overload.deadline.is_some() {
            assert_eq!(
                self.completed + self.abandoned,
                expected,
                "every turn must resolve on-time or abandoned"
            );
            assert_eq!(
                self.attempts,
                self.completed + self.late + self.cancelled + self.escalated,
                "every attempt must finish, finish late, be cancelled, or escalate"
            );
            assert_eq!(
                self.attempts,
                expected + self.retries + self.escalated,
                "attempts are initial turns plus retries plus escalations"
            );
        } else {
            assert_eq!(self.completed, expected, "all turns must finish");
            assert_eq!(
                self.attempts,
                expected + self.escalated,
                "attempts are turns plus escalations"
            );
        }
    }

    #[cfg(test)]
    fn route(&mut self, sid: u64) -> usize {
        self.route_with(None, sid, 0)
    }

    /// Routes one LLM op within `tier`'s pool. The cascade policy picks
    /// the tier; the routing policy picks the replica inside it. The
    /// parallel path passes its [`ShardPool`] so least-loaded reads the
    /// coordinator's exact load mirrors instead of the (moved-away)
    /// engines.
    ///
    /// [`ShardPool`]: agentsim_session::ShardPool
    fn route_with(
        &mut self,
        pool: Option<&agentsim_session::ShardPool>,
        sid: u64,
        tier: usize,
    ) -> usize {
        let range = self.tier_ranges[tier].clone();
        let n = range.len();
        match self.config.routing {
            Routing::SessionAffinity => range.start + (sid as usize) % n,
            Routing::RoundRobin => {
                // Post-increment: the first dispatch lands on the pool's
                // first replica. (Pre-incrementing skewed dispatch order
                // so replica 0 was systematically served last.)
                let local = self.rr_counters[tier] % n;
                self.rr_counters[tier] = (local + 1) % n;
                range.start + local
            }
            Routing::LeastLoaded => range
                .min_by_key(|&r| {
                    let engine = match pool {
                        Some(pool) => pool.load(r),
                        None => self.engines[r].queue_len() + self.engines[r].running_len(),
                    };
                    engine + self.dispatch_calls[r]
                })
                .expect("non-empty pool"),
        }
    }

    fn on_arrival_with(
        &mut self,
        pool: Option<&mut agentsim_session::ShardPool>,
        a: Arrival,
        now: SimTime,
    ) {
        // Chain the next arrival first, so it precedes any event this
        // one schedules at the same instant. Retries (attempt > 0) are
        // driver-issued and must not advance the client process.
        if a.attempt == 0 {
            if let Some(next) = self.client.after_arrival(now) {
                self.queue.push(next.at, Event::Arrival(next));
            }
        }
        let tier = if self.config.pools.len() > 1 {
            let task = TaskGenerator::new(self.config.benchmark, self.config.seed).task(a.turn);
            self.arrival_tier(&task, a.attempt)
        } else {
            0
        };
        let history = if self.config.carry_context {
            self.carry[a.session as usize].clone()
        } else {
            None
        };
        self.begin_attempt(
            pool, a.session, a.turn, a.attempt, tier, 0, history, now, now,
        );
    }

    /// The tier a fresh (non-escalated) attempt lands on under the
    /// cascade policy: retries optionally climb one tier per attempt, and
    /// tasks whose latent aptitude exceeds the cheap tier's *best-case*
    /// capability (plus margin) skip straight to the top — every cheap
    /// attempt at them is provably wasted work.
    fn arrival_tier(&self, task: &Task, attempt: u32) -> usize {
        let top = self.config.pools.len() - 1;
        if top == 0 {
            return 0;
        }
        let c = &self.config.cascade;
        if c.escalate_retries && attempt > 0 {
            return (attempt as usize).min(top);
        }
        if let Some(margin) = c.aptitude_margin {
            let cheap = &self.config.pools[0].agent;
            let best = Cognition::best_case_capability(self.config.kind, cheap, task);
            if Cognition::aptitude(task) + margin > best {
                return top;
            }
        }
        0
    }

    /// Opens one delivery attempt of a turn on `tier` and executes its
    /// first command. Shared by client arrivals, retries, and cascade
    /// escalations (which carry `history` and the original `started_at`
    /// across the re-route).
    #[allow(clippy::too_many_arguments)]
    fn begin_attempt(
        &mut self,
        pool: Option<&mut agentsim_session::ShardPool>,
        sid: u64,
        turn: u64,
        attempt: u32,
        tier: usize,
        escalations: u32,
        history: Option<TokenBuf>,
        started_at: SimTime,
        now: SimTime,
    ) {
        self.attempts += 1;
        let task = TaskGenerator::new(self.config.benchmark, self.config.seed).task(turn);
        let (runner, cmd) = SessionRunner::agent_continuing(
            history,
            self.config.kind,
            &task,
            self.config.pools[tier].agent,
            self.root_rng.fork(turn ^ seeds::AGENT_SESSION),
            ToolRng::ForkByTime,
            &self.tools,
            now,
        );
        let s = sid as usize;
        let slot = &mut self.sessions[s];
        assert!(slot.is_none(), "session {sid} already live");
        *slot = Some(runner);
        self.epochs[s] += 1;
        let epoch = self.epochs[s];
        let deadline = self.config.overload.deadline.map(|d| now + d);
        self.meta[s] = Some(SessionMeta {
            turn,
            attempt,
            tier,
            escalations,
            started_at,
            epoch,
            deadline,
            expired: false,
            started: false,
            calls: Vec::new(),
            kv_ctx: None,
            kv_replica: 0,
        });
        if let Some(expiry) = deadline {
            self.queue
                .push(expiry, Event::DeadlineExpired { sid, epoch });
        }
        self.live += 1;
        self.max_live = self.max_live.max(self.live);
        self.exec_with(pool, sid, cmd, now);
    }

    /// Executes a session command against the routed fleet.
    fn exec_with(
        &mut self,
        pool: Option<&mut agentsim_session::ShardPool>,
        sid: u64,
        cmd: SessionCmd,
        now: SimTime,
    ) {
        match cmd {
            SessionCmd::Llm(op) => {
                let (epoch, deadline, started, tier) = {
                    let m = self.meta[sid as usize].as_ref().expect("live session meta");
                    (m.epoch, m.deadline, m.started, m.tier)
                };
                let replica = self.route_with(pool.as_deref(), sid, tier);
                let entry = PendingOp {
                    sid,
                    epoch,
                    deadline,
                    calls: op.calls,
                    priority: op.priority,
                };
                if started {
                    // Admission gates at the door only: this attempt
                    // already holds engine state, so queueing its next
                    // op behind fresh arrivals would strand the GPU
                    // time it has consumed.
                    self.admit_op(pool, replica, entry, now);
                    return;
                }
                self.dispatch_calls[replica] += entry.calls.len();
                match self.config.overload.discipline {
                    QueueDiscipline::Lifo => self.dispatch[replica].push_front(entry),
                    QueueDiscipline::Fifo | QueueDiscipline::DeadlineDrop => {
                        self.dispatch[replica].push_back(entry)
                    }
                }
                self.drain_dispatch(pool, replica, now);
            }
            SessionCmd::Tools { wake } => {
                let epoch = self.epochs[sid as usize];
                self.queue.push(wake, Event::ToolsDone { sid, epoch });
                // The session's context blocks sit idle until the tools
                // return — tell the offload hierarchy exactly when that is.
                if let Some((replica, hashes)) = self.ctx_hashes(sid) {
                    self.send_hint(pool, replica, hashes, now, wake);
                }
            }
            SessionCmd::Finish(outcome) => {
                let runner = self.sessions[sid as usize].take().expect("live session");
                let m = self.meta[sid as usize].take().expect("live session meta");
                debug_assert!(m.calls.is_empty(), "finished with calls in flight");
                self.live -= 1;
                let c = self.config.cascade;
                if c.escalate_on_failure
                    && !outcome.solved
                    && !m.expired
                    && m.tier + 1 < self.config.pools.len()
                    && m.escalations < c.max_escalations
                {
                    // Unsolved on this tier: re-run the turn one tier up.
                    // The conversation built so far (tracked engine-side
                    // context, falling back to the cross-turn carry)
                    // survives the re-route as the new attempt's prefix,
                    // so the premium pool prefills it instead of starting
                    // cold — and its KV hints will land on the new
                    // replica.
                    self.escalated += 1;
                    let history = match m.kv_ctx {
                        Some((ctx, _)) => Some(ctx),
                        None => self.carry[sid as usize].clone(),
                    };
                    self.begin_attempt(
                        pool,
                        sid,
                        m.turn,
                        m.attempt,
                        m.tier + 1,
                        m.escalations + 1,
                        history,
                        m.started_at,
                        now,
                    );
                    return;
                }
                self.last_finish = self.last_finish.max(now);
                if m.expired {
                    // The turn was already resolved abandoned at its
                    // deadline; this finish delivered nothing.
                    self.late += 1;
                } else {
                    // An escalated turn's latency spans the whole cascade
                    // chain, not just the final attempt's trace.
                    let latency = if m.escalations == 0 {
                        runner.trace().e2e()
                    } else {
                        now - m.started_at
                    };
                    self.latencies.push(latency.as_secs_f64());
                    self.completed += 1;
                    if outcome.solved {
                        self.solved += 1;
                    }
                    if let Some(next) = self.client.after_finish(sid, now) {
                        // A closed-loop user thinking before their next
                        // turn: that turn reopens with this context as
                        // its prefix, at a known future instant.
                        if next.session == sid {
                            if let Some((ctx, _)) = &m.kv_ctx {
                                let block = self.block_size_of(m.kv_replica);
                                let hashes = ctx.chain_hashes_cached(block).to_vec();
                                self.send_hint(pool, m.kv_replica, hashes, now, next.at);
                            }
                        }
                        self.queue.push(next.at, Event::Arrival(next));
                    }
                    // The conversation so far becomes the next turn's
                    // prefix. A fan-out last op leaves no linear context;
                    // the previous carry then stands.
                    if self.config.carry_context {
                        if let Some((ctx, _)) = m.kv_ctx {
                            self.carry[sid as usize] = Some(ctx);
                        }
                    }
                }
            }
        }
    }

    /// The chain hashes of `sid`'s tracked engine-side context, with the
    /// replica holding it. `None` unless offload hints are enabled and the
    /// session has a tracked single-call context with at least one full
    /// block.
    fn ctx_hashes(&self, sid: u64) -> Option<(usize, Vec<u64>)> {
        if !self.hints {
            return None;
        }
        let m = self.meta[sid as usize].as_ref()?;
        let (ctx, _) = m.kv_ctx.as_ref()?;
        let hashes = ctx
            .chain_hashes_cached(self.block_size_of(m.kv_replica))
            .to_vec();
        if hashes.is_empty() {
            return None;
        }
        Some((m.kv_replica, hashes))
    }

    /// KV block size of the engine serving `replica` — pools may differ,
    /// so context hashing must use the holder's block size, not pool 0's.
    fn block_size_of(&self, replica: usize) -> usize {
        self.config.pools[self.pool_of[replica]].engine.block_size as usize
    }

    /// GPU-seconds per service-second on `replica`: the GPU count of its
    /// pool's cluster. A service-second wasted on a 4-GPU 70B replica
    /// burns four GPU-seconds — pricing every replica by pool 0's
    /// hardware undercounts heterogeneous waste.
    fn gpu_weight(&self, replica: usize) -> f64 {
        self.config.pools[self.pool_of[replica]]
            .engine
            .cluster
            .gpu_count as f64
    }

    /// Delivers a next-invocation prediction to `replica`'s engine (KV
    /// offload hierarchies under invocation-distance eviction).
    fn send_hint(
        &mut self,
        pool: Option<&mut agentsim_session::ShardPool>,
        replica: usize,
        hashes: Vec<u64>,
        now: SimTime,
        at: SimTime,
    ) {
        if !self.hints || hashes.is_empty() {
            return;
        }
        match pool {
            Some(p) => p.hint(replica, hashes, now, at),
            None => self.engines[replica].hint_next_use(&hashes, now, at),
        }
    }

    /// A session's tool batch finished; ignore the wake-up if the attempt
    /// was torn down (and possibly replaced) while the tools ran.
    fn on_tools_done_event(
        &mut self,
        pool: Option<&mut agentsim_session::ShardPool>,
        sid: u64,
        epoch: u64,
        now: SimTime,
    ) {
        let s = sid as usize;
        if self.epochs[s] != epoch || self.sessions[s].is_none() {
            return;
        }
        let cmd = self.sessions[s]
            .as_mut()
            .expect("live session")
            .on_tools_done(&self.tools, now);
        self.exec_with(pool, sid, cmd, now);
    }

    /// A turn's deadline expired while its attempt was still live.
    fn on_deadline(
        &mut self,
        mut pool: Option<&mut agentsim_session::ShardPool>,
        sid: u64,
        epoch: u64,
        now: SimTime,
    ) {
        let s = sid as usize;
        if self.epochs[s] != epoch || self.sessions[s].is_none() {
            return; // The attempt finished (or was replaced) in time.
        }
        if self.config.overload.cancel_on_expiry {
            let meta = self.meta[s].take().expect("live session meta");
            self.sessions[s].take();
            self.live -= 1;
            self.cancelled += 1;
            let mut penalized: Vec<usize> = Vec::new();
            for (replica, id) in &meta.calls {
                let removed = self.owner.remove(&(*replica, *id));
                debug_assert!(removed.is_some(), "meta.calls tracks live submissions");
                self.in_flight[*replica] -= 1;
                match pool.as_deref_mut() {
                    Some(p) => p.cancel(*replica, now, *id),
                    None => self.engines[*replica].cancel(now, *id),
                }
                if !penalized.contains(replica) {
                    penalized.push(*replica);
                    self.admission[*replica].on_timeout();
                }
            }
            // A queued (never-admitted) op of this attempt is dropped
            // lazily at dispatch: its epoch no longer matches the slot's.
            let retry_at = self
                .config
                .overload
                .retry
                .as_ref()
                .filter(|r| meta.attempt < r.max_retries)
                .map(|r| now + r.backoff(meta.attempt));
            match retry_at {
                Some(at) => {
                    self.retries += 1;
                    self.queue.push(
                        at,
                        Event::Arrival(Arrival {
                            at,
                            session: sid,
                            turn: meta.turn,
                            attempt: meta.attempt + 1,
                        }),
                    );
                }
                None => self.resolve_abandoned(sid, now),
            }
        } else {
            // No cancellation: the attempt keeps running to a late finish,
            // but the client-visible turn resolves abandoned now.
            let calls = {
                let m = self.meta[s].as_mut().expect("live session meta");
                m.expired = true;
                m.calls.clone()
            };
            let mut penalized: Vec<usize> = Vec::new();
            for (replica, _) in calls {
                if !penalized.contains(&replica) {
                    penalized.push(replica);
                    self.admission[replica].on_timeout();
                }
            }
            self.resolve_abandoned(sid, now);
        }
    }

    /// The client gives up on a logical turn.
    fn resolve_abandoned(&mut self, sid: u64, now: SimTime) {
        self.abandoned += 1;
        self.last_finish = self.last_finish.max(now);
        if let Some(next) = self.client.after_finish(sid, now) {
            self.queue.push(next.at, Event::Arrival(next));
        }
    }

    /// Routes one completed engine call back to its session.
    fn handle_completion(
        &mut self,
        pool: Option<&mut agentsim_session::ShardPool>,
        replica: usize,
        completion: LlmCompletion,
        now: SimTime,
    ) {
        // Wasted service is priced in GPU-seconds by the replica's own
        // pool hardware, not pool 0's.
        let service = (completion.prefill_time + completion.decode_time).as_secs_f64()
            * self.gpu_weight(replica);
        let Some((sid, seq)) = self.owner.remove(&(replica, completion.id)) else {
            // A cancelled attempt's request that finished in the very step
            // the cancellation raced: the work is done, nobody is
            // listening, and the attempt's teardown already settled the
            // in-flight accounting.
            self.wasted_service += service;
            return;
        };
        self.in_flight[replica] -= 1;
        self.ttfts
            .push((completion.queue_time() + completion.prefill_time).as_secs_f64());
        if completion.output_tokens > 1 {
            self.tpots
                .push(completion.decode_time.as_secs_f64() / (completion.output_tokens - 1) as f64);
        }
        let expired = {
            let m = self.meta[sid as usize].as_mut().expect("live session meta");
            m.calls
                .retain(|&(r, id)| !(r == replica && id == completion.id));
            // Extend the tracked context with this call's output so hints
            // cover the blocks the engine appended during decode.
            if let Some((ctx, gen_seed)) = m.kv_ctx.as_mut() {
                for i in 0..completion.output_tokens as u64 {
                    ctx.push_generated(*gen_seed, i);
                }
            }
            m.expired
        };
        if expired {
            self.wasted_service += service;
        } else {
            self.admission[replica].on_success();
        }
        let cmd = self.sessions[sid as usize]
            .as_mut()
            .expect("live session")
            .on_call_done(seq, CallDone::from_completion(completion), &self.tools, now);
        if let Some(cmd) = cmd {
            self.exec_with(pool, sid, cmd, now);
        }
    }

    fn on_step_done(&mut self, replica: usize, now: SimTime) {
        let mut completions = std::mem::take(&mut self.step_scratch);
        self.engines[replica].complete_step_into(now, &mut completions);
        for completion in completions.drain(..) {
            self.handle_completion(None, replica, completion, now);
        }
        self.step_scratch = completions;
    }

    /// Moves queued ops onto `replica`'s engine while its admission
    /// controller has room. Under accept-all this admits everything
    /// immediately, reproducing the historical direct-submit behaviour.
    fn drain_dispatch(
        &mut self,
        mut pool: Option<&mut agentsim_session::ShardPool>,
        replica: usize,
        now: SimTime,
    ) {
        while let Some(idx) = self.select_dispatch(replica) {
            let calls_len = self.dispatch[replica][idx].calls.len();
            let limit = self.admission[replica].limit();
            // Head-of-line exception: an idle replica always admits its
            // next op whole, so a multi-call op larger than the current
            // limit cannot deadlock the queue.
            if !(self.in_flight[replica] == 0 || self.in_flight[replica] + calls_len <= limit) {
                break;
            }
            let op = self.dispatch[replica].remove(idx).expect("selected index");
            self.dispatch_calls[replica] -= calls_len;
            self.admit_op(pool.as_deref_mut(), replica, op, now);
        }
    }

    /// Submits an op's calls to `replica`'s engine, recording ownership
    /// and in-flight accounting. Marks the owning attempt started so its
    /// later ops bypass the admission queue.
    fn admit_op(
        &mut self,
        mut pool: Option<&mut agentsim_session::ShardPool>,
        replica: usize,
        op: PendingOp,
        now: SimTime,
    ) {
        let calls_len = op.calls.len();
        // Snapshot the context before the prompt moves into the engine:
        // it seeds the next-invocation hints this op's tool calls and
        // turn boundaries will emit.
        let kv_ctx = if self.track_ctx && calls_len == 1 {
            Some((op.calls[0].prompt.clone(), op.calls[0].gen_seed))
        } else {
            None
        };
        let mut submitted = Vec::with_capacity(calls_len);
        for (seq, call) in op.calls.into_iter().enumerate() {
            let id = match pool.as_deref_mut() {
                Some(p) => p.submit(
                    replica,
                    now,
                    call.prompt,
                    call.out_tokens,
                    call.gen_seed,
                    op.priority,
                ),
                None => self.engines[replica].submit_with_priority(
                    now,
                    call.prompt,
                    call.out_tokens,
                    call.gen_seed,
                    op.priority,
                ),
            };
            self.owner.insert((replica, id), (op.sid, seq as u32));
            submitted.push((replica, id));
        }
        self.in_flight[replica] += calls_len;
        let m = self.meta[op.sid as usize]
            .as_mut()
            .expect("live session meta");
        m.started = true;
        m.calls.extend(submitted);
        if self.track_ctx {
            // A fan-out op invalidates the tracked context outright.
            m.kv_ctx = kv_ctx;
            m.kv_replica = replica;
        }
    }

    /// Picks the next dispatchable op index for `replica` under the
    /// configured discipline, dropping dead entries along the way.
    fn select_dispatch(&mut self, replica: usize) -> Option<usize> {
        let mut i = 0;
        while i < self.dispatch[replica].len() {
            let op = &self.dispatch[replica][i];
            let sid = op.sid as usize;
            // Stale: the attempt was torn down (and maybe retried) since
            // this op was queued.
            let stale = self.epochs[sid] != op.epoch || self.sessions[sid].is_none();
            // Deadline-drop: never start work for a client that already
            // gave up. Only reachable without cancellation (with it, the
            // teardown makes the op stale instead).
            let expired = !stale
                && self.config.overload.discipline == QueueDiscipline::DeadlineDrop
                && self.meta[sid].as_ref().is_some_and(|m| m.expired);
            if stale || expired {
                let op = self.dispatch[replica].remove(i).expect("index in range");
                self.dispatch_calls[replica] -= op.calls.len();
                self.dropped += 1;
                if expired {
                    // An op at dispatch has no sibling calls in flight
                    // (sessions issue one op at a time), so dropping it
                    // is the whole teardown of the expired attempt.
                    self.sessions[sid].take();
                    self.meta[sid].take();
                    self.live -= 1;
                    self.cancelled += 1;
                }
                continue;
            }
            i += 1;
        }
        let queue = &self.dispatch[replica];
        if queue.is_empty() {
            return None;
        }
        match self.config.overload.discipline {
            QueueDiscipline::Fifo | QueueDiscipline::Lifo => Some(0),
            // Earliest deadline first; ties broken in FIFO order
            // (min_by_key keeps the first minimum).
            QueueDiscipline::DeadlineDrop => (0..queue.len())
                .min_by_key(|&i| queue[i].deadline.expect("deadline-drop requires deadlines")),
        }
    }

    /// Drains every replica's dispatch queue; called after each event so
    /// completions that freed admission slots pull queued work in.
    fn drain_all(&mut self, mut pool: Option<&mut agentsim_session::ShardPool>, now: SimTime) {
        for replica in 0..self.dispatch.len() {
            if !self.dispatch[replica].is_empty() {
                self.drain_dispatch(pool.as_deref_mut(), replica, now);
            }
        }
    }

    fn kick(&mut self, replica: usize, now: SimTime) {
        if let Some(end) = self.engines[replica].start_step_if_idle(now) {
            self.queue.push(end, Event::StepDone(replica));
        }
    }

    fn into_report(self) -> FleetReport {
        let mut latencies: Samples = self.latencies.iter().copied().collect();
        let p50_s = latencies.try_median().unwrap_or(f64::NAN);
        let p95_s = latencies.try_p95().unwrap_or(f64::NAN);
        let mut ttfts: Samples = self.ttfts.iter().copied().collect();
        let ttft_p50_s = ttfts.try_median().unwrap_or(f64::NAN);
        let ttft_p95_s = ttfts.try_p95().unwrap_or(f64::NAN);
        let mut tpots: Samples = self.tpots.iter().copied().collect();
        let tpot_p50_s = tpots.try_median().unwrap_or(f64::NAN);
        let tpot_p99_s = tpots.try_percentile(99.0).unwrap_or(f64::NAN);
        let (mut hits, mut lookups) = (0u64, 0u64);
        let mut energy_wh = 0.0;
        let mut wasted_gpu_s = self.wasted_service;
        let mut utilization = Vec::with_capacity(self.engines.len());
        let (mut demoted, mut promoted, mut promoted_tokens, mut dropped) = (0u64, 0u64, 0u64, 0);
        let (mut host_bytes, mut nvme_bytes) = (0u64, 0u64);
        // Integer-microsecond sums converted once at the end: replica
        // iteration order is fixed, but integer accumulation makes the
        // order moot anyway.
        let (mut host_busy, mut host_wait) = (SimDuration::ZERO, SimDuration::ZERO);
        let (mut nvme_busy, mut nvme_wait) = (SimDuration::ZERO, SimDuration::ZERO);
        for (r, e) in self.engines.iter().enumerate() {
            let kv = e.kv().stats();
            hits += kv.hit_tokens;
            lookups += kv.hit_tokens + kv.miss_tokens;
            energy_wh += e.metrics().energy_within(self.last_finish).watt_hours();
            utilization.push(e.metrics().utilization(self.last_finish));
            wasted_gpu_s += e.metrics().wasted().as_secs_f64() * self.gpu_weight(r);
            demoted += kv.demoted_blocks_host + kv.demoted_blocks_nvme;
            promoted += kv.promoted_blocks_host + kv.promoted_blocks_nvme;
            promoted_tokens += kv.promoted_tokens;
            dropped += kv.offload_dropped_blocks;
            host_bytes += e.host_link().map_or(0, |l| l.bytes_moved());
            nvme_bytes += e.nvme_link().map_or(0, |l| l.bytes_moved());
            if let Some(l) = e.host_link() {
                host_busy += l.busy_time();
                host_wait += l.wait_time();
            }
            if let Some(l) = e.nvme_link() {
                nvme_busy += l.busy_time();
                nvme_wait += l.wait_time();
            }
        }
        let makespan = self.last_finish.as_secs_f64();
        FleetReport {
            offered_qps: self.config.qps,
            completed: self.completed,
            solved: self.solved,
            escalated: self.escalated,
            p50_s,
            p95_s,
            kv_hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
            energy_wh,
            utilization,
            throughput: if makespan > 0.0 {
                (self.completed + self.late) as f64 / makespan
            } else {
                0.0
            },
            goodput: if makespan > 0.0 {
                self.completed as f64 / makespan
            } else {
                0.0
            },
            attempts: self.attempts,
            retries: self.retries,
            abandoned: self.abandoned,
            late: self.late,
            cancelled: self.cancelled,
            dropped: self.dropped,
            wasted_gpu_s,
            latencies,
            max_live_sessions: self.max_live,
            ttft_p50_s,
            ttft_p95_s,
            tpot_p50_s,
            tpot_p99_s,
            offload_demoted_blocks: demoted,
            offload_promoted_blocks: promoted,
            offload_promoted_tokens: promoted_tokens,
            offload_dropped_blocks: dropped,
            offload_host_bytes: host_bytes,
            offload_nvme_bytes: nvme_bytes,
            offload_host_busy_s: host_busy.as_secs_f64(),
            offload_host_wait_s: host_wait.as_secs_f64(),
            offload_nvme_busy_s: nvme_busy.as_secs_f64(),
            offload_nvme_wait_s: nvme_wait.as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim_session::{AdmissionPolicy, RetryPolicy};

    fn run(routing: Routing, replicas: u32) -> FleetReport {
        FleetSim::new(FleetConfig::react_hotpotqa(replicas, routing, 2.0, 40).seed(3)).run()
    }

    fn run_closed(routing: Routing, replicas: u32, concurrency: u32, turns: u64) -> FleetReport {
        let cfg = FleetConfig::react_hotpotqa(replicas, routing, 2.0, turns)
            .seed(3)
            .client(ClientModel::ClosedLoop {
                concurrency,
                think_time: SimDuration::from_secs(2),
            });
        FleetSim::new(cfg).run()
    }

    fn run_overload(policy: OverloadPolicy, qps: f64) -> FleetReport {
        FleetSim::new(
            FleetConfig::react_hotpotqa(2, Routing::LeastLoaded, qps, 30)
                .seed(11)
                .overload(policy),
        )
        .run()
    }

    #[test]
    fn round_robin_dispatch_order_starts_at_replica_zero() {
        let mut sim = FleetSim::new(FleetConfig::react_hotpotqa(3, Routing::RoundRobin, 1.0, 3));
        let order: Vec<usize> = (0..7).map(|sid| sim.route(sid)).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2, 0], "post-increment rotation");
    }

    #[test]
    fn session_affinity_pins_sessions_to_replicas() {
        let mut sim = FleetSim::new(FleetConfig::react_hotpotqa(
            4,
            Routing::SessionAffinity,
            1.0,
            3,
        ));
        for sid in 0..16u64 {
            assert_eq!(sim.route(sid), (sid % 4) as usize);
            // Repeated calls of the same session stay put.
            assert_eq!(sim.route(sid), (sid % 4) as usize);
        }
    }

    #[test]
    fn least_loaded_picks_an_idle_replica_first() {
        let mut sim = FleetSim::new(FleetConfig::react_hotpotqa(3, Routing::LeastLoaded, 1.0, 3));
        // All replicas idle: ties break toward the lowest index.
        assert_eq!(sim.route(9), 0);
    }

    #[test]
    fn fleet_completes_all_requests() {
        let r = run(Routing::SessionAffinity, 3);
        assert_eq!(r.completed, 40);
        assert_eq!(r.utilization.len(), 3);
        assert!(r.throughput > 0.0);
        assert_eq!(
            r.goodput.to_bits(),
            r.throughput.to_bits(),
            "no deadline: goodput is throughput"
        );
        assert_eq!(r.attempts, 40);
        assert_eq!(r.abandoned + r.late + r.cancelled + r.retries, 0);
        assert_eq!(r.wasted_gpu_s, 0.0);
    }

    #[test]
    fn affinity_beats_round_robin_on_hit_rate() {
        // Iterative calls only reuse their history prefix if they land on
        // the same replica.
        let affinity = run(Routing::SessionAffinity, 4);
        let rr = run(Routing::RoundRobin, 4);
        assert!(
            affinity.kv_hit_rate > rr.kv_hit_rate + 0.1,
            "affinity {:.2} vs round-robin {:.2}",
            affinity.kv_hit_rate,
            rr.kv_hit_rate
        );
    }

    #[test]
    fn all_policies_are_deterministic() {
        for routing in [
            Routing::SessionAffinity,
            Routing::RoundRobin,
            Routing::LeastLoaded,
        ] {
            let a = run(routing, 2);
            let b = run(routing, 2);
            assert_eq!(a.p95_s, b.p95_s, "{routing} must be deterministic");
            assert_eq!(a.kv_hit_rate, b.kv_hit_rate);
        }
    }

    #[test]
    fn more_replicas_raise_capacity() {
        let one = FleetSim::new(
            FleetConfig::react_hotpotqa(1, Routing::SessionAffinity, 6.0, 60).seed(4),
        )
        .run();
        let four = FleetSim::new(
            FleetConfig::react_hotpotqa(4, Routing::SessionAffinity, 6.0, 60).seed(4),
        )
        .run();
        assert!(
            four.throughput > one.throughput,
            "4 replicas {:.2} vs 1 replica {:.2} QPS",
            four.throughput,
            one.throughput
        );
        assert!(four.p95_s < one.p95_s);
    }

    #[test]
    fn closed_loop_concurrency_never_exceeds_population() {
        let r = run_closed(Routing::SessionAffinity, 2, 3, 18);
        assert_eq!(r.completed, 18);
        assert!(
            r.max_live_sessions <= 3,
            "live sessions {} exceeded the population",
            r.max_live_sessions
        );
        assert!(r.max_live_sessions >= 1);
    }

    #[test]
    fn closed_loop_is_deterministic() {
        let a = run_closed(Routing::LeastLoaded, 2, 4, 16);
        let b = run_closed(Routing::LeastLoaded, 2, 4, 16);
        assert_eq!(a.p95_s.to_bits(), b.p95_s.to_bits());
        assert_eq!(a.kv_hit_rate.to_bits(), b.kv_hit_rate.to_bits());
        assert_eq!(a.max_live_sessions, b.max_live_sessions);
    }

    #[test]
    fn closed_loop_affinity_beats_round_robin_on_hit_rate() {
        // Multi-turn session reuse gives affinity routing cross-turn
        // replica state to exploit; round-robin scatters it.
        let affinity = run_closed(Routing::SessionAffinity, 4, 8, 40);
        let rr = run_closed(Routing::RoundRobin, 4, 8, 40);
        assert!(
            affinity.kv_hit_rate > rr.kv_hit_rate + 0.1,
            "affinity {:.2} vs round-robin {:.2}",
            affinity.kv_hit_rate,
            rr.kv_hit_rate
        );
    }

    #[test]
    fn deadline_without_cancellation_finishes_late() {
        // A deadline tight enough that some turns miss it, no
        // cancellation: every expired attempt still runs to completion,
        // so late == abandoned and the engines burn wasted service.
        let r = run_overload(
            OverloadPolicy::none().deadline(SimDuration::from_secs(20)),
            8.0,
        );
        assert_eq!(r.completed + r.abandoned, 30);
        assert_eq!(r.attempts, 30);
        assert!(r.abandoned > 0, "the deadline must bind at this load");
        assert_eq!(r.late, r.abandoned, "uncancelled attempts finish late");
        assert!(r.wasted_gpu_s > 0.0);
        assert!(r.goodput <= r.throughput);
    }

    #[test]
    fn cancellation_tears_expired_attempts_down() {
        let r = run_overload(
            OverloadPolicy::none()
                .deadline(SimDuration::from_secs(20))
                .cancel_on_expiry(),
            8.0,
        );
        assert_eq!(r.completed + r.abandoned, 30);
        assert!(r.cancelled > 0, "the deadline must bind at this load");
        assert_eq!(r.late, 0, "cancelled attempts never finish");
        assert_eq!(r.attempts, r.completed + r.cancelled);
        assert!(r.wasted_gpu_s > 0.0, "partial service of cancelled work");
    }

    #[test]
    fn retries_reissue_expired_turns() {
        let r = run_overload(
            OverloadPolicy::none()
                .deadline(SimDuration::from_secs(20))
                .cancel_on_expiry()
                .retry(RetryPolicy::standard()),
            8.0,
        );
        assert!(r.retries > 0, "the deadline must bind at this load");
        assert_eq!(r.attempts, 30 + r.retries);
        assert_eq!(r.attempts, r.completed + r.late + r.cancelled);
        assert_eq!(r.completed + r.abandoned, 30, "retries never double-count");
    }

    #[test]
    fn overload_policies_are_deterministic() {
        let policy = || {
            OverloadPolicy::none()
                .deadline(SimDuration::from_secs(20))
                .cancel_on_expiry()
                .retry(RetryPolicy::standard())
                .admission(AdmissionPolicy::aimd_default())
                .discipline(QueueDiscipline::DeadlineDrop)
        };
        let a = run_overload(policy(), 8.0);
        let b = run_overload(policy(), 8.0);
        assert_eq!(a.goodput.to_bits(), b.goodput.to_bits());
        assert_eq!(a.wasted_gpu_s.to_bits(), b.wasted_gpu_s.to_bits());
        assert_eq!(
            (a.completed, a.retries, a.cancelled, a.dropped),
            (b.completed, b.retries, b.cancelled, b.dropped)
        );
    }

    /// Closed-loop multi-turn traffic over KV-starved replicas: long
    /// think times let other sessions thrash each user's context out of
    /// HBM between turns.
    fn run_tiered(offload: Option<agentsim_llm::OffloadConfig>, threads: u32) -> FleetReport {
        let mut cfg = FleetConfig::react_hotpotqa(2, Routing::SessionAffinity, 2.0, 24)
            .seed(5)
            .client(ClientModel::ClosedLoop {
                concurrency: 6,
                think_time: SimDuration::from_secs(30),
            })
            .with_context_carry()
            .threads(threads)
            .map_engines(|e| e.with_kv_fraction(0.15));
        if let Some(off) = offload {
            cfg = cfg.map_engines(|e| e.with_offload(off.clone()));
        }
        FleetSim::new(cfg).run()
    }

    fn distance_tiers() -> agentsim_llm::OffloadConfig {
        agentsim_llm::OffloadConfig::tiers(2048, 8192)
            .with_policy(agentsim_kvcache::EvictionPolicy::InvocationDistance)
    }

    #[test]
    fn invocation_distance_hints_beat_blind_lru_offload() {
        let lru = run_tiered(Some(agentsim_llm::OffloadConfig::tiers(2048, 8192)), 1);
        let dist = run_tiered(Some(distance_tiers()), 1);
        assert_eq!(lru.completed, dist.completed);
        assert!(
            dist.ttft_p95_s < lru.ttft_p95_s,
            "knowing who returns next must shorten TTFT: {:.3} !< {:.3}",
            dist.ttft_p95_s,
            lru.ttft_p95_s
        );
        assert!(
            dist.kv_hit_rate >= lru.kv_hit_rate,
            "{:.3} !>= {:.3}",
            dist.kv_hit_rate,
            lru.kv_hit_rate
        );
    }

    #[test]
    fn offload_tiers_absorb_cache_thrash() {
        let plain = run_tiered(None, 1);
        let tiered = run_tiered(Some(distance_tiers()), 1);
        assert_eq!(tiered.completed, plain.completed);
        assert!(
            tiered.offload_demoted_blocks > 0,
            "pool pressure must spill"
        );
        assert!(
            tiered.offload_promoted_tokens > 0,
            "evicted contexts must come back from the tiers"
        );
        assert!(tiered.offload_host_bytes > 0, "transfers move real bytes");
        assert!(
            tiered.kv_hit_rate > plain.kv_hit_rate,
            "promoted prefixes count as hits: {:.3} !> {:.3}",
            tiered.kv_hit_rate,
            plain.kv_hit_rate
        );
        assert!(
            tiered.ttft_p95_s < plain.ttft_p95_s,
            "promotion beats recompute on TTFT: {:.3} !< {:.3}",
            tiered.ttft_p95_s,
            plain.ttft_p95_s
        );
    }

    #[test]
    fn zero_capacity_tiers_match_no_offload_bit_for_bit() {
        let plain = run_tiered(None, 1);
        let hollow = run_tiered(Some(agentsim_llm::OffloadConfig::tiers(0, 0)), 1);
        assert_eq!(plain.completed, hollow.completed);
        assert_eq!(plain.p95_s.to_bits(), hollow.p95_s.to_bits());
        assert_eq!(plain.ttft_p95_s.to_bits(), hollow.ttft_p95_s.to_bits());
        assert_eq!(plain.kv_hit_rate.to_bits(), hollow.kv_hit_rate.to_bits());
        assert_eq!(plain.energy_wh.to_bits(), hollow.energy_wh.to_bits());
        assert_eq!(hollow.offload_host_bytes, 0);
        assert_eq!(hollow.offload_nvme_bytes, 0);
    }

    #[test]
    fn offloaded_runs_are_deterministic_across_runs_and_threads() {
        let a = run_tiered(Some(distance_tiers()), 1);
        let b = run_tiered(Some(distance_tiers()), 1);
        let par = run_tiered(Some(distance_tiers()), 2);
        for r in [&b, &par] {
            assert_eq!(a.p95_s.to_bits(), r.p95_s.to_bits());
            assert_eq!(a.ttft_p95_s.to_bits(), r.ttft_p95_s.to_bits());
            assert_eq!(a.kv_hit_rate.to_bits(), r.kv_hit_rate.to_bits());
            assert_eq!(a.offload_demoted_blocks, r.offload_demoted_blocks);
            assert_eq!(a.offload_promoted_tokens, r.offload_promoted_tokens);
            assert_eq!(a.offload_host_bytes, r.offload_host_bytes);
        }
    }

    /// Two cheap 8B replicas plus one 4xH100 70B replica.
    fn hetero_cfg(cascade: CascadePolicy, threads: u32) -> FleetConfig {
        FleetConfig::pooled(
            vec![
                ReplicaPool::new(EngineConfig::a100_llama8b(), 2),
                ReplicaPool::new(EngineConfig::h100x4_llama70b(), 1),
            ],
            Routing::SessionAffinity,
            2.0,
            32,
        )
        .seed(9)
        .cascade(cascade)
        .threads(threads)
    }

    #[test]
    fn single_pool_sugar_equals_explicit_pool_bit_for_bit() {
        let sugar = run(Routing::SessionAffinity, 3);
        let pooled = FleetSim::new(
            FleetConfig::pooled(
                vec![ReplicaPool::new(EngineConfig::a100_llama8b(), 3)],
                Routing::SessionAffinity,
                2.0,
                40,
            )
            .seed(3),
        )
        .run();
        assert_eq!(sugar.completed, pooled.completed);
        assert_eq!(sugar.p50_s.to_bits(), pooled.p50_s.to_bits());
        assert_eq!(sugar.p95_s.to_bits(), pooled.p95_s.to_bits());
        assert_eq!(sugar.kv_hit_rate.to_bits(), pooled.kv_hit_rate.to_bits());
        assert_eq!(sugar.energy_wh.to_bits(), pooled.energy_wh.to_bits());
        assert_eq!(sugar.wasted_gpu_s.to_bits(), pooled.wasted_gpu_s.to_bits());
    }

    /// Pure failure-driven escalation: no aptitude pre-screen, so every
    /// turn starts cheap and only observed failure re-routes it.
    fn escalate_only() -> CascadePolicy {
        CascadePolicy {
            escalate_on_failure: true,
            aptitude_margin: None,
            max_escalations: u32::MAX,
            escalate_retries: false,
        }
    }

    #[test]
    fn cascade_escalates_unsolved_turns_to_the_premium_tier() {
        let flat = FleetSim::new(hetero_cfg(CascadePolicy::none(), 1)).run();
        let casc = FleetSim::new(hetero_cfg(escalate_only(), 1)).run();
        assert_eq!(flat.completed, 32);
        assert_eq!(casc.completed, 32);
        assert_eq!(flat.escalated, 0, "an inert policy never re-routes");
        assert!(casc.escalated > 0, "some 8B failures must escalate");
        assert_eq!(casc.attempts, 32 + casc.escalated);
        assert!(
            casc.solved > flat.solved,
            "the 70B pool must rescue turns the 8B tier failed: {} !> {}",
            casc.solved,
            flat.solved
        );
    }

    #[test]
    fn aptitude_prescreen_skips_doomed_cheap_attempts() {
        // The cognition pre-screen routes tasks the cheap tier provably
        // cannot solve straight to the top tier, so it reaches (at
        // least) the accuracy of post-hoc escalation while re-running
        // fewer turns.
        let reactive = FleetSim::new(hetero_cfg(escalate_only(), 1)).run();
        let screened = FleetSim::new(hetero_cfg(CascadePolicy::standard(), 1)).run();
        assert!(screened.solved >= reactive.solved);
        assert!(
            screened.escalated < reactive.escalated,
            "pre-screening must replace most failure-driven re-routes: {} !< {}",
            screened.escalated,
            reactive.escalated
        );
        assert!(
            screened.utilization[2] > 0.0,
            "pre-screened turns land on the premium replica directly"
        );
    }

    #[test]
    fn inert_cascade_over_two_pools_keeps_the_premium_tier_idle() {
        let flat = FleetSim::new(hetero_cfg(CascadePolicy::none(), 1)).run();
        assert_eq!(
            flat.utilization[2], 0.0,
            "tier 0 routing never touches the premium replica"
        );
        assert!(flat.utilization[0] > 0.0);
    }

    #[test]
    fn heterogeneous_cascade_is_deterministic_across_threads() {
        let seq = FleetSim::new(hetero_cfg(escalate_only(), 1)).run();
        let par = FleetSim::new(hetero_cfg(escalate_only(), 2)).run();
        assert_eq!(seq.completed, par.completed);
        assert_eq!(seq.solved, par.solved);
        assert_eq!(seq.escalated, par.escalated);
        assert_eq!(seq.p95_s.to_bits(), par.p95_s.to_bits());
        assert_eq!(seq.tpot_p99_s.to_bits(), par.tpot_p99_s.to_bits());
        assert_eq!(seq.kv_hit_rate.to_bits(), par.kv_hit_rate.to_bits());
        assert_eq!(seq.wasted_gpu_s.to_bits(), par.wasted_gpu_s.to_bits());
    }

    #[test]
    fn lifo_discipline_admits_newest_work_first() {
        // Just a liveness check: the run terminates and the accounting
        // telescopes under a non-FIFO discipline with a tight limiter.
        let r = run_overload(
            OverloadPolicy::none()
                .deadline(SimDuration::from_secs(25))
                .cancel_on_expiry()
                .admission(AdmissionPolicy::Aimd {
                    initial: 2.0,
                    min: 1.0,
                    max: 8.0,
                    increase: 1.0,
                    decrease: 0.5,
                })
                .discipline(QueueDiscipline::Lifo),
            8.0,
        );
        assert_eq!(r.completed + r.abandoned, 30);
        assert_eq!(r.attempts, r.completed + r.late + r.cancelled);
    }
}
