//! Multi-replica fleet serving: several engine replicas behind a router.
//!
//! The paper's datacenter projections (§VI) assume fleets of replicas;
//! this module asks the follow-on systems question: *how should agent
//! requests be routed across replicas?* Because an agent session's
//! iterative calls share a growing prefix, routing is not
//! load-balancing-neutral — sending call *k+1* to a different replica
//! than call *k* forfeits the prefix-cache state the paper shows is
//! critical (its Fig. 15). Closed-loop clients sharpen the question
//! further: a user population re-submitting turns under stable session
//! ids gives affinity routing cross-*turn* state to preserve, not just
//! cross-call.

mod par;

use std::collections::HashMap;

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::{Engine, EngineConfig, LlmCompletion, RequestId};
use agentsim_metrics::Samples;
use agentsim_session::{
    seeds, Arrival, ArrivalProcess, CallDone, ClientModel, SessionCmd, SessionRunner, ToolRng,
};
use agentsim_simkit::{EventQueue, SimRng, SimTime};
use agentsim_tools::ToolExecutor;
use agentsim_workloads::{Benchmark, TaskGenerator};

/// How the router assigns each LLM call to a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// All calls of a session go to one replica (hash by session id):
    /// keeps every iterative call's prefix warm.
    SessionAffinity,
    /// Calls rotate across replicas regardless of session: classic
    /// stateless load balancing, destroys cross-call prefix reuse.
    RoundRobin,
    /// Each call goes to the replica with the fewest in-flight requests.
    LeastLoaded,
}

impl std::fmt::Display for Routing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Routing::SessionAffinity => "session-affinity",
            Routing::RoundRobin => "round-robin",
            Routing::LeastLoaded => "least-loaded",
        })
    }
}

/// Configuration of a fleet run (agentic traffic).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-replica engine configuration.
    pub engine: EngineConfig,
    /// Number of replicas.
    pub replicas: u32,
    /// Routing policy.
    pub routing: Routing,
    /// Agent framework served.
    pub kind: AgentKind,
    /// Benchmark tasks are drawn from.
    pub benchmark: Benchmark,
    /// Agent configuration.
    pub agent: AgentConfig,
    /// Offered load, requests/second (fleet-wide, open-loop clients).
    pub qps: f64,
    /// Turns to issue.
    pub num_requests: u64,
    /// Root seed.
    pub seed: u64,
    /// Who submits the turns, and when.
    pub client: ClientModel,
    /// Worker threads for the parallel driver (`1` = sequential path).
    pub threads: u32,
}

impl FleetConfig {
    /// ReAct/HotpotQA on `replicas` default 8B replicas.
    pub fn react_hotpotqa(replicas: u32, routing: Routing, qps: f64, num_requests: u64) -> Self {
        assert!(replicas > 0, "fleet needs at least one replica");
        assert!(qps > 0.0, "offered load must be positive");
        assert!(num_requests > 0, "need at least one request");
        FleetConfig {
            engine: EngineConfig::a100_llama8b(),
            replicas,
            routing,
            kind: AgentKind::React,
            benchmark: Benchmark::HotpotQa,
            agent: AgentConfig::default_8b(),
            qps,
            num_requests,
            seed: 0,
            client: ClientModel::OpenLoopPoisson,
            threads: 1,
        }
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the client model.
    pub fn client(mut self, client: ClientModel) -> Self {
        self.client = client;
        self
    }

    /// Shards replicas across `threads` worker threads. `1` (the default)
    /// is the sequential path; any other count produces bit-identical
    /// reports — see the [`agentsim_session::shard`] module docs.
    pub fn threads(mut self, threads: u32) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }
}

/// Results of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Offered load.
    pub offered_qps: f64,
    /// Requests completed.
    pub completed: u64,
    /// End-to-end latencies (seconds).
    pub latencies: Samples,
    /// Median latency.
    pub p50_s: f64,
    /// Tail latency.
    pub p95_s: f64,
    /// Fleet-aggregate prefix-cache hit rate.
    pub kv_hit_rate: f64,
    /// Fleet-aggregate energy (Wh).
    pub energy_wh: f64,
    /// Per-replica utilization.
    pub utilization: Vec<f64>,
    /// Achieved throughput (requests/second).
    pub throughput: f64,
    /// Peak number of simultaneously live sessions (bounded by the
    /// population under a closed-loop client).
    pub max_live_sessions: u64,
}

#[derive(Debug)]
enum Event {
    Arrival(Arrival),
    StepDone(usize),
    ToolsDone(u64),
}

/// The fleet simulator. Build with [`FleetSim::new`], consume with
/// [`FleetSim::run`].
pub struct FleetSim {
    config: FleetConfig,
    engines: Vec<Engine>,
    tools: ToolExecutor,
    queue: EventQueue<Event>,
    client: Box<dyn ArrivalProcess>,
    sessions: Vec<Option<SessionRunner>>,
    owner: HashMap<(usize, RequestId), (u64, u32)>,
    root_rng: SimRng,
    rr_counter: usize,
    latencies: Vec<f64>,
    completed: u64,
    last_finish: SimTime,
    live: u64,
    max_live: u64,
    /// Reused per-step completion buffer (sequential path hot loop).
    step_scratch: Vec<LlmCompletion>,
}

impl std::fmt::Debug for FleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSim")
            .field("replicas", &self.engines.len())
            .field("routing", &self.config.routing)
            .finish_non_exhaustive()
    }
}

impl FleetSim {
    /// Builds the fleet (the first arrivals are scheduled; the rest
    /// chain lazily as the run progresses).
    pub fn new(config: FleetConfig) -> Self {
        let engines = (0..config.replicas)
            .map(|_| Engine::new(config.engine.clone()))
            .collect();
        let root_rng = SimRng::seed_from(config.seed ^ seeds::FLEET_ROOT);
        let mut client = config.client.build(
            config.qps,
            config.num_requests,
            root_rng.fork(seeds::ARRIVALS),
        );
        let mut queue = EventQueue::new();
        for a in client.initial() {
            queue.push(a.at, Event::Arrival(a));
        }
        let sessions = (0..config.client.sessions(config.num_requests))
            .map(|_| None)
            .collect();
        FleetSim {
            engines,
            tools: ToolExecutor::new(),
            queue,
            client,
            sessions,
            owner: HashMap::new(),
            root_rng,
            rr_counter: 0,
            latencies: Vec::new(),
            completed: 0,
            last_finish: SimTime::ZERO,
            live: 0,
            max_live: 0,
            step_scratch: Vec::new(),
            config,
        }
    }

    /// Attaches one fresh [`crate::SpanRecorder`] per replica (as each
    /// engine's observer) and returns the handles, indexed by replica.
    /// Combine them with [`crate::chrome_trace`] for a single trace file
    /// with one process track per replica.
    pub fn attach_recorders(&mut self) -> Vec<crate::SpanRecorder> {
        self.engines
            .iter_mut()
            .map(|engine| {
                let recorder = crate::SpanRecorder::new();
                engine.set_observer(Box::new(recorder.clone()));
                recorder
            })
            .collect()
    }

    /// Runs to completion and reports.
    pub fn run(mut self) -> FleetReport {
        let threads = (self.config.threads as usize).min(self.engines.len());
        if threads > 1 {
            return self.run_parallel(threads);
        }
        while let Some((now, event)) = self.queue.pop() {
            match event {
                Event::Arrival(a) => self.on_arrival(a, now),
                Event::StepDone(r) => self.on_step_done(r, now),
                Event::ToolsDone(sid) => {
                    let cmd = self.sessions[sid as usize]
                        .as_mut()
                        .expect("live session")
                        .on_tools_done(&self.tools, now);
                    self.exec(sid, cmd, now);
                }
            }
            for r in 0..self.engines.len() {
                self.kick(r, now);
            }
        }
        let expected = self.config.client.total_turns(self.config.num_requests);
        assert_eq!(self.completed, expected, "all turns must finish");
        self.into_report()
    }

    #[cfg(test)]
    fn route(&mut self, sid: u64) -> usize {
        self.route_with(None, sid)
    }

    /// Routes one LLM op. The parallel path passes its [`ShardPool`] so
    /// least-loaded reads the coordinator's exact load mirrors instead of
    /// the (moved-away) engines.
    ///
    /// [`ShardPool`]: agentsim_session::ShardPool
    fn route_with(&mut self, pool: Option<&agentsim_session::ShardPool>, sid: u64) -> usize {
        let n = self.config.replicas as usize;
        match self.config.routing {
            Routing::SessionAffinity => (sid as usize) % n,
            Routing::RoundRobin => {
                // Post-increment: the first dispatch lands on replica 0.
                // (Pre-incrementing skewed dispatch order so replica 0 was
                // systematically served last.)
                let replica = self.rr_counter % n;
                self.rr_counter = (replica + 1) % n;
                replica
            }
            Routing::LeastLoaded => (0..n)
                .min_by_key(|&r| match pool {
                    Some(pool) => pool.load(r),
                    None => self.engines[r].queue_len() + self.engines[r].running_len(),
                })
                .expect("non-empty fleet"),
        }
    }

    fn on_arrival(&mut self, a: Arrival, now: SimTime) {
        self.on_arrival_with(None, a, now)
    }

    fn on_arrival_with(
        &mut self,
        pool: Option<&mut agentsim_session::ShardPool>,
        a: Arrival,
        now: SimTime,
    ) {
        // Chain the next arrival first, so it precedes any event this
        // one schedules at the same instant.
        if let Some(next) = self.client.after_arrival(now) {
            self.queue.push(next.at, Event::Arrival(next));
        }
        let task = TaskGenerator::new(self.config.benchmark, self.config.seed).task(a.turn);
        let (runner, cmd) = SessionRunner::agent(
            self.config.kind,
            &task,
            self.config.agent,
            self.root_rng.fork(a.turn ^ seeds::AGENT_SESSION),
            ToolRng::ForkByTime,
            &self.tools,
            now,
        );
        let slot = &mut self.sessions[a.session as usize];
        assert!(slot.is_none(), "session {} already live", a.session);
        *slot = Some(runner);
        self.live += 1;
        self.max_live = self.max_live.max(self.live);
        self.exec_with(pool, a.session, cmd, now);
    }

    /// Executes a session command against the routed fleet.
    fn exec(&mut self, sid: u64, cmd: SessionCmd, now: SimTime) {
        self.exec_with(None, sid, cmd, now)
    }

    fn exec_with(
        &mut self,
        mut pool: Option<&mut agentsim_session::ShardPool>,
        sid: u64,
        cmd: SessionCmd,
        now: SimTime,
    ) {
        match cmd {
            SessionCmd::Llm(op) => {
                let replica = self.route_with(pool.as_deref(), sid);
                for (seq, call) in op.calls.into_iter().enumerate() {
                    let id = match pool.as_deref_mut() {
                        Some(pool) => pool.submit(
                            replica,
                            now,
                            call.prompt,
                            call.out_tokens,
                            call.gen_seed,
                            op.priority,
                        ),
                        None => self.engines[replica].submit_with_priority(
                            now,
                            call.prompt,
                            call.out_tokens,
                            call.gen_seed,
                            op.priority,
                        ),
                    };
                    self.owner.insert((replica, id), (sid, seq as u32));
                }
            }
            SessionCmd::Tools { wake } => {
                self.queue.push(wake, Event::ToolsDone(sid));
            }
            SessionCmd::Finish(_) => {
                let runner = self.sessions[sid as usize].take().expect("live session");
                self.latencies.push(runner.trace().e2e().as_secs_f64());
                self.completed += 1;
                self.live -= 1;
                self.last_finish = self.last_finish.max(now);
                if let Some(next) = self.client.after_finish(sid, now) {
                    self.queue.push(next.at, Event::Arrival(next));
                }
            }
        }
    }

    fn on_step_done(&mut self, replica: usize, now: SimTime) {
        let mut completions = std::mem::take(&mut self.step_scratch);
        self.engines[replica].complete_step_into(now, &mut completions);
        for completion in completions.drain(..) {
            let (sid, seq) = self
                .owner
                .remove(&(replica, completion.id))
                .expect("owned completion");
            let cmd = self.sessions[sid as usize]
                .as_mut()
                .expect("live session")
                .on_call_done(seq, CallDone::from_completion(completion), &self.tools, now);
            if let Some(cmd) = cmd {
                self.exec(sid, cmd, now);
            }
        }
        self.step_scratch = completions;
    }

    fn kick(&mut self, replica: usize, now: SimTime) {
        if let Some(end) = self.engines[replica].start_step_if_idle(now) {
            self.queue.push(end, Event::StepDone(replica));
        }
    }

    fn into_report(self) -> FleetReport {
        let mut latencies: Samples = self.latencies.iter().copied().collect();
        let p50_s = latencies.median();
        let p95_s = latencies.p95();
        let (mut hits, mut lookups) = (0u64, 0u64);
        let mut energy_wh = 0.0;
        let mut utilization = Vec::with_capacity(self.engines.len());
        for e in &self.engines {
            let kv = e.kv().stats();
            hits += kv.hit_tokens;
            lookups += kv.hit_tokens + kv.miss_tokens;
            energy_wh += e.metrics().energy_within(self.last_finish).watt_hours();
            utilization.push(e.metrics().utilization(self.last_finish));
        }
        let makespan = self.last_finish.as_secs_f64();
        FleetReport {
            offered_qps: self.config.qps,
            completed: self.completed,
            p50_s,
            p95_s,
            kv_hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
            energy_wh,
            utilization,
            throughput: if makespan > 0.0 {
                self.completed as f64 / makespan
            } else {
                0.0
            },
            latencies,
            max_live_sessions: self.max_live,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim_simkit::SimDuration;

    fn run(routing: Routing, replicas: u32) -> FleetReport {
        FleetSim::new(FleetConfig::react_hotpotqa(replicas, routing, 2.0, 40).seed(3)).run()
    }

    fn run_closed(routing: Routing, replicas: u32, concurrency: u32, turns: u64) -> FleetReport {
        let cfg = FleetConfig::react_hotpotqa(replicas, routing, 2.0, turns)
            .seed(3)
            .client(ClientModel::ClosedLoop {
                concurrency,
                think_time: SimDuration::from_secs(2),
            });
        FleetSim::new(cfg).run()
    }

    #[test]
    fn round_robin_dispatch_order_starts_at_replica_zero() {
        let mut sim = FleetSim::new(FleetConfig::react_hotpotqa(3, Routing::RoundRobin, 1.0, 3));
        let order: Vec<usize> = (0..7).map(|sid| sim.route(sid)).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2, 0], "post-increment rotation");
    }

    #[test]
    fn session_affinity_pins_sessions_to_replicas() {
        let mut sim = FleetSim::new(FleetConfig::react_hotpotqa(
            4,
            Routing::SessionAffinity,
            1.0,
            3,
        ));
        for sid in 0..16u64 {
            assert_eq!(sim.route(sid), (sid % 4) as usize);
            // Repeated calls of the same session stay put.
            assert_eq!(sim.route(sid), (sid % 4) as usize);
        }
    }

    #[test]
    fn least_loaded_picks_an_idle_replica_first() {
        let mut sim = FleetSim::new(FleetConfig::react_hotpotqa(3, Routing::LeastLoaded, 1.0, 3));
        // All replicas idle: ties break toward the lowest index.
        assert_eq!(sim.route(9), 0);
    }

    #[test]
    fn fleet_completes_all_requests() {
        let r = run(Routing::SessionAffinity, 3);
        assert_eq!(r.completed, 40);
        assert_eq!(r.utilization.len(), 3);
        assert!(r.throughput > 0.0);
    }

    #[test]
    fn affinity_beats_round_robin_on_hit_rate() {
        // Iterative calls only reuse their history prefix if they land on
        // the same replica.
        let affinity = run(Routing::SessionAffinity, 4);
        let rr = run(Routing::RoundRobin, 4);
        assert!(
            affinity.kv_hit_rate > rr.kv_hit_rate + 0.1,
            "affinity {:.2} vs round-robin {:.2}",
            affinity.kv_hit_rate,
            rr.kv_hit_rate
        );
    }

    #[test]
    fn all_policies_are_deterministic() {
        for routing in [
            Routing::SessionAffinity,
            Routing::RoundRobin,
            Routing::LeastLoaded,
        ] {
            let a = run(routing, 2);
            let b = run(routing, 2);
            assert_eq!(a.p95_s, b.p95_s, "{routing} must be deterministic");
            assert_eq!(a.kv_hit_rate, b.kv_hit_rate);
        }
    }

    #[test]
    fn more_replicas_raise_capacity() {
        let one = FleetSim::new(
            FleetConfig::react_hotpotqa(1, Routing::SessionAffinity, 6.0, 60).seed(4),
        )
        .run();
        let four = FleetSim::new(
            FleetConfig::react_hotpotqa(4, Routing::SessionAffinity, 6.0, 60).seed(4),
        )
        .run();
        assert!(
            four.throughput > one.throughput,
            "4 replicas {:.2} vs 1 replica {:.2} QPS",
            four.throughput,
            one.throughput
        );
        assert!(four.p95_s < one.p95_s);
    }

    #[test]
    fn closed_loop_concurrency_never_exceeds_population() {
        let r = run_closed(Routing::SessionAffinity, 2, 3, 18);
        assert_eq!(r.completed, 18);
        assert!(
            r.max_live_sessions <= 3,
            "live sessions {} exceeded the population",
            r.max_live_sessions
        );
        assert!(r.max_live_sessions >= 1);
    }

    #[test]
    fn closed_loop_is_deterministic() {
        let a = run_closed(Routing::LeastLoaded, 2, 4, 16);
        let b = run_closed(Routing::LeastLoaded, 2, 4, 16);
        assert_eq!(a.p95_s.to_bits(), b.p95_s.to_bits());
        assert_eq!(a.kv_hit_rate.to_bits(), b.kv_hit_rate.to_bits());
        assert_eq!(a.max_live_sessions, b.max_live_sessions);
    }

    #[test]
    fn closed_loop_affinity_beats_round_robin_on_hit_rate() {
        // Multi-turn session reuse gives affinity routing cross-turn
        // replica state to exploit; round-robin scatters it.
        let affinity = run_closed(Routing::SessionAffinity, 4, 8, 40);
        let rr = run_closed(Routing::RoundRobin, 4, 8, 40);
        assert!(
            affinity.kv_hit_rate > rr.kv_hit_rate + 0.1,
            "affinity {:.2} vs round-robin {:.2}",
            affinity.kv_hit_rate,
            rr.kv_hit_rate
        );
    }
}
