//! Single-request runner: one agent session on a dedicated replica.

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::{Engine, EngineConfig, RequestId};
use agentsim_session::{seeds, CallDone, SessionCmd, SessionRunner, ToolRng};
use agentsim_simkit::{SimDuration, SimRng, SimTime};
use agentsim_tools::ToolExecutor;
use agentsim_workloads::{Benchmark, TaskGenerator};

use crate::trace::RequestTrace;

/// Builder for a single-request experiment.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct SingleRequest {
    agent: AgentKind,
    benchmark: Benchmark,
    engine_config: EngineConfig,
    agent_config: AgentConfig,
    tools: ToolExecutor,
    seed: u64,
    task_index: u64,
}

/// Result of a single-request experiment: the trace plus replica-level
/// measurements over the request's lifetime.
#[derive(Debug, Clone)]
pub struct SingleOutcome {
    /// The request trace.
    pub trace: RequestTrace,
    /// GPU utilization over the request window (busy / window).
    pub utilization: f64,
    /// Engine wall time in prefill steps.
    pub prefill_busy: SimDuration,
    /// Engine wall time in decode steps.
    pub decode_busy: SimDuration,
    /// Engine idle time within the window (tool waits, gaps).
    pub idle: SimDuration,
    /// GPU energy over the window, watt-hours.
    pub energy_wh: f64,
    /// Peak KV-cache bytes referenced by live sequences.
    pub kv_peak_bytes: u64,
    /// Time-averaged KV-cache bytes.
    pub kv_avg_bytes: f64,
    /// Total FLOPs executed.
    pub flops: f64,
    /// Prefix-cache hit rate over prompt tokens.
    pub kv_hit_rate: f64,
}

impl SingleRequest {
    /// Creates a runner with the paper's default 8B engine and agent
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is not evaluated on `benchmark` (Table II).
    pub fn new(agent: AgentKind, benchmark: Benchmark) -> Self {
        assert!(
            agent.supports(benchmark),
            "{agent} is not evaluated on {benchmark}"
        );
        SingleRequest {
            agent,
            benchmark,
            engine_config: EngineConfig::a100_llama8b(),
            agent_config: AgentConfig::default_8b(),
            tools: ToolExecutor::new(),
            seed: 0,
            task_index: 0,
        }
    }

    /// Sets the experiment seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects which task of the stream to run.
    pub fn task_index(mut self, index: u64) -> Self {
        self.task_index = index;
        self
    }

    /// Replaces the engine configuration.
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.engine_config = config;
        self
    }

    /// Replaces the agent configuration.
    pub fn agent_config(mut self, config: AgentConfig) -> Self {
        self.agent_config = config;
        self
    }

    /// Replaces the tool executor (e.g. failure injection).
    pub fn tool_executor(mut self, tools: ToolExecutor) -> Self {
        self.tools = tools;
        self
    }

    /// Runs the session to completion.
    pub fn run(&self) -> SingleOutcome {
        let task = TaskGenerator::new(self.benchmark, self.seed).task(self.task_index);
        let mut engine = Engine::new(self.engine_config.clone());
        let root = SimRng::seed_from(self.seed).fork(self.task_index);

        let mut now = SimTime::ZERO;
        let (mut runner, mut cmd) = SessionRunner::agent(
            self.agent,
            &task,
            self.agent_config,
            root.fork(seeds::SINGLE_AGENT),
            ToolRng::Stream(root.fork(seeds::SINGLE_TOOLS)),
            &self.tools,
            now,
        );

        // Synchronous loop: the session is alone on the replica, so each
        // command runs to completion before the next is requested.
        loop {
            match cmd {
                SessionCmd::Llm(op) => {
                    let ids: Vec<RequestId> = op
                        .calls
                        .into_iter()
                        .map(|c| {
                            engine.submit_with_priority(
                                now,
                                c.prompt,
                                c.out_tokens,
                                c.gen_seed,
                                op.priority,
                            )
                        })
                        .collect();
                    let mut outstanding = ids.len();
                    let mut next = None;
                    while outstanding > 0 {
                        let end = engine
                            .start_step_if_idle(now)
                            .expect("engine must make progress on pending LLM calls");
                        now = end;
                        for c in engine.complete_step(now) {
                            let seq = ids.iter().position(|id| *id == c.id).expect("own call");
                            outstanding -= 1;
                            if let Some(cmd) = runner.on_call_done(
                                seq as u32,
                                CallDone::from_completion(c),
                                &self.tools,
                                now,
                            ) {
                                next = Some(cmd);
                            }
                        }
                    }
                    cmd = next.expect("op complete once all calls landed");
                }
                SessionCmd::Tools { wake } => {
                    now = wake;
                    cmd = runner.on_tools_done(&self.tools, now);
                }
                SessionCmd::Finish(_) => break,
            }
        }

        let metrics = engine.metrics();
        let block_bytes = self.engine_config.kv_bytes_per_block();
        let kv = engine.kv().stats();
        SingleOutcome {
            utilization: metrics.utilization(now),
            prefill_busy: metrics.prefill_busy + metrics.mixed_busy,
            decode_busy: metrics.decode_busy,
            idle: metrics.idle_within(now),
            energy_wh: metrics.energy_within(now).watt_hours(),
            flops: metrics.flops,
            kv_peak_bytes: kv.used_blocks.peak() * block_bytes,
            kv_avg_bytes: kv.used_blocks.average(now) * block_bytes as f64,
            kv_hit_rate: kv.hit_rate(),
            trace: runner.into_trace(),
        }
    }

    /// Runs tasks `0..n` of the stream on fresh replicas, in parallel
    /// across OS threads. Results are index-ordered and deterministic.
    pub fn run_batch(&self, n: u64) -> Vec<SingleOutcome> {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(n.max(1) as usize);
        let mut results: Vec<Option<SingleOutcome>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let chunks = results.chunks_mut(n.max(1).div_ceil(threads as u64) as usize);
            for (chunk_idx, chunk) in chunks.enumerate() {
                let runner = self.clone();
                let base = chunk_idx as u64 * n.max(1).div_ceil(threads as u64);
                scope.spawn(move || {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        let mut r = runner.clone();
                        r.task_index = base + i as u64;
                        *slot = Some(r.run());
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("worker filled slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cot_trace_shape() {
        let o = SingleRequest::new(AgentKind::Cot, Benchmark::HotpotQa)
            .seed(1)
            .run();
        assert_eq!(o.trace.llm_calls(), 1);
        assert_eq!(o.trace.tool_calls(), 0);
        assert_eq!(o.trace.tool_wall, SimDuration::ZERO);
        // Single-inference request keeps the GPU busy almost throughout.
        assert!(o.utilization > 0.9, "CoT utilization {}", o.utilization);
        assert!(o.decode_busy > o.prefill_busy);
    }

    #[test]
    fn react_interleaves_and_idles_the_gpu() {
        let o = SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
            .seed(2)
            .run();
        assert!(o.trace.llm_calls() >= 2);
        assert!(o.trace.tool_calls() >= 1);
        assert!(o.trace.tool_wall > SimDuration::ZERO);
        // Fig. 6: Wikipedia waits idle the GPU substantially.
        assert!(o.utilization < 0.9, "ReAct utilization {}", o.utilization);
        assert!(o.idle > SimDuration::ZERO);
        // Fig. 5 partition: e2e = llm + tool + overlap.
        let sum = o.trace.llm_wall + o.trace.tool_wall + o.trace.overlap_wall;
        assert_eq!(sum, o.trace.e2e());
    }

    #[test]
    fn webshop_tools_are_cheap() {
        let hotpot = SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
            .seed(3)
            .run();
        let shop = SingleRequest::new(AgentKind::React, Benchmark::WebShop)
            .seed(3)
            .run();
        let frac = |o: &SingleOutcome| {
            o.trace.tool_wall.as_secs_f64() / o.trace.e2e().as_secs_f64().max(1e-9)
        };
        assert!(
            frac(&hotpot) > frac(&shop) + 0.2,
            "tool share hotpot {} vs webshop {}",
            frac(&hotpot),
            frac(&shop)
        );
    }

    #[test]
    fn iterative_calls_hit_prefix_cache() {
        let o = SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
            .seed(4)
            .run();
        if o.trace.llm_calls() >= 2 {
            // Later calls share the growing history prefix.
            let later_cached: u64 = o.trace.llm[1..]
                .iter()
                .map(|c| c.completion.cached_tokens as u64)
                .sum();
            assert!(later_cached > 0, "iterative prefix reuse expected");
        }
    }

    #[test]
    fn prefix_caching_off_recomputes_everything() {
        let cfg = EngineConfig::a100_llama8b().with_prefix_caching(false);
        let o = SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
            .seed(4)
            .engine_config(cfg)
            .run();
        assert_eq!(o.trace.cached_tokens(), 0);
        assert_eq!(o.kv_hit_rate, 0.0);
    }

    #[test]
    fn overlapped_plan_accounts_partition() {
        let o = SingleRequest::new(AgentKind::LlmCompiler, Benchmark::HotpotQa)
            .seed(5)
            .run();
        assert!(
            o.trace.overlap_wall > SimDuration::ZERO,
            "planner/tool overlap"
        );
        let sum = o.trace.llm_wall + o.trace.tool_wall + o.trace.overlap_wall;
        assert_eq!(sum, o.trace.e2e());
    }

    #[test]
    fn run_batch_is_deterministic_and_ordered() {
        let runner = SingleRequest::new(AgentKind::React, Benchmark::WebShop).seed(6);
        let a = runner.run_batch(6);
        let b = runner.run_batch(6);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trace.task_id, y.trace.task_id);
            assert_eq!(x.trace.e2e(), y.trace.e2e());
        }
        // Distinct tasks differ.
        assert!(a.windows(2).any(|w| w[0].trace.e2e() != w[1].trace.e2e()));
    }

    #[test]
    fn energy_scales_with_work() {
        let cot = SingleRequest::new(AgentKind::Cot, Benchmark::HotpotQa)
            .seed(7)
            .run();
        let reflexion = SingleRequest::new(AgentKind::Reflexion, Benchmark::HotpotQa)
            .seed(7)
            .run();
        assert!(
            reflexion.energy_wh > 2.0 * cot.energy_wh,
            "reflexion {} Wh vs cot {} Wh",
            reflexion.energy_wh,
            cot.energy_wh
        );
    }

    #[test]
    fn lats_parallel_calls_batch_in_engine() {
        let o = SingleRequest::new(AgentKind::Lats, Benchmark::HotpotQa)
            .seed(8)
            .run();
        assert!(
            o.trace.llm_calls() > 15,
            "LATS made {}",
            o.trace.llm_calls()
        );
        // Parallel siblings share the parent prefix.
        assert!(o.kv_hit_rate > 0.3, "LATS hit rate {}", o.kv_hit_rate);
    }
}
