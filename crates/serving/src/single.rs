//! Single-request runner: one agent session on a dedicated replica.

use std::collections::HashMap;

use agentsim_agents::{
    build_agent, AgentConfig, AgentKind, AgentOp, LlmCallSpec, LlmOutput, OpResult,
};
use agentsim_llm::{Engine, EngineConfig, RequestId};
use agentsim_simkit::{SimDuration, SimRng, SimTime};
use agentsim_tools::{ToolCall, ToolExecutor, ToolResult};
use agentsim_workloads::{Benchmark, TaskGenerator};

use crate::trace::{LlmCallRecord, RequestTrace};

/// Builder for a single-request experiment.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct SingleRequest {
    agent: AgentKind,
    benchmark: Benchmark,
    engine_config: EngineConfig,
    agent_config: AgentConfig,
    tools: ToolExecutor,
    seed: u64,
    task_index: u64,
}

/// Result of a single-request experiment: the trace plus replica-level
/// measurements over the request's lifetime.
#[derive(Debug, Clone)]
pub struct SingleOutcome {
    /// The request trace.
    pub trace: RequestTrace,
    /// GPU utilization over the request window (busy / window).
    pub utilization: f64,
    /// Engine wall time in prefill steps.
    pub prefill_busy: SimDuration,
    /// Engine wall time in decode steps.
    pub decode_busy: SimDuration,
    /// Engine idle time within the window (tool waits, gaps).
    pub idle: SimDuration,
    /// GPU energy over the window, watt-hours.
    pub energy_wh: f64,
    /// Peak KV-cache bytes referenced by live sequences.
    pub kv_peak_bytes: u64,
    /// Time-averaged KV-cache bytes.
    pub kv_avg_bytes: f64,
    /// Total FLOPs executed.
    pub flops: f64,
    /// Prefix-cache hit rate over prompt tokens.
    pub kv_hit_rate: f64,
}

impl SingleRequest {
    /// Creates a runner with the paper's default 8B engine and agent
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is not evaluated on `benchmark` (Table II).
    pub fn new(agent: AgentKind, benchmark: Benchmark) -> Self {
        assert!(
            agent.supports(benchmark),
            "{agent} is not evaluated on {benchmark}"
        );
        SingleRequest {
            agent,
            benchmark,
            engine_config: EngineConfig::a100_llama8b(),
            agent_config: AgentConfig::default_8b(),
            tools: ToolExecutor::new(),
            seed: 0,
            task_index: 0,
        }
    }

    /// Sets the experiment seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects which task of the stream to run.
    pub fn task_index(mut self, index: u64) -> Self {
        self.task_index = index;
        self
    }

    /// Replaces the engine configuration.
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.engine_config = config;
        self
    }

    /// Replaces the agent configuration.
    pub fn agent_config(mut self, config: AgentConfig) -> Self {
        self.agent_config = config;
        self
    }

    /// Replaces the tool executor (e.g. failure injection).
    pub fn tool_executor(mut self, tools: ToolExecutor) -> Self {
        self.tools = tools;
        self
    }

    /// Runs the session to completion.
    pub fn run(&self) -> SingleOutcome {
        let task = TaskGenerator::new(self.benchmark, self.seed).task(self.task_index);
        let mut policy = build_agent(self.agent, &task, self.agent_config);
        let mut engine = Engine::new(self.engine_config.clone());
        let root = SimRng::seed_from(self.seed).fork(self.task_index);
        let mut agent_rng = root.fork(1);
        let mut tool_rng = root.fork(2);

        let mut now = SimTime::ZERO;
        let mut trace = RequestTrace::new(self.agent, self.benchmark, task.id, now);
        let mut last = OpResult::empty();

        loop {
            match policy.next(&last, &mut agent_rng) {
                AgentOp::Llm(spec) => {
                    let (end, records, outputs) = run_llm_specs(&mut engine, now, vec![spec]);
                    trace.llm_wall += end.saturating_since(now);
                    now = end;
                    trace.llm.extend(records);
                    last = OpResult {
                        llm: outputs,
                        tools: Vec::new(),
                    };
                }
                AgentOp::LlmBatch(specs) => {
                    let (end, records, outputs) = run_llm_specs(&mut engine, now, specs);
                    trace.llm_wall += end.saturating_since(now);
                    now = end;
                    trace.llm.extend(records);
                    last = OpResult {
                        llm: outputs,
                        tools: Vec::new(),
                    };
                }
                AgentOp::Tools(calls) => {
                    let (wall, results) = run_tools(&self.tools, &calls, &mut tool_rng);
                    trace.tool_wall += wall;
                    now += wall;
                    trace.tools.extend(results.iter().cloned());
                    last = OpResult {
                        llm: Vec::new(),
                        tools: results,
                    };
                }
                AgentOp::OverlappedPlan {
                    llm,
                    tools,
                    overlap,
                } => {
                    let op_start = now;
                    let (llm_end, records, outputs) = run_llm_specs(&mut engine, now, vec![llm]);
                    let plan_time = llm_end.saturating_since(op_start);
                    let (tool_wall, results) = run_tools(&self.tools, &tools, &mut tool_rng);
                    let credit = plan_time.mul_f64(overlap.clamp(0.0, 1.0));
                    let overlapped = tool_wall.min(credit);
                    let extra = tool_wall.saturating_sub(credit);
                    trace.llm_wall += plan_time.saturating_sub(overlapped);
                    trace.overlap_wall += overlapped;
                    trace.tool_wall += extra;
                    now = llm_end + extra;
                    trace.llm.extend(records);
                    trace.tools.extend(results.iter().cloned());
                    last = OpResult {
                        llm: outputs,
                        tools: results,
                    };
                }
                AgentOp::Finish(outcome) => {
                    trace.outcome = outcome;
                    trace.finished = now;
                    break;
                }
            }
        }

        let metrics = engine.metrics();
        let block_bytes = self.engine_config.kv_bytes_per_block();
        let kv = engine.kv().stats();
        SingleOutcome {
            utilization: metrics.utilization(now),
            prefill_busy: metrics.prefill_busy + metrics.mixed_busy,
            decode_busy: metrics.decode_busy,
            idle: metrics.idle_within(now),
            energy_wh: metrics.energy_within(now).watt_hours(),
            flops: metrics.flops,
            kv_peak_bytes: kv.used_blocks.peak() * block_bytes,
            kv_avg_bytes: kv.used_blocks.average(now) * block_bytes as f64,
            kv_hit_rate: kv.hit_rate(),
            trace,
        }
    }

    /// Runs tasks `0..n` of the stream on fresh replicas, in parallel
    /// across OS threads. Results are index-ordered and deterministic.
    pub fn run_batch(&self, n: u64) -> Vec<SingleOutcome> {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(n.max(1) as usize);
        let mut results: Vec<Option<SingleOutcome>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let chunks = results.chunks_mut(n.max(1).div_ceil(threads as u64) as usize);
            for (chunk_idx, chunk) in chunks.enumerate() {
                let runner = self.clone();
                let base = chunk_idx as u64 * n.max(1).div_ceil(threads as u64);
                scope.spawn(move || {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        let mut r = runner.clone();
                        r.task_index = base + i as u64;
                        *slot = Some(r.run());
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("worker filled slot"))
            .collect()
    }
}

/// Submits `specs` and drives the engine until all complete. Returns the
/// completion time, per-call records and the outputs for the policy.
fn run_llm_specs(
    engine: &mut Engine,
    start: SimTime,
    specs: Vec<LlmCallSpec>,
) -> (SimTime, Vec<LlmCallRecord>, Vec<LlmOutput>) {
    let mut meta: Vec<(RequestId, LlmCallSpec)> = Vec::with_capacity(specs.len());
    for mut spec in specs {
        // Move the prompt into the engine so its memoized block hashes
        // carry over; the retained spec only needs its metadata.
        let prompt = std::mem::take(&mut spec.prompt);
        let id = engine.submit(start, prompt, spec.out_tokens, spec.gen_seed);
        meta.push((id, spec));
    }
    let mut now = start;
    let mut done: HashMap<RequestId, agentsim_llm::LlmCompletion> = HashMap::new();
    while done.len() < meta.len() {
        let end = engine
            .start_step_if_idle(now)
            .expect("engine must make progress on pending LLM calls");
        now = end;
        for c in engine.complete_step(now) {
            done.insert(c.id, c);
        }
    }
    // Order records and outputs by submission order.
    let mut records = Vec::with_capacity(meta.len());
    let mut outputs = Vec::with_capacity(meta.len());
    for (id, spec) in meta {
        let completion = done.remove(&id).expect("completion recorded");
        let mut breakdown = spec.breakdown;
        breakdown.output = completion.output_tokens;
        outputs.push(LlmOutput {
            tokens: completion.output_tokens,
            gen_seed: spec.gen_seed,
        });
        records.push(LlmCallRecord {
            completion,
            kind: spec.kind,
            breakdown,
        });
    }
    (now, records, outputs)
}

/// Executes a batch of tool calls concurrently; the wall time is the
/// slowest call (latencies within a batch are correlated — see
/// [`ToolExecutor::execute_batch`]).
fn run_tools(
    tools: &ToolExecutor,
    calls: &[ToolCall],
    rng: &mut SimRng,
) -> (SimDuration, Vec<ToolResult>) {
    let results: Vec<ToolResult> = tools.execute_batch(calls, rng);
    let wall = results
        .iter()
        .map(|r| r.latency)
        .max()
        .unwrap_or(SimDuration::ZERO);
    (wall, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cot_trace_shape() {
        let o = SingleRequest::new(AgentKind::Cot, Benchmark::HotpotQa)
            .seed(1)
            .run();
        assert_eq!(o.trace.llm_calls(), 1);
        assert_eq!(o.trace.tool_calls(), 0);
        assert_eq!(o.trace.tool_wall, SimDuration::ZERO);
        // Single-inference request keeps the GPU busy almost throughout.
        assert!(o.utilization > 0.9, "CoT utilization {}", o.utilization);
        assert!(o.decode_busy > o.prefill_busy);
    }

    #[test]
    fn react_interleaves_and_idles_the_gpu() {
        let o = SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
            .seed(2)
            .run();
        assert!(o.trace.llm_calls() >= 2);
        assert!(o.trace.tool_calls() >= 1);
        assert!(o.trace.tool_wall > SimDuration::ZERO);
        // Fig. 6: Wikipedia waits idle the GPU substantially.
        assert!(o.utilization < 0.9, "ReAct utilization {}", o.utilization);
        assert!(o.idle > SimDuration::ZERO);
        // Fig. 5 partition: e2e = llm + tool + overlap.
        let sum = o.trace.llm_wall + o.trace.tool_wall + o.trace.overlap_wall;
        assert_eq!(sum, o.trace.e2e());
    }

    #[test]
    fn webshop_tools_are_cheap() {
        let hotpot = SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
            .seed(3)
            .run();
        let shop = SingleRequest::new(AgentKind::React, Benchmark::WebShop)
            .seed(3)
            .run();
        let frac = |o: &SingleOutcome| {
            o.trace.tool_wall.as_secs_f64() / o.trace.e2e().as_secs_f64().max(1e-9)
        };
        assert!(
            frac(&hotpot) > frac(&shop) + 0.2,
            "tool share hotpot {} vs webshop {}",
            frac(&hotpot),
            frac(&shop)
        );
    }

    #[test]
    fn iterative_calls_hit_prefix_cache() {
        let o = SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
            .seed(4)
            .run();
        if o.trace.llm_calls() >= 2 {
            // Later calls share the growing history prefix.
            let later_cached: u64 = o.trace.llm[1..]
                .iter()
                .map(|c| c.completion.cached_tokens as u64)
                .sum();
            assert!(later_cached > 0, "iterative prefix reuse expected");
        }
    }

    #[test]
    fn prefix_caching_off_recomputes_everything() {
        let cfg = EngineConfig::a100_llama8b().with_prefix_caching(false);
        let o = SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
            .seed(4)
            .engine_config(cfg)
            .run();
        assert_eq!(o.trace.cached_tokens(), 0);
        assert_eq!(o.kv_hit_rate, 0.0);
    }

    #[test]
    fn overlapped_plan_accounts_partition() {
        let o = SingleRequest::new(AgentKind::LlmCompiler, Benchmark::HotpotQa)
            .seed(5)
            .run();
        assert!(
            o.trace.overlap_wall > SimDuration::ZERO,
            "planner/tool overlap"
        );
        let sum = o.trace.llm_wall + o.trace.tool_wall + o.trace.overlap_wall;
        assert_eq!(sum, o.trace.e2e());
    }

    #[test]
    fn run_batch_is_deterministic_and_ordered() {
        let runner = SingleRequest::new(AgentKind::React, Benchmark::WebShop).seed(6);
        let a = runner.run_batch(6);
        let b = runner.run_batch(6);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trace.task_id, y.trace.task_id);
            assert_eq!(x.trace.e2e(), y.trace.e2e());
        }
        // Distinct tasks differ.
        assert!(a.windows(2).any(|w| w[0].trace.e2e() != w[1].trace.e2e()));
    }

    #[test]
    fn energy_scales_with_work() {
        let cot = SingleRequest::new(AgentKind::Cot, Benchmark::HotpotQa)
            .seed(7)
            .run();
        let reflexion = SingleRequest::new(AgentKind::Reflexion, Benchmark::HotpotQa)
            .seed(7)
            .run();
        assert!(
            reflexion.energy_wh > 2.0 * cot.energy_wh,
            "reflexion {} Wh vs cot {} Wh",
            reflexion.energy_wh,
            cot.energy_wh
        );
    }

    #[test]
    fn lats_parallel_calls_batch_in_engine() {
        let o = SingleRequest::new(AgentKind::Lats, Benchmark::HotpotQa)
            .seed(8)
            .run();
        assert!(
            o.trace.llm_calls() > 15,
            "LATS made {}",
            o.trace.llm_calls()
        );
        // Parallel siblings share the parent prefix.
        assert!(o.kv_hit_rate > 0.3, "LATS hit rate {}", o.kv_hit_rate);
    }
}
