//! Aggregate results of an open-loop serving run.

use std::fmt;

use agentsim_metrics::Samples;
use agentsim_simkit::SimDuration;

/// What an open-loop serving experiment measured.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Offered load (requests/second).
    pub offered_qps: f64,
    /// Requests completed.
    pub completed: u64,
    /// Requests whose task was solved.
    pub solved: u64,
    /// Time from first arrival to last completion.
    pub makespan: SimDuration,
    /// Per-request end-to-end latencies (seconds).
    pub latencies: Samples,
    /// Per-LLM-call latencies (seconds), including queueing.
    pub llm_latencies: Samples,
    /// End-to-end latencies of agentic requests only (empty unless the
    /// workload contains agents).
    pub agent_latencies: Samples,
    /// End-to-end latencies of chatbot requests only (empty unless the
    /// workload contains chatbot traffic).
    pub chatbot_latencies: Samples,
    /// Median end-to-end latency (seconds).
    pub p50_s: f64,
    /// 95th-percentile end-to-end latency (seconds).
    pub p95_s: f64,
    /// Total GPU energy over the run, watt-hours.
    pub energy_wh: f64,
    /// GPU utilization over the makespan.
    pub utilization: f64,
    /// Time-averaged KV bytes referenced by live sequences.
    pub kv_avg_bytes: f64,
    /// Peak KV bytes referenced by live sequences.
    pub kv_max_bytes: u64,
    /// Prefix-cache hit rate over prompt tokens.
    pub kv_hit_rate: f64,
    /// Sequences preempted for KV pressure.
    pub preemptions: u64,
    /// Cached-block evictions (thrashing indicator).
    pub evictions: u64,
    /// Time-weighted mean of in-engine requests (queued + running).
    pub queue_depth_mean: f64,
    /// Peak in-engine requests.
    pub queue_depth_max: f64,
}

impl ServingReport {
    /// Achieved throughput in requests/second.
    pub fn throughput(&self) -> f64 {
        let t = self.makespan.as_secs_f64();
        if t <= 0.0 {
            0.0
        } else {
            self.completed as f64 / t
        }
    }

    /// Whether the system kept up with the offered load (achieved at
    /// least `fraction` of it).
    pub fn sustained(&self, fraction: f64) -> bool {
        self.throughput() >= self.offered_qps * fraction
    }

    /// Task accuracy among completed requests.
    pub fn accuracy(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.solved as f64 / self.completed as f64
        }
    }
}

impl fmt::Display for ServingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qps {:.2} -> tput {:.2}, p50 {:.1}s p95 {:.1}s, util {:.0}%, hit {:.0}%, {} preempt",
            self.offered_qps,
            self.throughput(),
            self.p50_s,
            self.p95_s,
            self.utilization * 100.0,
            self.kv_hit_rate * 100.0,
            self.preemptions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ServingReport {
        ServingReport {
            offered_qps: 2.0,
            completed: 100,
            solved: 40,
            makespan: SimDuration::from_secs(50),
            latencies: Samples::new(),
            llm_latencies: Samples::new(),
            agent_latencies: Samples::new(),
            chatbot_latencies: Samples::new(),
            p50_s: 1.0,
            p95_s: 5.0,
            energy_wh: 10.0,
            utilization: 0.8,
            kv_avg_bytes: 1e9,
            kv_max_bytes: 2_000_000_000,
            kv_hit_rate: 0.5,
            preemptions: 0,
            evictions: 3,
            queue_depth_mean: 1.5,
            queue_depth_max: 4.0,
        }
    }

    #[test]
    fn throughput_and_sustained() {
        let r = report();
        assert!((r.throughput() - 2.0).abs() < 1e-12);
        assert!(r.sustained(0.9));
        assert!(!r.sustained(1.1));
    }

    #[test]
    fn accuracy_fraction() {
        assert!((report().accuracy() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = report().to_string();
        assert!(s.contains("p95 5.0s"));
    }
}
