//! QPS sweeps and peak-throughput (knee) detection.

use agentsim_llm::EngineConfig;
use agentsim_simkit::rng::splitmix64;

use crate::open_loop::{ServingConfig, ServingSim, ServingWorkload};
use crate::report::ServingReport;

/// One point of a QPS sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Offered load.
    pub qps: f64,
    /// The run's report.
    pub report: ServingReport,
}

/// Runs the workload at each offered load, in parallel across at most
/// `available_parallelism` OS threads. Results are returned in the input
/// order; each point's seed depends only on `(seed, qps)`, so the result
/// is deterministic regardless of how points are spread over threads.
///
/// # Panics
///
/// Panics if `qps_points` is empty or `num_requests` is zero.
pub fn qps_sweep(
    engine: &EngineConfig,
    workload: &ServingWorkload,
    qps_points: &[f64],
    num_requests: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    assert!(!qps_points.is_empty(), "sweep needs at least one point");
    assert!(num_requests > 0, "sweep needs requests");
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(qps_points.len());
    let per_thread = qps_points.len().div_ceil(threads);
    let mut out: Vec<Option<SweepPoint>> = qps_points.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slots, points) in out
            .chunks_mut(per_thread)
            .zip(qps_points.chunks(per_thread))
        {
            scope.spawn(move || {
                for (slot, &qps) in slots.iter_mut().zip(points) {
                    let cfg = ServingConfig::new(workload.clone(), qps, num_requests)
                        .seed(splitmix64(seed ^ qps.to_bits()))
                        .engine(engine.clone());
                    *slot = Some(SweepPoint {
                        qps,
                        report: ServingSim::new(cfg).run(),
                    });
                }
            });
        }
    });
    out.into_iter()
        .map(|p| p.expect("point computed"))
        .collect()
}

/// Peak throughput: the highest achieved throughput across the sweep —
/// an estimate of serving capacity (the knee of the paper's Fig. 14
/// curves). Past the knee, offering more load cannot raise the achieved
/// rate, so the maximum over a sweep that spans the knee measures it.
///
/// # Panics
///
/// Panics if `points` is empty, matching [`qps_sweep`]'s contract (a
/// silent `0.0` sentinel would read as "the server has no capacity").
pub fn peak_throughput(points: &[SweepPoint]) -> f64 {
    assert!(
        !points.is_empty(),
        "peak_throughput needs at least one sweep point"
    );
    points
        .iter()
        .map(|p| p.report.throughput())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_ordered_and_complete() {
        let points = qps_sweep(
            &EngineConfig::a100_llama8b(),
            &ServingWorkload::Chatbot,
            &[0.5, 2.0],
            12,
            3,
        );
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].qps, 0.5);
        assert_eq!(points[1].qps, 2.0);
        assert_eq!(points[0].report.completed, 12);
    }

    #[test]
    fn overload_raises_tail_latency() {
        let points = qps_sweep(
            &EngineConfig::a100_llama8b(),
            &ServingWorkload::Chatbot,
            &[0.5, 20.0],
            25,
            4,
        );
        assert!(
            points[1].report.p95_s > points[0].report.p95_s,
            "overloaded p95 {} vs light p95 {}",
            points[1].report.p95_s,
            points[0].report.p95_s
        );
    }

    #[test]
    fn peak_throughput_finds_knee() {
        let points = qps_sweep(
            &EngineConfig::a100_llama8b(),
            &ServingWorkload::Chatbot,
            &[0.5, 50.0],
            20,
            5,
        );
        let peak = peak_throughput(&points);
        assert!(peak > 0.0);
        // 50 qps of chatbot far exceeds one A100's capacity: the sustained
        // peak must be well below the top offer.
        assert!(peak < 40.0, "peak {peak}");
    }

    #[test]
    #[should_panic(expected = "at least one sweep point")]
    fn empty_peak_throughput_rejected() {
        // An empty sweep must fail loudly, like `qps_sweep` itself does —
        // returning 0.0 would read as "the server has no capacity".
        let _ = peak_throughput(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_sweep_rejected() {
        let _ = qps_sweep(
            &EngineConfig::a100_llama8b(),
            &ServingWorkload::Chatbot,
            &[],
            1,
            0,
        );
    }
}
