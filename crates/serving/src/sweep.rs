//! QPS sweeps, peak-throughput (knee) detection, and per-load-point
//! phase breakdowns ("where did the tail go").

use agentsim_llm::EngineConfig;
use agentsim_simkit::rng::splitmix64;

use crate::observe::{Phase, RequestSpan};
use crate::open_loop::{ServingConfig, ServingSim, ServingWorkload};
use crate::report::ServingReport;

/// One point of a QPS sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Offered load.
    pub qps: f64,
    /// The run's report.
    pub report: ServingReport,
}

/// Runs `run_point` at each offered load, in parallel across at most
/// `available_parallelism` OS threads, preserving input order.
fn sweep_map<T: Send>(qps_points: &[f64], run_point: impl Fn(f64) -> T + Sync) -> Vec<T> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(qps_points.len());
    let per_thread = qps_points.len().div_ceil(threads);
    let mut out: Vec<Option<T>> = qps_points.iter().map(|_| None).collect();
    let run_point = &run_point;
    std::thread::scope(|scope| {
        for (slots, points) in out
            .chunks_mut(per_thread)
            .zip(qps_points.chunks(per_thread))
        {
            scope.spawn(move || {
                for (slot, &qps) in slots.iter_mut().zip(points) {
                    *slot = Some(run_point(qps));
                }
            });
        }
    });
    out.into_iter()
        .map(|p| p.expect("point computed"))
        .collect()
}

/// Runs the workload at each offered load, in parallel across at most
/// `available_parallelism` OS threads. Results are returned in the input
/// order; each point's seed depends only on `(seed, qps)`, so the result
/// is deterministic regardless of how points are spread over threads.
///
/// # Panics
///
/// Panics if `qps_points` is empty or `num_requests` is zero.
pub fn qps_sweep(
    engine: &EngineConfig,
    workload: &ServingWorkload,
    qps_points: &[f64],
    num_requests: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    assert!(!qps_points.is_empty(), "sweep needs at least one point");
    assert!(num_requests > 0, "sweep needs requests");
    sweep_map(qps_points, |qps| {
        let cfg = ServingConfig::new(workload.clone(), qps, num_requests)
            .seed(splitmix64(seed ^ qps.to_bits()))
            .engine(engine.clone());
        SweepPoint {
            qps,
            report: ServingSim::new(cfg).run(),
        }
    })
}

/// Where request time went, summed over a span population: the five
/// span phases, normalized against total end-to-end time.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseBreakdown {
    /// Finished spans aggregated.
    pub requests: u64,
    /// Seconds queued before (re-)admission.
    pub queue_s: f64,
    /// Seconds in prefill steps.
    pub prefill_s: f64,
    /// Seconds in decode steps.
    pub decode_s: f64,
    /// Seconds in KV migration (disaggregated serving only).
    pub transfer_s: f64,
    /// Seconds admitted but not advancing.
    pub stall_s: f64,
}

impl PhaseBreakdown {
    /// Aggregates the finished spans in `spans` (unfinished are skipped).
    pub fn from_spans<'a>(spans: impl IntoIterator<Item = &'a RequestSpan>) -> Self {
        let mut b = PhaseBreakdown::default();
        for span in spans {
            if span.finished.is_none() {
                continue;
            }
            b.requests += 1;
            b.queue_s += span.queue_time.as_secs_f64();
            b.prefill_s += span.prefill_time.as_secs_f64();
            b.decode_s += span.decode_time.as_secs_f64();
            b.transfer_s += span.transfer_time.as_secs_f64();
            b.stall_s += span.stall_time.as_secs_f64();
        }
        b
    }

    /// Aggregates only the slowest `frac` of finished spans by
    /// end-to-end latency (at least one). The paper's Fig. 14 question:
    /// the *tail* breakdown shows which phase the knee pushes on.
    pub fn tail_of(spans: &[RequestSpan], frac: f64) -> Self {
        let mut finished: Vec<&RequestSpan> = spans.iter().filter(|s| s.is_complete()).collect();
        finished.sort_by(|a, b| {
            let (ea, eb) = (a.e2e().unwrap(), b.e2e().unwrap());
            ea.cmp(&eb).then(a.id.cmp(&b.id))
        });
        let keep = ((finished.len() as f64 * frac).ceil() as usize).max(1);
        let tail = finished.len().saturating_sub(keep);
        PhaseBreakdown::from_spans(finished[tail..].iter().copied())
    }

    /// Total attributed seconds (equals summed end-to-end time).
    pub fn total_s(&self) -> f64 {
        self.queue_s + self.prefill_s + self.decode_s + self.transfer_s + self.stall_s
    }

    /// Fraction of total time in `phase`, in `[0, 1]` (0 if empty).
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total_s();
        if total <= 0.0 {
            return 0.0;
        }
        let part = match phase {
            Phase::Queue => self.queue_s,
            Phase::Prefill => self.prefill_s,
            Phase::Decode => self.decode_s,
            Phase::Transfer => self.transfer_s,
            Phase::Stall => self.stall_s,
        };
        part / total
    }
}

/// A sweep point with its phase breakdowns: where time went overall and
/// in the slowest 5% of requests.
#[derive(Debug, Clone)]
pub struct ObservedSweepPoint {
    /// Offered load.
    pub qps: f64,
    /// The run's report.
    pub report: ServingReport,
    /// Phase breakdown over all finished request spans.
    pub overall: PhaseBreakdown,
    /// Phase breakdown over the slowest 5% by end-to-end latency.
    pub tail: PhaseBreakdown,
}

/// [`qps_sweep`] with a [`crate::SpanRecorder`] attached at every load
/// point: same seeds, same reports, plus per-point phase breakdowns.
/// The recorder itself stays thread-local; only the plain-data
/// breakdowns cross back.
///
/// # Panics
///
/// Panics if `qps_points` is empty or `num_requests` is zero.
pub fn qps_sweep_observed(
    engine: &EngineConfig,
    workload: &ServingWorkload,
    qps_points: &[f64],
    num_requests: u64,
    seed: u64,
) -> Vec<ObservedSweepPoint> {
    assert!(!qps_points.is_empty(), "sweep needs at least one point");
    assert!(num_requests > 0, "sweep needs requests");
    sweep_map(qps_points, |qps| {
        let cfg = ServingConfig::new(workload.clone(), qps, num_requests)
            .seed(splitmix64(seed ^ qps.to_bits()))
            .engine(engine.clone());
        let mut sim = ServingSim::new(cfg);
        let recorder = sim.attach_recorder();
        let report = sim.run();
        let spans = recorder.spans();
        ObservedSweepPoint {
            qps,
            report,
            overall: PhaseBreakdown::from_spans(&spans),
            tail: PhaseBreakdown::tail_of(&spans, 0.05),
        }
    })
}

/// Peak throughput: the highest achieved throughput across the sweep —
/// an estimate of serving capacity (the knee of the paper's Fig. 14
/// curves). Past the knee, offering more load cannot raise the achieved
/// rate, so the maximum over a sweep that spans the knee measures it.
///
/// # Panics
///
/// Panics if `points` is empty, matching [`qps_sweep`]'s contract (a
/// silent `0.0` sentinel would read as "the server has no capacity").
pub fn peak_throughput(points: &[SweepPoint]) -> f64 {
    assert!(
        !points.is_empty(),
        "peak_throughput needs at least one sweep point"
    );
    points
        .iter()
        .map(|p| p.report.throughput())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_ordered_and_complete() {
        let points = qps_sweep(
            &EngineConfig::a100_llama8b(),
            &ServingWorkload::Chatbot,
            &[0.5, 2.0],
            12,
            3,
        );
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].qps, 0.5);
        assert_eq!(points[1].qps, 2.0);
        assert_eq!(points[0].report.completed, 12);
    }

    #[test]
    fn overload_raises_tail_latency() {
        let points = qps_sweep(
            &EngineConfig::a100_llama8b(),
            &ServingWorkload::Chatbot,
            &[0.5, 20.0],
            25,
            4,
        );
        assert!(
            points[1].report.p95_s > points[0].report.p95_s,
            "overloaded p95 {} vs light p95 {}",
            points[1].report.p95_s,
            points[0].report.p95_s
        );
    }

    #[test]
    fn peak_throughput_finds_knee() {
        let points = qps_sweep(
            &EngineConfig::a100_llama8b(),
            &ServingWorkload::Chatbot,
            &[0.5, 50.0],
            20,
            5,
        );
        let peak = peak_throughput(&points);
        assert!(peak > 0.0);
        // 50 qps of chatbot far exceeds one A100's capacity: the sustained
        // peak must be well below the top offer.
        assert!(peak < 40.0, "peak {peak}");
    }

    #[test]
    #[should_panic(expected = "at least one sweep point")]
    fn empty_peak_throughput_rejected() {
        // An empty sweep must fail loudly, like `qps_sweep` itself does —
        // returning 0.0 would read as "the server has no capacity".
        let _ = peak_throughput(&[]);
    }

    #[test]
    fn observed_sweep_matches_plain_sweep_and_partitions_time() {
        let plain = qps_sweep(
            &EngineConfig::a100_llama8b(),
            &ServingWorkload::Chatbot,
            &[0.5, 60.0],
            40,
            4,
        );
        let observed = qps_sweep_observed(
            &EngineConfig::a100_llama8b(),
            &ServingWorkload::Chatbot,
            &[0.5, 60.0],
            40,
            4,
        );
        for (p, o) in plain.iter().zip(&observed) {
            // Observation must not perturb the simulation.
            assert_eq!(p.report.p95_s.to_bits(), o.report.p95_s.to_bits());
            assert_eq!(p.report.completed, o.report.completed);
            assert!(o.overall.requests >= o.report.completed);
            assert!(o.tail.requests >= 1);
            assert!(o.tail.requests <= o.overall.requests);
            let shares: f64 = [
                Phase::Queue,
                Phase::Prefill,
                Phase::Decode,
                Phase::Transfer,
                Phase::Stall,
            ]
            .iter()
            .map(|&ph| o.overall.share(ph))
            .sum();
            assert!((shares - 1.0).abs() < 1e-9, "shares sum to {shares}");
            assert_eq!(o.overall.share(Phase::Transfer), 0.0);
        }
        // Under overload the tail becomes queue-dominated: that is the
        // Fig. 14 "where did the tail go" signature.
        let (light, heavy) = (&observed[0], &observed[1]);
        assert!(
            heavy.tail.share(Phase::Queue) > light.tail.share(Phase::Queue),
            "overload must grow the tail's queue share ({} vs {})",
            heavy.tail.share(Phase::Queue),
            light.tail.share(Phase::Queue)
        );
    }

    #[test]
    fn tail_breakdown_keeps_slowest_spans_only() {
        let cfg = ServingConfig::new(ServingWorkload::Chatbot, 10.0, 40).seed(9);
        let mut sim = ServingSim::new(cfg);
        let recorder = sim.attach_recorder();
        sim.run();
        let spans = recorder.spans();
        let tail = PhaseBreakdown::tail_of(&spans, 0.05);
        let overall = PhaseBreakdown::from_spans(&spans);
        assert_eq!(tail.requests, 2, "ceil(40 * 0.05)");
        // Mean e2e of the tail is at least the population mean.
        assert!(
            tail.total_s() / tail.requests as f64 >= overall.total_s() / overall.requests as f64
        );
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_sweep_rejected() {
        let _ = qps_sweep(
            &EngineConfig::a100_llama8b(),
            &ServingWorkload::Chatbot,
            &[],
            1,
            0,
        );
    }
}
