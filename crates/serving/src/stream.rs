//! Streaming span export: constant-memory JSONL emission.
//!
//! [`SpanRecorder`](crate::SpanRecorder) keeps every span and a growing
//! event log in memory — right for post-hoc analysis, wrong for long
//! sweeps where a run retires hundreds of thousands of requests. A
//! [`SpanStreamWriter`] runs the same per-request phase-attribution state
//! machine but holds only the *live* spans: the moment a request retires
//! (completes, or migrates off a prefill-role engine) its finished span
//! is serialized as one JSON line to the underlying writer and dropped.
//! Memory is `O(concurrent requests)` instead of `O(total requests)`.
//!
//! Each emitted line carries the full five-phase partition
//! (`queue/prefill/decode/transfer/stall`, microseconds) plus the merged
//! segment timeline, so downstream tooling can rebuild tail breakdowns
//! without replaying the run.
//!
//! I/O errors never panic the simulation: the first error is captured,
//! subsequent writes are skipped, and [`SpanStreamWriter::io_error`]
//! reports it at the end of the run.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use agentsim_llm::{EngineEvent, EngineObserver, RequestId};

use crate::observe::{Phase, RequestSpan, SpanState};

struct StreamInner {
    out: Box<dyn Write + Send>,
    live: HashMap<RequestId, RequestSpan>,
    written: u64,
    peak_live: usize,
    io_error: Option<io::Error>,
    line: String,
}

// `Box<dyn Write + Send>` has no Debug; describe the observable state instead.
impl std::fmt::Debug for SpanStreamWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("SpanStreamWriter")
            .field("live", &inner.live.len())
            .field("written", &inner.written)
            .field("peak_live", &inner.peak_live)
            .field("io_error", &inner.io_error)
            .finish()
    }
}

impl StreamInner {
    fn retire(&mut self, span: RequestSpan) {
        self.line.clear();
        let finished = span.finished.expect("retired span always has an end");
        let _ = write!(
            self.line,
            "{{\"id\":{},\"migrated\":{},\"submitted_us\":{},\"finished_us\":{},\
             \"prompt_tokens\":{},\"cached_tokens\":{},\"output_tokens\":{},\
             \"queue_us\":{},\"prefill_us\":{},\"decode_us\":{},\"transfer_us\":{},\
             \"stall_us\":{},\"preemptions\":{},\"segments\":[",
            span.id.0,
            span.migrated,
            span.submitted.as_micros(),
            finished.as_micros(),
            span.prompt_tokens,
            span.cached_tokens,
            span.output_tokens,
            span.queue_time.as_micros(),
            span.prefill_time.as_micros(),
            span.decode_time.as_micros(),
            span.transfer_time.as_micros(),
            span.stall_time.as_micros(),
            span.preemptions,
        );
        for (i, seg) in span.segments.iter().enumerate() {
            let _ = write!(
                self.line,
                "{}{{\"phase\":\"{}\",\"start_us\":{},\"end_us\":{}}}",
                if i == 0 { "" } else { "," },
                seg.phase.name(),
                seg.start.as_micros(),
                seg.end.as_micros(),
            );
        }
        self.line.push_str("]}\n");
        if self.io_error.is_none() {
            if let Err(e) = self.out.write_all(self.line.as_bytes()) {
                self.io_error = Some(e);
            } else {
                self.written += 1;
            }
        }
    }

    fn live_mut(&mut self, id: RequestId) -> &mut RequestSpan {
        self.live
            .get_mut(&id)
            .unwrap_or_else(|| panic!("unobserved request {id}"))
    }

    fn apply(&mut self, event: &EngineEvent<'_>) {
        match *event {
            EngineEvent::Submitted {
                id,
                at,
                prompt_tokens,
                out_tokens,
                ..
            } => {
                let prev = self
                    .live
                    .insert(id, RequestSpan::new(id, at, prompt_tokens, out_tokens));
                assert!(prev.is_none(), "{id}: submitted twice");
                self.peak_live = self.peak_live.max(self.live.len());
            }
            EngineEvent::Admitted { id, at, .. } => {
                let span = self.live_mut(id);
                let SpanState::Queued(since) = span.state else {
                    panic!("{id}: admitted while not queued");
                };
                span.push_segment(Phase::Queue, since, at);
                if span.first_admitted.is_none() {
                    span.first_admitted = Some(at);
                }
                span.state = SpanState::Running(at);
            }
            EngineEvent::StepCompleted {
                started,
                ended,
                prefill,
                decode,
                ..
            } => {
                for &(id, _) in prefill {
                    self.live_mut(id).mark_phase(Phase::Prefill, started, ended);
                }
                for &id in decode {
                    self.live_mut(id).mark_phase(Phase::Decode, started, ended);
                }
                for span in self.live.values_mut() {
                    if let SpanState::Running(mark) = span.state {
                        if mark < ended {
                            span.push_segment(Phase::Stall, mark, ended);
                            span.state = SpanState::Running(ended);
                        }
                    }
                }
            }
            EngineEvent::Preempted { id, at, .. } => {
                let span = self.live_mut(id);
                let SpanState::Running(mark) = span.state else {
                    panic!("{id}: preempted while not running");
                };
                span.push_segment(Phase::Stall, mark, at);
                span.preemptions += 1;
                span.state = SpanState::Queued(at);
            }
            EngineEvent::Completed { at, completion } => {
                let mut span = self
                    .live
                    .remove(&completion.id)
                    .unwrap_or_else(|| panic!("unobserved request {}", completion.id));
                let SpanState::Running(mark) = span.state else {
                    panic!("{}: completed while not running", completion.id);
                };
                span.push_segment(Phase::Stall, mark, at);
                span.finished = Some(at);
                span.cached_tokens = completion.cached_tokens;
                span.output_tokens = completion.output_tokens;
                span.state = SpanState::Done;
                self.retire(span);
            }
            EngineEvent::Migrated {
                id, at, generated, ..
            } => {
                let mut span = self
                    .live
                    .remove(&id)
                    .unwrap_or_else(|| panic!("unobserved request {id}"));
                let SpanState::Running(mark) = span.state else {
                    panic!("{id}: migrated while not running");
                };
                span.push_segment(Phase::Stall, mark, at);
                span.finished = Some(at);
                span.output_tokens = generated;
                span.migrated = true;
                span.state = SpanState::Done;
                self.retire(span);
            }
            EngineEvent::Abandoned { id, at, generated } => {
                let mut span = self
                    .live
                    .remove(&id)
                    .unwrap_or_else(|| panic!("unobserved request {id}"));
                match span.state {
                    SpanState::Running(mark) => span.push_segment(Phase::Stall, mark, at),
                    SpanState::Queued(since) => span.push_segment(Phase::Queue, since, at),
                    SpanState::Done => panic!("{id}: abandoned after finishing"),
                }
                span.finished = Some(at);
                span.output_tokens = generated;
                span.abandoned = true;
                span.state = SpanState::Done;
                self.retire(span);
            }
            // Role flips carry no per-request span; the engine is empty
            // by contract when one fires.
            EngineEvent::RoleChanged { .. } => {}
        }
    }
}

/// A clonable [`EngineObserver`] that streams each retired request span
/// as one JSON line and keeps only live spans in memory. See the
/// [module docs](self).
#[derive(Clone)]
pub struct SpanStreamWriter {
    inner: Arc<Mutex<StreamInner>>,
}

impl SpanStreamWriter {
    /// Wraps an arbitrary byte sink (a `File`, a `BufWriter`, a
    /// `Vec<u8>`, …).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        SpanStreamWriter {
            inner: Arc::new(Mutex::new(StreamInner {
                out,
                live: HashMap::new(),
                written: 0,
                peak_live: 0,
                io_error: None,
                line: String::new(),
            })),
        }
    }

    /// Streams to a newly created (truncated) file, buffered.
    pub fn to_file(path: &std::path::Path) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(SpanStreamWriter::new(Box::new(io::BufWriter::new(file))))
    }

    /// Spans retired (lines successfully written) so far.
    pub fn written(&self) -> u64 {
        self.inner.lock().unwrap().written
    }

    /// Requests currently in flight (spans held in memory).
    pub fn live(&self) -> usize {
        self.inner.lock().unwrap().live.len()
    }

    /// High-water mark of concurrently held spans — the writer's actual
    /// memory footprint, independent of run length.
    pub fn peak_live(&self) -> usize {
        self.inner.lock().unwrap().peak_live
    }

    /// A description of the first write error, if any occurred. Once a
    /// write fails, later spans are dropped rather than retried.
    pub fn io_error(&self) -> Option<String> {
        self.inner
            .lock()
            .unwrap()
            .io_error
            .as_ref()
            .map(|e| e.to_string())
    }

    /// Flushes the underlying writer (call at end of run; buffered sinks
    /// may otherwise hold the tail).
    pub fn flush(&self) -> io::Result<()> {
        self.inner.lock().unwrap().out.flush()
    }
}

impl EngineObserver for SpanStreamWriter {
    fn on_event(&mut self, event: &EngineEvent<'_>) {
        self.inner.lock().unwrap().apply(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::SpanRecorder;
    use crate::open_loop::{ServingConfig, ServingSim, ServingWorkload};
    use agentsim_kvcache::TokenBuf;
    use agentsim_llm::{Engine, EngineConfig, EngineRole, FanoutObserver};
    use agentsim_metrics::json;
    use agentsim_simkit::SimTime;

    /// A `Write` target the test can inspect after the writer is boxed.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn drain(engine: &mut Engine, mut now: SimTime) {
        while let Some(end) = engine.start_step_if_idle(now) {
            now = end;
            engine.complete_step(now);
        }
    }

    #[test]
    fn streams_one_valid_line_per_retired_span_and_matches_recorder() {
        let buf = SharedBuf::default();
        let writer = SpanStreamWriter::new(Box::new(buf.clone()));
        let recorder = SpanRecorder::new();

        let cfg = ServingConfig::new(ServingWorkload::react_hotpotqa(), 1.0, 4).seed(7);
        let mut sim = ServingSim::new(cfg);
        sim.set_observer(Box::new(
            FanoutObserver::new()
                .with(Box::new(writer.clone()))
                .with(Box::new(recorder.clone())),
        ));
        sim.run();

        assert_eq!(writer.live(), 0, "all spans must retire");
        assert!(writer.peak_live() >= 1);
        assert!(writer.io_error().is_none());

        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let spans = recorder.spans();
        assert_eq!(lines.len() as u64, writer.written());
        assert_eq!(lines.len(), spans.len());

        for line in &lines {
            json::validate(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        // Streamed phase totals agree with the in-memory recorder.
        for span in &spans {
            let needle = format!(
                "\"id\":{},\"migrated\":false,\"submitted_us\":{}",
                span.id.0,
                span.submitted.as_micros()
            );
            let line = lines
                .iter()
                .find(|l| l.contains(&needle))
                .unwrap_or_else(|| panic!("no streamed line for {}", span.id));
            assert!(line.contains(&format!("\"queue_us\":{}", span.queue_time.as_micros())));
            assert!(line.contains(&format!("\"prefill_us\":{}", span.prefill_time.as_micros())));
            assert!(line.contains(&format!("\"decode_us\":{}", span.decode_time.as_micros())));
            assert!(line.contains(&format!("\"stall_us\":{}", span.stall_time.as_micros())));
        }
    }

    #[test]
    fn migrated_spans_retire_with_the_migrated_flag() {
        let buf = SharedBuf::default();
        let writer = SpanStreamWriter::new(Box::new(buf.clone()));
        let mut e = Engine::new(EngineConfig::a100_llama8b().with_role(EngineRole::Prefill));
        e.set_observer(Box::new(writer.clone()));
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 513), 8, 0);
        drain(&mut e, SimTime::ZERO);

        assert_eq!(writer.written(), 1);
        assert_eq!(writer.live(), 0);
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("\"migrated\":true"));
        assert!(text.contains("\"transfer_us\":0"));
        json::validate(text.trim()).unwrap();
    }

    #[test]
    fn write_failures_are_captured_not_propagated() {
        #[derive(Debug)]
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let writer = SpanStreamWriter::new(Box::new(Broken));
        let mut e = Engine::new(EngineConfig::a100_llama8b());
        e.set_observer(Box::new(writer.clone()));
        e.submit(SimTime::ZERO, TokenBuf::from_segment(1, 64), 4, 0);
        drain(&mut e, SimTime::ZERO);

        assert_eq!(writer.written(), 0);
        assert_eq!(writer.live(), 0, "spans still retire on I/O failure");
        assert!(writer.io_error().unwrap().contains("disk full"));
    }
}
