//! Serving drivers: execute agent sessions against the simulated engine
//! and tools. All of them step the shared [`SessionRunner`] core and
//! take their traffic from a pluggable [`ClientModel`] (open-loop
//! Poisson, closed-loop think-time populations, trace replay).
//!
//! * [`single`] — one request on a dedicated replica, producing a fully
//!   attributed [`RequestTrace`] (the paper's §IV-A/B per-request
//!   analysis: call counts, latency breakdown, GPU phase breakdown,
//!   token growth, KV footprint, prefix-caching effects).
//! * [`open_loop`] — many concurrent sessions over one shared replica,
//!   open-loop Poisson by default (its §IV-C serving analysis:
//!   throughput, tail latency vs QPS, KV pressure, cache thrashing).
//! * [`fleet`] — several replicas behind a router (session affinity vs
//!   stateless balancing), extending the paper's §VI datacenter view.
//! * [`observe`] — step-level observability: attach a [`SpanRecorder`]
//!   to any of the above and export per-request lifecycle spans, engine
//!   time-series, and Chrome-trace / JSONL files.
//! * [`disagg`] (re-export of `agentsim-disagg`) — Splitwise-style
//!   disaggregated prefill/decode pools with a modeled KV-transfer
//!   interconnect, plus the colocated baseline through the same driver
//!   for iso-GPU what-if comparisons.
//!
//! # Example
//!
//! ```
//! use agentsim_serving::SingleRequest;
//! use agentsim_agents::AgentKind;
//! use agentsim_workloads::Benchmark;
//!
//! let outcome = SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
//!     .seed(3)
//!     .run();
//! assert!(outcome.trace.llm_calls() >= 2);
//! assert!(outcome.trace.tool_calls() >= 1);
//! assert!(outcome.energy_wh > 0.0);
//! ```

pub use agentsim_disagg as disagg;
pub use agentsim_session as session;

pub mod fleet;
pub mod observe;
pub mod open_loop;
pub mod report;
pub mod single;
pub mod stream;
pub mod sweep;

/// Per-request execution traces (now shared driver infrastructure in
/// [`agentsim_session`]; re-exported here for path stability).
pub use agentsim_session::trace;

pub use disagg::{
    AutoscalePolicy, CallRecord, CallSpan, DisaggConfig, DisaggReport, DisaggSim, DisaggWorkload,
    FlipDirection, FlipRecord, HysteresisConfig,
};
pub use fleet::{FleetConfig, FleetReport, FleetSim, ReplicaPool, Routing};
pub use observe::{
    chrome_trace, stitch_disagg_span, Phase, RequestSpan, Segment, SpanRecorder, StepRecord,
};
pub use open_loop::{ServingConfig, ServingSim, ServingWorkload};
pub use report::ServingReport;
pub use session::{
    validate_load, AdmissionPolicy, Arrival, ArrivalProcess, CascadePolicy, ClientModel,
    OverloadPolicy, QueueDiscipline, RetryPolicy, SessionCmd, SessionRunner,
};
pub use single::{SingleOutcome, SingleRequest};
pub use stream::SpanStreamWriter;
pub use sweep::{
    peak_throughput, qps_sweep, qps_sweep_observed, ObservedSweepPoint, PhaseBreakdown, SweepPoint,
};
pub use trace::{LlmCallRecord, RequestTrace};
