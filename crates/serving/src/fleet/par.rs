//! Parallel fleet execution: the coordinator loop.
//!
//! Same event loop as [`FleetSim::run`], with engine stepping offloaded
//! to an [`agentsim_session::ShardPool`]. Ordering decisions stay on this
//! thread; step-done events keep their sequential queue rank through
//! reserved slots. Overload decisions (deadlines, cancellation, retries,
//! admission) also run here, against the pool's exact state mirrors, so
//! they are bit-identical to the sequential path. See the
//! [`agentsim_session::shard`] module docs for the full determinism
//! argument.

use agentsim_session::ShardPool;

use super::{Event, FleetReport, FleetSim};

impl FleetSim {
    pub(super) fn run_parallel(mut self, threads: usize) -> FleetReport {
        assert!(
            self.engines.iter().all(|e| !e.has_observer()),
            "parallel fleet execution does not support engine observers; use threads(1)"
        );
        let replicas = self.engines.len();
        let engines = std::mem::take(&mut self.engines);
        // The pool derives each replica's conservative-sync floor from
        // its own engine — heterogeneous pools have no single lookahead.
        let mut pool = ShardPool::spawn(engines, threads);
        loop {
            // Bank any resolutions that are already in, so the pop gate
            // below sees the tightest pending-kick window.
            while let Some(r) = pool.try_resolve() {
                self.queue
                    .push_reserved(r.slot, r.ends, Event::StepDone(r.replica));
            }
            let Some(key) = self.queue.peek_key() else {
                if !pool.has_pending() {
                    break;
                }
                let r = pool.wait_resolve();
                self.queue
                    .push_reserved(r.slot, r.ends, Event::StepDone(r.replica));
                continue;
            };
            if !pool.safe_before(key) {
                let r = pool.wait_resolve();
                self.queue
                    .push_reserved(r.slot, r.ends, Event::StepDone(r.replica));
                continue;
            }
            let (now, event) = self.queue.pop().expect("peeked head");
            match event {
                Event::Arrival(a) => self.on_arrival_with(Some(&mut pool), a, now),
                Event::StepDone(replica) => {
                    let out = pool.take_step(replica);
                    debug_assert!(out.migrations.is_empty(), "fleet replicas never migrate");
                    for completion in out.completions {
                        self.handle_completion(Some(&mut pool), replica, completion, now);
                    }
                }
                Event::ToolsDone { sid, epoch } => {
                    self.on_tools_done_event(Some(&mut pool), sid, epoch, now)
                }
                Event::DeadlineExpired { sid, epoch } => {
                    self.on_deadline(Some(&mut pool), sid, epoch, now)
                }
            }
            self.drain_all(Some(&mut pool), now);
            // Same kick sweep as the sequential loop: replicas that would
            // not form a step are skipped there too (start_step_if_idle
            // returns None), so restricting to wants_kick preserves the
            // queue's push order exactly.
            for replica in 0..replicas {
                if pool.wants_kick(replica) {
                    let slot = self.queue.reserve_slot();
                    pool.kick(replica, now, slot);
                }
            }
        }
        self.check_end_state();
        self.engines = pool.shutdown();
        self.into_report()
    }
}
