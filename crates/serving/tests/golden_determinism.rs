//! Golden determinism tests: pinned `ServingReport` fingerprints.
//!
//! These constants were captured from the straightforward (pre-optimized)
//! implementations of the engine step loop and the KV prefix hasher. The
//! optimized incremental paths must be *bit-identical* in simulation
//! semantics, so any drift in these fingerprints means an optimization
//! changed behaviour, not just speed.
//!
//! Floats are pinned via `f64::to_bits` — exact equality, no tolerance.

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::{EngineConfig, SchedulerPolicy};
use agentsim_serving::{ServingConfig, ServingReport, ServingSim, ServingWorkload};
use agentsim_workloads::Benchmark;

/// Everything a scheduling or caching change could plausibly disturb.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    completed: u64,
    solved: u64,
    p50_bits: u64,
    p95_bits: u64,
    kv_hit_bits: u64,
    preemptions: u64,
}

impl Fingerprint {
    fn of(r: &ServingReport) -> Self {
        Fingerprint {
            completed: r.completed,
            solved: r.solved,
            p50_bits: r.p50_s.to_bits(),
            p95_bits: r.p95_s.to_bits(),
            kv_hit_bits: r.kv_hit_rate.to_bits(),
            preemptions: r.preemptions,
        }
    }
}

fn workload(name: &str) -> ServingWorkload {
    match name {
        "chatbot" => ServingWorkload::Chatbot,
        "agent" => ServingWorkload::Agent {
            kind: AgentKind::React,
            benchmark: Benchmark::HotpotQa,
            config: AgentConfig::default_8b(),
        },
        "mixed" => ServingWorkload::Mixed {
            agent_fraction: 0.5,
            kind: AgentKind::React,
            benchmark: Benchmark::HotpotQa,
            config: AgentConfig::default_8b(),
        },
        other => panic!("unknown workload {other}"),
    }
}

fn run(name: &str, scheduler: SchedulerPolicy) -> Fingerprint {
    // High offered load so a real queue forms (schedulers diverge) and a
    // small KV pool so preemption fires (recompute paths are covered).
    let engine = EngineConfig::a100_llama8b()
        .with_scheduler(scheduler)
        .with_kv_fraction(0.04);
    let cfg = ServingConfig::new(workload(name), 8.0, 40)
        .seed(0xD5EED)
        .engine(engine);
    Fingerprint::of(&ServingSim::new(cfg).run())
}

macro_rules! golden {
    ($test:ident, $name:literal, $sched:expr, $completed:literal, $solved:literal,
     $p50:literal, $p95:literal, $hit:literal, $preempt:literal) => {
        #[test]
        fn $test() {
            let got = run($name, $sched);
            let want = Fingerprint {
                completed: $completed,
                solved: $solved,
                p50_bits: $p50,
                p95_bits: $p95,
                kv_hit_bits: $hit,
                preemptions: $preempt,
            };
            assert_eq!(
                got, want,
                "{} fingerprint drifted — an optimization changed simulation \
                 semantics (run `print_fingerprints` below to see all current \
                 values)",
                $name
            );
        }
    };
}

// Capture helper: `cargo test -p agentsim-serving --test golden_determinism \
// print_fingerprints -- --ignored --nocapture` prints the constants for all
// six combinations in the macro's argument order.
#[test]
#[ignore]
fn print_fingerprints() {
    for name in ["chatbot", "agent", "mixed"] {
        for (label, sched) in [
            ("Fcfs", SchedulerPolicy::Fcfs),
            ("DeepestFirst", SchedulerPolicy::DeepestFirst),
        ] {
            let f = run(name, sched);
            println!(
                "{name} {label}: {}, {}, {:#x}, {:#x}, {:#x}, {}",
                f.completed, f.solved, f.p50_bits, f.p95_bits, f.kv_hit_bits, f.preemptions
            );
        }
    }
}

golden!(
    chatbot_fcfs,
    "chatbot",
    SchedulerPolicy::Fcfs,
    40,
    0,
    0x401c9deca25529fe,
    0x40244d996744b2b7,
    0x3fbec4bf9c20d966,
    38
);
golden!(
    chatbot_deepest,
    "chatbot",
    SchedulerPolicy::DeepestFirst,
    40,
    0,
    0x401c9deca25529fe,
    0x402463c7f77af640,
    0x3fbeac2154dbf68a,
    40
);
golden!(
    agent_fcfs,
    "agent",
    SchedulerPolicy::Fcfs,
    40,
    12,
    0x4048e57403dddb12,
    0x405469a400fba882,
    0x3fe1583517fc19a0,
    27
);
golden!(
    agent_deepest,
    "agent",
    SchedulerPolicy::DeepestFirst,
    40,
    12,
    0x40481763f572de44,
    0x40539bfc5cdd50a9,
    0x3fe27cb834d0b8e0,
    29
);
golden!(
    mixed_fcfs,
    "mixed",
    SchedulerPolicy::Fcfs,
    40,
    5,
    0x40231e16f86a0989,
    0x40477ebf9830e3ce,
    0x3fdf7a590117ac40,
    29
);
golden!(
    mixed_deepest,
    "mixed",
    SchedulerPolicy::DeepestFirst,
    40,
    5,
    0x403710f345069a4e,
    0x4047394855da2728,
    0x3fe0033284ef4253,
    18
);
