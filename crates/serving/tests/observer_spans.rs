//! Acceptance tests for step-level observability: lifecycle spans must
//! reconstruct every request's latency exactly, agree with the engine's
//! own attribution, export valid Chrome-trace/JSONL documents, and cost
//! nothing in simulation semantics when attached.

use agentsim_kvcache::TokenBuf;
use agentsim_llm::{Engine, EngineConfig, LlmCompletion};
use agentsim_metrics::json;
use agentsim_serving::{
    chrome_trace, FleetConfig, FleetSim, Routing, ServingConfig, ServingSim, ServingWorkload,
    SpanRecorder,
};
use agentsim_simkit::{SimDuration, SimTime};

fn drain(engine: &mut Engine, mut now: SimTime) -> (Vec<LlmCompletion>, SimTime) {
    let mut done = Vec::new();
    while let Some(end) = engine.start_step_if_idle(now) {
        now = end;
        done.extend(engine.complete_step(now));
    }
    (done, now)
}

/// Spans agree with the engine's own per-completion attribution: the
/// prefill/decode components are identical, and queue + prefill + decode
/// + stall partitions the end-to-end latency with zero residue.
#[test]
fn spans_match_engine_attribution_exactly() {
    // Small KV pool so preemption and requeue paths are exercised too.
    let mut engine = Engine::new(EngineConfig::a100_llama8b().with_kv_fraction(0.03));
    let recorder = SpanRecorder::new();
    engine.set_observer(Box::new(recorder.clone()));
    for i in 0..8u64 {
        engine.submit(SimTime::ZERO, TokenBuf::from_segment(i, 900), 120, i);
    }
    let (completions, _) = drain(&mut engine, SimTime::ZERO);
    assert_eq!(completions.len(), 8);

    let spans = recorder.spans();
    assert!(spans.iter().map(|s| s.preemptions).sum::<u32>() > 0);
    for c in &completions {
        let s = &spans[c.id.0 as usize];
        assert_eq!(s.prefill_time, c.prefill_time, "{}", c.id);
        assert_eq!(s.decode_time, c.decode_time, "{}", c.id);
        assert_eq!(s.initial_queue_time(), c.queue_time(), "{}", c.id);
        assert_eq!(s.preemptions, c.preemptions, "{}", c.id);
        assert_eq!(s.output_tokens, c.output_tokens, "{}", c.id);
        assert_eq!(s.cached_tokens, c.cached_tokens, "{}", c.id);
        assert_eq!(s.e2e(), Some(c.e2e_latency()), "{}", c.id);
        // The partition invariant: nothing about the request's lifetime
        // is unaccounted for.
        assert_eq!(s.attributed(), c.e2e_latency(), "{}", c.id);
    }
}

/// The headline acceptance check: a serving run with an observer
/// attached yields a Chrome-trace JSON whose spans reconstruct, for
/// every request, queue/prefill/decode/stall wall time summing to the
/// request's end-to-end latency.
#[test]
fn serving_trace_spans_reconstruct_e2e_latency() {
    let cfg = ServingConfig::new(ServingWorkload::react_hotpotqa(), 2.0, 12).seed(11);
    let mut sim = ServingSim::new(cfg);
    let recorder = sim.attach_recorder();
    let report = sim.run();
    assert_eq!(report.completed, 12);

    let spans = recorder.spans();
    assert!(spans.len() >= 12, "agents issue at least one call each");
    for s in &spans {
        assert!(s.is_complete(), "{}", s.id);
        // Exact in integer microseconds…
        assert_eq!(s.attributed(), s.e2e().unwrap(), "{}", s.id);
        // …and therefore within float tolerance in seconds.
        let sum = (s.queue_time + s.prefill_time + s.decode_time + s.stall_time).as_secs_f64();
        assert!(
            (sum - s.e2e().unwrap().as_secs_f64()).abs() < 1e-9,
            "{}",
            s.id
        );
        // Segments tile [submitted, finished] with no gaps or overlaps.
        let mut cursor = s.submitted;
        for seg in &s.segments {
            assert_eq!(seg.start, cursor, "{}: gap before {:?}", s.id, seg.phase);
            assert!(seg.end > seg.start);
            cursor = seg.end;
        }
        assert_eq!(cursor, s.finished.unwrap(), "{}", s.id);
    }

    // Both exporters produce well-formed documents.
    json::validate(&recorder.chrome_trace()).unwrap();
    for line in recorder.events_jsonl().lines() {
        json::validate(line).unwrap_or_else(|e| panic!("{line}: {e}"));
    }
}

/// Attaching an observer must not perturb simulation results.
#[test]
fn observer_does_not_change_serving_results() {
    let cfg = || ServingConfig::new(ServingWorkload::react_hotpotqa(), 2.0, 10).seed(5);
    let plain = ServingSim::new(cfg()).run();
    let mut observed_sim = ServingSim::new(cfg());
    let _recorder = observed_sim.attach_recorder();
    let observed = observed_sim.run();
    assert_eq!(plain.completed, observed.completed);
    assert_eq!(plain.p50_s.to_bits(), observed.p50_s.to_bits());
    assert_eq!(plain.p95_s.to_bits(), observed.p95_s.to_bits());
    assert_eq!(plain.kv_hit_rate.to_bits(), observed.kv_hit_rate.to_bits());
    assert_eq!(plain.preemptions, observed.preemptions);
}

/// Fleet-wide tracing: one recorder per replica, merged into a single
/// trace with one process per replica; every replica's spans hold the
/// partition invariant.
#[test]
fn fleet_recorders_cover_every_replica() {
    let cfg = FleetConfig::react_hotpotqa(3, Routing::RoundRobin, 2.0, 12).seed(9);
    let mut sim = FleetSim::new(cfg);
    let recorders = sim.attach_recorders();
    assert_eq!(recorders.len(), 3);
    let report = sim.run();
    assert_eq!(report.completed, 12);

    let mut total_spans = 0;
    for r in &recorders {
        for s in r.spans() {
            assert!(s.is_complete());
            assert_eq!(s.attributed(), s.e2e().unwrap());
            total_spans += 1;
        }
    }
    // Round-robin spreads the calls: every replica saw some.
    assert!(recorders.iter().all(|r| !r.spans().is_empty()));
    assert!(total_spans >= 12);

    let labels: Vec<String> = (0..3).map(|i| format!("replica{i}")).collect();
    let pairs: Vec<(&str, &SpanRecorder)> = labels
        .iter()
        .map(String::as_str)
        .zip(recorders.iter())
        .collect();
    let trace = chrome_trace(&pairs);
    json::validate(&trace).unwrap();
    for pid in 0..3 {
        assert!(trace.contains(&format!("\"pid\":{pid}")));
    }
}

/// Sanity on phase semantics: at light load a request barely queues,
/// under a burst the same workload queues and stalls measurably.
#[test]
fn phase_split_reflects_load() {
    let light = {
        let mut sim =
            ServingSim::new(ServingConfig::new(ServingWorkload::Chatbot, 0.05, 6).seed(2));
        let r = sim.attach_recorder();
        sim.run();
        r
    };
    let heavy = {
        let mut sim =
            ServingSim::new(ServingConfig::new(ServingWorkload::Chatbot, 20.0, 6).seed(2));
        let r = sim.attach_recorder();
        sim.run();
        r
    };
    let total_queue = |r: &SpanRecorder| {
        r.spans()
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.queue_time)
    };
    assert!(
        total_queue(&heavy) > total_queue(&light),
        "burst arrivals must queue more: heavy {:?} vs light {:?}",
        total_queue(&heavy),
        total_queue(&light)
    );
}
