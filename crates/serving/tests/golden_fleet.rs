//! Golden determinism tests: pinned `FleetReport` fingerprints for all
//! three routing policies.
//!
//! Captured after the round-robin dispatch-order fix (first dispatch
//! lands on replica 0). The fleet simulator must stay bit-deterministic
//! for a given `(policy, seed)`: any drift here means a routing or
//! engine change altered simulation semantics, not just speed.
//!
//! Floats are pinned via `f64::to_bits` — exact equality, no tolerance.

use agentsim_serving::{FleetConfig, FleetReport, FleetSim, Routing};

#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    completed: u64,
    p50_bits: u64,
    p95_bits: u64,
    kv_hit_bits: u64,
    throughput_bits: u64,
}

impl Fingerprint {
    fn of(r: &FleetReport) -> Self {
        Fingerprint {
            completed: r.completed,
            p50_bits: r.p50_s.to_bits(),
            p95_bits: r.p95_s.to_bits(),
            kv_hit_bits: r.kv_hit_rate.to_bits(),
            throughput_bits: r.throughput.to_bits(),
        }
    }
}

fn run(routing: Routing) -> Fingerprint {
    // Enough load on 3 replicas that routing decisions interleave with
    // queueing; seed fixed so every policy sees identical arrivals.
    let cfg = FleetConfig::react_hotpotqa(3, routing, 4.0, 30).seed(0xF1E7);
    Fingerprint::of(&FleetSim::new(cfg).run())
}

macro_rules! golden {
    ($test:ident, $routing:expr, $completed:literal, $p50:literal, $p95:literal,
     $hit:literal, $tput:literal) => {
        #[test]
        fn $test() {
            let got = run($routing);
            let want = Fingerprint {
                completed: $completed,
                p50_bits: $p50,
                p95_bits: $p95,
                kv_hit_bits: $hit,
                throughput_bits: $tput,
            };
            assert_eq!(
                got, want,
                "{} fleet fingerprint drifted — a routing or engine change \
                 altered simulation semantics (run `print_fleet_fingerprints` \
                 to see current values)",
                $routing
            );
        }
    };
}

// Capture helper: `cargo test -p agentsim-serving --test golden_fleet \
// print_fleet_fingerprints -- --ignored --nocapture` prints the constants
// in the macro's argument order.
golden!(
    session_affinity,
    Routing::SessionAffinity,
    30,
    0x40269e2b6ae7d567,
    0x40318bfa6defc7a4,
    0x3febc9a23153bc01,
    0x3ff387d1986e41db
);
golden!(
    round_robin,
    Routing::RoundRobin,
    30,
    0x40257fc6759ab6d0,
    0x4034f7e5753a3ec0,
    0x3fe64fa1a26e9c5e,
    0x3ff0e2a52355c778
);
golden!(
    least_loaded,
    Routing::LeastLoaded,
    30,
    0x4023ead948dc11e4,
    0x40333586ca89fc6e,
    0x3fe6aefbf64ebe9a,
    0x3ff34593cf11fc89
);

#[test]
#[ignore]
fn print_fleet_fingerprints() {
    for routing in [
        Routing::SessionAffinity,
        Routing::RoundRobin,
        Routing::LeastLoaded,
    ] {
        let f = run(routing);
        println!(
            "{routing}: {}, {:#x}, {:#x}, {:#x}, {:#x}",
            f.completed, f.p50_bits, f.p95_bits, f.kv_hit_bits, f.throughput_bits
        );
    }
}
