//! Differential tests for the parallel fleet driver: every thread count
//! must reproduce the sequential run **bit-for-bit**, across routing
//! policies, client models, and overload policies.
//!
//! This is the contract `FleetConfig::threads` promises — conservative
//! sync plus reserved queue slots make thread count a pure performance
//! knob, even with deadlines cancelling in-flight work, retries
//! re-issuing turns, and adaptive admission queueing dispatches. Floats
//! are compared via `f64::to_bits`: exact equality, no tolerance.

use agentsim_kvcache::EvictionPolicy;
use agentsim_llm::{EngineConfig, OffloadConfig};
use agentsim_serving::{
    AdmissionPolicy, CascadePolicy, FleetConfig, FleetReport, FleetSim, OverloadPolicy,
    QueueDiscipline, ReplicaPool, RetryPolicy, Routing,
};
use agentsim_session::ClientModel;
use agentsim_simkit::SimDuration;

/// Every externally visible number a fleet run produces, floats pinned
/// to their bit patterns.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    completed: u64,
    solved: u64,
    escalated: u64,
    max_live_sessions: u64,
    attempts: u64,
    retries: u64,
    abandoned: u64,
    late: u64,
    cancelled: u64,
    dropped: u64,
    p50_bits: u64,
    p95_bits: u64,
    kv_hit_bits: u64,
    energy_bits: u64,
    throughput_bits: u64,
    goodput_bits: u64,
    wasted_bits: u64,
    ttft_p50_bits: u64,
    ttft_p95_bits: u64,
    tpot_p50_bits: u64,
    tpot_p99_bits: u64,
    offload_demoted: u64,
    offload_promoted: u64,
    offload_promoted_tokens: u64,
    offload_dropped: u64,
    offload_host_bytes: u64,
    offload_nvme_bytes: u64,
    utilization_bits: Vec<u64>,
}

impl Fingerprint {
    fn of(r: &FleetReport) -> Self {
        Fingerprint {
            completed: r.completed,
            solved: r.solved,
            escalated: r.escalated,
            max_live_sessions: r.max_live_sessions,
            attempts: r.attempts,
            retries: r.retries,
            abandoned: r.abandoned,
            late: r.late,
            cancelled: r.cancelled,
            dropped: r.dropped,
            p50_bits: r.p50_s.to_bits(),
            p95_bits: r.p95_s.to_bits(),
            kv_hit_bits: r.kv_hit_rate.to_bits(),
            energy_bits: r.energy_wh.to_bits(),
            throughput_bits: r.throughput.to_bits(),
            goodput_bits: r.goodput.to_bits(),
            wasted_bits: r.wasted_gpu_s.to_bits(),
            ttft_p50_bits: r.ttft_p50_s.to_bits(),
            ttft_p95_bits: r.ttft_p95_s.to_bits(),
            tpot_p50_bits: r.tpot_p50_s.to_bits(),
            tpot_p99_bits: r.tpot_p99_s.to_bits(),
            offload_demoted: r.offload_demoted_blocks,
            offload_promoted: r.offload_promoted_blocks,
            offload_promoted_tokens: r.offload_promoted_tokens,
            offload_dropped: r.offload_dropped_blocks,
            offload_host_bytes: r.offload_host_bytes,
            offload_nvme_bytes: r.offload_nvme_bytes,
            utilization_bits: r.utilization.iter().map(|u| u.to_bits()).collect(),
        }
    }
}

/// A replayable arrival trace with bursts and lulls (gaps cycle through
/// a fixed pattern), long enough to keep four replicas contended.
fn trace_gaps() -> Vec<SimDuration> {
    let pattern = [0.05, 0.40, 0.10, 0.02, 0.65, 0.15];
    (0..36)
        .map(|i| SimDuration::from_secs_f64(pattern[i % pattern.len()]))
        .collect()
}

fn clients() -> Vec<(&'static str, ClientModel)> {
    vec![
        ("open-loop", ClientModel::OpenLoopPoisson),
        (
            "closed-loop",
            ClientModel::ClosedLoop {
                concurrency: 6,
                think_time: SimDuration::from_secs_f64(0.5),
            },
        ),
        (
            "trace-replay",
            ClientModel::TraceReplay { gaps: trace_gaps() },
        ),
    ]
}

/// Runs the full `routing × client` grid sequentially, then again at
/// `threads`, and demands identical fingerprints cell by cell.
fn assert_threads_match_sequential(threads: u32) {
    for routing in [
        Routing::SessionAffinity,
        Routing::RoundRobin,
        Routing::LeastLoaded,
    ] {
        for (client_name, client) in clients() {
            let cfg = FleetConfig::react_hotpotqa(4, routing, 3.0, 36)
                .seed(0xD1FF)
                .client(client);
            let sequential = Fingerprint::of(&FleetSim::new(cfg.clone()).run());
            let parallel = Fingerprint::of(&FleetSim::new(cfg.threads(threads)).run());
            assert_eq!(
                sequential, parallel,
                "threads({threads}) diverged from sequential under {routing} / {client_name}"
            );
        }
    }
}

/// Overload policies that exercise every coordinator-side mechanism:
/// deadlines, server-side cancellation, retries with backoff, adaptive
/// admission, and the non-FIFO queue disciplines.
fn overload_policies() -> Vec<(&'static str, OverloadPolicy)> {
    vec![
        (
            "deadline-late",
            OverloadPolicy::none().deadline(SimDuration::from_secs(18)),
        ),
        (
            "deadline-cancel",
            OverloadPolicy::none()
                .deadline(SimDuration::from_secs(18))
                .cancel_on_expiry(),
        ),
        (
            "retry-aimd-lifo",
            OverloadPolicy::none()
                .deadline(SimDuration::from_secs(18))
                .cancel_on_expiry()
                .retry(RetryPolicy::standard())
                .admission(AdmissionPolicy::aimd_default())
                .discipline(QueueDiscipline::Lifo),
        ),
        (
            "retry-aimd-deadline-drop",
            OverloadPolicy::none()
                .deadline(SimDuration::from_secs(18))
                .cancel_on_expiry()
                .retry(RetryPolicy::standard())
                .admission(AdmissionPolicy::Aimd {
                    initial: 4.0,
                    min: 1.0,
                    max: 32.0,
                    increase: 1.0,
                    decrease: 0.5,
                })
                .discipline(QueueDiscipline::DeadlineDrop),
        ),
    ]
}

/// The overload grid at `threads`: cancellation acks, retry arrivals,
/// and dispatch-queue decisions must all replay identically.
fn assert_overload_threads_match_sequential(threads: u32) {
    for (policy_name, policy) in overload_policies() {
        for routing in [Routing::SessionAffinity, Routing::LeastLoaded] {
            let cfg = FleetConfig::react_hotpotqa(4, routing, 6.0, 36)
                .seed(0xD1FF)
                .overload(policy.clone());
            let sequential = Fingerprint::of(&FleetSim::new(cfg.clone()).run());
            let parallel = Fingerprint::of(&FleetSim::new(cfg.threads(threads)).run());
            assert_eq!(
                sequential, parallel,
                "threads({threads}) diverged from sequential under {routing} / {policy_name}"
            );
        }
    }
}

/// KV offload rows: tiered memory with real demote/promote traffic and —
/// under invocation-distance — session-layer hints flowing through the
/// shard channels. Closed-loop conversation carry makes cross-turn
/// contexts large enough to force spills on the shrunken pool.
fn offload_policies() -> Vec<(&'static str, OffloadConfig)> {
    vec![
        ("offload-lru", OffloadConfig::tiers(2048, 8192)),
        (
            "offload-distance",
            OffloadConfig::tiers(2048, 8192).with_policy(EvictionPolicy::InvocationDistance),
        ),
        (
            "offload-distance-free-links",
            OffloadConfig::tiers(4096, 0)
                .with_policy(EvictionPolicy::InvocationDistance)
                .with_free_links(),
        ),
    ]
}

fn assert_offload_threads_match_sequential(threads: u32) {
    for (policy_name, offload) in offload_policies() {
        let cfg = FleetConfig::react_hotpotqa(4, Routing::SessionAffinity, 3.0, 32)
            .seed(0xD1FF)
            .client(ClientModel::ClosedLoop {
                concurrency: 8,
                think_time: SimDuration::from_secs(20),
            })
            .with_context_carry()
            .map_engines(|e| e.with_kv_fraction(0.15).with_offload(offload.clone()));
        let sequential = FleetSim::new(cfg.clone()).run();
        assert!(
            sequential.offload_demoted_blocks > 0,
            "{policy_name}: the row must actually exercise the tiers"
        );
        let sequential = Fingerprint::of(&sequential);
        let parallel = Fingerprint::of(&FleetSim::new(cfg.threads(threads)).run());
        assert_eq!(
            sequential, parallel,
            "threads({threads}) diverged from sequential under {policy_name}"
        );
    }
}

/// Heterogeneous fleets with cascade routing: mixed per-replica step
/// floors exercise the per-replica conservative-sync gate, and
/// escalations re-open sessions mid-run on a different tier. Every
/// cascade mechanism (inert two-pool, pure failure-driven, aptitude
/// pre-screen + retry climb) must replay bit-for-bit.
fn cascade_policies() -> Vec<(&'static str, CascadePolicy)> {
    vec![
        ("cascade-none", CascadePolicy::none()),
        (
            "cascade-escalate-only",
            CascadePolicy {
                escalate_on_failure: true,
                aptitude_margin: None,
                max_escalations: u32::MAX,
                escalate_retries: false,
            },
        ),
        ("cascade-standard", CascadePolicy::standard()),
    ]
}

fn assert_cascade_threads_match_sequential(threads: u32) {
    for (policy_name, cascade) in cascade_policies() {
        for routing in [Routing::SessionAffinity, Routing::LeastLoaded] {
            let cfg = FleetConfig::pooled(
                vec![
                    ReplicaPool::new(EngineConfig::a100_llama8b(), 3),
                    ReplicaPool::new(EngineConfig::h100x4_llama70b(), 1),
                ],
                routing,
                3.0,
                36,
            )
            .seed(0xD1FF)
            .cascade(cascade);
            let sequential = Fingerprint::of(&FleetSim::new(cfg.clone()).run());
            let parallel = Fingerprint::of(&FleetSim::new(cfg.threads(threads)).run());
            assert_eq!(
                sequential, parallel,
                "threads({threads}) diverged from sequential under {routing} / {policy_name}"
            );
        }
    }
}

#[test]
fn two_threads_are_bit_identical() {
    assert_threads_match_sequential(2);
}

#[test]
fn four_threads_are_bit_identical() {
    assert_threads_match_sequential(4);
}

#[test]
fn eight_threads_are_bit_identical() {
    // More threads than the 4 replicas: the pool must clamp and still
    // agree bit-for-bit.
    assert_threads_match_sequential(8);
}

#[test]
fn two_threads_with_overload_are_bit_identical() {
    assert_overload_threads_match_sequential(2);
}

#[test]
fn four_threads_with_overload_are_bit_identical() {
    assert_overload_threads_match_sequential(4);
}

#[test]
fn eight_threads_with_overload_are_bit_identical() {
    assert_overload_threads_match_sequential(8);
}

#[test]
fn two_threads_with_offload_are_bit_identical() {
    assert_offload_threads_match_sequential(2);
}

#[test]
fn four_threads_with_offload_are_bit_identical() {
    assert_offload_threads_match_sequential(4);
}

#[test]
fn eight_threads_with_offload_are_bit_identical() {
    assert_offload_threads_match_sequential(8);
}

#[test]
fn two_threads_with_cascade_are_bit_identical() {
    assert_cascade_threads_match_sequential(2);
}

#[test]
fn four_threads_with_cascade_are_bit_identical() {
    assert_cascade_threads_match_sequential(4);
}

#[test]
fn eight_threads_with_cascade_are_bit_identical() {
    assert_cascade_threads_match_sequential(8);
}

#[test]
fn one_replica_per_worker_matches() {
    // Minimal shard layout: every worker owns exactly one replica, so
    // all cross-replica ordering flows through the coordinator.
    let cfg = FleetConfig::react_hotpotqa(2, Routing::LeastLoaded, 2.5, 20).seed(7);
    let sequential = Fingerprint::of(&FleetSim::new(cfg.clone()).run());
    let parallel = Fingerprint::of(&FleetSim::new(cfg.threads(2)).run());
    assert_eq!(sequential, parallel);
}
