//! Differential tests for the parallel fleet driver: every thread count
//! must reproduce the sequential run **bit-for-bit**, across routing
//! policies and client models.
//!
//! This is the contract `FleetConfig::threads` promises — conservative
//! sync plus reserved queue slots make thread count a pure performance
//! knob. Floats are compared via `f64::to_bits`: exact equality, no
//! tolerance.

use agentsim_serving::{FleetConfig, FleetReport, FleetSim, Routing};
use agentsim_session::ClientModel;
use agentsim_simkit::SimDuration;

/// Every externally visible number a fleet run produces, floats pinned
/// to their bit patterns.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    completed: u64,
    max_live_sessions: u64,
    p50_bits: u64,
    p95_bits: u64,
    kv_hit_bits: u64,
    energy_bits: u64,
    throughput_bits: u64,
    utilization_bits: Vec<u64>,
}

impl Fingerprint {
    fn of(r: &FleetReport) -> Self {
        Fingerprint {
            completed: r.completed,
            max_live_sessions: r.max_live_sessions,
            p50_bits: r.p50_s.to_bits(),
            p95_bits: r.p95_s.to_bits(),
            kv_hit_bits: r.kv_hit_rate.to_bits(),
            energy_bits: r.energy_wh.to_bits(),
            throughput_bits: r.throughput.to_bits(),
            utilization_bits: r.utilization.iter().map(|u| u.to_bits()).collect(),
        }
    }
}

/// A replayable arrival trace with bursts and lulls (gaps cycle through
/// a fixed pattern), long enough to keep four replicas contended.
fn trace_gaps() -> Vec<SimDuration> {
    let pattern = [0.05, 0.40, 0.10, 0.02, 0.65, 0.15];
    (0..36)
        .map(|i| SimDuration::from_secs_f64(pattern[i % pattern.len()]))
        .collect()
}

fn clients() -> Vec<(&'static str, ClientModel)> {
    vec![
        ("open-loop", ClientModel::OpenLoopPoisson),
        (
            "closed-loop",
            ClientModel::ClosedLoop {
                concurrency: 6,
                think_time: SimDuration::from_secs_f64(0.5),
            },
        ),
        (
            "trace-replay",
            ClientModel::TraceReplay { gaps: trace_gaps() },
        ),
    ]
}

/// Runs the full `routing × client` grid sequentially, then again at
/// `threads`, and demands identical fingerprints cell by cell.
fn assert_threads_match_sequential(threads: u32) {
    for routing in [
        Routing::SessionAffinity,
        Routing::RoundRobin,
        Routing::LeastLoaded,
    ] {
        for (client_name, client) in clients() {
            let cfg = FleetConfig::react_hotpotqa(4, routing, 3.0, 36)
                .seed(0xD1FF)
                .client(client);
            let sequential = Fingerprint::of(&FleetSim::new(cfg.clone()).run());
            let parallel = Fingerprint::of(&FleetSim::new(cfg.threads(threads)).run());
            assert_eq!(
                sequential, parallel,
                "threads({threads}) diverged from sequential under {routing} / {client_name}"
            );
        }
    }
}

#[test]
fn two_threads_are_bit_identical() {
    assert_threads_match_sequential(2);
}

#[test]
fn four_threads_are_bit_identical() {
    assert_threads_match_sequential(4);
}

#[test]
fn eight_threads_are_bit_identical() {
    // More threads than the 4 replicas: the pool must clamp and still
    // agree bit-for-bit.
    assert_threads_match_sequential(8);
}

#[test]
fn one_replica_per_worker_matches() {
    // Minimal shard layout: every worker owns exactly one replica, so
    // all cross-replica ordering flows through the coordinator.
    let cfg = FleetConfig::react_hotpotqa(2, Routing::LeastLoaded, 2.5, 20).seed(7);
    let sequential = Fingerprint::of(&FleetSim::new(cfg.clone()).run());
    let parallel = Fingerprint::of(&FleetSim::new(cfg.threads(2)).run());
    assert_eq!(sequential, parallel);
}
