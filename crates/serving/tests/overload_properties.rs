//! Property tests for the overload-resilience layer: accounting
//! identities that must hold for *every* policy/load combination, not
//! just the tuned experiment points.

use agentsim_serving::{
    AdmissionPolicy, FleetConfig, FleetSim, OverloadPolicy, QueueDiscipline, RetryPolicy, Routing,
};
use agentsim_simkit::SimDuration;

fn base(qps: f64, turns: u64) -> FleetConfig {
    FleetConfig::react_hotpotqa(2, Routing::LeastLoaded, qps, turns).seed(0xBEEF)
}

fn policies() -> Vec<(&'static str, OverloadPolicy)> {
    let deadline = SimDuration::from_secs(20);
    vec![
        ("none", OverloadPolicy::none()),
        ("deadline-late", OverloadPolicy::none().deadline(deadline)),
        (
            "deadline-cancel",
            OverloadPolicy::none().deadline(deadline).cancel_on_expiry(),
        ),
        (
            "full-adaptive",
            OverloadPolicy::none()
                .deadline(deadline)
                .cancel_on_expiry()
                .retry(RetryPolicy::standard())
                .admission(AdmissionPolicy::aimd_default())
                .discipline(QueueDiscipline::DeadlineDrop),
        ),
    ]
}

/// Goodput counts a subset of the turns throughput counts, over the same
/// makespan — it can never exceed it.
#[test]
fn goodput_never_exceeds_throughput() {
    for qps in [1.0, 4.0, 10.0] {
        for (name, policy) in policies() {
            let r = FleetSim::new(base(qps, 24).overload(policy)).run();
            assert!(
                r.goodput <= r.throughput,
                "{name} @ {qps} qps: goodput {} > throughput {}",
                r.goodput,
                r.throughput
            );
            assert!(r.wasted_gpu_s >= 0.0);
        }
    }
}

/// Retries re-deliver the same logical turn; however many attempts it
/// takes, each turn resolves exactly once and each attempt ends exactly
/// one way.
#[test]
fn retries_never_double_count_completions() {
    let r = FleetSim::new(
        base(8.0, 30).overload(
            OverloadPolicy::none()
                .deadline(SimDuration::from_secs(20))
                .cancel_on_expiry()
                .retry(RetryPolicy::standard()),
        ),
    )
    .run();
    assert!(r.retries > 0, "the deadline must bind at this load");
    assert_eq!(r.completed + r.abandoned, 30, "each turn resolves once");
    assert_eq!(r.attempts, 30 + r.retries);
    assert_eq!(r.attempts, r.completed + r.late + r.cancelled);
    assert_eq!(r.late, 0, "cancelled attempts cannot finish late");
}

/// With cancellation active, every observed request span — completed or
/// abandoned — still closes with its queue/prefill/decode/stall phases
/// telescoping exactly to its end-to-end time.
#[test]
fn span_partition_telescopes_under_cancellation() {
    let mut sim = FleetSim::new(
        base(8.0, 30).overload(
            OverloadPolicy::none()
                .deadline(SimDuration::from_secs(20))
                .cancel_on_expiry(),
        ),
    );
    let recorders = sim.attach_recorders();
    let report = sim.run();
    assert!(report.cancelled > 0, "the deadline must bind at this load");
    let mut abandoned_spans = 0u64;
    let mut total_spans = 0u64;
    for recorder in &recorders {
        for span in recorder.spans() {
            total_spans += 1;
            assert!(span.is_complete(), "span {} never closed", span.id);
            let e2e = span.e2e().expect("complete span has e2e");
            assert_eq!(
                span.attributed(),
                e2e,
                "span {} phases must telescope to its lifetime",
                span.id
            );
            if span.abandoned {
                abandoned_spans += 1;
            }
        }
    }
    assert!(total_spans > 0);
    assert!(
        abandoned_spans > 0,
        "cancelled attempts must surface as abandoned spans"
    );
}
