//! Property-based tests for the KV block manager: under arbitrary
//! sequences of allocate / append / free operations, the pool never
//! leaks, refcounts stay consistent, and prefix caching never changes
//! *which* work completes — only how much of it is reused.

use agentsim_kvcache::{AllocError, KvBlockManager, KvConfig, SeqHandle, TokenBuf};
use agentsim_simkit::SimTime;
use proptest::prelude::*;

/// A scripted operation on the manager.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate a prompt built from (seed, len) segments.
    Alloc { seed: u64, tokens: u32 },
    /// Append `n` generated tokens to the `k`-th live sequence.
    Append { k: usize, n: u8 },
    /// Free the `k`-th live sequence.
    Free { k: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..6, 1u32..200).prop_map(|(seed, tokens)| Op::Alloc { seed, tokens }),
        (0usize..8, 1u8..40).prop_map(|(k, n)| Op::Append { k, n }),
        (0usize..8).prop_map(|k| Op::Free { k }),
    ]
}

fn run_script(ops: &[Op], num_blocks: u32, prefix_caching: bool) -> (KvBlockManager, u64) {
    let mut mgr = KvBlockManager::new(KvConfig {
        num_blocks,
        block_size: 16,
        prefix_caching,
    });
    let mut live: Vec<SeqHandle> = Vec::new();
    let mut clock = 0u64;
    let mut total_appended = 0u64;
    for op in ops {
        clock += 1;
        let now = SimTime::from_micros(clock);
        match op {
            Op::Alloc { seed, tokens } => {
                let prompt = TokenBuf::from_segment(*seed, *tokens);
                match mgr.allocate(&prompt, now) {
                    Ok(h) => live.push(h),
                    Err(AllocError::Insufficient { .. }) => {}
                    Err(e) => panic!("unexpected alloc error: {e}"),
                }
            }
            Op::Append { k, n } => {
                if live.is_empty() {
                    continue;
                }
                let h = live[k % live.len()];
                for i in 0..*n {
                    match mgr.append_token(h, (clock << 8) ^ i as u64, now) {
                        Ok(()) => total_appended += 1,
                        Err(AllocError::Insufficient { .. }) => break,
                        Err(e) => panic!("unexpected append error: {e}"),
                    }
                }
            }
            Op::Free { k } => {
                if live.is_empty() {
                    continue;
                }
                let h = live.swap_remove(k % live.len());
                mgr.free(h, now);
            }
        }
        mgr.check_invariants()
            .unwrap_or_else(|e| panic!("invariant broken after {op:?}: {e}"));
    }
    // Drain.
    for h in live {
        clock += 1;
        mgr.free(h, SimTime::from_micros(clock));
    }
    mgr.check_invariants().expect("invariants after drain");
    (mgr, total_appended)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_under_arbitrary_scripts(
        ops in prop::collection::vec(op_strategy(), 1..80),
        caching in any::<bool>(),
    ) {
        let (mgr, _) = run_script(&ops, 64, caching);
        // After draining, no block is referenced.
        prop_assert_eq!(mgr.live_sequences(), 0);
        prop_assert_eq!(mgr.used_blocks(), 0);
        // Every block is free or evictable.
        prop_assert_eq!(mgr.free_blocks() + mgr.evictable_blocks(), 64);
    }

    #[test]
    fn caching_never_loses_blocks(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        // The same script with caching on and off keeps the same total
        // block count and admits at least as many hit tokens with caching.
        let (on, _) = run_script(&ops, 48, true);
        let (off, _) = run_script(&ops, 48, false);
        prop_assert!(on.stats().hit_tokens >= off.stats().hit_tokens);
        prop_assert_eq!(off.stats().hit_tokens, 0);
    }

    #[test]
    fn repeated_identical_prompts_converge_to_high_hit_rates(
        seed in 0u64..100,
        len in 32u32..400,
        repeats in 2usize..8,
    ) {
        let mut mgr = KvBlockManager::new(KvConfig {
            num_blocks: 256,
            block_size: 16,
            prefix_caching: true,
        });
        let prompt = TokenBuf::from_segment(seed, len);
        let mut last_cached = 0;
        for i in 0..repeats {
            let now = SimTime::from_micros(i as u64 + 1);
            let h = mgr.allocate(&prompt, now).expect("fits");
            last_cached = mgr.cached_tokens(&h);
            mgr.free(h, now);
        }
        // All full blocks hit (minus the recompute-last-token rule).
        let full_blocks = (len as usize / 16) * 16;
        prop_assert_eq!(last_cached, full_blocks.min(len as usize - 1));
    }

    #[test]
    fn without_caching_nothing_is_ever_evicted(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        // With prefix caching off, freed blocks return straight to the
        // free list, so the LRU never has anything to evict.
        let (mgr, _) = run_script(&ops, 32, false);
        prop_assert_eq!(mgr.stats().evictions, 0);
        prop_assert_eq!(mgr.evictable_blocks(), 0);
    }

    #[test]
    fn scripts_are_deterministic(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let (a, appended_a) = run_script(&ops, 48, true);
        let (b, appended_b) = run_script(&ops, 48, true);
        prop_assert_eq!(appended_a, appended_b);
        prop_assert_eq!(a.stats().hit_tokens, b.stats().hit_tokens);
        prop_assert_eq!(a.stats().evictions, b.stats().evictions);
        prop_assert_eq!(a.free_blocks(), b.free_blocks());
    }
}
