//! Property-based tests for the KV block manager: under arbitrary
//! sequences of allocate / append / free operations, the pool never
//! leaks, refcounts stay consistent, and prefix caching never changes
//! *which* work completes — only how much of it is reused.

use agentsim_kvcache::{
    AllocError, EvictionPolicy, KvBlockManager, KvConfig, OffloadSpec, SeqHandle, Tier, TierDir,
    TierTransfer, TokenBuf,
};
use agentsim_simkit::SimTime;
use proptest::prelude::*;

/// A scripted operation on the manager.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate a prompt built from (seed, len) segments.
    Alloc { seed: u64, tokens: u32 },
    /// Append `n` generated tokens to the `k`-th live sequence.
    Append { k: usize, n: u8 },
    /// Free the `k`-th live sequence.
    Free { k: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..6, 1u32..200).prop_map(|(seed, tokens)| Op::Alloc { seed, tokens }),
        (0usize..8, 1u8..40).prop_map(|(k, n)| Op::Append { k, n }),
        (0usize..8).prop_map(|k| Op::Free { k }),
    ]
}

fn run_script(ops: &[Op], num_blocks: u32, prefix_caching: bool) -> (KvBlockManager, u64) {
    let mut mgr = KvBlockManager::new(KvConfig {
        num_blocks,
        block_size: 16,
        prefix_caching,
    });
    let mut live: Vec<SeqHandle> = Vec::new();
    let mut clock = 0u64;
    let mut total_appended = 0u64;
    for op in ops {
        clock += 1;
        let now = SimTime::from_micros(clock);
        match op {
            Op::Alloc { seed, tokens } => {
                let prompt = TokenBuf::from_segment(*seed, *tokens);
                match mgr.allocate(&prompt, now) {
                    Ok(h) => live.push(h),
                    Err(AllocError::Insufficient { .. }) => {}
                    Err(e) => panic!("unexpected alloc error: {e}"),
                }
            }
            Op::Append { k, n } => {
                if live.is_empty() {
                    continue;
                }
                let h = live[k % live.len()];
                for i in 0..*n {
                    match mgr.append_token(h, (clock << 8) ^ i as u64, now) {
                        Ok(()) => total_appended += 1,
                        Err(AllocError::Insufficient { .. }) => break,
                        Err(e) => panic!("unexpected append error: {e}"),
                    }
                }
            }
            Op::Free { k } => {
                if live.is_empty() {
                    continue;
                }
                let h = live.swap_remove(k % live.len());
                mgr.free(h, now);
            }
        }
        mgr.check_invariants()
            .unwrap_or_else(|e| panic!("invariant broken after {op:?}: {e}"));
    }
    // Drain.
    for h in live {
        clock += 1;
        mgr.free(h, SimTime::from_micros(clock));
    }
    mgr.check_invariants().expect("invariants after drain");
    (mgr, total_appended)
}

/// A scripted operation against a manager with offload tiers attached:
/// the base ops plus next-invocation hints from the "session layer".
#[derive(Debug, Clone)]
enum TieredOp {
    Base(Op),
    /// Hint the `k`-th live sequence's prompt chain back `delta_ms` from now.
    Hint {
        k: usize,
        delta_ms: u32,
    },
}

fn tiered_op_strategy() -> impl Strategy<Value = TieredOp> {
    prop_oneof![
        op_strategy().prop_map(TieredOp::Base),
        op_strategy().prop_map(TieredOp::Base),
        op_strategy().prop_map(TieredOp::Base),
        (0usize..8, 1u32..120_000).prop_map(|(k, delta_ms)| TieredOp::Hint { k, delta_ms }),
    ]
}

/// Ledger of everything the tiers reported moving, reconciled against
/// the stats counters at the end of the run.
#[derive(Debug, Default, PartialEq, Eq)]
struct TransferLedger {
    demoted_host: u64,
    demoted_nvme: u64,
    promoted_host: u64,
    promoted_nvme: u64,
}

impl TransferLedger {
    fn absorb(&mut self, events: &[TierTransfer]) {
        for e in events {
            let slot = match (e.tier, e.dir) {
                (Tier::Host, TierDir::Demote) => &mut self.demoted_host,
                (Tier::Nvme, TierDir::Demote) => &mut self.demoted_nvme,
                (Tier::Host, TierDir::Promote) => &mut self.promoted_host,
                (Tier::Nvme, TierDir::Promote) => &mut self.promoted_nvme,
            };
            *slot += e.blocks as u64;
        }
    }
}

/// Like [`run_script`], but with offload tiers attached; drains the
/// transfer queue after every op (as the engine does) and returns the
/// reconciliation ledger alongside the manager.
fn run_tiered_script(
    ops: &[TieredOp],
    num_blocks: u32,
    spec: Option<OffloadSpec>,
) -> (KvBlockManager, TransferLedger) {
    let mut mgr = KvBlockManager::new(KvConfig {
        num_blocks,
        block_size: 16,
        prefix_caching: true,
    });
    if let Some(spec) = spec {
        mgr.enable_offload(spec);
    }
    let mut live: Vec<(SeqHandle, TokenBuf)> = Vec::new();
    let mut clock = 0u64;
    let mut ledger = TransferLedger::default();
    let mut events = Vec::new();
    for op in ops {
        clock += 1;
        let now = SimTime::from_micros(clock * 1_000);
        match op {
            TieredOp::Base(Op::Alloc { seed, tokens }) => {
                let prompt = TokenBuf::from_segment(*seed, *tokens);
                match mgr.allocate(&prompt, now) {
                    Ok(h) => live.push((h, prompt)),
                    Err(AllocError::Insufficient { .. }) => {}
                    Err(e) => panic!("unexpected alloc error: {e}"),
                }
            }
            TieredOp::Base(Op::Append { k, n }) => {
                if live.is_empty() {
                    continue;
                }
                let h = live[k % live.len()].0;
                for i in 0..*n {
                    match mgr.append_token(h, (clock << 8) ^ i as u64, now) {
                        Ok(()) => {}
                        Err(AllocError::Insufficient { .. }) => break,
                        Err(e) => panic!("unexpected append error: {e}"),
                    }
                }
            }
            TieredOp::Base(Op::Free { k }) => {
                if live.is_empty() {
                    continue;
                }
                let (h, _) = live.swap_remove(k % live.len());
                mgr.free(h, now);
            }
            TieredOp::Hint { k, delta_ms } => {
                if live.is_empty() {
                    continue;
                }
                let buf = &live[k % live.len()].1;
                let hashes: Vec<u64> = buf.chain_hashes_cached(16).to_vec();
                let at = now + agentsim_simkit::SimDuration::from_millis(*delta_ms as u64);
                mgr.hint_next_use(&hashes, now, at);
            }
        }
        mgr.check_invariants()
            .unwrap_or_else(|e| panic!("invariant broken after {op:?}: {e}"));
        mgr.take_tier_transfers(&mut events);
        ledger.absorb(&events);
        events.clear();
    }
    for (h, _) in live {
        clock += 1;
        mgr.free(h, SimTime::from_micros(clock * 1_000));
    }
    mgr.check_invariants().expect("invariants after drain");
    mgr.take_tier_transfers(&mut events);
    ledger.absorb(&events);
    (mgr, ledger)
}

fn spec(host: u32, nvme: u32, distance: bool) -> OffloadSpec {
    OffloadSpec {
        host_blocks: host,
        nvme_blocks: nvme,
        policy: if distance {
            EvictionPolicy::InvocationDistance
        } else {
            EvictionPolicy::Lru
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_under_arbitrary_scripts(
        ops in prop::collection::vec(op_strategy(), 1..80),
        caching in any::<bool>(),
    ) {
        let (mgr, _) = run_script(&ops, 64, caching);
        // After draining, no block is referenced.
        prop_assert_eq!(mgr.live_sequences(), 0);
        prop_assert_eq!(mgr.used_blocks(), 0);
        // Every block is free or evictable.
        prop_assert_eq!(mgr.free_blocks() + mgr.evictable_blocks(), 64);
    }

    #[test]
    fn caching_never_loses_blocks(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        // The same script with caching on and off keeps the same total
        // block count and admits at least as many hit tokens with caching.
        let (on, _) = run_script(&ops, 48, true);
        let (off, _) = run_script(&ops, 48, false);
        prop_assert!(on.stats().hit_tokens >= off.stats().hit_tokens);
        prop_assert_eq!(off.stats().hit_tokens, 0);
    }

    #[test]
    fn repeated_identical_prompts_converge_to_high_hit_rates(
        seed in 0u64..100,
        len in 32u32..400,
        repeats in 2usize..8,
    ) {
        let mut mgr = KvBlockManager::new(KvConfig {
            num_blocks: 256,
            block_size: 16,
            prefix_caching: true,
        });
        let prompt = TokenBuf::from_segment(seed, len);
        let mut last_cached = 0;
        for i in 0..repeats {
            let now = SimTime::from_micros(i as u64 + 1);
            let h = mgr.allocate(&prompt, now).expect("fits");
            last_cached = mgr.cached_tokens(&h);
            mgr.free(h, now);
        }
        // All full blocks hit (minus the recompute-last-token rule).
        let full_blocks = (len as usize / 16) * 16;
        prop_assert_eq!(last_cached, full_blocks.min(len as usize - 1));
    }

    #[test]
    fn without_caching_nothing_is_ever_evicted(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        // With prefix caching off, freed blocks return straight to the
        // free list, so the LRU never has anything to evict.
        let (mgr, _) = run_script(&ops, 32, false);
        prop_assert_eq!(mgr.stats().evictions, 0);
        prop_assert_eq!(mgr.evictable_blocks(), 0);
    }

    #[test]
    fn scripts_are_deterministic(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let (a, appended_a) = run_script(&ops, 48, true);
        let (b, appended_b) = run_script(&ops, 48, true);
        prop_assert_eq!(appended_a, appended_b);
        prop_assert_eq!(a.stats().hit_tokens, b.stats().hit_tokens);
        prop_assert_eq!(a.stats().evictions, b.stats().evictions);
        prop_assert_eq!(a.free_blocks(), b.free_blocks());
    }

    #[test]
    fn tiered_invariants_hold_and_transfers_reconcile(
        ops in prop::collection::vec(tiered_op_strategy(), 1..80),
        distance in any::<bool>(),
        host in 0u32..24,
        nvme in 0u32..48,
    ) {
        // Per-tier accounting survives arbitrary scripts (capacity caps,
        // one-home-per-hash, rank/order agreement), and the transfer
        // queue the engine prices reconciles exactly with the stats
        // counters the reports aggregate.
        let (mgr, ledger) = run_tiered_script(&ops, 32, Some(spec(host, nvme, distance)));
        prop_assert_eq!(mgr.live_sequences(), 0);
        prop_assert_eq!(mgr.used_blocks(), 0);
        prop_assert_eq!(mgr.free_blocks() + mgr.evictable_blocks(), 32);
        let s = mgr.stats();
        prop_assert_eq!(ledger, TransferLedger {
            demoted_host: s.demoted_blocks_host,
            demoted_nvme: s.demoted_blocks_nvme,
            promoted_host: s.promoted_blocks_host,
            promoted_nvme: s.promoted_blocks_nvme,
        });
        let hier = mgr.hierarchy().expect("offload enabled");
        prop_assert!(hier.host_resident() as u32 <= host);
        prop_assert!(hier.nvme_resident() as u32 <= nvme);
    }

    #[test]
    fn zero_capacity_tiers_are_invisible(
        ops in prop::collection::vec(tiered_op_strategy(), 1..60),
    ) {
        // tiers(0, 0) under the LRU baseline must behave bit-identically
        // to no hierarchy at all: same hits, same evictions, same final
        // pool shape, and no transfer ever recorded. (Under
        // InvocationDistance zero-capacity tiers still re-rank *HBM*
        // eviction from hints, so only the LRU arm is fully invisible.)
        let (tiered, ledger) = run_tiered_script(&ops, 32, Some(spec(0, 0, false)));
        let (plain, _) = run_tiered_script(&ops, 32, None);
        let (distance, distance_ledger) = run_tiered_script(&ops, 32, Some(spec(0, 0, true)));
        prop_assert_eq!(distance_ledger, TransferLedger::default());
        prop_assert_eq!(distance.stats().promoted_tokens, 0);
        prop_assert_eq!(distance.hierarchy().unwrap().host_resident(), 0);
        prop_assert_eq!(distance.hierarchy().unwrap().nvme_resident(), 0);
        prop_assert_eq!(ledger, TransferLedger::default());
        prop_assert_eq!(tiered.stats().hit_tokens, plain.stats().hit_tokens);
        prop_assert_eq!(tiered.stats().promoted_tokens, 0);
        prop_assert_eq!(tiered.stats().evictions, plain.stats().evictions);
        prop_assert_eq!(tiered.free_blocks(), plain.free_blocks());
        prop_assert_eq!(tiered.evictable_blocks(), plain.evictable_blocks());
    }

    #[test]
    fn lru_tiers_never_lose_hits_vs_plain(
        ops in prop::collection::vec(tiered_op_strategy(), 1..60),
    ) {
        // Under the LRU baseline the HBM trajectory is unchanged —
        // demotion is a side-copy, promoted blocks are allocated exactly
        // like misses — so tiers can only *add* reuse, and every extra
        // hit token is accounted to promotion.
        let (tiered, _) = run_tiered_script(&ops, 32, Some(spec(16, 32, false)));
        let (plain, _) = run_tiered_script(&ops, 32, None);
        prop_assert_eq!(
            tiered.stats().hit_tokens,
            plain.stats().hit_tokens + tiered.stats().promoted_tokens
        );
        prop_assert_eq!(tiered.stats().evictions, plain.stats().evictions);
        prop_assert_eq!(tiered.free_blocks(), plain.free_blocks());
    }

    #[test]
    fn tiered_scripts_are_deterministic(
        ops in prop::collection::vec(tiered_op_strategy(), 1..50),
        distance in any::<bool>(),
    ) {
        let (a, la) = run_tiered_script(&ops, 32, Some(spec(12, 24, distance)));
        let (b, lb) = run_tiered_script(&ops, 32, Some(spec(12, 24, distance)));
        prop_assert_eq!(la, lb);
        prop_assert_eq!(a.stats().hit_tokens, b.stats().hit_tokens);
        prop_assert_eq!(a.stats().promoted_tokens, b.stats().promoted_tokens);
        prop_assert_eq!(a.stats().evictions, b.stats().evictions);
        prop_assert_eq!(a.stats().offload_dropped_blocks, b.stats().offload_dropped_blocks);
        prop_assert_eq!(a.free_blocks(), b.free_blocks());
    }
}
