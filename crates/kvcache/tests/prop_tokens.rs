//! Property-based tests for the memoized chain-hash cache on [`TokenBuf`]:
//! under arbitrary sequences of append / truncate / clone operations,
//! interleaved with cache reads at varying block sizes, the memoized
//! hashes must equal a from-scratch [`chain_hashes`] over the same stream.

use agentsim_kvcache::hash::chain_hashes;
use agentsim_kvcache::TokenBuf;
use proptest::prelude::*;

/// A scripted operation on the stream.
#[derive(Debug, Clone)]
enum Op {
    /// Append a (seed, len) segment.
    Segment { seed: u64, len: u32 },
    /// Append `n` generated tokens of stream `seed`.
    Generated { seed: u64, n: u8 },
    /// Append another whole segment-stream.
    Buf { seed: u64, len: u32 },
    /// Truncate to `keep` tokens (no-op when already shorter).
    Truncate { keep: u16 },
    /// Replace the stream with a clone of itself (the cache must carry).
    CloneSwap,
    /// Read the memoized hashes at this block size and check them.
    Check { block_size: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..16, 0u32..200).prop_map(|(seed, len)| Op::Segment { seed, len }),
        (0u64..16, 0u8..64).prop_map(|(seed, n)| Op::Generated { seed, n }),
        (0u64..16, 1u32..100).prop_map(|(seed, len)| Op::Buf { seed, len }),
        (0u16..600).prop_map(|keep| Op::Truncate { keep }),
        Just(Op::CloneSwap),
        (1u8..40).prop_map(|block_size| Op::Check { block_size }),
    ]
}

fn check(buf: &TokenBuf, block_size: usize) {
    let cached = buf.chain_hashes_cached(block_size);
    let fresh = chain_hashes(buf.as_slice(), block_size);
    assert_eq!(
        &*cached,
        &fresh[..],
        "memoized hashes diverged at block size {block_size} with {} tokens",
        buf.len()
    );
}

proptest! {
    #[test]
    fn memoized_hashes_match_from_scratch(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        final_bs in 1usize..40,
    ) {
        let mut buf = TokenBuf::new();
        let mut gen_index = 0u64;
        for op in &ops {
            match op {
                Op::Segment { seed, len } => buf.push_segment(*seed, *len),
                Op::Generated { seed, n } => {
                    for _ in 0..*n {
                        buf.push_generated(*seed, gen_index);
                        gen_index += 1;
                    }
                }
                Op::Buf { seed, len } => {
                    let other = TokenBuf::from_segment(*seed, *len);
                    buf.push_buf(&other);
                }
                Op::Truncate { keep } => buf.truncate(*keep as usize),
                Op::CloneSwap => buf = buf.clone(),
                Op::Check { block_size } => check(&buf, *block_size as usize),
            }
        }
        check(&buf, final_bs);
        // Repeated reads at the same size hit the warm cache.
        check(&buf, final_bs);
    }

    #[test]
    fn cache_survives_incremental_growth(len0 in 0u32..300, grow in 1u32..300, bs in 1usize..40) {
        // Warm the cache, extend the stream, and verify the extension is
        // hashed correctly on top of the retained prefix hashes.
        let mut buf = TokenBuf::from_segment(1, len0);
        check(&buf, bs);
        buf.push_segment(2, grow);
        check(&buf, bs);
    }

    #[test]
    fn switching_block_size_rebuilds(len in 1u32..400, a in 1usize..40, b in 1usize..40) {
        let buf = TokenBuf::from_segment(3, len);
        check(&buf, a);
        check(&buf, b);
        check(&buf, a);
    }
}
