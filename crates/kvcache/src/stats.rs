//! Cache statistics: hit rates, evictions, and time-weighted occupancy.

use agentsim_simkit::SimTime;

/// Time-weighted gauge: tracks average and peak of an integer quantity
/// that changes at discrete instants.
#[derive(Debug, Clone, Default)]
pub struct UsageTracker {
    area: f64, // value x seconds
    last_change: SimTime,
    current: u64,
    peak: u64,
}

impl UsageTracker {
    /// Creates a tracker starting at zero.
    pub fn new() -> Self {
        UsageTracker::default()
    }

    /// Records that the gauge changed to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: u64) {
        let dt = now.saturating_since(self.last_change).as_secs_f64();
        self.area += self.current as f64 * dt;
        self.last_change = now;
        self.current = value;
        self.peak = self.peak.max(value);
    }

    /// Current gauge value.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Peak gauge value observed.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Time-weighted average over `[0, end]`.
    ///
    /// Returns zero if `end` is the origin.
    pub fn average(&self, end: SimTime) -> f64 {
        let total = end.as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        let tail = end.saturating_since(self.last_change).as_secs_f64();
        (self.area + self.current as f64 * tail) / total
    }
}

/// Aggregate statistics of a [`crate::KvBlockManager`].
#[derive(Debug, Clone, Default)]
pub struct KvStats {
    /// Prompt tokens served from the prefix cache.
    pub hit_tokens: u64,
    /// Prompt tokens that had to be computed.
    pub miss_tokens: u64,
    /// Cached blocks evicted to make room.
    pub evictions: u64,
    /// Sequences admitted.
    pub sequences: u64,
    /// Allocation attempts rejected for lack of blocks.
    pub rejections: u64,
    /// Tokens admitted via [`crate::KvBlockManager::import`]: their KV was
    /// computed elsewhere (disaggregated prefill) and transferred in, so
    /// they count as neither hits nor misses.
    pub imported_tokens: u64,
    /// Tokens whose KV left this pool via
    /// [`crate::KvBlockManager::export`] for decode elsewhere.
    pub exported_tokens: u64,
    /// Time-weighted active (referenced) block occupancy.
    pub used_blocks: UsageTracker,
    /// Time-weighted resident occupancy (active + evictable cached).
    pub resident_blocks: UsageTracker,
    /// Blocks demoted HBM → host tier (offload hierarchy only).
    pub demoted_blocks_host: u64,
    /// Blocks demoted onto the NVMe tier (host overflow, or direct with
    /// no host tier).
    pub demoted_blocks_nvme: u64,
    /// Blocks promoted host tier → HBM on admission.
    pub promoted_blocks_host: u64,
    /// Blocks promoted NVMe tier → HBM on admission.
    pub promoted_blocks_nvme: u64,
    /// Prompt tokens served from an offload tier instead of recompute
    /// (a subset of `hit_tokens`).
    pub promoted_tokens: u64,
    /// Blocks that fell off the bottom of the hierarchy (their next use,
    /// if any, is a full recompute).
    pub offload_dropped_blocks: u64,
    /// Peak host-tier occupancy in blocks.
    pub host_peak_blocks: u64,
    /// Peak NVMe-tier occupancy in blocks.
    pub nvme_peak_blocks: u64,
}

impl KvStats {
    /// Fraction of looked-up prompt tokens served from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hit_tokens + self.miss_tokens;
        if total == 0 {
            0.0
        } else {
            self.hit_tokens as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_time_weighted_average() {
        let mut t = UsageTracker::new();
        t.set(SimTime::ZERO, 10);
        t.set(SimTime::from_secs_f64(1.0), 20);
        // 10 for 1 s, then 20 for 1 s => avg 15 at t = 2 s.
        let avg = t.average(SimTime::from_secs_f64(2.0));
        assert!((avg - 15.0).abs() < 1e-9, "avg {avg}");
        assert_eq!(t.peak(), 20);
        assert_eq!(t.current(), 20);
    }

    #[test]
    fn tracker_average_at_origin_is_zero() {
        let t = UsageTracker::new();
        assert_eq!(t.average(SimTime::ZERO), 0.0);
    }

    #[test]
    fn hit_rate_handles_empty() {
        let s = KvStats::default();
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_computes_fraction() {
        let s = KvStats {
            hit_tokens: 30,
            miss_tokens: 70,
            ..KvStats::default()
        };
        assert!((s.hit_rate() - 0.3).abs() < 1e-12);
    }
}
