//! Block identifiers and per-block metadata.

use std::fmt;

use agentsim_simkit::SimTime;

/// Index of a physical KV block in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk#{}", self.0)
    }
}

/// Lifecycle state of a physical block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// On the free list.
    Free,
    /// Referenced by at least one live sequence.
    Active,
    /// Unreferenced but kept resident for prefix reuse (evictable).
    Cached,
}

/// Metadata for one physical block.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    /// Current lifecycle state.
    pub state: BlockState,
    /// Live references from sequences.
    pub ref_count: u32,
    /// Chain hash once the block is full (eligible for prefix reuse).
    pub chain_hash: Option<u64>,
    /// Last time the block was touched (drives LRU eviction).
    pub last_used: SimTime,
}

impl BlockMeta {
    /// A brand-new free block.
    pub fn free() -> Self {
        BlockMeta {
            state: BlockState::Free,
            ref_count: 0,
            chain_hash: None,
            last_used: SimTime::ZERO,
        }
    }
}

impl Default for BlockMeta {
    fn default() -> Self {
        BlockMeta::free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_block_is_free_and_unreferenced() {
        let b = BlockMeta::free();
        assert_eq!(b.state, BlockState::Free);
        assert_eq!(b.ref_count, 0);
        assert!(b.chain_hash.is_none());
    }

    #[test]
    fn block_id_displays() {
        assert_eq!(BlockId(7).to_string(), "blk#7");
    }

    #[test]
    fn block_ids_order_by_index() {
        assert!(BlockId(1) < BlockId(2));
    }
}
