//! Chain hashing of token blocks (vLLM-style prefix keys).
//!
//! A full block's identity is the hash of *all tokens from the start of the
//! sequence through the end of that block* — computed incrementally as
//! `hash(parent_chain_hash, block_tokens)`. Two sequences share a cached
//! block if and only if they agree on the entire prefix up to it.

use agentsim_simkit::rng::splitmix64;

use crate::tokens::Token;

/// Seed for the first block in a chain (no parent).
pub const CHAIN_ROOT: u64 = 0x005E_ED0F_C4A1;

/// Hashes one full block of tokens given the parent chain hash.
pub fn chain_hash(parent: u64, block_tokens: &[Token]) -> u64 {
    let mut h = splitmix64(parent ^ 0xB10C);
    for &t in block_tokens {
        h = splitmix64(h ^ t);
    }
    h
}

/// Computes the chain hashes of every *full* block in a token stream.
///
/// The trailing partial block (if any) has no hash — it cannot be shared.
///
/// # Panics
///
/// Panics if `block_size` is zero.
pub fn chain_hashes(tokens: &[Token], block_size: usize) -> Vec<u64> {
    assert!(block_size > 0, "block size must be positive");
    let mut hashes = Vec::with_capacity(tokens.len() / block_size);
    let mut parent = CHAIN_ROOT;
    for chunk in tokens.chunks_exact(block_size) {
        parent = chain_hash(parent, chunk);
        hashes.push(parent);
    }
    hashes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_prefixes_share_hashes() {
        let a: Vec<Token> = (0..64).collect();
        let mut b = a.clone();
        b.extend(100..116);
        let ha = chain_hashes(&a, 16);
        let hb = chain_hashes(&b, 16);
        assert_eq!(ha.len(), 4);
        assert_eq!(hb.len(), 5);
        assert_eq!(&hb[..4], &ha[..]);
    }

    #[test]
    fn divergence_breaks_all_later_hashes() {
        let a: Vec<Token> = (0..64).collect();
        let mut b = a.clone();
        b[0] = 999; // first token differs
        let ha = chain_hashes(&a, 16);
        let hb = chain_hashes(&b, 16);
        for (x, y) in ha.iter().zip(&hb) {
            assert_ne!(x, y, "chain must diverge from the first block on");
        }
    }

    #[test]
    fn mid_sequence_divergence_keeps_earlier_blocks() {
        let a: Vec<Token> = (0..64).collect();
        let mut b = a.clone();
        b[40] = 999; // diverges inside block 2
        let ha = chain_hashes(&a, 16);
        let hb = chain_hashes(&b, 16);
        assert_eq!(ha[0], hb[0]);
        assert_eq!(ha[1], hb[1]);
        assert_ne!(ha[2], hb[2]);
        assert_ne!(ha[3], hb[3]);
    }

    #[test]
    fn partial_blocks_are_not_hashed() {
        let tokens: Vec<Token> = (0..20).collect();
        assert_eq!(chain_hashes(&tokens, 16).len(), 1);
        assert_eq!(chain_hashes(&tokens[..15], 16).len(), 0);
    }

    #[test]
    fn hash_depends_on_parent() {
        let block: Vec<Token> = (0..16).collect();
        assert_ne!(chain_hash(1, &block), chain_hash(2, &block));
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        let _ = chain_hashes(&[1, 2, 3], 0);
    }
}
