//! The paged KV block manager.
//!
//! Models vLLM's block allocator with automatic prefix caching: sequences
//! own block tables; full blocks are chain-hashed and registered in a
//! prefix cache; unreferenced hashed blocks stay resident (evictable, LRU)
//! until memory pressure reclaims them.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use agentsim_simkit::SimTime;

use crate::block::{BlockId, BlockMeta, BlockState};
use crate::hash::{chain_hash, CHAIN_ROOT};
use crate::hierarchy::{EvictionPolicy, MemoryHierarchy, OffloadSpec, Tier, TierTransfer};
use crate::stats::KvStats;
use crate::tokens::{Token, TokenBuf};

/// Sizing and policy of the KV pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvConfig {
    /// Total physical blocks in the pool.
    pub num_blocks: u32,
    /// Tokens per block (vLLM default: 16).
    pub block_size: u32,
    /// Whether automatic prefix caching is enabled.
    pub prefix_caching: bool,
}

impl KvConfig {
    /// Blocks needed to hold `tokens` tokens.
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_size as usize)
    }
}

/// Handle to a live sequence's block table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeqHandle(u64);

/// Why an allocation could not be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough free or evictable blocks.
    Insufficient {
        /// Fresh blocks the request needed.
        needed: usize,
        /// Free + evictable blocks available.
        available: usize,
    },
    /// The sequence handle is unknown (already freed?).
    UnknownSequence,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Insufficient { needed, available } => write!(
                f,
                "insufficient KV blocks: needed {needed}, available {available}"
            ),
            AllocError::UnknownSequence => write!(f, "unknown sequence handle"),
        }
    }
}

impl std::error::Error for AllocError {}

#[derive(Debug)]
struct SeqState {
    blocks: Vec<BlockId>,
    len_tokens: usize,
    cached_tokens: usize,
    /// Chain hash of the last *full* block (parent for the next one).
    chain_tail: u64,
    /// Tokens of the trailing partial block (needed to hash it on fill).
    tail_tokens: Vec<Token>,
}

/// The paged KV-cache block manager. See the [crate docs](crate) for an
/// overview and example.
#[derive(Debug)]
pub struct KvBlockManager {
    config: KvConfig,
    metas: Vec<BlockMeta>,
    lru_ticks: Vec<u64>,
    /// Per-block eviction rank as currently keyed in `lru` (always zero
    /// under plain LRU; see [`EvictionPolicy`]).
    ranks: Vec<u64>,
    free: Vec<BlockId>,
    /// chain hash -> resident block holding that content.
    cache: HashMap<u64, BlockId>,
    /// Evictable blocks ordered (rank, last-use tick, block): the minimum
    /// is the next victim. Rank is zero without an offload hierarchy (or
    /// under its LRU baseline), making the order exactly LRU.
    lru: BTreeSet<(u64, u64, BlockId)>,
    seqs: HashMap<u64, SeqState>,
    next_seq: u64,
    tick: u64,
    /// Blocks currently in [`BlockState::Active`], maintained at every
    /// state transition so usage tracking never scans the pool.
    active: usize,
    /// Offload tiers below HBM; eviction demotes into them and admission
    /// promotes back out. `None` keeps the classic evict-and-forget pool.
    hierarchy: Option<MemoryHierarchy>,
    stats: KvStats,
}

impl KvBlockManager {
    /// Creates a pool per `config`.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` or `block_size` is zero.
    pub fn new(config: KvConfig) -> Self {
        assert!(config.num_blocks > 0, "pool must have at least one block");
        assert!(config.block_size > 0, "block size must be positive");
        KvBlockManager {
            config,
            metas: (0..config.num_blocks).map(|_| BlockMeta::free()).collect(),
            lru_ticks: vec![0; config.num_blocks as usize],
            ranks: vec![0; config.num_blocks as usize],
            free: (0..config.num_blocks).rev().map(BlockId).collect(),
            cache: HashMap::new(),
            lru: BTreeSet::new(),
            seqs: HashMap::new(),
            next_seq: 0,
            tick: 0,
            active: 0,
            hierarchy: None,
            stats: KvStats::default(),
        }
    }

    /// The pool configuration.
    pub fn config(&self) -> KvConfig {
        self.config
    }

    /// Attaches offload tiers below HBM. Must be called before any
    /// traffic, and requires prefix caching — tier content is identified
    /// by chain hash, exactly like the prefix cache.
    ///
    /// # Panics
    ///
    /// Panics if sequences were already admitted or prefix caching is off.
    pub fn enable_offload(&mut self, spec: OffloadSpec) {
        assert!(
            self.stats.sequences == 0 && self.seqs.is_empty(),
            "offload tiers must be configured before any traffic"
        );
        assert!(
            self.config.prefix_caching,
            "KV offload requires prefix caching (tier content is chain-hashed)"
        );
        self.hierarchy = Some(MemoryHierarchy::new(spec));
    }

    /// The offload hierarchy, if one is attached.
    pub fn hierarchy(&self) -> Option<&MemoryHierarchy> {
        self.hierarchy.as_ref()
    }

    /// Drains tier transfers recorded since the last call (in occurrence
    /// order) into `out`, for the engine to price through its links.
    pub fn take_tier_transfers(&mut self, out: &mut Vec<TierTransfer>) {
        if let Some(h) = &mut self.hierarchy {
            h.take_transfers(out);
        }
    }

    /// Counts how many leading full blocks of `tokens` are already resident.
    fn count_hits(&self, hashes: &[u64]) -> usize {
        if !self.config.prefix_caching {
            return 0;
        }
        hashes
            .iter()
            .take_while(|h| self.cache.contains_key(h))
            .count()
    }

    /// Whether `allocate` for this prompt would currently succeed.
    pub fn can_allocate(&self, tokens: &TokenBuf) -> bool {
        let hashes = tokens.chain_hashes_cached(self.config.block_size as usize);
        let hits = self.count_hits(&hashes);
        let total = self.config.blocks_for(tokens.len());
        let needed = total - hits;
        // Cached hit blocks may sit in the LRU; they are revived, not
        // evicted, so they do not count as available for fresh allocation.
        let revivable = hashes[..hits]
            .iter()
            .filter(|h| {
                let id = self.cache[*h];
                self.metas[id.0 as usize].state == BlockState::Cached
            })
            .count();
        let available = self.free.len() + self.lru.len() - revivable;
        needed <= available
    }

    /// Admits a sequence with the given prompt, reusing cached prefix
    /// blocks where possible.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Insufficient`] if the pool cannot hold the
    /// non-cached portion even after evicting every evictable block.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty.
    pub fn allocate(&mut self, tokens: &TokenBuf, now: SimTime) -> Result<SeqHandle, AllocError> {
        self.admit(tokens, now, false)
    }

    /// Admits a sequence whose KV content was computed elsewhere and
    /// transferred in (disaggregated serving). Blocks are allocated and
    /// hashed exactly as [`Self::allocate`] would — resident blocks with
    /// matching content are shared rather than duplicated — but the tokens
    /// are accounted as *imported*, not as prefix-cache hits or misses,
    /// because no local prefill compute is implied either way.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Insufficient`] like [`Self::allocate`].
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty.
    pub fn import(&mut self, tokens: &TokenBuf, now: SimTime) -> Result<SeqHandle, AllocError> {
        self.admit(tokens, now, true)
    }

    /// Releases a sequence whose KV is migrating to another pool, counting
    /// its tokens as exported. Returns the sequence length in tokens (the
    /// KV footprint being shipped). Block disposal is identical to
    /// [`Self::free`].
    ///
    /// # Panics
    ///
    /// Panics if the handle was already freed.
    pub fn export(&mut self, seq: SeqHandle, now: SimTime) -> usize {
        let len = self
            .seqs
            .get(&seq.0)
            .expect("exporting an unknown sequence handle")
            .len_tokens;
        self.stats.exported_tokens += len as u64;
        self.free(seq, now);
        len
    }

    fn admit(
        &mut self,
        tokens: &TokenBuf,
        now: SimTime,
        imported: bool,
    ) -> Result<SeqHandle, AllocError> {
        assert!(!tokens.is_empty(), "cannot allocate an empty sequence");
        let bs = self.config.block_size as usize;
        // The memoized hashes are fresh after this call, so the nested
        // `can_allocate` below only takes a second shared borrow.
        let hashes = tokens.chain_hashes_cached(bs);
        if !self.can_allocate(tokens) {
            let hits = self.count_hits(&hashes);
            self.stats.rejections += 1;
            return Err(AllocError::Insufficient {
                needed: self.config.blocks_for(tokens.len()) - hits,
                available: self.free.len() + self.lru.len(),
            });
        }

        let hits = self.count_hits(&hashes);
        let mut blocks = Vec::with_capacity(self.config.blocks_for(tokens.len()));

        // Revive / share cached prefix blocks.
        for h in &hashes[..hits] {
            let id = self.cache[h];
            // Remove the LRU entry keyed by the *old* rank and tick before
            // touching.
            if self.metas[id.0 as usize].state == BlockState::Cached {
                self.lru
                    .remove(&(self.ranks[id.0 as usize], self.lru_ticks[id.0 as usize], id));
                self.metas[id.0 as usize].state = BlockState::Active;
                self.active += 1;
            }
            self.touch(id, now);
            self.metas[id.0 as usize].ref_count += 1;
            blocks.push(id);
        }

        // Where the HBM hit run ends, the offload tiers may continue it:
        // consecutive blocks resident in host/NVMe are *promoted* — they
        // still need fresh HBM blocks below, but their tokens skip
        // recompute and the transfer is priced by the engine instead.
        // Imports skip this: their KV arrives over the migration link.
        let mut promoted = 0usize;
        if !imported && self.config.prefix_caching {
            if let Some(hier) = &mut self.hierarchy {
                let (mut from_host, mut from_nvme) = (0u32, 0u32);
                for h in &hashes[hits..] {
                    match hier.take(*h) {
                        Some(Tier::Host) => from_host += 1,
                        Some(Tier::Nvme) => from_nvme += 1,
                        None => break,
                    }
                    promoted += 1;
                }
                hier.record_promote(Tier::Host, from_host, &mut self.stats);
                hier.record_promote(Tier::Nvme, from_nvme, &mut self.stats);
                // Every prefix block touched by this admission has had its
                // predicted invocation happen; stale predictions would
                // keep an ended session's blocks looking hot forever.
                for h in hashes.iter() {
                    hier.clear_pred(*h);
                }
            }
        }

        // Fresh blocks for the remaining full blocks (hash known now — the
        // prefill computing them, or the promotion restoring them, makes
        // the content immediately shareable).
        for h in &hashes[hits..] {
            let id = self.obtain_block(now)?;
            let meta = &mut self.metas[id.0 as usize];
            meta.state = BlockState::Active;
            meta.ref_count = 1;
            self.active += 1;
            if self.config.prefix_caching {
                self.metas[id.0 as usize].chain_hash = Some(*h);
                self.cache.insert(*h, id);
                // Recomputed content invalidates any stale offloaded copy:
                // a hash lives in exactly one place.
                if let Some(hier) = &mut self.hierarchy {
                    hier.take(*h);
                }
            }
            blocks.push(id);
        }

        // Trailing partial block, if any.
        let rem = tokens.len() % bs;
        if rem != 0 {
            let id = self.obtain_block(now)?;
            let meta = &mut self.metas[id.0 as usize];
            meta.state = BlockState::Active;
            meta.ref_count = 1;
            self.active += 1;
            blocks.push(id);
        }

        // A fully cached prompt still recomputes its final token so the
        // model has logits to sample from (vLLM behaviour). Promoted
        // blocks count as cached — their tokens skip recompute too.
        let cached_tokens = ((hits + promoted) * bs).min(tokens.len().saturating_sub(1));
        if imported {
            self.stats.imported_tokens += tokens.len() as u64;
        } else {
            let hbm_cached = (hits * bs).min(tokens.len().saturating_sub(1));
            self.stats.hit_tokens += cached_tokens as u64;
            self.stats.promoted_tokens += (cached_tokens - hbm_cached) as u64;
            self.stats.miss_tokens += (tokens.len() - cached_tokens) as u64;
        }
        self.stats.sequences += 1;

        let handle = SeqHandle(self.next_seq);
        self.next_seq += 1;
        self.seqs.insert(
            handle.0,
            SeqState {
                blocks,
                len_tokens: tokens.len(),
                cached_tokens,
                chain_tail: hashes.last().copied().unwrap_or(CHAIN_ROOT),
                tail_tokens: tokens.as_slice()[tokens.len() - rem..].to_vec(),
            },
        );
        self.note_usage(now);
        Ok(handle)
    }

    /// Appends one generated token to a live sequence, growing its block
    /// table when a block boundary is crossed.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Insufficient`] if a new block is needed and
    /// none can be freed (the caller should preempt the sequence), or
    /// [`AllocError::UnknownSequence`] for a stale handle.
    pub fn append_token(
        &mut self,
        seq: SeqHandle,
        token: Token,
        now: SimTime,
    ) -> Result<(), AllocError> {
        let bs = self.config.block_size as usize;
        let state = self.seqs.get(&seq.0).ok_or(AllocError::UnknownSequence)?;

        let needs_block = state.len_tokens.is_multiple_of(bs);
        let new_block = if needs_block {
            Some(self.obtain_block(now)?)
        } else {
            None
        };

        let prefix_caching = self.config.prefix_caching;
        if new_block.is_some() {
            self.active += 1;
        }
        let state = self.seqs.get_mut(&seq.0).expect("checked above");
        if let Some(id) = new_block {
            let meta = &mut self.metas[id.0 as usize];
            meta.state = BlockState::Active;
            meta.ref_count = 1;
            state.blocks.push(id);
        }
        state.tail_tokens.push(token);
        state.len_tokens += 1;

        // Did the tail block just fill? Then hash and register it.
        if state.len_tokens.is_multiple_of(bs) {
            let h = chain_hash(state.chain_tail, &state.tail_tokens);
            state.chain_tail = h;
            state.tail_tokens.clear();
            let id = *state.blocks.last().expect("tail block exists");
            if prefix_caching {
                self.metas[id.0 as usize].chain_hash = Some(h);
                // Content collisions (another block already holds this
                // chain) keep the existing entry.
                self.cache.entry(h).or_insert(id);
                // Freshly decoded content invalidates a stale offloaded
                // copy of the same chain.
                if let Some(hier) = &mut self.hierarchy {
                    hier.take(h);
                }
            }
        }
        self.note_usage(now);
        Ok(())
    }

    /// Releases a sequence. Hashed blocks stay resident (evictable) when
    /// prefix caching is on; everything else returns to the free list.
    ///
    /// # Panics
    ///
    /// Panics if the handle was already freed.
    pub fn free(&mut self, seq: SeqHandle, now: SimTime) {
        let state = self
            .seqs
            .remove(&seq.0)
            .expect("freeing an unknown sequence handle");
        for id in state.blocks {
            let meta = &mut self.metas[id.0 as usize];
            assert!(meta.ref_count > 0, "double free of {id}");
            meta.ref_count -= 1;
            if meta.ref_count > 0 {
                continue;
            }
            self.active -= 1;
            let registered = meta
                .chain_hash
                .is_some_and(|h| self.cache.get(&h) == Some(&id));
            if self.config.prefix_caching && registered {
                meta.state = BlockState::Cached;
                let hash = self.metas[id.0 as usize].chain_hash.expect("registered");
                self.touch(id, now);
                let rank = self
                    .hierarchy
                    .as_ref()
                    .map_or(0, |hier| hier.rank_for(hash));
                self.ranks[id.0 as usize] = rank;
                self.lru.insert((rank, self.lru_ticks[id.0 as usize], id));
            } else {
                if let Some(h) = meta.chain_hash.take() {
                    if self.cache.get(&h) == Some(&id) {
                        self.cache.remove(&h);
                    }
                }
                meta.state = BlockState::Free;
                self.free.push(id);
            }
        }
        self.note_usage(now);
    }

    /// Prompt tokens of `seq` that were served from the prefix cache (or
    /// promoted from an offload tier).
    ///
    /// # Panics
    ///
    /// Panics on a stale handle — a freed sequence has no block table, and
    /// a silent zero here once masked accounting bugs. Use
    /// [`Self::try_cached_tokens`] when staleness is expected.
    pub fn cached_tokens(&self, seq: &SeqHandle) -> usize {
        self.try_cached_tokens(seq)
            .expect("stale SeqHandle: sequence already freed or never allocated")
    }

    /// Like [`Self::cached_tokens`], but `None` on a stale handle.
    pub fn try_cached_tokens(&self, seq: &SeqHandle) -> Option<usize> {
        self.seqs.get(&seq.0).map(|s| s.cached_tokens)
    }

    /// Current length (tokens) of a live sequence.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle, like [`Self::cached_tokens`]. Use
    /// [`Self::try_seq_len`] when staleness is expected.
    pub fn seq_len(&self, seq: &SeqHandle) -> usize {
        self.try_seq_len(seq)
            .expect("stale SeqHandle: sequence already freed or never allocated")
    }

    /// Like [`Self::seq_len`], but `None` on a stale handle.
    pub fn try_seq_len(&self, seq: &SeqHandle) -> Option<usize> {
        self.seqs.get(&seq.0).map(|s| s.len_tokens)
    }

    /// Feeds the session layer's next-invocation prediction for a token
    /// chain: each of `hashes` (the chain hashes of a context that will be
    /// resubmitted) is expected back at `at`, predicted at time `now`.
    /// Re-ranks any HBM-evictable copy and any offloaded copy under
    /// [`EvictionPolicy::InvocationDistance`]; a no-op without a
    /// hierarchy or under the LRU baseline.
    pub fn hint_next_use(&mut self, hashes: &[u64], now: SimTime, at: SimTime) {
        let Some(hier) = &mut self.hierarchy else {
            return;
        };
        if hier.policy() != EvictionPolicy::InvocationDistance {
            return;
        }
        for &h in hashes {
            hier.hint(h, at);
            // Re-key a resident evictable copy under its new rank.
            if let Some(&id) = self.cache.get(&h) {
                if self.metas[id.0 as usize].state == BlockState::Cached {
                    let tick = self.lru_ticks[id.0 as usize];
                    let old = self.ranks[id.0 as usize];
                    let new = hier.rank_for(h);
                    if new != old {
                        self.lru.remove(&(old, tick, id));
                        self.ranks[id.0 as usize] = new;
                        self.lru.insert((new, tick, id));
                    }
                }
            }
        }
        hier.prune_pred(now);
    }

    /// Blocks referenced by live sequences.
    pub fn used_blocks(&self) -> usize {
        self.active
    }

    /// Blocks on the free list.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Unreferenced cached blocks (evictable).
    pub fn evictable_blocks(&self) -> usize {
        self.lru.len()
    }

    /// Live sequences.
    pub fn live_sequences(&self) -> usize {
        self.seqs.len()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &KvStats {
        &self.stats
    }

    fn obtain_block(&mut self, now: SimTime) -> Result<BlockId, AllocError> {
        if let Some(id) = self.free.pop() {
            self.touch(id, now);
            return Ok(id);
        }
        // Evict the lowest-ranked cached block (exact LRU without an
        // offload hierarchy).
        if let Some(&(rank, tick, id)) = self.lru.iter().next() {
            self.lru.remove(&(rank, tick, id));
            let meta = &mut self.metas[id.0 as usize];
            if let Some(h) = meta.chain_hash.take() {
                if self.cache.get(&h) == Some(&id) {
                    self.cache.remove(&h);
                    // Spill the evicted content down the hierarchy rather
                    // than destroying it; the engine prices the copy as an
                    // asynchronous transfer on the offload link.
                    if let Some(hier) = &mut self.hierarchy {
                        hier.demote(h, &mut self.stats);
                    }
                }
            }
            *meta = BlockMeta::free();
            self.stats.evictions += 1;
            self.touch(id, now);
            return Ok(id);
        }
        Err(AllocError::Insufficient {
            needed: 1,
            available: 0,
        })
    }

    fn touch(&mut self, id: BlockId, now: SimTime) {
        self.tick += 1;
        self.lru_ticks[id.0 as usize] = self.tick;
        self.metas[id.0 as usize].last_used = now;
    }

    fn note_usage(&mut self, now: SimTime) {
        let used = self.used_blocks() as u64;
        self.stats.used_blocks.set(now, used);
        self.stats
            .resident_blocks
            .set(now, used + self.lru.len() as u64);
    }

    /// Internal-consistency check used by tests: every block is in exactly
    /// one of {free list, LRU set, active}, refcounts match liveness, and
    /// the cache map points at resident hashed blocks.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.config.num_blocks as usize;
        let mut seen = vec![0u8; n];
        for id in &self.free {
            seen[id.0 as usize] += 1;
            if self.metas[id.0 as usize].state != BlockState::Free {
                return Err(format!("{id} on free list but not Free"));
            }
        }
        for &(rank, tick, id) in &self.lru {
            seen[id.0 as usize] += 1;
            let m = &self.metas[id.0 as usize];
            if m.state != BlockState::Cached || m.ref_count != 0 {
                return Err(format!("{id} in LRU but not an unreferenced cached block"));
            }
            if self.ranks[id.0 as usize] != rank || self.lru_ticks[id.0 as usize] != tick {
                return Err(format!(
                    "{id} keyed ({rank}, {tick}) but recorded ({}, {})",
                    self.ranks[id.0 as usize], self.lru_ticks[id.0 as usize]
                ));
            }
        }
        for (i, m) in self.metas.iter().enumerate() {
            match m.state {
                BlockState::Active => {
                    if m.ref_count == 0 {
                        return Err(format!("blk#{i} active with zero refs"));
                    }
                    seen[i] += 1;
                }
                BlockState::Free | BlockState::Cached => {
                    if m.ref_count != 0 {
                        return Err(format!("blk#{i} {:?} with refs", m.state));
                    }
                }
            }
        }
        if let Some(i) = seen.iter().position(|&c| c != 1) {
            return Err(format!("blk#{i} in {} places", seen[i]));
        }
        let active_scan = self
            .metas
            .iter()
            .filter(|m| m.state == BlockState::Active)
            .count();
        if active_scan != self.active {
            return Err(format!(
                "active counter {} != scan {active_scan}",
                self.active
            ));
        }
        for (h, id) in &self.cache {
            if self.metas[id.0 as usize].chain_hash != Some(*h) {
                return Err(format!(
                    "cache entry {h:#x} points at {id} without that hash"
                ));
            }
            if self.metas[id.0 as usize].state == BlockState::Free {
                return Err(format!("cache entry {h:#x} points at free {id}"));
            }
        }
        if let Some(hier) = &self.hierarchy {
            hier.check_invariants()?;
            // A chain hash lives in exactly one place: the HBM prefix
            // cache, the host tier, or the NVMe tier.
            for h in self.cache.keys() {
                if let Some(tier) = hier.tier_of(*h) {
                    return Err(format!(
                        "hash {h:#x} resident in HBM and the {} tier",
                        tier.name()
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::chain_hashes;

    fn mgr(blocks: u32, caching: bool) -> KvBlockManager {
        KvBlockManager::new(KvConfig {
            num_blocks: blocks,
            block_size: 16,
            prefix_caching: caching,
        })
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn cold_allocation_has_no_hits() {
        let mut m = mgr(16, true);
        let p = TokenBuf::from_segment(1, 48);
        let s = m.allocate(&p, t(0)).unwrap();
        assert_eq!(m.cached_tokens(&s), 0);
        assert_eq!(m.used_blocks(), 3);
        m.check_invariants().unwrap();
    }

    #[test]
    fn freed_prefix_is_reused() {
        let mut m = mgr(16, true);
        let p = TokenBuf::from_segment(1, 64);
        let s = m.allocate(&p, t(0)).unwrap();
        m.free(s, t(1));
        assert_eq!(m.evictable_blocks(), 4);
        let s2 = m.allocate(&p, t(2)).unwrap();
        // 64 tokens = 4 full blocks, all cached; final token recomputed.
        assert_eq!(m.cached_tokens(&s2), 63);
        assert_eq!(m.free_blocks(), 12); // the same 4 blocks are revived
        m.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_sequences_share_active_prefix() {
        let mut m = mgr(16, true);
        let mut p1 = TokenBuf::from_segment(9, 32);
        p1.push_segment(100, 16);
        let mut p2 = TokenBuf::from_segment(9, 32);
        p2.push_segment(200, 16);
        let s1 = m.allocate(&p1, t(0)).unwrap();
        let s2 = m.allocate(&p2, t(1)).unwrap();
        // 2 shared prefix blocks + 2 distinct suffix blocks.
        assert_eq!(m.used_blocks(), 4);
        assert_eq!(m.cached_tokens(&s2), 32);
        m.free(s1, t(2));
        m.free(s2, t(3));
        m.check_invariants().unwrap();
    }

    #[test]
    fn prefix_caching_off_never_hits() {
        let mut m = mgr(16, false);
        let p = TokenBuf::from_segment(1, 64);
        let s = m.allocate(&p, t(0)).unwrap();
        m.free(s, t(1));
        assert_eq!(m.evictable_blocks(), 0);
        assert_eq!(m.free_blocks(), 16);
        let s2 = m.allocate(&p, t(2)).unwrap();
        assert_eq!(m.cached_tokens(&s2), 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn eviction_reclaims_lru_blocks() {
        let mut m = mgr(8, true);
        let p1 = TokenBuf::from_segment(1, 64); // 4 blocks
        let s1 = m.allocate(&p1, t(0)).unwrap();
        m.free(s1, t(1));
        let p2 = TokenBuf::from_segment(2, 64);
        let s2 = m.allocate(&p2, t(2)).unwrap();
        m.free(s2, t(3));
        // Pool of 8 now holds 8 cached blocks; a third prompt evicts p1's.
        let p3 = TokenBuf::from_segment(3, 64);
        let _s3 = m.allocate(&p3, t(4)).unwrap();
        assert_eq!(m.stats().evictions, 4);
        // p1 no longer cached, p2 still is.
        let hashes1 = chain_hashes(p1.as_slice(), 16);
        assert_eq!(m.count_hits(&hashes1), 0);
        let hashes2 = chain_hashes(p2.as_slice(), 16);
        assert_eq!(m.count_hits(&hashes2), 4);
        m.check_invariants().unwrap();
    }

    #[test]
    fn allocation_fails_when_pool_exhausted() {
        let mut m = mgr(4, true);
        let p1 = TokenBuf::from_segment(1, 64);
        let _s1 = m.allocate(&p1, t(0)).unwrap();
        let p2 = TokenBuf::from_segment(2, 16);
        let err = m.allocate(&p2, t(1)).unwrap_err();
        assert!(matches!(err, AllocError::Insufficient { .. }));
        assert_eq!(m.stats().rejections, 1);
        assert!(!m.can_allocate(&p2));
        m.check_invariants().unwrap();
    }

    #[test]
    fn decode_growth_allocates_blocks_and_registers_hashes() {
        let mut m = mgr(16, true);
        let p = TokenBuf::from_segment(1, 24); // 1 full + 1 partial
        let s = m.allocate(&p, t(0)).unwrap();
        assert_eq!(m.used_blocks(), 2);

        // Grow by 8 tokens: fills the partial block (now hashed).
        let mut full = p.clone();
        for i in 0..8u64 {
            let tok = crate::tokens::segment_token(777, i);
            full.extend([tok]);
            m.append_token(s, tok, t(10 + i)).unwrap();
        }
        assert_eq!(m.seq_len(&s), 32);
        assert_eq!(m.used_blocks(), 2);
        m.free(s, t(100));

        // A new prompt with the same 32 tokens hits both blocks.
        let s2 = m.allocate(&full, t(101)).unwrap();
        assert_eq!(m.cached_tokens(&s2), 31);
        m.check_invariants().unwrap();
    }

    #[test]
    fn decode_crossing_boundary_takes_new_block() {
        let mut m = mgr(4, true);
        let p = TokenBuf::from_segment(1, 16);
        let s = m.allocate(&p, t(0)).unwrap();
        assert_eq!(m.used_blocks(), 1);
        m.append_token(s, 123, t(1)).unwrap();
        assert_eq!(m.used_blocks(), 2);
        m.check_invariants().unwrap();
    }

    #[test]
    fn decode_oom_is_reported() {
        let mut m = mgr(1, true);
        let p = TokenBuf::from_segment(1, 16);
        let s = m.allocate(&p, t(0)).unwrap();
        let err = m.append_token(s, 1, t(1)).unwrap_err();
        assert!(matches!(err, AllocError::Insufficient { .. }));
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut m = mgr(32, true);
        let p = TokenBuf::from_segment(1, 64);
        let s = m.allocate(&p, t(0)).unwrap();
        m.free(s, t(1));
        let _ = m.allocate(&p, t(2)).unwrap();
        let st = m.stats();
        assert_eq!(st.hit_tokens, 63);
        assert_eq!(st.miss_tokens, 64 + 1);
        assert!((st.hit_rate() - 63.0 / 128.0).abs() < 1e-12);
        assert_eq!(st.sequences, 2);
    }

    #[test]
    fn usage_tracker_sees_peak() {
        let mut m = mgr(32, true);
        let p = TokenBuf::from_segment(1, 160); // 10 blocks
        let s = m.allocate(&p, t(0)).unwrap();
        m.free(s, t(1_000_000));
        assert_eq!(m.stats().used_blocks.peak(), 10);
        let avg = m.stats().used_blocks.average(t(2_000_000));
        assert!((avg - 5.0).abs() < 0.1, "avg {avg}");
    }

    #[test]
    fn revived_block_not_counted_available() {
        // Pool 4; cached prompt occupies all 4 evictable. A new prompt
        // sharing 2 blocks + needing 2 fresh must succeed (evicting the
        // 2 non-shared), exercising the revive-vs-evict accounting.
        let mut m = mgr(4, true);
        let mut p1 = TokenBuf::from_segment(1, 32);
        p1.push_segment(2, 32);
        let s1 = m.allocate(&p1, t(0)).unwrap();
        m.free(s1, t(1));
        let mut p2 = TokenBuf::from_segment(1, 32);
        p2.push_segment(3, 32);
        let s2 = m.allocate(&p2, t(2)).unwrap();
        assert_eq!(m.cached_tokens(&s2), 32);
        assert_eq!(m.stats().evictions, 2);
        m.check_invariants().unwrap();
    }

    #[test]
    fn import_accounts_tokens_without_hits_or_misses() {
        let mut m = mgr(16, true);
        let p = TokenBuf::from_segment(1, 40); // 2 full + 1 partial block
        let s = m.import(&p, t(0)).unwrap();
        assert_eq!(m.used_blocks(), 3);
        assert_eq!(m.seq_len(&s), 40);
        let st = m.stats();
        assert_eq!(st.imported_tokens, 40);
        assert_eq!(st.hit_tokens, 0);
        assert_eq!(st.miss_tokens, 0);
        assert_eq!(st.sequences, 1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn import_shares_resident_blocks() {
        let mut m = mgr(16, true);
        let p = TokenBuf::from_segment(1, 64);
        let s1 = m.allocate(&p, t(0)).unwrap();
        // The same content imported concurrently shares the 4 full blocks
        // (only the partial-tail rule differs: 64 is block-aligned).
        let s2 = m.import(&p, t(1)).unwrap();
        assert_eq!(m.used_blocks(), 4);
        assert_eq!(m.stats().imported_tokens, 64);
        m.free(s1, t(2));
        m.free(s2, t(3));
        m.check_invariants().unwrap();
    }

    #[test]
    fn export_counts_footprint_and_frees() {
        let mut m = mgr(16, true);
        let p = TokenBuf::from_segment(1, 48);
        let s = m.allocate(&p, t(0)).unwrap();
        let len = m.export(s, t(1));
        assert_eq!(len, 48);
        assert_eq!(m.stats().exported_tokens, 48);
        assert_eq!(m.live_sequences(), 0);
        // Hashed blocks stay evictable, exactly as `free` leaves them.
        assert_eq!(m.evictable_blocks(), 3);
        m.check_invariants().unwrap();
    }

    #[test]
    fn import_rejection_is_counted() {
        let mut m = mgr(2, true);
        let p = TokenBuf::from_segment(1, 64);
        let err = m.import(&p, t(0)).unwrap_err();
        assert!(matches!(err, AllocError::Insufficient { .. }));
        assert_eq!(m.stats().rejections, 1);
        assert_eq!(m.stats().imported_tokens, 0);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_prompt_panics() {
        let mut m = mgr(4, true);
        let _ = m.allocate(&TokenBuf::new(), t(0));
    }

    #[test]
    #[should_panic(expected = "unknown sequence handle")]
    fn double_free_panics() {
        let mut m = mgr(4, true);
        let p = TokenBuf::from_segment(1, 16);
        let s = m.allocate(&p, t(0)).unwrap();
        m.free(s, t(1));
        m.free(s, t(2));
    }

    #[test]
    #[should_panic(expected = "stale SeqHandle")]
    fn cached_tokens_on_freed_handle_panics() {
        let mut m = mgr(4, true);
        let p = TokenBuf::from_segment(1, 16);
        let s = m.allocate(&p, t(0)).unwrap();
        m.free(s, t(1));
        let _ = m.cached_tokens(&s);
    }

    #[test]
    #[should_panic(expected = "stale SeqHandle")]
    fn seq_len_on_freed_handle_panics() {
        let mut m = mgr(4, true);
        let p = TokenBuf::from_segment(1, 16);
        let s = m.allocate(&p, t(0)).unwrap();
        m.free(s, t(1));
        let _ = m.seq_len(&s);
    }

    #[test]
    fn try_accessors_report_staleness_instead() {
        let mut m = mgr(4, true);
        let p = TokenBuf::from_segment(1, 16);
        let s = m.allocate(&p, t(0)).unwrap();
        assert_eq!(m.try_cached_tokens(&s), Some(0));
        assert_eq!(m.try_seq_len(&s), Some(16));
        m.free(s, t(1));
        assert_eq!(m.try_cached_tokens(&s), None);
        assert_eq!(m.try_seq_len(&s), None);
    }

    mod offload {
        use super::*;
        use crate::hierarchy::{EvictionPolicy, OffloadSpec, Tier, TierDir, TierTransfer};

        fn tiered(blocks: u32, host: u32, nvme: u32, policy: EvictionPolicy) -> KvBlockManager {
            let mut m = mgr(blocks, true);
            m.enable_offload(OffloadSpec {
                host_blocks: host,
                nvme_blocks: nvme,
                policy,
            });
            m
        }

        #[test]
        fn eviction_demotes_instead_of_destroying() {
            let mut m = tiered(8, 8, 0, EvictionPolicy::Lru);
            let p1 = TokenBuf::from_segment(1, 64); // 4 blocks
            let s1 = m.allocate(&p1, t(0)).unwrap();
            m.free(s1, t(1));
            let p2 = TokenBuf::from_segment(2, 64);
            let s2 = m.allocate(&p2, t(2)).unwrap();
            m.free(s2, t(3));
            // Pool full of cached blocks; p3 evicts p1's four into host.
            let p3 = TokenBuf::from_segment(3, 64);
            let _s3 = m.allocate(&p3, t(4)).unwrap();
            assert_eq!(m.stats().evictions, 4);
            assert_eq!(m.stats().demoted_blocks_host, 4);
            assert_eq!(m.hierarchy().unwrap().host_resident(), 4);
            m.check_invariants().unwrap();
        }

        #[test]
        fn offloaded_prefix_promotes_and_counts_as_cached() {
            let mut m = tiered(8, 8, 0, EvictionPolicy::Lru);
            let p1 = TokenBuf::from_segment(1, 64);
            let s1 = m.allocate(&p1, t(0)).unwrap();
            m.free(s1, t(1));
            let p2 = TokenBuf::from_segment(2, 128); // 8 blocks: evicts all of p1
            let s2 = m.allocate(&p2, t(2)).unwrap();
            assert_eq!(m.stats().demoted_blocks_host, 4);
            m.free(s2, t(3));
            // p1 returns: its 4 blocks promote from host instead of
            // recomputing — same cached_tokens a pure HBM hit would give.
            let s1b = m.allocate(&p1, t(4)).unwrap();
            assert_eq!(m.cached_tokens(&s1b), 63);
            assert_eq!(m.stats().promoted_blocks_host, 4);
            assert_eq!(m.stats().promoted_tokens, 63);
            // p1's copies left the tier; the fresh blocks its readmission
            // needed evicted (and demoted) p2's four in turn.
            assert_eq!(m.hierarchy().unwrap().host_resident(), 4);
            // The transfer events carry both directions for the engine.
            let mut events = Vec::new();
            m.take_tier_transfers(&mut events);
            let promoted: u32 = events
                .iter()
                .filter(|e| e.dir == TierDir::Promote)
                .map(|e| e.blocks)
                .sum();
            assert_eq!(promoted, 4);
            m.check_invariants().unwrap();
        }

        #[test]
        fn promoted_tokens_are_a_subset_of_hits() {
            let mut m = tiered(8, 8, 0, EvictionPolicy::Lru);
            let p1 = TokenBuf::from_segment(1, 64);
            let s1 = m.allocate(&p1, t(0)).unwrap();
            m.free(s1, t(1));
            let p2 = TokenBuf::from_segment(2, 128);
            let s2 = m.allocate(&p2, t(2)).unwrap();
            m.free(s2, t(3));
            let _ = m.allocate(&p1, t(4)).unwrap();
            let st = m.stats();
            assert!(st.promoted_tokens <= st.hit_tokens);
            assert_eq!(st.hit_tokens + st.miss_tokens, 64 + 128 + 64);
        }

        #[test]
        fn zero_capacity_tiers_match_no_offload_exactly() {
            // The same op script against a plain pool and a zero-capacity
            // hierarchy: every observable (stats, block placement) agrees.
            let run = |m: &mut KvBlockManager| {
                let p1 = TokenBuf::from_segment(1, 64);
                let s1 = m.allocate(&p1, t(0)).unwrap();
                m.free(s1, t(1));
                let p2 = TokenBuf::from_segment(2, 128);
                let s2 = m.allocate(&p2, t(2)).unwrap();
                m.free(s2, t(3));
                let s3 = m.allocate(&p1, t(4)).unwrap();
                m.check_invariants().unwrap();
                (
                    m.cached_tokens(&s3),
                    m.stats().evictions,
                    m.stats().hit_tokens,
                    m.stats().miss_tokens,
                    m.free_blocks(),
                    m.evictable_blocks(),
                )
            };
            let mut plain = mgr(8, true);
            let mut zeroed = tiered(8, 0, 0, EvictionPolicy::InvocationDistance);
            assert_eq!(run(&mut plain), run(&mut zeroed));
            let st = zeroed.stats();
            assert_eq!(st.demoted_blocks_host + st.demoted_blocks_nvme, 0);
            assert_eq!(st.offload_dropped_blocks, 0);
            let mut events = Vec::new();
            zeroed.take_tier_transfers(&mut events);
            assert!(events.is_empty(), "zero-capacity tiers record no transfers");
        }

        #[test]
        fn recomputed_chain_invalidates_stale_tier_copy() {
            let mut m = tiered(4, 8, 0, EvictionPolicy::Lru);
            let p1 = TokenBuf::from_segment(1, 64);
            let s1 = m.allocate(&p1, t(0)).unwrap();
            m.free(s1, t(1));
            // Evict everything into host...
            let p2 = TokenBuf::from_segment(2, 64);
            let s2 = m.allocate(&p2, t(2)).unwrap();
            assert_eq!(m.hierarchy().unwrap().host_resident(), 4);
            m.free(s2, t(3));
            // ...then readmit p1: the four blocks promote back, leaving
            // no duplicate copies behind.
            let _ = m.allocate(&p1, t(4)).unwrap();
            assert_eq!(m.hierarchy().unwrap().host_resident(), 4); // p2's, demoted in turn
            m.check_invariants().unwrap();
        }

        #[test]
        fn distance_hints_spill_the_farthest_context_first() {
            let mut m = tiered(8, 0, 0, EvictionPolicy::InvocationDistance);
            let p1 = TokenBuf::from_segment(1, 64); // 4 blocks, freed older
            let s1 = m.allocate(&p1, t(0)).unwrap();
            m.free(s1, t(1));
            let p2 = TokenBuf::from_segment(2, 64); // 4 blocks, freed newer
            let s2 = m.allocate(&p2, t(2)).unwrap();
            m.free(s2, t(3));
            // p1 returns imminently, p2 only much later: a new prompt
            // evicts p2's blocks even though they are the younger ones
            // (LRU would have taken p1's).
            let hashes1 = p1.chain_hashes_cached(16).to_vec();
            let hashes2 = p2.chain_hashes_cached(16).to_vec();
            m.hint_next_use(&hashes1, t(4), t(1_000));
            m.hint_next_use(&hashes2, t(4), t(60_000_000));
            let p3 = TokenBuf::from_segment(3, 64);
            let _ = m.allocate(&p3, t(5)).unwrap();
            assert_eq!(m.count_hits(&hashes1), 4, "imminent blocks survived");
            assert_eq!(m.count_hits(&hashes2), 0, "far-future blocks evicted");
            m.check_invariants().unwrap();
        }

        #[test]
        fn unhinted_blocks_outrank_every_prediction() {
            // Unhinted content is assumed imminently reusable (a hot
            // shared prefix loses its prediction on every use), so even an
            // imminent hint spills before it.
            let mut m = tiered(8, 0, 0, EvictionPolicy::InvocationDistance);
            let p1 = TokenBuf::from_segment(1, 64); // freed older, unhinted
            let s1 = m.allocate(&p1, t(0)).unwrap();
            m.free(s1, t(1));
            let p2 = TokenBuf::from_segment(2, 64); // freed newer, hinted
            let s2 = m.allocate(&p2, t(2)).unwrap();
            m.free(s2, t(3));
            let hashes1 = p1.chain_hashes_cached(16).to_vec();
            let hashes2 = p2.chain_hashes_cached(16).to_vec();
            m.hint_next_use(&hashes2, t(4), t(1_000));
            let p3 = TokenBuf::from_segment(3, 64);
            let _ = m.allocate(&p3, t(5)).unwrap();
            assert_eq!(m.count_hits(&hashes1), 4, "unhinted blocks survived");
            assert_eq!(m.count_hits(&hashes2), 0, "hinted blocks spilled");
            m.check_invariants().unwrap();
        }

        #[test]
        fn lru_ignores_hints_entirely() {
            let mut m = tiered(8, 0, 0, EvictionPolicy::Lru);
            let p1 = TokenBuf::from_segment(1, 64);
            let s1 = m.allocate(&p1, t(0)).unwrap();
            m.free(s1, t(1));
            let p2 = TokenBuf::from_segment(2, 64);
            let s2 = m.allocate(&p2, t(2)).unwrap();
            m.free(s2, t(3));
            let hashes1 = p1.chain_hashes_cached(16).to_vec();
            m.hint_next_use(&hashes1, t(4), t(1_000));
            let p3 = TokenBuf::from_segment(3, 64);
            let _ = m.allocate(&p3, t(5)).unwrap();
            // Strict LRU: the older p1 blocks go first, hint or no hint.
            assert_eq!(m.count_hits(&hashes1), 0);
            m.check_invariants().unwrap();
        }

        #[test]
        fn admission_clears_consumed_predictions() {
            let mut m = tiered(8, 8, 0, EvictionPolicy::InvocationDistance);
            let p1 = TokenBuf::from_segment(1, 64);
            let s1 = m.allocate(&p1, t(0)).unwrap();
            m.free(s1, t(1));
            let hashes1 = p1.chain_hashes_cached(16).to_vec();
            m.hint_next_use(&hashes1, t(2), t(10));
            // The predicted invocation happens; the hint must not outlive it.
            let s1b = m.allocate(&p1, t(10)).unwrap();
            m.free(s1b, t(11));
            for h in &hashes1 {
                assert_eq!(m.hierarchy().unwrap().rank_for(*h), u64::MAX);
            }
            m.check_invariants().unwrap();
        }

        #[test]
        fn demote_cascade_reaches_nvme_through_the_manager() {
            let mut m = tiered(4, 2, 2, EvictionPolicy::Lru);
            for seed in 1..=3u64 {
                let p = TokenBuf::from_segment(seed, 64);
                let s = m.allocate(&p, t(seed)).unwrap();
                m.free(s, t(seed * 10));
            }
            // Three 4-block prompts through a 4-block pool: 8 evictions,
            // host holds 2, nvme 2, the rest fell off the bottom.
            let st = m.stats();
            assert_eq!(st.evictions, 8);
            assert_eq!(m.hierarchy().unwrap().host_resident(), 2);
            assert_eq!(m.hierarchy().unwrap().nvme_resident(), 2);
            assert_eq!(st.offload_dropped_blocks, 4);
            assert_eq!(st.host_peak_blocks, 2);
            assert_eq!(st.nvme_peak_blocks, 2);
            m.check_invariants().unwrap();
            let mut events = Vec::new();
            m.take_tier_transfers(&mut events);
            assert!(events.contains(&TierTransfer {
                tier: Tier::Nvme,
                dir: TierDir::Demote,
                blocks: 1
            }));
        }

        #[test]
        #[should_panic(expected = "before any traffic")]
        fn late_offload_enable_rejected() {
            let mut m = mgr(8, true);
            let p = TokenBuf::from_segment(1, 16);
            let _ = m.allocate(&p, t(0)).unwrap();
            m.enable_offload(OffloadSpec {
                host_blocks: 4,
                nvme_blocks: 0,
                policy: EvictionPolicy::Lru,
            });
        }

        #[test]
        #[should_panic(expected = "requires prefix caching")]
        fn offload_without_prefix_caching_rejected() {
            let mut m = mgr(8, false);
            m.enable_offload(OffloadSpec {
                host_blocks: 4,
                nvme_blocks: 0,
                policy: EvictionPolicy::Lru,
            });
        }
    }
}
