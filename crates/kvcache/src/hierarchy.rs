//! HBM → host-DRAM → NVMe offload tiers for idle-session KV.
//!
//! Agentic sessions spend most of their wall-clock *waiting* — on tool
//! calls, client think time, and turn gaps — while their KV squats in HBM
//! doing nothing. The [`MemoryHierarchy`] gives the block manager two
//! lower tiers to spill into: when memory pressure evicts a cached block
//! from HBM, its content (identified by chain hash, exactly like the
//! prefix cache) is *demoted* into host DRAM instead of destroyed, and
//! cascades on to NVMe when host fills. A later prompt whose prefix lives
//! in a lower tier *promotes* it back — paying modeled transfer time
//! instead of recompute.
//!
//! The hierarchy itself is sans-IO: it records [`TierTransfer`] events and
//! leaves pricing to the engine, which replays them through the
//! [`LinkSpec`](https://docs.rs/agentsim-gpu) interconnect model
//! (`pcie_host` for HBM↔host, `nvme` for host↔NVMe). Demotes are
//! asynchronous (the link is occupied but no step waits); promotes gate
//! admission, extending the admitting prefill step — the TTFT toll of a
//! cold tier.
//!
//! Eviction order within HBM and within each tier is set by
//! [`EvictionPolicy`]:
//!
//! * [`EvictionPolicy::Lru`] — the baseline: least-recently-used first.
//! * [`EvictionPolicy::InvocationDistance`] — ScaleSim-style: the session
//!   layer knows *exactly* when an idle session returns (tool-call wake
//!   time, closed-loop think time), and hints the hierarchy with the
//!   predicted next-invocation time per chain hash. Content with no
//!   prediction is evicted first (an ended session never comes back),
//!   then content predicted farthest in the future; LRU order breaks
//!   ties. With no hints at all the policy degenerates to exact LRU.

use std::collections::{BTreeSet, HashMap};

use agentsim_simkit::SimTime;

use crate::stats::KvStats;

/// An offload tier below HBM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Host DRAM, reachable over the GPU's PCIe DMA path.
    Host,
    /// NVMe flash below host DRAM.
    Nvme,
}

impl Tier {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Host => "host",
            Tier::Nvme => "nvme",
        }
    }
}

/// Direction of a tier transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierDir {
    /// HBM (or a higher tier) spilling down.
    Demote,
    /// A lower tier restoring content into HBM.
    Promote,
}

/// One recorded block movement, priced later by the engine. `tier` names
/// the link the bytes cross: `Host` transfers ride the GPU↔host DMA path,
/// `Nvme` transfers the host↔NVMe path (including host-tier overflow
/// spilling down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierTransfer {
    /// Which link the transfer crosses.
    pub tier: Tier,
    /// Demotion (spill) or promotion (restore).
    pub dir: TierDir,
    /// Whole KV blocks moved.
    pub blocks: u32,
}

/// How eviction victims are ranked, in HBM and within each tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Least-recently-used first (the vLLM baseline).
    #[default]
    Lru,
    /// Predicted next-invocation distance (Belady over session hints):
    /// farthest-predicted-next-use first. Unhinted content is treated as
    /// imminently reusable — a hot shared prefix loses its prediction the
    /// moment it is re-used, and punishing that would evict exactly the
    /// blocks every session needs — so it is evicted last, in LRU order.
    InvocationDistance,
}

/// Sizing and policy of the offload tiers, in whole KV blocks.
///
/// A zero-capacity tier is skipped in the demote cascade; with both tiers
/// at zero the hierarchy never retains anything, records no transfers, and
/// the manager behaves bit-identically to one with no hierarchy at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloadSpec {
    /// Host-DRAM tier capacity in blocks.
    pub host_blocks: u32,
    /// NVMe tier capacity in blocks.
    pub nvme_blocks: u32,
    /// Victim ranking, shared by HBM and both tiers.
    pub policy: EvictionPolicy,
}

/// Entries evicted sooner sort lower. A prediction at absolute
/// microsecond `t` ranks `u64::MAX - t`, so nearer predictions rank
/// higher and survive longer; unhinted content ranks `u64::MAX` (assumed
/// imminent, evicted last). Under LRU everything ranks 0 and the stamp
/// (recency) decides alone.
type Rank = u64;

/// One tier's content set, ordered for eviction.
#[derive(Debug, Default)]
struct TierState {
    capacity: u32,
    /// chain hash -> (rank, stamp) as currently keyed in `order`.
    entries: HashMap<u64, (Rank, u64)>,
    /// (rank, stamp, hash): the minimum is the next victim. Stamps are
    /// unique per insertion, so ties resolve FIFO and deterministically.
    order: BTreeSet<(Rank, u64, u64)>,
}

impl TierState {
    fn insert(&mut self, hash: u64, rank: Rank, stamp: u64) {
        let prev = self.entries.insert(hash, (rank, stamp));
        debug_assert!(prev.is_none(), "hash {hash:#x} already in tier");
        self.order.insert((rank, stamp, hash));
    }

    fn remove(&mut self, hash: u64) -> bool {
        match self.entries.remove(&hash) {
            Some((rank, stamp)) => {
                self.order.remove(&(rank, stamp, hash));
                true
            }
            None => false,
        }
    }

    /// Removes and returns the lowest-ranked entry's hash.
    fn pop_victim(&mut self) -> Option<u64> {
        let &(rank, stamp, hash) = self.order.iter().next()?;
        self.order.remove(&(rank, stamp, hash));
        self.entries.remove(&hash);
        Some(hash)
    }

    fn rekey(&mut self, hash: u64, rank: Rank) {
        if let Some(&(old_rank, stamp)) = self.entries.get(&hash) {
            if old_rank != rank {
                self.order.remove(&(old_rank, stamp, hash));
                self.order.insert((rank, stamp, hash));
                self.entries.insert(hash, (rank, stamp));
            }
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The offload tiers below HBM. Owned by the block manager; content is
/// keyed by chain hash (the same identity the prefix cache uses), so a
/// hash lives in exactly one place — the HBM prefix cache, the host tier,
/// or the NVMe tier.
#[derive(Debug)]
pub struct MemoryHierarchy {
    spec: OffloadSpec,
    host: TierState,
    nvme: TierState,
    /// chain hash -> predicted next-invocation time (absolute micros),
    /// fed by the session layer via hints.
    pred: HashMap<u64, u64>,
    /// Monotonic insertion counter for deterministic tie-breaks.
    stamp: u64,
    /// Transfers recorded since the last drain, in occurrence order.
    events: Vec<TierTransfer>,
}

impl MemoryHierarchy {
    /// Builds the tiers per `spec`.
    pub fn new(spec: OffloadSpec) -> Self {
        MemoryHierarchy {
            spec,
            host: TierState {
                capacity: spec.host_blocks,
                ..TierState::default()
            },
            nvme: TierState {
                capacity: spec.nvme_blocks,
                ..TierState::default()
            },
            pred: HashMap::new(),
            stamp: 0,
            events: Vec::new(),
        }
    }

    /// The configured sizing and policy.
    pub fn spec(&self) -> OffloadSpec {
        self.spec
    }

    /// The victim-ranking policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.spec.policy
    }

    /// Eviction rank for `hash` under the current policy and predictions.
    pub fn rank_for(&self, hash: u64) -> Rank {
        match self.spec.policy {
            EvictionPolicy::Lru => 0,
            EvictionPolicy::InvocationDistance => {
                self.pred.get(&hash).map_or(u64::MAX, |&at| u64::MAX - at)
            }
        }
    }

    /// Which tier holds `hash`, if any.
    pub fn tier_of(&self, hash: u64) -> Option<Tier> {
        if self.host.entries.contains_key(&hash) {
            Some(Tier::Host)
        } else if self.nvme.entries.contains_key(&hash) {
            Some(Tier::Nvme)
        } else {
            None
        }
    }

    /// Blocks currently resident in the host tier.
    pub fn host_resident(&self) -> usize {
        self.host.len()
    }

    /// Blocks currently resident in the NVMe tier.
    pub fn nvme_resident(&self) -> usize {
        self.nvme.len()
    }

    /// Spills an HBM-evicted block's content into the hierarchy,
    /// cascading host → NVMe → dropped. Records the transfers and updates
    /// `stats` (demote counters, occupancy peaks, drops).
    pub fn demote(&mut self, hash: u64, stats: &mut KvStats) {
        debug_assert!(
            self.tier_of(hash).is_none(),
            "demoting {hash:#x} which is already offloaded"
        );
        if self.host.capacity > 0 {
            if self.host.len() as u32 >= self.host.capacity {
                let victim = self.host.pop_victim().expect("full tier has a victim");
                self.spill_to_nvme(victim, stats);
            }
            let (rank, stamp) = self.fresh_key(hash);
            self.host.insert(hash, rank, stamp);
            self.events.push(TierTransfer {
                tier: Tier::Host,
                dir: TierDir::Demote,
                blocks: 1,
            });
            stats.demoted_blocks_host += 1;
            stats.host_peak_blocks = stats.host_peak_blocks.max(self.host.len() as u64);
        } else {
            self.spill_to_nvme(hash, stats);
        }
    }

    /// Host-tier overflow (or a demote with no host tier) landing on NVMe.
    fn spill_to_nvme(&mut self, hash: u64, stats: &mut KvStats) {
        if self.nvme.capacity == 0 {
            // Nowhere left to spill. Content that was resident in a tier
            // counts as dropped; with both tiers at zero capacity nothing
            // was ever resident, so nothing is counted and the hierarchy
            // is a no-op.
            if self.host.capacity > 0 {
                stats.offload_dropped_blocks += 1;
            }
            self.pred.remove(&hash);
            return;
        }
        if self.nvme.len() as u32 >= self.nvme.capacity {
            let victim = self.nvme.pop_victim().expect("full tier has a victim");
            stats.offload_dropped_blocks += 1;
            self.pred.remove(&victim);
        }
        let (rank, stamp) = self.fresh_key(hash);
        self.nvme.insert(hash, rank, stamp);
        self.events.push(TierTransfer {
            tier: Tier::Nvme,
            dir: TierDir::Demote,
            blocks: 1,
        });
        stats.demoted_blocks_nvme += 1;
        stats.nvme_peak_blocks = stats.nvme_peak_blocks.max(self.nvme.len() as u64);
    }

    /// Removes `hash` from whichever tier holds it, returning the tier.
    /// Used both for promotion (the caller records the transfer) and to
    /// invalidate a stale copy when the same content is recomputed fresh
    /// in HBM — keeping every hash resident in exactly one place.
    pub fn take(&mut self, hash: u64) -> Option<Tier> {
        if self.host.remove(hash) {
            Some(Tier::Host)
        } else if self.nvme.remove(hash) {
            Some(Tier::Nvme)
        } else {
            None
        }
    }

    /// Records a coalesced promotion transfer of `blocks` from `tier`.
    pub fn record_promote(&mut self, tier: Tier, blocks: u32, stats: &mut KvStats) {
        if blocks == 0 {
            return;
        }
        self.events.push(TierTransfer {
            tier,
            dir: TierDir::Promote,
            blocks,
        });
        match tier {
            Tier::Host => stats.promoted_blocks_host += blocks as u64,
            Tier::Nvme => stats.promoted_blocks_nvme += blocks as u64,
        }
    }

    /// Sets the predicted next-invocation time for `hash` and re-ranks it
    /// wherever it is offloaded. (The manager re-ranks HBM-resident copies
    /// itself — it owns that order.)
    pub fn hint(&mut self, hash: u64, at: SimTime) {
        self.pred.insert(hash, at.as_micros());
        if self.spec.policy == EvictionPolicy::InvocationDistance {
            let rank = self.rank_for(hash);
            self.host.rekey(hash, rank);
            self.nvme.rekey(hash, rank);
        }
    }

    /// Clears the prediction for `hash` — its invocation has happened.
    /// Without this, an ended session's last hint would keep its blocks
    /// looking imminently useful forever.
    pub fn clear_pred(&mut self, hash: u64) {
        self.pred.remove(&hash);
    }

    /// Drops predictions that expired before `now`, once the map outgrows
    /// the tier working set. The outcome depends only on map contents and
    /// `now`, never on iteration order, so it is deterministic.
    pub fn prune_pred(&mut self, now: SimTime) {
        let watermark = 2 * (self.spec.host_blocks + self.spec.nvme_blocks) as usize + 1024;
        if self.pred.len() > watermark {
            let now_us = now.as_micros();
            self.pred.retain(|_, &mut at| at >= now_us);
        }
    }

    /// Drains the transfers recorded since the last call, in order.
    pub fn take_transfers(&mut self, out: &mut Vec<TierTransfer>) {
        out.append(&mut self.events);
    }

    /// Whether any transfers are pending drain.
    pub fn has_transfers(&self) -> bool {
        !self.events.is_empty()
    }

    fn fresh_key(&mut self, hash: u64) -> (Rank, u64) {
        self.stamp += 1;
        (self.rank_for(hash), self.stamp)
    }

    /// Internal-consistency check, composed into
    /// [`crate::KvBlockManager::check_invariants`]: capacities respected,
    /// order sets exactly mirror the entry maps, and no hash in two tiers.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (tier, state) in [(Tier::Host, &self.host), (Tier::Nvme, &self.nvme)] {
            if state.len() as u32 > state.capacity {
                return Err(format!(
                    "{} tier holds {} blocks over capacity {}",
                    tier.name(),
                    state.len(),
                    state.capacity
                ));
            }
            if state.order.len() != state.entries.len() {
                return Err(format!(
                    "{} tier order set has {} keys for {} entries",
                    tier.name(),
                    state.order.len(),
                    state.entries.len()
                ));
            }
            for (&hash, &(rank, stamp)) in &state.entries {
                if !state.order.contains(&(rank, stamp, hash)) {
                    return Err(format!(
                        "{} tier entry {hash:#x} missing from the order set",
                        tier.name()
                    ));
                }
            }
        }
        for hash in self.host.entries.keys() {
            if self.nvme.entries.contains_key(hash) {
                return Err(format!("hash {hash:#x} resident in both host and nvme"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(host: u32, nvme: u32, policy: EvictionPolicy) -> OffloadSpec {
        OffloadSpec {
            host_blocks: host,
            nvme_blocks: nvme,
            policy,
        }
    }

    fn demote_n(h: &mut MemoryHierarchy, stats: &mut KvStats, hashes: &[u64]) {
        for &hash in hashes {
            h.demote(hash, stats);
            h.check_invariants().unwrap();
        }
    }

    #[test]
    fn demote_cascades_host_to_nvme_to_dropped() {
        let mut h = MemoryHierarchy::new(spec(2, 2, EvictionPolicy::Lru));
        let mut stats = KvStats::default();
        demote_n(&mut h, &mut stats, &[1, 2, 3, 4, 5]);
        // Host keeps the 2 newest, NVMe the 2 pushed down, 1 fell off.
        assert_eq!(h.host_resident(), 2);
        assert_eq!(h.nvme_resident(), 2);
        assert_eq!(h.tier_of(4), Some(Tier::Host));
        assert_eq!(h.tier_of(5), Some(Tier::Host));
        assert_eq!(h.tier_of(2), Some(Tier::Nvme));
        assert_eq!(h.tier_of(3), Some(Tier::Nvme));
        assert_eq!(h.tier_of(1), None, "oldest dropped off nvme");
        assert_eq!(stats.demoted_blocks_host, 5);
        assert_eq!(stats.demoted_blocks_nvme, 3);
        assert_eq!(stats.offload_dropped_blocks, 1);
        assert_eq!(stats.host_peak_blocks, 2);
        assert_eq!(stats.nvme_peak_blocks, 2);
    }

    #[test]
    fn zero_capacity_hierarchy_is_a_no_op() {
        let mut h = MemoryHierarchy::new(spec(0, 0, EvictionPolicy::Lru));
        let mut stats = KvStats::default();
        demote_n(&mut h, &mut stats, &[1, 2, 3]);
        assert_eq!(h.host_resident(), 0);
        assert_eq!(h.nvme_resident(), 0);
        assert!(!h.has_transfers());
        assert_eq!(stats.demoted_blocks_host, 0);
        assert_eq!(stats.offload_dropped_blocks, 0);
    }

    #[test]
    fn host_only_hierarchy_drops_overflow() {
        let mut h = MemoryHierarchy::new(spec(1, 0, EvictionPolicy::Lru));
        let mut stats = KvStats::default();
        demote_n(&mut h, &mut stats, &[1, 2]);
        assert_eq!(h.tier_of(2), Some(Tier::Host));
        assert_eq!(h.tier_of(1), None);
        assert_eq!(stats.offload_dropped_blocks, 1);
    }

    #[test]
    fn take_removes_from_either_tier() {
        let mut h = MemoryHierarchy::new(spec(1, 1, EvictionPolicy::Lru));
        let mut stats = KvStats::default();
        demote_n(&mut h, &mut stats, &[1, 2]); // 1 spills to nvme, 2 in host
        assert_eq!(h.take(2), Some(Tier::Host));
        assert_eq!(h.take(1), Some(Tier::Nvme));
        assert_eq!(h.take(3), None);
        assert_eq!(h.host_resident() + h.nvme_resident(), 0);
        h.check_invariants().unwrap();
    }

    #[test]
    fn lru_victims_leave_in_insertion_order() {
        let mut h = MemoryHierarchy::new(spec(4, 0, EvictionPolicy::Lru));
        let mut stats = KvStats::default();
        demote_n(&mut h, &mut stats, &[10, 20, 30, 40]);
        assert_eq!(h.host.pop_victim(), Some(10));
        assert_eq!(h.host.pop_victim(), Some(20));
        assert_eq!(h.host.pop_victim(), Some(30));
        assert_eq!(h.host.pop_victim(), Some(40));
    }

    #[test]
    fn invocation_distance_evicts_farthest_first_and_unhinted_last() {
        let mut h = MemoryHierarchy::new(spec(4, 0, EvictionPolicy::InvocationDistance));
        let mut stats = KvStats::default();
        h.hint(20, SimTime::from_micros(5_000)); // returns soon
        h.hint(30, SimTime::from_micros(9_000_000)); // returns much later
        demote_n(&mut h, &mut stats, &[10, 20, 30, 40]);
        // Farthest prediction (30) goes first, then the imminent 20.
        // Unhinted 10 and 40 are assumed imminently reusable: out last,
        // in insertion order among themselves.
        assert_eq!(h.host.pop_victim(), Some(30));
        assert_eq!(h.host.pop_victim(), Some(20));
        assert_eq!(h.host.pop_victim(), Some(10));
        assert_eq!(h.host.pop_victim(), Some(40));
    }

    #[test]
    fn late_hint_rekeys_resident_entries() {
        let mut h = MemoryHierarchy::new(spec(2, 0, EvictionPolicy::InvocationDistance));
        let mut stats = KvStats::default();
        demote_n(&mut h, &mut stats, &[1, 2]);
        // Both unhinted: 1 (older) would go first. A hint that 2 returns
        // far in the future re-keys it ahead of 1 in the victim order.
        h.hint(2, SimTime::from_micros(9_000_000));
        h.check_invariants().unwrap();
        h.demote(3, &mut stats);
        assert_eq!(h.tier_of(1), Some(Tier::Host));
        assert_eq!(h.tier_of(2), None);
        h.check_invariants().unwrap();
    }

    #[test]
    fn hints_are_inert_under_lru() {
        let mut h = MemoryHierarchy::new(spec(2, 0, EvictionPolicy::Lru));
        let mut stats = KvStats::default();
        demote_n(&mut h, &mut stats, &[1, 2]);
        h.hint(1, SimTime::from_micros(100));
        h.demote(3, &mut stats);
        // LRU ignores the hint: 1 is still the oldest and still the victim.
        assert_eq!(h.tier_of(1), None);
        assert_eq!(h.tier_of(2), Some(Tier::Host));
    }

    #[test]
    fn cleared_prediction_reverts_to_unhinted() {
        let mut h = MemoryHierarchy::new(spec(8, 0, EvictionPolicy::InvocationDistance));
        h.hint(7, SimTime::from_micros(42));
        assert_eq!(h.rank_for(7), u64::MAX - 42);
        h.clear_pred(7);
        assert_eq!(h.rank_for(7), u64::MAX, "unhinted is assumed imminent");
    }

    #[test]
    fn transfers_drain_in_occurrence_order() {
        let mut h = MemoryHierarchy::new(spec(1, 1, EvictionPolicy::Lru));
        let mut stats = KvStats::default();
        demote_n(&mut h, &mut stats, &[1, 2]);
        h.record_promote(Tier::Host, 3, &mut stats);
        let mut out = Vec::new();
        h.take_transfers(&mut out);
        assert_eq!(
            out,
            vec![
                TierTransfer {
                    tier: Tier::Host,
                    dir: TierDir::Demote,
                    blocks: 1
                },
                TierTransfer {
                    tier: Tier::Nvme,
                    dir: TierDir::Demote,
                    blocks: 1
                },
                TierTransfer {
                    tier: Tier::Host,
                    dir: TierDir::Demote,
                    blocks: 1
                },
                TierTransfer {
                    tier: Tier::Host,
                    dir: TierDir::Promote,
                    blocks: 3
                },
            ]
        );
        assert!(!h.has_transfers());
        assert_eq!(stats.promoted_blocks_host, 3);
    }

    #[test]
    fn prune_drops_only_expired_predictions() {
        let mut h = MemoryHierarchy::new(spec(0, 0, EvictionPolicy::InvocationDistance));
        // Fill past the watermark (2*(0+0)+1024).
        for i in 0..2000u64 {
            h.hint(i, SimTime::from_micros(i));
        }
        h.prune_pred(SimTime::from_micros(1_500));
        assert_eq!(h.rank_for(100), u64::MAX, "expired prediction pruned");
        assert_eq!(
            h.rank_for(1_900),
            u64::MAX - 1_900,
            "future prediction kept"
        );
    }
}
