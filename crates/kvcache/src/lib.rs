//! Paged KV-cache management with automatic prefix caching.
//!
//! A faithful, event-level model of vLLM's block manager:
//!
//! * GPU memory reserved for KV cache is divided into fixed-size **blocks**
//!   ([`block::BlockId`], default 16 tokens),
//! * each sequence owns a **block table**; full blocks are content-hashed
//!   by their token chain ([`hash`]),
//! * a **prefix cache** maps chain hashes to resident blocks, so a new
//!   sequence whose prompt shares a prefix with earlier traffic reuses
//!   those blocks instead of recomputing them,
//! * blocks whose reference count drops to zero stay cached and become
//!   **evictable** (LRU), reproducing vLLM's automatic prefix caching and
//!   — under memory pressure — its cache-thrashing behaviour (the paper's
//!   Fig. 17).
//!
//! # Example
//!
//! ```
//! use agentsim_kvcache::{KvBlockManager, KvConfig, TokenBuf};
//! use agentsim_simkit::SimTime;
//!
//! let mut mgr = KvBlockManager::new(KvConfig { num_blocks: 64, block_size: 16, prefix_caching: true });
//! let prompt = TokenBuf::from_segment(1, 64);
//! let seq = mgr.allocate(&prompt, SimTime::ZERO).expect("fits");
//! assert_eq!(mgr.cached_tokens(&seq), 0, "cold cache");
//! mgr.free(seq, SimTime::ZERO);
//!
//! // Same prompt again: the prefix cache covers everything except the
//! // final token, which is recomputed so the model has logits to sample.
//! let seq2 = mgr.allocate(&prompt, SimTime::from_micros(1)).expect("fits");
//! assert_eq!(mgr.cached_tokens(&seq2), 63);
//! ```

pub mod block;
pub mod hash;
pub mod hierarchy;
pub mod manager;
pub mod stats;
pub mod tokens;

pub use block::BlockId;
pub use hierarchy::{EvictionPolicy, MemoryHierarchy, OffloadSpec, Tier, TierDir, TierTransfer};
pub use manager::{AllocError, KvBlockManager, KvConfig, SeqHandle};
pub use stats::KvStats;
pub use tokens::{Token, TokenBuf};
