//! Content-identified token streams.
//!
//! The simulator never stores text. A token is an opaque `u64` *content id*
//! derived deterministically from a segment seed and position, so two
//! prompts built from the same segments produce identical token streams —
//! which is exactly what prefix caching needs to detect sharing.

use std::cell::{Ref, RefCell};
use std::fmt;
use std::hash::{Hash, Hasher};

use agentsim_simkit::rng::splitmix64;

use crate::hash::{chain_hash, CHAIN_ROOT};

/// An opaque token content id.
pub type Token = u64;

/// Memoized chain hashes of the stream's leading full blocks.
///
/// Token streams are append-only (except [`TokenBuf::truncate`]), so block
/// hashes computed once stay valid for the stream's whole life: appends
/// only ever add *new* full blocks behind the ones already hashed. The
/// cache is filled lazily by [`TokenBuf::chain_hashes_cached`] and extended
/// incrementally from the last cached hash, making repeated hashing of a
/// growing stream O(new tokens) instead of O(total tokens).
#[derive(Debug, Clone)]
struct HashCache {
    block_size: usize,
    hashes: Vec<u64>,
}

/// An owned, growable token stream.
///
/// Prompts are assembled by concatenating *segments* (instruction blocks,
/// few-shot examples, user queries, tool responses). Each segment is a pure
/// function of its seed, so equal segments yield equal token runs.
///
/// # Example
///
/// ```
/// use agentsim_kvcache::TokenBuf;
///
/// let mut prompt = TokenBuf::new();
/// prompt.push_segment(0xFEED, 8);   // instruction
/// prompt.push_segment(0xBEEF, 4);   // user query
/// assert_eq!(prompt.len(), 12);
///
/// let same = {
///     let mut p = TokenBuf::new();
///     p.push_segment(0xFEED, 8);
///     p.push_segment(0xBEEF, 4);
///     p
/// };
/// assert_eq!(prompt, same);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TokenBuf {
    tokens: Vec<Token>,
    /// Lazily filled block-hash prefix cache; identity is `tokens` alone
    /// (equality/hashing ignore it, `Clone` carries it along).
    hash_cache: RefCell<Option<HashCache>>,
}

impl TokenBuf {
    /// Creates an empty stream.
    pub fn new() -> Self {
        TokenBuf::default()
    }

    /// Creates an empty stream with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TokenBuf {
            tokens: Vec::with_capacity(capacity),
            hash_cache: RefCell::new(None),
        }
    }

    /// Creates a stream holding one whole segment.
    pub fn from_segment(seed: u64, len: u32) -> Self {
        let mut buf = TokenBuf::with_capacity(len as usize);
        buf.push_segment(seed, len);
        buf
    }

    /// Appends `len` tokens of the segment identified by `seed`.
    pub fn push_segment(&mut self, seed: u64, len: u32) {
        self.tokens
            .extend((0..len as u64).map(|i| segment_token(seed, i)));
    }

    /// Appends a single freshly generated token (decode output); the token
    /// id is derived from `(seed, index)` so re-runs are reproducible.
    pub fn push_generated(&mut self, seed: u64, index: u64) {
        self.tokens.push(generated_token(seed, index));
    }

    /// Appends all tokens of another stream.
    pub fn push_buf(&mut self, other: &TokenBuf) {
        self.tokens.extend_from_slice(&other.tokens);
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The raw token ids.
    pub fn as_slice(&self) -> &[Token] {
        &self.tokens
    }

    /// Iterates over token ids.
    pub fn iter(&self) -> std::slice::Iter<'_, Token> {
        self.tokens.iter()
    }

    /// Truncates to the first `len` tokens (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.tokens.truncate(len);
        // Hashes of surviving full blocks stay valid; drop the rest.
        if let Some(cache) = self.hash_cache.get_mut() {
            cache.hashes.truncate(len / cache.block_size);
        }
    }

    /// The chain hashes of every leading *full* block, memoized.
    ///
    /// Equivalent to [`crate::hash::chain_hashes`]`(self.as_slice(),
    /// block_size)` but O(tokens appended since the last call) instead of
    /// O(all tokens): the cache persists across calls (and across
    /// `Clone`) and is extended incrementally from the last cached hash.
    /// Switching `block_size` between calls discards and rebuilds it.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn chain_hashes_cached(&self, block_size: usize) -> Ref<'_, [u64]> {
        assert!(block_size > 0, "block size must be positive");
        let want = self.tokens.len() / block_size;
        let fresh = self
            .hash_cache
            .borrow()
            .as_ref()
            .is_some_and(|c| c.block_size == block_size && c.hashes.len() == want);
        if !fresh {
            let mut slot = self.hash_cache.borrow_mut();
            let cache = match slot.as_mut() {
                Some(c) if c.block_size == block_size => c,
                _ => slot.insert(HashCache {
                    block_size,
                    hashes: Vec::with_capacity(want),
                }),
            };
            let mut parent = cache.hashes.last().copied().unwrap_or(CHAIN_ROOT);
            for block in cache.hashes.len()..want {
                parent = chain_hash(
                    parent,
                    &self.tokens[block * block_size..(block + 1) * block_size],
                );
                cache.hashes.push(parent);
            }
        }
        Ref::map(self.hash_cache.borrow(), |c| {
            c.as_ref().map_or(&[][..], |i| i.hashes.as_slice())
        })
    }
}

// Equality, ordering and hashing are defined by the token stream alone;
// the memoized hash cache is derived state.
impl PartialEq for TokenBuf {
    fn eq(&self, other: &Self) -> bool {
        self.tokens == other.tokens
    }
}

impl Eq for TokenBuf {}

impl Hash for TokenBuf {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.tokens.hash(state);
    }
}

impl Extend<Token> for TokenBuf {
    fn extend<I: IntoIterator<Item = Token>>(&mut self, iter: I) {
        self.tokens.extend(iter);
    }
}

impl FromIterator<Token> for TokenBuf {
    fn from_iter<I: IntoIterator<Item = Token>>(iter: I) -> Self {
        TokenBuf::from(iter.into_iter().collect::<Vec<Token>>())
    }
}

impl From<Vec<Token>> for TokenBuf {
    fn from(tokens: Vec<Token>) -> Self {
        TokenBuf {
            tokens,
            hash_cache: RefCell::new(None),
        }
    }
}

impl AsRef<[Token]> for TokenBuf {
    fn as_ref(&self) -> &[Token] {
        &self.tokens
    }
}

impl fmt::Display for TokenBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TokenBuf[{} tokens]", self.tokens.len())
    }
}

/// The `i`-th token of the segment identified by `seed`.
pub fn segment_token(seed: u64, i: u64) -> Token {
    splitmix64(splitmix64(seed) ^ i)
}

/// The `i`-th *generated* (decode-output) token for generation stream
/// `seed`. Used by both the engine (as it appends KV entries during
/// decode) and the agents (as they replay the same output into the next
/// call's prompt), so history blocks hash identically across calls.
pub fn generated_token(seed: u64, i: u64) -> Token {
    segment_token(seed ^ 0xD1CE, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_are_deterministic() {
        let a = TokenBuf::from_segment(42, 100);
        let b = TokenBuf::from_segment(42, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TokenBuf::from_segment(1, 32);
        let b = TokenBuf::from_segment(2, 32);
        assert_ne!(a, b);
    }

    #[test]
    fn concatenation_preserves_prefix() {
        let mut a = TokenBuf::from_segment(7, 20);
        let prefix = a.clone();
        a.push_segment(8, 10);
        assert_eq!(&a.as_slice()[..20], prefix.as_slice());
        assert_eq!(a.len(), 30);
    }

    #[test]
    fn generated_tokens_are_reproducible_but_fresh() {
        let mut a = TokenBuf::new();
        a.push_generated(5, 0);
        a.push_generated(5, 1);
        let mut b = TokenBuf::new();
        b.push_generated(5, 0);
        b.push_generated(5, 1);
        assert_eq!(a, b);
        assert_ne!(a.as_slice()[0], a.as_slice()[1]);
        // Generated tokens differ from segment tokens of the same seed.
        assert_ne!(a.as_slice()[0], segment_token(5, 0));
    }

    #[test]
    fn push_buf_and_collect() {
        let a = TokenBuf::from_segment(1, 4);
        let mut b = TokenBuf::new();
        b.push_buf(&a);
        b.push_buf(&a);
        assert_eq!(b.len(), 8);
        let c: TokenBuf = a.iter().copied().collect();
        assert_eq!(c, a);
    }

    #[test]
    fn truncate_shortens() {
        let mut a = TokenBuf::from_segment(1, 10);
        a.truncate(4);
        assert_eq!(a.len(), 4);
        a.truncate(100);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn display_reports_length() {
        assert_eq!(
            TokenBuf::from_segment(1, 3).to_string(),
            "TokenBuf[3 tokens]"
        );
    }
}
