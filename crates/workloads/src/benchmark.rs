//! Benchmark identities and their Table II descriptions.

use std::fmt;

use agentsim_tools::ToolKind;

/// The paper's evaluation workloads (its Table II), plus the non-agentic
/// ShareGPT chatbot baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Multi-hop question answering over Wikipedia.
    HotpotQa,
    /// Online-shopping decision making over a local web store.
    WebShop,
    /// Competition mathematics with Wolfram/calculator tools.
    Math,
    /// Program synthesis with self-generated test execution.
    HumanEval,
    /// Single-turn chatbot conversations (non-agentic baseline).
    ShareGpt,
}

impl Benchmark {
    /// The four agentic benchmarks, in the paper's order.
    pub const AGENTIC: [Benchmark; 4] = [
        Benchmark::HotpotQa,
        Benchmark::WebShop,
        Benchmark::Math,
        Benchmark::HumanEval,
    ];

    /// All workloads including the chatbot baseline.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::HotpotQa,
        Benchmark::WebShop,
        Benchmark::Math,
        Benchmark::HumanEval,
        Benchmark::ShareGpt,
    ];

    /// Short description of the task (Table II).
    pub fn task_description(self) -> &'static str {
        match self {
            Benchmark::HotpotQa => "Multi-hop question answering",
            Benchmark::WebShop => "Online shopping",
            Benchmark::Math => "Math problem solving",
            Benchmark::HumanEval => "Programming",
            Benchmark::ShareGpt => "Single-turn chatbot dialogue",
        }
    }

    /// Tools available on this benchmark (Table II).
    pub fn tools(self) -> &'static [ToolKind] {
        match self {
            Benchmark::HotpotQa => &[ToolKind::WikipediaSearch, ToolKind::WikipediaLookup],
            Benchmark::WebShop => &[ToolKind::WebshopSearch, ToolKind::WebshopClick],
            Benchmark::Math => &[ToolKind::WolframQuery, ToolKind::PythonCalc],
            Benchmark::HumanEval => &[ToolKind::PythonExec],
            Benchmark::ShareGpt => &[],
        }
    }

    /// Mean user-query length in tokens.
    pub fn mean_user_tokens(self) -> f64 {
        match self {
            Benchmark::HotpotQa => 28.0,
            Benchmark::WebShop => 42.0,
            Benchmark::Math => 72.0,
            Benchmark::HumanEval => 150.0,
            Benchmark::ShareGpt => 230.0,
        }
    }

    /// Mean latent difficulty in `(0, 1)` — higher needs more reasoning.
    pub fn mean_difficulty(self) -> f64 {
        match self {
            Benchmark::HotpotQa => 0.55,
            Benchmark::WebShop => 0.60,
            Benchmark::Math => 0.65,
            Benchmark::HumanEval => 0.50,
            Benchmark::ShareGpt => 0.10,
        }
    }

    /// Whether tool observations are large (web/page content) rather than
    /// short answers — drives the paper's Fig. 8 tool-history split.
    pub fn tools_return_large_observations(self) -> bool {
        matches!(self, Benchmark::HotpotQa | Benchmark::WebShop)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Benchmark::HotpotQa => "HotpotQA",
            Benchmark::WebShop => "WebShop",
            Benchmark::Math => "MATH",
            Benchmark::HumanEval => "HumanEval",
            Benchmark::ShareGpt => "ShareGPT",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agentic_benchmarks_have_tools() {
        for b in Benchmark::AGENTIC {
            assert!(!b.tools().is_empty(), "{b} must expose tools");
        }
        assert!(Benchmark::ShareGpt.tools().is_empty());
    }

    #[test]
    fn knowledge_tasks_have_large_observations() {
        assert!(Benchmark::HotpotQa.tools_return_large_observations());
        assert!(!Benchmark::Math.tools_return_large_observations());
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(Benchmark::HotpotQa.to_string(), "HotpotQA");
        assert_eq!(Benchmark::Math.to_string(), "MATH");
    }

    #[test]
    fn difficulties_are_probabilities() {
        for b in Benchmark::ALL {
            let d = b.mean_difficulty();
            assert!((0.0..1.0).contains(&d));
        }
    }
}
