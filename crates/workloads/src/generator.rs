//! Deterministic task generation.

use agentsim_simkit::dist::{ClampedLogNormal, Normal, Sample};
use agentsim_simkit::SimRng;

use crate::benchmark::Benchmark;
use crate::segments::user_seed;
use crate::task::Task;

/// Generates the task stream of one benchmark.
///
/// `task(i)` is a pure function of `(benchmark, seed, i)`: sweeps can
/// regenerate any subset without replaying the whole stream.
///
/// # Example
///
/// ```
/// use agentsim_workloads::{Benchmark, TaskGenerator};
///
/// let g = TaskGenerator::new(Benchmark::Math, 7);
/// let tasks: Vec<_> = g.tasks(3).collect();
/// assert_eq!(tasks.len(), 3);
/// assert_eq!(tasks[1], g.task(1));
/// ```
#[derive(Debug, Clone)]
pub struct TaskGenerator {
    benchmark: Benchmark,
    seed: u64,
    difficulty: Normal,
    user_tokens: ClampedLogNormal,
}

impl TaskGenerator {
    /// Creates a generator for `benchmark` rooted at `seed`.
    pub fn new(benchmark: Benchmark, seed: u64) -> Self {
        let mean_u = benchmark.mean_user_tokens();
        TaskGenerator {
            benchmark,
            seed,
            difficulty: Normal::new(benchmark.mean_difficulty(), 0.18),
            user_tokens: ClampedLogNormal::from_mean_cv(mean_u, 0.45, 8.0, mean_u * 5.0),
        }
    }

    /// The benchmark being generated.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The `index`-th task of the stream.
    pub fn task(&self, index: u64) -> Task {
        let mut rng = SimRng::seed_from(self.seed).fork(index);
        let difficulty = self.difficulty.sample(&mut rng).clamp(0.05, 0.98);
        // Harder tasks require more evidence: 1..=5 hops scaled by
        // difficulty with some noise.
        let base_hops = 1.0 + difficulty * 3.5 + rng.range_f64(-0.5, 0.5);
        let hops = base_hops.round().clamp(1.0, 6.0) as u32;
        Task {
            benchmark: self.benchmark,
            id: index,
            difficulty,
            hops,
            user_tokens: self.user_tokens.sample_count(&mut rng).max(4) as u32,
            user_seed: user_seed(self.benchmark, self.seed.rotate_left(13) ^ index),
        }
    }

    /// The first `n` tasks.
    pub fn tasks(&self, n: u64) -> impl Iterator<Item = Task> + '_ {
        (0..n).map(move |i| self.task(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_are_pure_functions_of_index() {
        let g = TaskGenerator::new(Benchmark::HotpotQa, 1);
        assert_eq!(g.task(5), g.task(5));
        assert_ne!(g.task(5), g.task(6));
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = TaskGenerator::new(Benchmark::HotpotQa, 1).task(0);
        let b = TaskGenerator::new(Benchmark::HotpotQa, 2).task(0);
        assert_ne!(a, b);
    }

    #[test]
    fn difficulty_and_hops_in_range() {
        let g = TaskGenerator::new(Benchmark::Math, 3);
        for t in g.tasks(500) {
            assert!((0.05..=0.98).contains(&t.difficulty));
            assert!((1..=6).contains(&t.hops));
            assert!(t.user_tokens >= 4);
        }
    }

    #[test]
    fn mean_difficulty_matches_benchmark() {
        let g = TaskGenerator::new(Benchmark::HumanEval, 4);
        let mean: f64 = g.tasks(2_000).map(|t| t.difficulty).sum::<f64>() / 2_000.0;
        assert!(
            (mean - Benchmark::HumanEval.mean_difficulty()).abs() < 0.03,
            "mean {mean}"
        );
    }

    #[test]
    fn harder_tasks_have_more_hops_on_average() {
        let g = TaskGenerator::new(Benchmark::HotpotQa, 5);
        let (mut easy, mut hard) = (Vec::new(), Vec::new());
        for t in g.tasks(2_000) {
            if t.difficulty < 0.4 {
                easy.push(t.hops as f64);
            } else if t.difficulty > 0.7 {
                hard.push(t.hops as f64);
            }
        }
        let m = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(m(&hard) > m(&easy) + 0.8);
    }

    #[test]
    fn user_token_lengths_track_benchmark_mean() {
        for b in [Benchmark::HotpotQa, Benchmark::HumanEval] {
            let g = TaskGenerator::new(b, 6);
            let mean: f64 = g.tasks(3_000).map(|t| t.user_tokens as f64).sum::<f64>() / 3_000.0;
            let target = b.mean_user_tokens();
            assert!(
                (mean - target).abs() / target < 0.15,
                "{b}: mean {mean} vs {target}"
            );
        }
    }
}
