//! Shared prompt furniture: instruction and few-shot token segments.
//!
//! Every request of a benchmark shares the same instruction and few-shot
//! example segments (per agent framework). Because segments are pure
//! functions of their seeds, these shared prefixes hash to identical KV
//! blocks — which is what makes prefix caching effective on agent traffic
//! (the paper's §IV-B).

use agentsim_simkit::rng::hash_key;

use crate::benchmark::Benchmark;

/// Tokens in the benchmark's base instruction block.
pub fn instruction_tokens(benchmark: Benchmark) -> u32 {
    match benchmark {
        Benchmark::HotpotQa => 180,
        Benchmark::WebShop => 220,
        Benchmark::Math => 160,
        Benchmark::HumanEval => 140,
        Benchmark::ShareGpt => 30, // short system prompt
    }
}

/// Tokens per few-shot example.
pub fn fewshot_example_tokens(benchmark: Benchmark) -> u32 {
    match benchmark {
        Benchmark::HotpotQa => 190,
        Benchmark::WebShop => 260,
        Benchmark::Math => 150,
        Benchmark::HumanEval => 170,
        Benchmark::ShareGpt => 0,
    }
}

/// Default number of few-shot examples in each agent's prompt.
pub const DEFAULT_FEWSHOT: u32 = 4;

/// Segment seed for the instruction block of `(benchmark, agent tag)`.
///
/// The agent tag distinguishes frameworks (ReAct and Reflexion ship
/// different instructions) so their prefixes do not alias.
pub fn instruction_seed(benchmark: Benchmark, agent_tag: u64) -> u64 {
    hash_key(
        b"instruction",
        benchmark_ordinal(benchmark) ^ (agent_tag << 8),
    )
}

/// Segment seed for few-shot example `idx` of `(benchmark, agent tag)`.
pub fn fewshot_seed(benchmark: Benchmark, agent_tag: u64, idx: u32) -> u64 {
    hash_key(
        b"fewshot",
        benchmark_ordinal(benchmark) ^ (agent_tag << 8) ^ ((idx as u64) << 32),
    )
}

/// Segment seed for the user query of task `task_id`.
pub fn user_seed(benchmark: Benchmark, task_id: u64) -> u64 {
    hash_key(b"user", benchmark_ordinal(benchmark) ^ (task_id << 4))
}

fn benchmark_ordinal(b: Benchmark) -> u64 {
    match b {
        Benchmark::HotpotQa => 1,
        Benchmark::WebShop => 2,
        Benchmark::Math => 3,
        Benchmark::HumanEval => 4,
        Benchmark::ShareGpt => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable() {
        assert_eq!(
            instruction_seed(Benchmark::HotpotQa, 1),
            instruction_seed(Benchmark::HotpotQa, 1)
        );
    }

    #[test]
    fn seeds_distinguish_benchmark_agent_and_index() {
        let a = instruction_seed(Benchmark::HotpotQa, 1);
        assert_ne!(a, instruction_seed(Benchmark::WebShop, 1));
        assert_ne!(a, instruction_seed(Benchmark::HotpotQa, 2));
        assert_ne!(
            fewshot_seed(Benchmark::Math, 1, 0),
            fewshot_seed(Benchmark::Math, 1, 1)
        );
        assert_ne!(
            user_seed(Benchmark::Math, 10),
            user_seed(Benchmark::Math, 11)
        );
    }

    #[test]
    fn initial_prompt_is_around_a_thousand_tokens() {
        // Paper Fig. 9: initial inputs are typically ~1,000 tokens.
        for b in Benchmark::AGENTIC {
            let total = instruction_tokens(b)
                + DEFAULT_FEWSHOT * fewshot_example_tokens(b)
                + b.mean_user_tokens() as u32;
            assert!(
                (700..1700).contains(&total),
                "{b}: initial prompt {total} tokens"
            );
        }
    }
}
