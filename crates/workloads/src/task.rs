//! Individual benchmark tasks.

use std::fmt;

use agentsim_kvcache::TokenBuf;

use crate::benchmark::Benchmark;

/// One benchmark instance an agent must solve.
///
/// `difficulty` is the latent hardness in `(0, 1)` that the cognition
/// model consumes: harder tasks need more evidence/iterations. `hops` is
/// the number of distinct pieces of evidence required (multi-hop structure
/// for HotpotQA, page visits for WebShop, sub-derivations for MATH,
/// test-fix cycles for HumanEval).
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// The benchmark this task belongs to.
    pub benchmark: Benchmark,
    /// Index within the generated stream (stable identity).
    pub id: u64,
    /// Latent difficulty in `(0, 1)`.
    pub difficulty: f64,
    /// Evidence pieces / sub-goals required (at least 1).
    pub hops: u32,
    /// User-query length in tokens.
    pub user_tokens: u32,
    /// Segment seed of the user query.
    pub user_seed: u64,
}

impl Task {
    /// The user-query token segment.
    pub fn user_segment(&self) -> TokenBuf {
        TokenBuf::from_segment(self.user_seed, self.user_tokens)
    }

    /// A deterministic per-task RNG key (fold with a stage label).
    pub fn rng_key(&self) -> u64 {
        self.user_seed ^ self.id.rotate_left(17)
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{} (difficulty {:.2}, {} hops, {} query tokens)",
            self.benchmark, self.id, self.difficulty, self.hops, self.user_tokens
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task {
            benchmark: Benchmark::HotpotQa,
            id: 3,
            difficulty: 0.5,
            hops: 2,
            user_tokens: 30,
            user_seed: 99,
        }
    }

    #[test]
    fn user_segment_has_declared_length() {
        assert_eq!(task().user_segment().len(), 30);
    }

    #[test]
    fn user_segment_is_stable() {
        assert_eq!(task().user_segment(), task().user_segment());
    }

    #[test]
    fn display_is_informative() {
        let s = task().to_string();
        assert!(s.contains("HotpotQA#3"));
        assert!(s.contains("2 hops"));
    }
}
