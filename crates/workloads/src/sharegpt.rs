//! The ShareGPT chatbot workload (non-agentic baseline).
//!
//! Single-turn conversations: one prompt, one LLM inference, no tools.
//! Length statistics follow the dataset's well-known skew: inputs are a
//! few hundred tokens with a long tail, outputs a few hundred tokens.
//! Calibrated so a median query decodes in ≈3–7 s on an A100 + 8B model,
//! matching the paper's Fig. 7.

use agentsim_kvcache::TokenBuf;
use agentsim_simkit::dist::{ClampedLogNormal, Sample};
use agentsim_simkit::SimRng;

use crate::benchmark::Benchmark;
use crate::segments::{instruction_seed, instruction_tokens, user_seed};

/// One sampled chatbot query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareGptQuery {
    /// Stable identity within the stream.
    pub id: u64,
    /// Full prompt (short shared system prompt + user turn).
    pub prompt: TokenBuf,
    /// Response length the model will generate.
    pub output_tokens: u32,
    /// Seed identifying the output stream.
    pub gen_seed: u64,
}

/// Generates ShareGPT-style single-turn queries.
///
/// # Example
///
/// ```
/// use agentsim_workloads::ShareGptGenerator;
///
/// let g = ShareGptGenerator::new(1);
/// let q = g.query(0);
/// assert!(q.prompt.len() > 30);
/// assert!(q.output_tokens >= 16);
/// ```
#[derive(Debug, Clone)]
pub struct ShareGptGenerator {
    seed: u64,
    input_tokens: ClampedLogNormal,
    output_tokens: ClampedLogNormal,
}

impl ShareGptGenerator {
    /// Creates a generator rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        ShareGptGenerator {
            seed,
            input_tokens: ClampedLogNormal::from_mean_cv(230.0, 1.0, 10.0, 2048.0),
            output_tokens: ClampedLogNormal::from_mean_cv(290.0, 0.35, 32.0, 700.0),
        }
    }

    /// The `index`-th query of the stream (pure function).
    pub fn query(&self, index: u64) -> ShareGptQuery {
        let mut rng = SimRng::seed_from(self.seed ^ 0x5A6E).fork(index);
        let sys = instruction_seed(Benchmark::ShareGpt, 0);
        let mut prompt = TokenBuf::from_segment(sys, instruction_tokens(Benchmark::ShareGpt));
        let user = user_seed(Benchmark::ShareGpt, self.seed.rotate_left(7) ^ index);
        prompt.push_segment(user, self.input_tokens.sample_count(&mut rng).max(8) as u32);
        ShareGptQuery {
            id: index,
            prompt,
            output_tokens: self.output_tokens.sample_count(&mut rng).max(16) as u32,
            gen_seed: user ^ 0x00D0,
        }
    }

    /// The first `n` queries.
    pub fn queries(&self, n: u64) -> impl Iterator<Item = ShareGptQuery> + '_ {
        (0..n).map(move |i| self.query(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_are_pure_functions() {
        let g = ShareGptGenerator::new(9);
        assert_eq!(g.query(3), g.query(3));
        assert_ne!(g.query(3).prompt, g.query(4).prompt);
    }

    #[test]
    fn queries_share_only_the_system_prompt() {
        let g = ShareGptGenerator::new(9);
        let a = g.query(0).prompt;
        let b = g.query(1).prompt;
        let sys = instruction_tokens(Benchmark::ShareGpt) as usize;
        assert_eq!(&a.as_slice()[..sys], &b.as_slice()[..sys]);
        assert_ne!(a.as_slice()[sys], b.as_slice()[sys]);
    }

    #[test]
    fn mean_lengths_are_calibrated() {
        let g = ShareGptGenerator::new(11);
        let n = 3_000u64;
        let (mut in_sum, mut out_sum) = (0.0, 0.0);
        for q in g.queries(n) {
            in_sum += q.prompt.len() as f64;
            out_sum += q.output_tokens as f64;
        }
        let in_mean = in_sum / n as f64;
        let out_mean = out_sum / n as f64;
        assert!((200.0..330.0).contains(&in_mean), "input mean {in_mean}");
        assert!((250.0..330.0).contains(&out_mean), "output mean {out_mean}");
    }

    #[test]
    fn output_lengths_have_spread() {
        let g = ShareGptGenerator::new(12);
        let outs: Vec<u32> = g.queries(500).map(|q| q.output_tokens).collect();
        let min = *outs.iter().min().unwrap();
        let max = *outs.iter().max().unwrap();
        assert!(max > 2 * min, "distribution too tight: {min}..{max}");
    }
}
