//! Synthetic benchmark workloads.
//!
//! The paper evaluates agents on four agentic benchmarks (HotpotQA,
//! WebShop, MATH, HumanEval) plus the non-agentic ShareGPT chatbot
//! workload. For the systems analysis, a benchmark is characterized by:
//!
//! * the *user query length* distribution (tokens),
//! * the latent *difficulty* distribution (drives how many reasoning
//!   iterations an agent needs),
//! * the *tools* available (and hence the tool-latency profile),
//! * fixed *prompt furniture*: instruction and few-shot segments shared by
//!   every request of a benchmark (the prefix-cache workhorse).
//!
//! Task generation is a pure function of `(benchmark, seed, index)`, so
//! sweeps can regenerate any subset deterministically.
//!
//! # Example
//!
//! ```
//! use agentsim_workloads::{Benchmark, TaskGenerator};
//!
//! let generator = TaskGenerator::new(Benchmark::HotpotQa, 42);
//! let task = generator.task(0);
//! assert_eq!(task.benchmark, Benchmark::HotpotQa);
//! assert!(task.difficulty > 0.0 && task.difficulty < 1.0);
//! assert_eq!(task.user_tokens, generator.task(0).user_tokens, "pure function");
//! ```

pub mod benchmark;
pub mod generator;
pub mod segments;
pub mod sharegpt;
pub mod task;

pub use benchmark::Benchmark;
pub use generator::TaskGenerator;
pub use sharegpt::{ShareGptGenerator, ShareGptQuery};
pub use task::Task;
