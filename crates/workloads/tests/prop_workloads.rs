//! Property-based tests for the workload generators.

use agentsim_workloads::{Benchmark, ShareGptGenerator, TaskGenerator};
use proptest::prelude::*;

fn benchmark_strategy() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::AGENTIC.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tasks_are_pure_and_well_formed(
        benchmark in benchmark_strategy(),
        seed in 0u64..1_000,
        index in 0u64..10_000,
    ) {
        let g = TaskGenerator::new(benchmark, seed);
        let a = g.task(index);
        let b = g.task(index);
        prop_assert_eq!(&a, &b, "pure function of (benchmark, seed, index)");
        prop_assert!((0.0..=1.0).contains(&a.difficulty));
        prop_assert!(a.hops >= 1);
        prop_assert!(a.user_tokens >= 4);
        prop_assert_eq!(a.user_segment().len(), a.user_tokens as usize);
    }

    #[test]
    fn distinct_indices_give_distinct_queries(
        benchmark in benchmark_strategy(),
        seed in 0u64..100,
        i in 0u64..1_000,
        j in 0u64..1_000,
    ) {
        prop_assume!(i != j);
        let g = TaskGenerator::new(benchmark, seed);
        prop_assert_ne!(g.task(i).user_seed, g.task(j).user_seed);
    }

    #[test]
    fn sharegpt_queries_fit_the_context_budget(
        seed in 0u64..100,
        index in 0u64..2_000,
    ) {
        let q = ShareGptGenerator::new(seed).query(index);
        prop_assert!(q.prompt.len() >= 30, "system prompt + user turn");
        prop_assert!(q.prompt.len() <= 3_000, "inputs bounded");
        prop_assert!((16..=1024).contains(&q.output_tokens));
        prop_assert_eq!(&q, &ShareGptGenerator::new(seed).query(index));
    }

    #[test]
    fn sharegpt_shares_exactly_the_system_prompt(
        seed in 0u64..100,
        i in 0u64..500,
        j in 0u64..500,
    ) {
        prop_assume!(i != j);
        let g = ShareGptGenerator::new(seed);
        let a = g.query(i).prompt;
        let b = g.query(j).prompt;
        let sys = agentsim_workloads::segments::instruction_tokens(Benchmark::ShareGpt) as usize;
        prop_assert_eq!(&a.as_slice()[..sys], &b.as_slice()[..sys]);
        prop_assert_ne!(a.as_slice()[sys], b.as_slice()[sys]);
    }
}
