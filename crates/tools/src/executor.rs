//! Tool call execution with failure injection.

use std::fmt;

use agentsim_simkit::{SimDuration, SimRng};

use crate::catalog::ToolCatalog;
use crate::kind::ToolKind;

/// One tool invocation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToolCall {
    /// Which tool to invoke.
    pub kind: ToolKind,
}

impl ToolCall {
    /// Creates a call to `kind`.
    pub fn new(kind: ToolKind) -> Self {
        ToolCall { kind }
    }
}

/// Outcome of a tool invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToolResult {
    /// The tool invoked.
    pub kind: ToolKind,
    /// Wall-clock time the call took.
    pub latency: SimDuration,
    /// Tokens the observation adds to the agent's context.
    pub response_tokens: u32,
    /// Whether the call failed (agents typically retry or re-plan).
    pub failed: bool,
}

/// Failure-injection policy layered over the per-tool base rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailurePolicy {
    /// Multiplier on each tool's base failure rate (1.0 = calibrated).
    pub rate_multiplier: f64,
    /// Latency multiplier applied to failed calls (timeouts take longer).
    pub failure_latency_multiplier: f64,
}

impl FailurePolicy {
    /// No injected failures beyond the calibrated base rates.
    pub fn calibrated() -> Self {
        FailurePolicy {
            rate_multiplier: 1.0,
            failure_latency_multiplier: 2.5,
        }
    }

    /// Disables failures entirely (deterministic success).
    pub fn disabled() -> Self {
        FailurePolicy {
            rate_multiplier: 0.0,
            failure_latency_multiplier: 1.0,
        }
    }
}

impl Default for FailurePolicy {
    fn default() -> Self {
        FailurePolicy::calibrated()
    }
}

/// Executes tool calls against the catalog's statistical models.
///
/// The executor is stateless between calls; concurrency is the caller's
/// concern (the serving driver schedules each result's completion event at
/// `now + result.latency`, so any number of calls may be in flight).
#[derive(Debug, Clone, Default)]
pub struct ToolExecutor {
    catalog: ToolCatalog,
    failures: FailurePolicy,
}

impl ToolExecutor {
    /// Creates an executor with the calibrated catalog and failure policy.
    pub fn new() -> Self {
        ToolExecutor::default()
    }

    /// Creates an executor with a custom catalog.
    pub fn with_catalog(catalog: ToolCatalog) -> Self {
        ToolExecutor {
            catalog,
            failures: FailurePolicy::calibrated(),
        }
    }

    /// Sets the failure policy, returning `self` for chaining.
    pub fn failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.failures = policy;
        self
    }

    /// The catalog in use.
    pub fn catalog(&self) -> &ToolCatalog {
        &self.catalog
    }

    /// Executes a batch of calls issued at the same instant (e.g. a LATS
    /// expansion's parallel actions or an LLMCompiler plan).
    ///
    /// Latencies within a batch are *correlated*: calls to the same tool
    /// at the same moment share backend conditions, so the batch max is
    /// only modestly above the single-call latency rather than a fresh
    /// independent draw per call.
    pub fn execute_batch(&self, calls: &[ToolCall], rng: &mut SimRng) -> Vec<ToolResult> {
        use agentsim_simkit::dist::{LogNormal, Sample};
        if calls.len() <= 1 {
            return calls.iter().map(|c| self.execute(c, rng)).collect();
        }
        // One shared latency draw per tool kind in the batch...
        let mut shared: Vec<(crate::kind::ToolKind, SimDuration)> = Vec::new();
        let jitter = LogNormal::from_mean_cv(1.0, 0.15);
        calls
            .iter()
            .map(|call| {
                let spec = self.catalog.spec(call.kind);
                let base = match shared.iter().find(|(k, _)| *k == call.kind) {
                    Some((_, d)) => *d,
                    None => {
                        let d = spec.sample_latency(rng);
                        shared.push((call.kind, d));
                        d
                    }
                };
                // ...plus small per-call jitter.
                let failed = rng.chance(spec.base_failure_rate * self.failures.rate_multiplier);
                let mut latency = base.mul_f64(jitter.sample(rng));
                let response_tokens = if failed {
                    latency = latency.mul_f64(self.failures.failure_latency_multiplier);
                    16
                } else {
                    spec.sample_response_tokens(rng)
                };
                ToolResult {
                    kind: call.kind,
                    latency,
                    response_tokens,
                    failed,
                }
            })
            .collect()
    }

    /// Executes one call, sampling latency, response size and failure.
    pub fn execute(&self, call: &ToolCall, rng: &mut SimRng) -> ToolResult {
        let spec = self.catalog.spec(call.kind);
        let failed = rng.chance(spec.base_failure_rate * self.failures.rate_multiplier);
        let mut latency = spec.sample_latency(rng);
        let response_tokens = if failed {
            latency = latency.mul_f64(self.failures.failure_latency_multiplier);
            // A terse error message still lands in the context.
            16
        } else {
            spec.sample_response_tokens(rng)
        };
        ToolResult {
            kind: call.kind,
            latency,
            response_tokens,
            failed,
        }
    }
}

impl fmt::Display for ToolResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} tokens in {}{}",
            self.kind,
            self.response_tokens,
            self.latency,
            if self.failed { " (FAILED)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_is_deterministic_given_rng() {
        let exec = ToolExecutor::new();
        let call = ToolCall::new(ToolKind::WikipediaSearch);
        let a = exec.execute(&call, &mut SimRng::seed_from(5));
        let b = exec.execute(&call, &mut SimRng::seed_from(5));
        assert_eq!(a, b);
    }

    #[test]
    fn disabled_failures_never_fail() {
        let exec = ToolExecutor::new().failure_policy(FailurePolicy::disabled());
        let mut rng = SimRng::seed_from(6);
        for _ in 0..2_000 {
            assert!(
                !exec
                    .execute(&ToolCall::new(ToolKind::WolframQuery), &mut rng)
                    .failed
            );
        }
    }

    #[test]
    fn amplified_failures_occur_and_cost_more() {
        let exec = ToolExecutor::new().failure_policy(FailurePolicy {
            rate_multiplier: 50.0, // 1% base -> 50%
            failure_latency_multiplier: 2.5,
        });
        let mut rng = SimRng::seed_from(7);
        let results: Vec<ToolResult> = (0..2_000)
            .map(|_| exec.execute(&ToolCall::new(ToolKind::WikipediaSearch), &mut rng))
            .collect();
        let failures = results.iter().filter(|r| r.failed).count();
        assert!(
            (800..1200).contains(&failures),
            "expected ~50% failures, got {failures}/2000"
        );
        let mean_latency = |failed: bool| {
            let v: Vec<f64> = results
                .iter()
                .filter(|r| r.failed == failed)
                .map(|r| r.latency.as_secs_f64())
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean_latency(true) > mean_latency(false) * 1.5,
            "failures should be slower"
        );
    }

    #[test]
    fn failed_calls_return_small_observations() {
        let exec = ToolExecutor::new().failure_policy(FailurePolicy {
            rate_multiplier: 100.0,
            failure_latency_multiplier: 1.0,
        });
        let mut rng = SimRng::seed_from(8);
        let r = (0..200)
            .map(|_| exec.execute(&ToolCall::new(ToolKind::WikipediaSearch), &mut rng))
            .find(|r| r.failed)
            .expect("some call fails");
        assert_eq!(r.response_tokens, 16);
    }

    #[test]
    fn batch_latencies_are_correlated() {
        // The max of an 8-call batch should sit far below the max of 8
        // independent draws, because calls issued together share backend
        // conditions.
        let exec = ToolExecutor::new().failure_policy(FailurePolicy::disabled());
        let calls = vec![ToolCall::new(ToolKind::WikipediaSearch); 8];
        let trials = 400;
        let mut rng_batch = SimRng::seed_from(21);
        let mut rng_indep = SimRng::seed_from(21);
        let mean_max = |results: Vec<f64>| results.iter().sum::<f64>() / results.len() as f64;
        let batch_maxes: Vec<f64> = (0..trials)
            .map(|_| {
                exec.execute_batch(&calls, &mut rng_batch)
                    .iter()
                    .map(|r| r.latency.as_secs_f64())
                    .fold(0.0, f64::max)
            })
            .collect();
        let indep_maxes: Vec<f64> = (0..trials)
            .map(|_| {
                calls
                    .iter()
                    .map(|c| exec.execute(c, &mut rng_indep).latency.as_secs_f64())
                    .fold(0.0, f64::max)
            })
            .collect();
        assert!(
            mean_max(batch_maxes) < 0.8 * mean_max(indep_maxes),
            "correlated batch max should be well below the independent max"
        );
    }

    #[test]
    fn batch_of_one_matches_single_execution() {
        let exec = ToolExecutor::new();
        let call = ToolCall::new(ToolKind::WolframQuery);
        let a = exec.execute_batch(std::slice::from_ref(&call), &mut SimRng::seed_from(5));
        let b = vec![exec.execute(&call, &mut SimRng::seed_from(5))];
        assert_eq!(a, b);
    }

    #[test]
    fn display_mentions_failure() {
        let r = ToolResult {
            kind: ToolKind::PythonExec,
            latency: SimDuration::from_millis(100),
            response_tokens: 10,
            failed: true,
        };
        assert!(r.to_string().contains("FAILED"));
    }
}
