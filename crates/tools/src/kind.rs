//! Tool identities.

use std::fmt;

/// The tools exposed to agents across the paper's four benchmarks
/// (its Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ToolKind {
    /// Wikipedia `search[query]` — HotpotQA.
    WikipediaSearch,
    /// Wikipedia `lookup[keyword]` — HotpotQA.
    WikipediaLookup,
    /// WebShop `search[...]` over the locally hosted shop — WebShop.
    WebshopSearch,
    /// WebShop `click[...]` page navigation — WebShop.
    WebshopClick,
    /// Wolfram Alpha API query — MATH.
    WolframQuery,
    /// Python-based calculator for simple arithmetic — MATH.
    PythonCalc,
    /// Python execution of self-generated test code — HumanEval.
    PythonExec,
}

impl ToolKind {
    /// All tool kinds, in a stable reporting order.
    pub const ALL: [ToolKind; 7] = [
        ToolKind::WikipediaSearch,
        ToolKind::WikipediaLookup,
        ToolKind::WebshopSearch,
        ToolKind::WebshopClick,
        ToolKind::WolframQuery,
        ToolKind::PythonCalc,
        ToolKind::PythonExec,
    ];

    /// Whether the tool leaves the machine (network API) rather than
    /// running on the local host. Remote tools dominate agent latency in
    /// HotpotQA; local ones are nearly free (WebShop).
    pub fn is_remote(self) -> bool {
        matches!(
            self,
            ToolKind::WikipediaSearch | ToolKind::WikipediaLookup | ToolKind::WolframQuery
        )
    }
}

impl fmt::Display for ToolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ToolKind::WikipediaSearch => "wikipedia.search",
            ToolKind::WikipediaLookup => "wikipedia.lookup",
            ToolKind::WebshopSearch => "webshop.search",
            ToolKind::WebshopClick => "webshop.click",
            ToolKind::WolframQuery => "wolfram.query",
            ToolKind::PythonCalc => "python.calc",
            ToolKind::PythonExec => "python.exec",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_kind_once() {
        let mut names: Vec<String> = ToolKind::ALL.iter().map(|k| k.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn remoteness_classification() {
        assert!(ToolKind::WikipediaSearch.is_remote());
        assert!(ToolKind::WolframQuery.is_remote());
        assert!(!ToolKind::WebshopClick.is_remote());
        assert!(!ToolKind::PythonExec.is_remote());
    }
}
