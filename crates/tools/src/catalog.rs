//! Calibrated tool presets.

use crate::kind::ToolKind;
use crate::spec::ToolSpec;

/// The full set of tool specifications used by the reproduction.
///
/// Latency anchors come from the paper (§IV-A): Wikipedia ≈1.2 s/call,
/// WebShop ≈20 ms/call. Response sizes follow its Fig. 8 discussion —
/// knowledge/web tools return large observations (page content), while
/// calculators return short answers.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolCatalog {
    specs: Vec<ToolSpec>,
}

impl ToolCatalog {
    /// The calibrated default catalog.
    pub fn new() -> Self {
        let specs = vec![
            ToolSpec::new(ToolKind::WikipediaSearch, 1.2, 0.70, 300.0, 0.01),
            ToolSpec::new(ToolKind::WikipediaLookup, 1.0, 0.60, 130.0, 0.01),
            ToolSpec::new(ToolKind::WebshopSearch, 0.020, 0.30, 240.0, 0.002),
            ToolSpec::new(ToolKind::WebshopClick, 0.020, 0.30, 160.0, 0.002),
            ToolSpec::new(ToolKind::WolframQuery, 0.40, 0.35, 45.0, 0.01),
            ToolSpec::new(ToolKind::PythonCalc, 0.060, 0.30, 20.0, 0.001),
            ToolSpec::new(ToolKind::PythonExec, 0.35, 0.50, 90.0, 0.005),
        ];
        debug_assert_eq!(specs.len(), ToolKind::ALL.len());
        ToolCatalog { specs }
    }

    /// The specification for `kind`.
    pub fn spec(&self, kind: ToolKind) -> &ToolSpec {
        self.specs
            .iter()
            .find(|s| s.kind == kind)
            .expect("catalog covers every ToolKind")
    }

    /// Iterates over all specs.
    pub fn iter(&self) -> std::slice::Iter<'_, ToolSpec> {
        self.specs.iter()
    }

    /// Replaces the spec for one tool (used by what-if experiments).
    pub fn set_spec(&mut self, spec: ToolSpec) {
        let slot = self
            .specs
            .iter_mut()
            .find(|s| s.kind == spec.kind)
            .expect("catalog covers every ToolKind");
        *slot = spec;
    }
}

impl Default for ToolCatalog {
    fn default() -> Self {
        ToolCatalog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_kinds() {
        let c = ToolCatalog::new();
        for kind in ToolKind::ALL {
            assert_eq!(c.spec(kind).kind, kind);
        }
    }

    #[test]
    fn wikipedia_much_slower_than_webshop() {
        // The paper's Fig. 5 contrast: 1.2 s vs 20 ms per call.
        let c = ToolCatalog::new();
        let wiki = c.spec(ToolKind::WikipediaSearch).mean_latency_s();
        let shop = c.spec(ToolKind::WebshopSearch).mean_latency_s();
        assert!(wiki / shop > 30.0, "wiki {wiki} s vs shop {shop} s");
    }

    #[test]
    fn set_spec_replaces() {
        let mut c = ToolCatalog::new();
        c.set_spec(ToolSpec::new(ToolKind::PythonCalc, 0.5, 0.1, 10.0, 0.0));
        assert!((c.spec(ToolKind::PythonCalc).mean_latency_s() - 0.5).abs() < 1e-9);
    }
}
