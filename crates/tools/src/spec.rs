//! Per-tool latency and response-size models.

use agentsim_simkit::dist::{ClampedLogNormal, LogNormal, Sample};
use agentsim_simkit::{SimDuration, SimRng};

use crate::kind::ToolKind;

/// Statistical model of one tool: how long a call takes and how many
/// tokens its observation adds to the agent's context.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolSpec {
    /// Which tool this describes.
    pub kind: ToolKind,
    /// Call latency in seconds.
    pub latency: LogNormal,
    /// Tokens in the tool's response (the observation fed back to the LLM).
    pub response_tokens: ClampedLogNormal,
    /// Probability that a call fails (timeout, API error).
    pub base_failure_rate: f64,
}

impl ToolSpec {
    /// Builds a spec from mean latency (seconds), latency coefficient of
    /// variation, mean response tokens, and failure rate.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range (non-positive means,
    /// negative cv, failure rate outside `[0, 1)`).
    pub fn new(
        kind: ToolKind,
        mean_latency_s: f64,
        latency_cv: f64,
        mean_response_tokens: f64,
        base_failure_rate: f64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&base_failure_rate),
            "failure rate must be in [0, 1), got {base_failure_rate}"
        );
        ToolSpec {
            kind,
            latency: LogNormal::from_mean_cv(mean_latency_s, latency_cv),
            response_tokens: ClampedLogNormal::from_mean_cv(
                mean_response_tokens,
                0.6,
                8.0,
                mean_response_tokens * 4.0,
            ),
            base_failure_rate,
        }
    }

    /// Samples a call latency.
    pub fn sample_latency(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(self.latency.sample(rng))
    }

    /// Samples a response size in tokens.
    pub fn sample_response_tokens(&self, rng: &mut SimRng) -> u32 {
        self.response_tokens.sample_count(rng) as u32
    }

    /// Mean latency in seconds (for reporting).
    pub fn mean_latency_s(&self) -> f64 {
        self.latency.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_latency_centers_on_mean() {
        let spec = ToolSpec::new(ToolKind::WikipediaSearch, 1.2, 0.45, 280.0, 0.01);
        let mut rng = SimRng::seed_from(1);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| spec.sample_latency(&mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.2).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn response_tokens_bounded() {
        let spec = ToolSpec::new(ToolKind::WebshopSearch, 0.02, 0.3, 200.0, 0.0);
        let mut rng = SimRng::seed_from(2);
        for _ in 0..2_000 {
            let t = spec.sample_response_tokens(&mut rng);
            assert!((8..=800).contains(&t), "tokens {t}");
        }
    }

    #[test]
    #[should_panic(expected = "failure rate")]
    fn failure_rate_validated() {
        let _ = ToolSpec::new(ToolKind::PythonCalc, 0.05, 0.3, 20.0, 1.5);
    }
}
