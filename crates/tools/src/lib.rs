//! Simulated agent tools.
//!
//! The paper's agents call external tools — Wikipedia APIs (HotpotQA), web
//! navigation (WebShop), Wolfram Alpha / a Python calculator (MATH) and a
//! Python test executor (HumanEval). For the systems analysis only their
//! *latency* and *response size* matter; this crate models each tool as a
//! pair of calibrated distributions plus an optional failure process.
//!
//! Calibration anchors from the paper (§IV-A): Wikipedia calls average
//! ≈1.2 s, WebShop's locally hosted pages respond in ≈20 ms.
//!
//! # Example
//!
//! ```
//! use agentsim_tools::{ToolCall, ToolExecutor, ToolKind};
//! use agentsim_simkit::SimRng;
//!
//! let exec = ToolExecutor::new();
//! let mut rng = SimRng::seed_from(1);
//! let result = exec.execute(&ToolCall::new(ToolKind::WikipediaSearch), &mut rng);
//! assert!(result.latency.as_secs_f64() > 0.0);
//! assert!(result.response_tokens > 0);
//! ```

pub mod catalog;
pub mod executor;
pub mod kind;
pub mod spec;

pub use catalog::ToolCatalog;
pub use executor::{FailurePolicy, ToolCall, ToolExecutor, ToolResult};
pub use kind::ToolKind;
pub use spec::ToolSpec;
