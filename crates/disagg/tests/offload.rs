//! KV offload pass-through for the disaggregated driver: the tiers
//! configured on `DisaggConfig::engine` must reach every replica engine,
//! surface in the aggregated report, stay bit-deterministic (including
//! under worker threads), and vanish completely at zero capacity.

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_disagg::{DisaggConfig, DisaggReport, DisaggSim, DisaggWorkload};
use agentsim_kvcache::EvictionPolicy;
use agentsim_llm::{EngineConfig, OffloadConfig};
use agentsim_workloads::Benchmark;

#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    completed: u64,
    solved: u64,
    p50_bits: u64,
    p95_bits: u64,
    kv_hit_bits: u64,
    energy_bits: u64,
    preemptions: u64,
    demoted: u64,
    promoted: u64,
    promoted_tokens: u64,
    dropped: u64,
}

impl Fingerprint {
    fn of(r: &DisaggReport) -> Self {
        Fingerprint {
            completed: r.completed,
            solved: r.solved,
            p50_bits: r.p50_s.to_bits(),
            p95_bits: r.p95_s.to_bits(),
            kv_hit_bits: r.kv_hit_rate.to_bits(),
            energy_bits: r.energy_wh.to_bits(),
            preemptions: r.preemptions,
            demoted: r.offload_demoted_blocks,
            promoted: r.offload_promoted_blocks,
            promoted_tokens: r.offload_promoted_tokens,
            dropped: r.offload_dropped_blocks,
        }
    }
}

/// A KV-constrained 1P+1D split under an agentic workload: enough
/// eviction pressure that the tiers see real traffic.
fn config(offload: Option<OffloadConfig>) -> DisaggConfig {
    let mut engine = EngineConfig::a100_llama8b().with_kv_fraction(0.05);
    if let Some(off) = offload {
        engine = engine.with_offload(off);
    }
    DisaggConfig::new(
        DisaggWorkload::Agent {
            kind: AgentKind::React,
            benchmark: Benchmark::HotpotQa,
            config: AgentConfig::default_8b(),
        },
        6.0,
        32,
    )
    .seed(0xD15C)
    .engine(engine)
}

fn tiers(policy: EvictionPolicy) -> OffloadConfig {
    OffloadConfig::tiers(2048, 8192).with_policy(policy)
}

#[test]
fn offload_reaches_replicas_and_reports() {
    let plain = DisaggSim::new(config(None)).run();
    assert_eq!(plain.offload_demoted_blocks, 0);
    assert_eq!(plain.offload_promoted_tokens, 0);
    let tiered = DisaggSim::new(config(Some(tiers(EvictionPolicy::Lru)))).run();
    assert_eq!(
        tiered.completed, plain.completed,
        "offload must not change which sessions complete"
    );
    assert!(
        tiered.offload_demoted_blocks > 0,
        "a 0.05 kv-fraction pool must spill"
    );
    assert!(
        tiered.kv_hit_rate >= plain.kv_hit_rate,
        "promotion can only add reuse: {} < {}",
        tiered.kv_hit_rate,
        plain.kv_hit_rate
    );
}

#[test]
fn zero_capacity_tiers_match_no_offload_bit_for_bit() {
    let plain = Fingerprint::of(&DisaggSim::new(config(None)).run());
    let zero = Fingerprint::of(&DisaggSim::new(config(Some(OffloadConfig::tiers(0, 0)))).run());
    assert_eq!(zero, plain);
}

#[test]
fn offloaded_runs_are_deterministic_across_runs_and_threads() {
    for policy in [EvictionPolicy::Lru, EvictionPolicy::InvocationDistance] {
        let a = Fingerprint::of(&DisaggSim::new(config(Some(tiers(policy)))).run());
        let b = Fingerprint::of(&DisaggSim::new(config(Some(tiers(policy)))).run());
        assert_eq!(a, b, "{policy:?}: rerun diverged");
        let threaded =
            Fingerprint::of(&DisaggSim::new(config(Some(tiers(policy))).threads(2)).run());
        assert_eq!(a, threaded, "{policy:?}: threads(2) diverged");
    }
}
