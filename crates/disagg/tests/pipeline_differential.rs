//! Differential test: `transfer_chunks(1)` must reproduce the
//! **pre-pipeline** driver bit for bit, across routing × client-model
//! cells, a contended PCIe cell, and an autoscale flip.
//!
//! The constants below were captured from the serial driver immediately
//! before the chunked-transfer machinery landed (the whole-footprint
//! `Link::schedule` path, PR 9 tree). The single-chunk plan must price,
//! queue, and account identically — same arrival times, same head-of-
//! line waits, same float bits in every tail statistic — or the chunked
//! scheduler has changed behaviour it promised only to generalize.

use agentsim_disagg::{
    AutoscalePolicy, DisaggConfig, DisaggReport, DisaggSim, DisaggWorkload, FlipDirection,
    PoolRouting,
};
use agentsim_gpu::{FlipCostModel, LinkSpec};
use agentsim_session::ClientModel;
use agentsim_simkit::{SimDuration, SimTime};

#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    completed: u64,
    migrated: u64,
    bytes: u64,
    wait_us: u64,
    p95_bits: u64,
    ttft95_bits: u64,
    tpot99_bits: u64,
    energy_bits: u64,
}

impl Fingerprint {
    fn of(r: &DisaggReport) -> Self {
        let mut ttft = r.ttft();
        let mut tpot = r.tpot();
        Fingerprint {
            completed: r.completed,
            migrated: r.migrated_calls,
            bytes: r.transferred_bytes,
            wait_us: r.transfer_wait.as_micros(),
            p95_bits: r.p95_s.to_bits(),
            ttft95_bits: ttft.p95().to_bits(),
            tpot99_bits: tpot.percentile(99.0).to_bits(),
            energy_bits: r.energy_wh.to_bits(),
        }
    }
}

fn check(cfg: DisaggConfig, want: Fingerprint, label: &str) {
    let r = DisaggSim::new(cfg.transfer_chunks(1)).run();
    assert_eq!(
        Fingerprint::of(&r),
        want,
        "{label}: transfer_chunks(1) diverged from the pre-pipeline serial driver"
    );
}

fn routing_cell(prefill: PoolRouting, decode: PoolRouting) -> DisaggConfig {
    DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.5, 24)
        .seed(0xD1A6)
        .pools(2, 2)
        .prefill_routing(prefill)
        .decode_routing(decode)
}

#[test]
fn routing_rr_ll_matches_pre_pipeline() {
    check(
        routing_cell(PoolRouting::RoundRobin, PoolRouting::LeastLoaded),
        Fingerprint {
            completed: 24,
            migrated: 140,
            bytes: 33657192448,
            wait_us: 0,
            p95_bits: 0x40328b33226c3b92,
            ttft95_bits: 0x3fc1ed41b75a74c1,
            tpot99_bits: 0x3f90d844d013a92a,
            energy_bits: 0x401665cf1c077290,
        },
        "round-robin/least-loaded",
    );
}

#[test]
fn routing_rr_rr_matches_pre_pipeline() {
    check(
        routing_cell(PoolRouting::RoundRobin, PoolRouting::RoundRobin),
        Fingerprint {
            completed: 24,
            migrated: 139,
            bytes: 33726398464,
            wait_us: 0,
            p95_bits: 0x4033797f737da61e,
            ttft95_bits: 0x3fc075b3e1437c57,
            tpot99_bits: 0x3f909fe86833c600,
            energy_bits: 0x401728dd920d62fd,
        },
        "round-robin/round-robin",
    );
}

#[test]
fn routing_ll_ll_matches_pre_pipeline() {
    check(
        routing_cell(PoolRouting::LeastLoaded, PoolRouting::LeastLoaded),
        Fingerprint {
            completed: 24,
            migrated: 140,
            bytes: 33957085184,
            wait_us: 0,
            p95_bits: 0x40333b3083558a76,
            ttft95_bits: 0x3fbb9cb6848beb5b,
            tpot99_bits: 0x3f90d73860999dcb,
            energy_bits: 0x4015bfb728ed0df3,
        },
        "least-loaded/least-loaded",
    );
}

#[test]
fn chatbot_open_loop_matches_pre_pipeline() {
    check(
        DisaggConfig::new(DisaggWorkload::Chatbot, 2.0, 24)
            .seed(0xD1A6)
            .pools(2, 2),
        Fingerprint {
            completed: 24,
            migrated: 24,
            bytes: 1222639616,
            wait_us: 0,
            p95_bits: 0x402191fcf3dc054f,
            ttft95_bits: 0x3fba39c51dabe271,
            tpot99_bits: 0x3f8f47f993d5347a,
            energy_bits: 0x40037f76dcdaf4fa,
        },
        "chatbot open-loop",
    );
}

#[test]
fn agent_closed_loop_matches_pre_pipeline() {
    check(
        DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.2, 20)
            .seed(0xC11E)
            .pools(2, 2)
            .client(ClientModel::ClosedLoop {
                concurrency: 5,
                think_time: SimDuration::from_secs_f64(0.4),
            }),
        Fingerprint {
            completed: 20,
            migrated: 123,
            bytes: 30821842944,
            wait_us: 0,
            p95_bits: 0x40336c5ab3aabcd8,
            ttft95_bits: 0x3fc04f8f8a4c1ebd,
            tpot99_bits: 0x3f8fe7e1fc08fa7b,
            energy_bits: 0x4025c51ea1f0e92d,
        },
        "agent closed-loop",
    );
}

#[test]
fn contended_pcie_cell_matches_pre_pipeline() {
    // The one cell with real head-of-line waiting (26.9 ms of it): a
    // 1P+1D split over PCIe. Queueing arithmetic must survive the
    // chunked generalization untouched.
    check(
        DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.0, 20)
            .seed(0x9C1E)
            .pools(1, 1)
            .link(LinkSpec::pcie_gen4()),
        Fingerprint {
            completed: 20,
            migrated: 91,
            bytes: 18838716416,
            wait_us: 26886,
            p95_bits: 0x4032da21fafc8b00,
            ttft95_bits: 0x3fb878316a055758,
            tpot99_bits: 0x3f90f16f4384ba0f,
            energy_bits: 0x4006edf8dfe8111c,
        },
        "contended pcie",
    );
}

#[test]
fn autoscale_flip_matches_pre_pipeline() {
    check(
        DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.0, 16)
            .seed(0xD15A)
            .pools(2, 2)
            .flip_cost(FlipCostModel::warm())
            .autoscale(AutoscalePolicy::Schedule(vec![(
                SimTime::from_secs_f64(8.0),
                FlipDirection::PrefillToDecode,
            )])),
        Fingerprint {
            completed: 16,
            migrated: 89,
            bytes: 20497563648,
            wait_us: 0,
            p95_bits: 0x403430316a055758,
            ttft95_bits: 0x3fb1b25f633ce63a,
            tpot99_bits: 0x3f8fb69984a0e411,
            energy_bits: 0x4019cc484ab92872,
        },
        "autoscale flip",
    );
}
