//! Conservation invariants for disaggregated serving: nothing is lost,
//! duplicated, or conjured across the prefill → transfer → decode
//! hand-off.
//!
//! Checked via engine observers attached to every pool replica:
//!
//! 1. every request prefills exactly once (one terminal event per
//!    prefill-side submission; decode pools never run prefill tokens);
//! 2. transferred KV bytes equal the prefill-side KV footprint released
//!    at migration, byte for byte;
//! 3. decode-pool KV occupancy never exceeds pool capacity;
//! 4. a zero-cost link reproduces colocated per-request token counts —
//!    disaggregation with free transfers changes *where* work runs, not
//!    *what* is computed.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use agentsim_disagg::{DisaggConfig, DisaggReport, DisaggSim, DisaggWorkload};
use agentsim_gpu::LinkSpec;
use agentsim_llm::{EngineEvent, EngineObserver, RequestId};

/// Per-replica event tally shared with the test body.
#[derive(Debug, Default)]
struct Tally {
    submitted: Vec<RequestId>,
    /// Admissions with fresh prompt tokens to prefill (per request).
    prefill_admissions: HashMap<RequestId, u32>,
    /// Prompt tokens admitted from the prefix cache or KV import.
    zero_token_admissions: u64,
    completed: Vec<RequestId>,
    migrated: Vec<RequestId>,
    migrated_bytes: u64,
    prefill_step_tokens: u64,
    occupancy_violations: u64,
    steps: u64,
}

#[derive(Debug, Clone)]
struct TallyObserver(Arc<Mutex<Tally>>);

impl EngineObserver for TallyObserver {
    fn on_event(&mut self, event: &EngineEvent<'_>) {
        let mut t = self.0.lock().unwrap();
        match *event {
            EngineEvent::Submitted { id, .. } => t.submitted.push(id),
            EngineEvent::Admitted { id, new_tokens, .. } => {
                if new_tokens > 0 {
                    *t.prefill_admissions.entry(id).or_insert(0) += 1;
                } else {
                    t.zero_token_admissions += 1;
                }
            }
            EngineEvent::StepCompleted {
                prefill,
                kv_used_blocks,
                kv_total_blocks,
                ..
            } => {
                t.steps += 1;
                t.prefill_step_tokens += prefill.iter().map(|(_, n)| *n as u64).sum::<u64>();
                if kv_used_blocks > kv_total_blocks {
                    t.occupancy_violations += 1;
                }
            }
            EngineEvent::Completed { completion, .. } => t.completed.push(completion.id),
            EngineEvent::Migrated { id, kv_bytes, .. } => {
                t.migrated.push(id);
                t.migrated_bytes += kv_bytes;
            }
            EngineEvent::Preempted { .. } => {}
            EngineEvent::RoleChanged { .. } => {}
            // The disagg driver never cancels engine work (its overload
            // handling sheds at the coordinator, before submission).
            EngineEvent::Abandoned { .. } => unreachable!("disagg never abandons engine work"),
        }
    }
}

type Tallies = Vec<Arc<Mutex<Tally>>>;

/// Runs `cfg` with a tally on every replica; returns the report plus the
/// prefill-pool and decode-pool tallies.
fn run_tallied(cfg: DisaggConfig) -> (DisaggReport, Tallies, Tallies) {
    let mut sim = DisaggSim::new(cfg);
    let (np, nd) = sim.pool_sizes();
    let mut prefill = Vec::with_capacity(np);
    let mut decode = Vec::with_capacity(nd);
    for p in 0..np {
        let tally = Arc::new(Mutex::new(Tally::default()));
        sim.set_prefill_observer(p, Box::new(TallyObserver(tally.clone())));
        prefill.push(tally);
    }
    for d in 0..nd {
        let tally = Arc::new(Mutex::new(Tally::default()));
        sim.set_decode_observer(d, Box::new(TallyObserver(tally.clone())));
        decode.push(tally);
    }
    (sim.run(), prefill, decode)
}

#[test]
fn every_request_prefills_exactly_once_and_terminates_exactly_once() {
    let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 0.8, 12)
        .seed(11)
        .pools(2, 2);
    let (report, prefill, decode) = run_tallied(cfg);
    assert_eq!(report.completed, 12);

    let mut submitted = 0usize;
    let mut terminals = 0usize;
    for t in &prefill {
        let t = t.lock().unwrap();
        submitted += t.submitted.len();
        terminals += t.completed.len() + t.migrated.len();
        // Each prefill-side request prefills fresh tokens at least once
        // (exactly once unless preempted mid-prefill and recomputed).
        for id in &t.submitted {
            let n = t.prefill_admissions.get(id).copied().unwrap_or(0);
            assert!(n >= 1, "request {id:?} never prefilled");
        }
        // No request terminates twice on the prefill side.
        let mut seen: Vec<RequestId> = t
            .completed
            .iter()
            .chain(t.migrated.iter())
            .copied()
            .collect();
        seen.sort_by_key(|id| id.0);
        let before = seen.len();
        seen.dedup();
        assert_eq!(seen.len(), before, "a request terminated twice");
    }
    assert_eq!(
        submitted, terminals,
        "every prefill-side submission ends in exactly one terminal event"
    );
    assert_eq!(report.calls.len(), submitted, "one record per call");

    // Decode pools run zero prefill tokens and only see imported
    // (zero-new-token) admissions; every decode submission completes.
    let mut decode_submitted = 0usize;
    let mut decode_completed = 0usize;
    for t in &decode {
        let t = t.lock().unwrap();
        assert_eq!(t.prefill_step_tokens, 0, "decode pool ran prefill work");
        assert!(t.prefill_admissions.is_empty(), "decode pool prefilled");
        decode_submitted += t.submitted.len();
        decode_completed += t.completed.len();
        assert!(t.migrated.is_empty(), "decode pools never re-migrate");
    }
    assert_eq!(decode_submitted, decode_completed);
    assert_eq!(decode_submitted as u64, report.migrated_calls);
}

#[test]
fn transferred_bytes_match_prefill_side_kv_footprint() {
    let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 0.8, 10)
        .seed(5)
        .link(LinkSpec::pcie_gen4());
    let (report, prefill, _) = run_tallied(cfg);
    let released: u64 = prefill
        .iter()
        .map(|t| t.lock().unwrap().migrated_bytes)
        .sum();
    assert!(released > 0);
    assert_eq!(
        released, report.transferred_bytes,
        "link moved exactly the bytes the prefill pool released"
    );
    assert_eq!(
        released,
        report.calls.iter().map(|c| c.kv_bytes).sum::<u64>(),
        "per-call records account for every transferred byte"
    );
}

#[test]
fn decode_pool_occupancy_never_exceeds_capacity() {
    // Push hard enough that decode pools are busy and preemption is
    // plausible; the occupancy invariant must hold at every step.
    let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 3.0, 20)
        .seed(13)
        .pools(2, 1);
    let (report, prefill, decode) = run_tallied(cfg);
    assert_eq!(report.completed, 20);
    for t in prefill.iter().chain(decode.iter()) {
        let t = t.lock().unwrap();
        assert!(t.steps > 0);
        assert_eq!(t.occupancy_violations, 0, "KV occupancy exceeded capacity");
    }
}

#[test]
fn zero_cost_link_reproduces_colocated_token_counts() {
    // Chatbot traffic: per-request token counts are drawn from the
    // workload generator alone, so free transfers must not change them.
    // (Agent workloads can legitimately diverge: tool latencies are
    // drawn from timing-dependent RNG forks.)
    let n = 24;
    let disagg = DisaggSim::new(
        DisaggConfig::new(DisaggWorkload::Chatbot, 1.5, n)
            .seed(21)
            .link(LinkSpec::zero_cost()),
    )
    .run();
    let colocated =
        DisaggSim::new(DisaggConfig::colocated(DisaggWorkload::Chatbot, 1, 1.5, n).seed(21)).run();

    assert_eq!(disagg.completed, n);
    assert_eq!(colocated.completed, n);
    assert_eq!(colocated.migrated_calls, 0);
    assert_eq!(colocated.transferred_bytes, 0);

    let tokens = |r: &DisaggReport| {
        let mut v: Vec<(u64, u32, u32)> = r
            .calls
            .iter()
            .map(|c| (c.session, c.prompt_tokens, c.output_tokens))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(
        tokens(&disagg),
        tokens(&colocated),
        "free transfers must not change what is computed, only where"
    );
    // The zero-cost link really is free: transfer time telescopes to
    // nothing even though the calls did migrate.
    assert!(disagg.migrated_calls > 0);
    for c in disagg.calls.iter().filter(|c| c.migrated()) {
        assert_eq!(c.span().transfer, agentsim_simkit::SimDuration::ZERO);
    }
}
