//! Differential test: the disaggregated driver, collapsed to its
//! degenerate configuration (colocated single replica, zero-cost link,
//! autoscaling disabled), must reproduce the colocated `ServingSim`
//! golden fingerprints **bit for bit** — the same constants pinned in
//! `crates/serving/tests/golden_determinism.rs`.
//!
//! This is the strongest statement that the two-pool driver adds a
//! topology, not a behaviour: same arrivals, same per-session RNG forks,
//! same scheduler decisions, same KV hits, same preemptions, down to the
//! last float bit. Any drift here means the disagg event loop diverged
//! from the serving one.

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_disagg::{AutoscalePolicy, DisaggConfig, DisaggReport, DisaggSim, DisaggWorkload};
use agentsim_gpu::LinkSpec;
use agentsim_llm::{EngineConfig, SchedulerPolicy};
use agentsim_workloads::Benchmark;

/// Same shape as the serving golden fingerprint.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    completed: u64,
    solved: u64,
    p50_bits: u64,
    p95_bits: u64,
    kv_hit_bits: u64,
    preemptions: u64,
}

impl Fingerprint {
    fn of(r: &DisaggReport) -> Self {
        Fingerprint {
            completed: r.completed,
            solved: r.solved,
            p50_bits: r.p50_s.to_bits(),
            p95_bits: r.p95_s.to_bits(),
            kv_hit_bits: r.kv_hit_rate.to_bits(),
            preemptions: r.preemptions,
        }
    }
}

fn workload(name: &str) -> DisaggWorkload {
    match name {
        "chatbot" => DisaggWorkload::Chatbot,
        "agent" => DisaggWorkload::Agent {
            kind: AgentKind::React,
            benchmark: Benchmark::HotpotQa,
            config: AgentConfig::default_8b(),
        },
        "mixed" => DisaggWorkload::Mixed {
            agent_fraction: 0.5,
            kind: AgentKind::React,
            benchmark: Benchmark::HotpotQa,
            config: AgentConfig::default_8b(),
        },
        other => panic!("unknown workload {other}"),
    }
}

/// The exact configuration of the serving golden runs, expressed through
/// the disagg driver's degenerate path.
fn run(name: &str, scheduler: SchedulerPolicy) -> Fingerprint {
    let engine = EngineConfig::a100_llama8b()
        .with_scheduler(scheduler)
        .with_kv_fraction(0.04);
    let cfg = DisaggConfig::colocated(workload(name), 1, 8.0, 40)
        .seed(0xD5EED)
        .engine(engine)
        .link(LinkSpec::zero_cost());
    assert!(matches!(cfg.autoscale, AutoscalePolicy::Disabled));
    let report = DisaggSim::new(cfg).run();
    assert_eq!(report.migrated_calls, 0, "colocated mode never migrates");
    assert_eq!(report.transferred_bytes, 0);
    Fingerprint::of(&report)
}

macro_rules! differential {
    ($test:ident, $name:literal, $sched:expr, $completed:literal, $solved:literal,
     $p50:literal, $p95:literal, $hit:literal, $preempt:literal) => {
        #[test]
        fn $test() {
            let got = run($name, $sched);
            let want = Fingerprint {
                completed: $completed,
                solved: $solved,
                p50_bits: $p50,
                p95_bits: $p95,
                kv_hit_bits: $hit,
                preemptions: $preempt,
            };
            assert_eq!(
                got, want,
                "{} diverged from the colocated ServingSim golden — the \
                 disagg driver no longer degenerates to the serving one",
                $name
            );
        }
    };
}

// The constants below are the *serving* goldens from
// crates/serving/tests/golden_determinism.rs, verbatim.
differential!(
    chatbot_fcfs_matches_serving_golden,
    "chatbot",
    SchedulerPolicy::Fcfs,
    40,
    0,
    0x401c9deca25529fe,
    0x40244d996744b2b7,
    0x3fbec4bf9c20d966,
    38
);
differential!(
    chatbot_deepest_matches_serving_golden,
    "chatbot",
    SchedulerPolicy::DeepestFirst,
    40,
    0,
    0x401c9deca25529fe,
    0x402463c7f77af640,
    0x3fbeac2154dbf68a,
    40
);
differential!(
    agent_fcfs_matches_serving_golden,
    "agent",
    SchedulerPolicy::Fcfs,
    40,
    12,
    0x4048e57403dddb12,
    0x405469a400fba882,
    0x3fe1583517fc19a0,
    27
);
differential!(
    agent_deepest_matches_serving_golden,
    "agent",
    SchedulerPolicy::DeepestFirst,
    40,
    12,
    0x40481763f572de44,
    0x40539bfc5cdd50a9,
    0x3fe27cb834d0b8e0,
    29
);
differential!(
    mixed_fcfs_matches_serving_golden,
    "mixed",
    SchedulerPolicy::Fcfs,
    40,
    5,
    0x40231e16f86a0989,
    0x40477ebf9830e3ce,
    0x3fdf7a590117ac40,
    29
);
differential!(
    mixed_deepest_matches_serving_golden,
    "mixed",
    SchedulerPolicy::DeepestFirst,
    40,
    5,
    0x403710f345069a4e,
    0x4047394855da2728,
    0x3fe0033284ef4253,
    18
);
