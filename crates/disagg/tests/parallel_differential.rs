//! Differential tests for the parallel disaggregated driver: every
//! thread count must reproduce the sequential run **bit-for-bit**,
//! across pool routings, client models, and autoscaling controllers.
//!
//! The disagg driver is the hardest case for conservative sync: KV
//! transfers and role flips couple replicas across shards, and the
//! autoscaler observes the waiting/running split of every engine. All of
//! it must come out bit-identical. Per-call records are compared in
//! full, floats via `f64::to_bits` — exact equality, no tolerance.

use agentsim_disagg::{
    AutoscalePolicy, DisaggConfig, DisaggReport, DisaggSim, DisaggWorkload, FlipDirection,
    FlipRecord, HysteresisConfig, PoolRouting,
};
use agentsim_gpu::FlipCostModel;
use agentsim_session::ClientModel;
use agentsim_simkit::{SimDuration, SimTime};

/// Everything a disagg run reports, floats pinned to bit patterns and
/// the full per-call record set included.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    completed: u64,
    solved: u64,
    migrated_calls: u64,
    transferred_bytes: u64,
    preemptions: u64,
    makespan: SimDuration,
    transfer_wait: SimDuration,
    p50_bits: u64,
    p95_bits: u64,
    kv_hit_bits: u64,
    energy_bits: u64,
    prefill_util_bits: Vec<u64>,
    decode_util_bits: Vec<u64>,
    flips: Vec<FlipRecord>,
    calls: Vec<agentsim_disagg::CallRecord>,
}

impl Fingerprint {
    fn of(r: &DisaggReport) -> Self {
        Fingerprint {
            completed: r.completed,
            solved: r.solved,
            migrated_calls: r.migrated_calls,
            transferred_bytes: r.transferred_bytes,
            preemptions: r.preemptions,
            makespan: r.makespan,
            transfer_wait: r.transfer_wait,
            p50_bits: r.p50_s.to_bits(),
            p95_bits: r.p95_s.to_bits(),
            kv_hit_bits: r.kv_hit_rate.to_bits(),
            energy_bits: r.energy_wh.to_bits(),
            prefill_util_bits: r.prefill_utilization.iter().map(|u| u.to_bits()).collect(),
            decode_util_bits: r.decode_utilization.iter().map(|u| u.to_bits()).collect(),
            flips: r.flips.clone(),
            calls: r.calls.clone(),
        }
    }
}

fn assert_matches_sequential(label: &str, cfg: DisaggConfig, threads: u32) {
    let sequential = Fingerprint::of(&DisaggSim::new(cfg.clone()).run());
    let parallel = Fingerprint::of(&DisaggSim::new(cfg.threads(threads)).run());
    assert_eq!(
        sequential, parallel,
        "threads({threads}) diverged from sequential under {label}"
    );
}

/// Static 2P+2D split across every (prefill, decode) routing pairing.
fn routing_grid(threads: u32) {
    for (pr, dr) in [
        (PoolRouting::RoundRobin, PoolRouting::LeastLoaded),
        (PoolRouting::RoundRobin, PoolRouting::RoundRobin),
        (PoolRouting::LeastLoaded, PoolRouting::LeastLoaded),
    ] {
        let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.5, 24)
            .seed(0xD1A6)
            .pools(2, 2)
            .prefill_routing(pr)
            .decode_routing(dr);
        assert_matches_sequential(&format!("{pr}/{dr}"), cfg, threads);
    }
}

#[test]
fn routing_grid_two_threads() {
    routing_grid(2);
}

#[test]
fn routing_grid_four_threads() {
    routing_grid(4);
}

#[test]
fn routing_grid_eight_threads() {
    // More threads than replicas: clamped, still bit-identical.
    routing_grid(8);
}

#[test]
fn client_models_match_across_threads() {
    let trace: Vec<SimDuration> = (0..24)
        .map(|i| SimDuration::from_secs_f64([0.05, 0.5, 0.12, 0.9][i % 4]))
        .collect();
    let clients: Vec<(&str, ClientModel)> = vec![
        (
            "closed-loop",
            ClientModel::ClosedLoop {
                concurrency: 5,
                think_time: SimDuration::from_secs_f64(0.4),
            },
        ),
        ("trace-replay", ClientModel::TraceReplay { gaps: trace }),
    ];
    for (name, client) in clients {
        for threads in [2, 4] {
            let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.2, 20)
                .seed(0xC11E)
                .pools(2, 2)
                .client(client.clone());
            assert_matches_sequential(name, cfg, threads);
        }
    }
}

#[test]
fn colocated_baseline_matches_across_threads() {
    for threads in [2, 4, 8] {
        let cfg =
            DisaggConfig::colocated(DisaggWorkload::react_hotpotqa(), 4, 2.0, 24).seed(0xC010);
        assert_matches_sequential("colocated", cfg, threads);
    }
}

/// A scheduled flip exercises the full drain/flip path: victim
/// selection, drain detection, the reconfiguration gap, and pool
/// re-entry must all land on identical timestamps.
#[test]
fn scheduled_flip_matches_across_threads() {
    for threads in [2, 4, 8] {
        let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 0.8, 16)
            .seed(6)
            .pools(2, 2)
            .flip_cost(FlipCostModel::warm())
            .autoscale(AutoscalePolicy::Schedule(vec![
                (SimTime::from_secs_f64(2.0), FlipDirection::PrefillToDecode),
                (SimTime::from_secs_f64(9.0), FlipDirection::DecodeToPrefill),
            ]));
        assert_matches_sequential("scheduled flips", cfg, threads);
    }
}

/// The hysteresis controller reads the waiting/running split of every
/// replica after every event — the strictest consumer of mirror state.
#[test]
fn hysteresis_controller_matches_across_threads() {
    for threads in [2, 4] {
        let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 2.0, 24)
            .seed(8)
            .pools(1, 3)
            .flip_cost(FlipCostModel::zero())
            .autoscale(AutoscalePolicy::Hysteresis(HysteresisConfig {
                high: 1.2,
                low: 0.1,
                dwell: SimDuration::ZERO,
                ..HysteresisConfig::default()
            }));
        assert_matches_sequential("hysteresis", cfg, threads);
    }
}

#[test]
fn pinned_controller_matches_across_threads() {
    let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.5, 16)
        .seed(3)
        .pools(2, 2)
        .autoscale(AutoscalePolicy::Pinned);
    assert_matches_sequential("pinned", cfg, 4);
}

/// Pipelined transfers across the routing grid: chunked arrivals change
/// every downstream scheduling decision, and all of it must still come
/// out bit-identical at any thread count.
fn pipelined_grid(threads: u32) {
    for (pr, dr) in [
        (PoolRouting::RoundRobin, PoolRouting::LeastLoaded),
        (PoolRouting::LeastLoaded, PoolRouting::LeastLoaded),
    ] {
        let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.5, 24)
            .seed(0xD1A6)
            .pools(2, 2)
            .link(agentsim_gpu::LinkSpec::pcie_gen4())
            .transfer_chunks(32)
            .prefill_routing(pr)
            .decode_routing(dr);
        assert_matches_sequential(&format!("pipelined {pr}/{dr}"), cfg, threads);
    }
}

#[test]
fn pipelined_grid_two_threads() {
    pipelined_grid(2);
}

#[test]
fn pipelined_grid_four_threads() {
    pipelined_grid(4);
}

#[test]
fn pipelined_grid_eight_threads() {
    pipelined_grid(8);
}

/// An autoscale flip scheduled into a pipelined migration storm: the
/// drain gate must watch in-flight *chunked* transfers, and the
/// conservative sync must replay their multi-chunk arrivals exactly. A
/// slow link keeps trains in the air when the flip is requested.
#[test]
fn pipelined_flip_mid_drain_matches_across_threads() {
    for threads in [2, 4, 8] {
        let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.2, 16)
            .seed(0xF11D)
            .pools(2, 2)
            .link(agentsim_gpu::LinkSpec {
                name: "slow",
                bandwidth_bytes_per_s: 5e8,
                latency: SimDuration::from_micros(40),
            })
            .transfer_chunks(16)
            .flip_cost(FlipCostModel::warm())
            .autoscale(AutoscalePolicy::Schedule(vec![
                (SimTime::from_secs_f64(3.0), FlipDirection::DecodeToPrefill),
                (SimTime::from_secs_f64(9.0), FlipDirection::PrefillToDecode),
            ]));
        assert_matches_sequential("pipelined flip mid-drain", cfg, threads);
    }
}
