//! Property-based tests for the chunked KV-transfer layer: random
//! migration storms against random link specs and chunk counts must
//! conserve every byte, keep each link's wire FIFO, and never make a
//! pipelined migration arrive later than the serial transfer would.
//!
//! Each case draws a storm — a sequence of `(destination, kv_bytes,
//! prefill_time, inter-release gap)` migrations — plus a link spec, a
//! chunk count, and a coalescing floor, then replays the identical storm
//! through a serial scheduler and a chunked one and checks:
//!
//! 1. byte conservation: scheduler totals, per-link `bytes_moved`, and
//!    the telescoped chunk pricing all account for exactly the
//!    footprints the storm released;
//! 2. per-link FIFO: chunk wire intervals on one link never overlap, in
//!    schedule order, within and across migrations;
//! 3. monotone arrivals: chunk completion times within a train are
//!    nondecreasing and no migration arrives before it was released;
//! 4. `transfer_chunks(k)` arrival ≤ serial arrival, per migration, for
//!    every k ≥ 1 — pipelining may only help.

use agentsim_disagg::TransferScheduler;
use agentsim_gpu::LinkSpec;
use agentsim_kvcache::TokenBuf;
use agentsim_llm::{MigratedRequest, RequestId};
use agentsim_simkit::{SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Storm {
    /// `(dst replica, kv_bytes, prefill_us, gap_us to next release)`.
    migrations: Vec<(usize, u64, u64, u64)>,
    replicas: usize,
    chunks: u32,
    coalesce_floor: u64,
    /// Index into the link-spec table below.
    link: usize,
}

fn link_spec(i: usize) -> LinkSpec {
    match i {
        0 => LinkSpec::nvlink4(),
        1 => LinkSpec::pcie_gen4(),
        2 => LinkSpec::rdma_400g(),
        _ => LinkSpec {
            name: "slow",
            bandwidth_bytes_per_s: 5e8,
            latency: SimDuration::from_micros(40),
        },
    }
}

fn storm() -> impl Strategy<Value = Storm> {
    (1usize..5, 1usize..25).prop_flat_map(|(replicas, count)| {
        (
            prop::collection::vec(
                (0..replicas, 1u64..64_000_000, 0u64..200_000, 0u64..50_000),
                count..count + 1,
            ),
            2u32..64,
            prop_oneof![Just(0u64), Just(1 << 20), Just(8 << 20)],
            0usize..4,
        )
            .prop_map(move |(migrations, chunks, coalesce_floor, link)| Storm {
                migrations,
                replicas,
                chunks,
                coalesce_floor,
                link,
            })
    })
}

fn migration(id: u64, kv_bytes: u64, prefill_us: u64, released: SimTime) -> MigratedRequest {
    MigratedRequest {
        id: RequestId(id),
        arrived: SimTime::ZERO,
        started: SimTime::ZERO,
        released,
        prompt_tokens: 64,
        cached_tokens: 0,
        priority: 0,
        ctx: TokenBuf::from_segment(1, 65),
        generated: 1,
        target_out: 8,
        gen_seed: 7,
        prefill_time: SimDuration::from_micros(prefill_us),
        flops: 0.0,
        preemptions: 0,
        kv_blocks: (kv_bytes >> 20) as u32,
        kv_bytes,
    }
}

/// Replays the storm, returning per-migration `(transfer id, arrival)`
/// plus the scheduler for counter inspection.
fn replay(s: &Storm, chunks: u32, floor: u64) -> (Vec<(u64, SimTime)>, TransferScheduler) {
    let mut sched = TransferScheduler::new(link_spec(s.link), s.replicas)
        .with_chunks(chunks)
        .with_coalesce_floor(floor);
    let mut now = SimTime::from_micros(1_000);
    let mut out = Vec::with_capacity(s.migrations.len());
    for (i, &(dst, bytes, prefill_us, gap_us)) in s.migrations.iter().enumerate() {
        out.push(sched.schedule(now, dst, migration(i as u64, bytes, prefill_us, now)));
        now += SimDuration::from_micros(gap_us);
    }
    (out, sched)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn storms_conserve_bytes_and_stay_fifo_per_link(s in storm()) {
        let (scheduled, mut sched) = replay(&s, s.chunks, s.coalesce_floor);
        let footprint: u64 = s.migrations.iter().map(|&(_, b, _, _)| b).sum();

        // 1. Byte conservation, scheduler- and link-level.
        prop_assert_eq!(sched.total_bytes(), footprint);
        let moved: u64 = sched.links().iter().map(|l| l.bytes_moved()).sum();
        prop_assert_eq!(moved, footprint);

        // Per-link FIFO and per-train monotone arrivals. Completing in
        // schedule order hands back each train's chunk schedule.
        let mut last_end = vec![SimTime::ZERO; s.replicas];
        for &(id, arrival) in &scheduled {
            let pt = sched.complete(id);
            // 1b. The telescoped chunk pricing accounts for exactly the
            // serial wire time of the footprint.
            let spec = link_spec(s.link);
            prop_assert_eq!(
                pt.transfer.duration(),
                spec.transfer_time(pt.migration.kv_bytes)
            );
            prop_assert_eq!(pt.transfer.bytes(), pt.migration.kv_bytes);
            // 2. Non-overlap in schedule order on this link.
            for c in pt.transfer.chunks() {
                prop_assert!(c.start >= last_end[pt.dst]);
                prop_assert!(c.end >= c.start);
                last_end[pt.dst] = c.end;
            }
            // 3. Monotone: the train's last chunk is the arrival, and
            // no migration lands before its release.
            prop_assert_eq!(pt.transfer.end(), arrival);
            prop_assert!(arrival >= pt.migration.released);
        }
        prop_assert_eq!(sched.outstanding(), 0);
    }

    #[test]
    fn chunked_arrivals_never_trail_serial(s in storm()) {
        let (serial, _) = replay(&s, 1, s.coalesce_floor);
        for k in [2u32, 3, s.chunks, 64] {
            let (chunked, _) = replay(&s, k, s.coalesce_floor);
            for (ser, chk) in serial.iter().zip(&chunked) {
                prop_assert!(
                    chk.1 <= ser.1,
                    "k={}: chunked arrival {:?} after serial {:?}",
                    k, chk.1, ser.1
                );
            }
        }
    }

    #[test]
    fn single_chunk_storms_replay_the_serial_schedule_exactly(s in storm()) {
        // chunks(1) must be the serial path bit for bit, including all
        // link counters, whatever the coalescing floor.
        let (a, sa) = replay(&s, 1, s.coalesce_floor);
        let (b, sb) = replay(&s, 1, 0);
        prop_assert_eq!(a, b);
        for (la, lb) in sa.links().iter().zip(sb.links()) {
            prop_assert_eq!(la.transfers(), lb.transfers());
            prop_assert_eq!(la.chunks(), lb.chunks());
            prop_assert_eq!(la.busy_time(), lb.busy_time());
            prop_assert_eq!(la.wait_time(), lb.wait_time());
        }
    }
}
