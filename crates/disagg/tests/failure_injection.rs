//! Failure injection around role flips: a replica asked to flip while
//! KV is still migrating toward it must drain *gracefully* — refuse new
//! admissions, land the committed in-flight transfer, decode it to
//! completion, and only then change roles.
//!
//! The first test drives the engine + transfer scheduler directly (no
//! driver), injecting the drain at the worst moment: after the KV bytes
//! left the prefill side but before they arrived. The second runs the
//! full driver with a flip scheduled into a storm of slow-link
//! migrations and checks, via the replica's observer stream, that the
//! draining victim kept accepting committed KV imports right up to its
//! role change.

use std::sync::{Arc, Mutex};

use agentsim_disagg::{
    AutoscalePolicy, DisaggConfig, DisaggSim, DisaggWorkload, FlipDirection, TransferScheduler,
};
use agentsim_gpu::LinkSpec;
use agentsim_kvcache::TokenBuf;
use agentsim_llm::{Engine, EngineConfig, EngineEvent, EngineObserver, EngineRole};
use agentsim_simkit::{SimDuration, SimTime};

/// Runs `engine` until it goes idle, collecting completions.
fn drain_engine(
    engine: &mut Engine,
    mut now: SimTime,
) -> (Vec<agentsim_llm::LlmCompletion>, SimTime) {
    let mut done = Vec::new();
    while let Some(end) = engine.start_step_if_idle(now) {
        now = end;
        done.extend(engine.complete_step(now));
    }
    (done, now)
}

#[test]
fn draining_replica_lands_inflight_kv_then_flips() {
    // A prefill replica produces a migration...
    let mut prefill = Engine::new(EngineConfig::a100_llama8b().with_role(EngineRole::Prefill));
    prefill.submit(SimTime::ZERO, TokenBuf::from_segment(3, 256), 16, 0xFEED);
    let (_, t_first) = drain_engine(&mut prefill, SimTime::ZERO);
    let migrations = prefill.take_migrations();
    assert_eq!(migrations.len(), 1, "multi-token request must migrate");
    let migration = migrations.into_iter().next().unwrap();

    // ...whose KV is in the air toward decode replica 0 over a slow
    // link when the flip request arrives.
    let slow = LinkSpec {
        name: "slow",
        bandwidth_bytes_per_s: 1e8,
        latency: SimDuration::from_millis(5),
    };
    let mut transfers = TransferScheduler::new(slow, 1);
    let (tid, arrival) = transfers.schedule(t_first, 0, migration);
    assert!(arrival > t_first, "transfer takes real time");

    let mut decode = Engine::new(EngineConfig::a100_llama8b().with_role(EngineRole::Decode));
    decode.begin_drain();
    assert!(decode.is_draining());
    assert!(!decode.admits_new_work(), "draining refuses new admissions");

    // The drain condition is not met while the transfer is in flight —
    // the driver would not flip here.
    assert_eq!(transfers.in_flight(0), 1);

    // The committed transfer lands and the draining replica must accept
    // and finish it.
    let pt = transfers.complete(tid);
    decode.submit_prefilled(arrival, &pt.migration);
    let (done, t_done) = drain_engine(&mut decode, arrival);
    assert_eq!(done.len(), 1, "committed KV decodes to completion");
    assert_eq!(done[0].output_tokens, 16);

    // Only now is the flip legal.
    assert_eq!(transfers.in_flight(0), 0);
    assert!(!decode.has_work());
    decode.finish_drain(t_done, EngineRole::Prefill);
    assert!(!decode.is_draining());
    assert!(decode.admits_new_work(), "flipped replica serves again");
}

#[test]
#[should_panic(expected = "refuses new submissions")]
fn draining_replica_panics_on_a_fresh_submission() {
    let mut decode = Engine::new(EngineConfig::a100_llama8b().with_role(EngineRole::Decode));
    decode.begin_drain();
    decode.submit(SimTime::ZERO, TokenBuf::from_segment(1, 64), 4, 0xBAD);
}

/// Observer recording imported (zero-new-token) admissions and role
/// changes with their times.
#[derive(Debug, Default)]
struct FlipLog {
    imports: Vec<SimTime>,
    role_changes: Vec<(SimTime, EngineRole, EngineRole)>,
}

#[derive(Debug, Clone)]
struct FlipLogObserver(Arc<Mutex<FlipLog>>);

impl EngineObserver for FlipLogObserver {
    fn on_event(&mut self, event: &EngineEvent<'_>) {
        match *event {
            EngineEvent::Admitted {
                at, new_tokens: 0, ..
            } => {
                self.0.lock().unwrap().imports.push(at);
            }
            EngineEvent::RoleChanged { at, from, to } => {
                self.0.lock().unwrap().role_changes.push((at, from, to));
            }
            _ => {}
        }
    }
}

#[test]
fn flip_scheduled_into_a_migration_storm_completes_cleanly() {
    // Slow link + high load: transfers pile up toward the decode pool,
    // so a decode→prefill flip lands while KV is migrating.
    let slow = LinkSpec {
        name: "slow",
        bandwidth_bytes_per_s: 5e8,
        latency: SimDuration::from_millis(2),
    };
    let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 2.0, 16)
        .seed(0xF11)
        .pools(1, 2)
        .link(slow)
        .autoscale(AutoscalePolicy::Schedule(vec![(
            SimTime::from_secs_f64(3.0),
            FlipDirection::DecodeToPrefill,
        )]));
    let mut sim = DisaggSim::new(cfg);
    let logs: Vec<Arc<Mutex<FlipLog>>> = (0..3)
        .map(|r| {
            let log = Arc::new(Mutex::new(FlipLog::default()));
            sim.set_replica_observer(r, Box::new(FlipLogObserver(log.clone())));
            log
        })
        .collect();
    let r = sim.run();
    assert_eq!(r.completed, 16, "no request lost to the flip");
    assert_eq!(r.flips.len(), 1, "the scheduled flip executed");
    let flip = &r.flips[0];

    // The victim's observer stream shows the role change at exactly the
    // recorded completion time...
    let log = logs[flip.replica as usize].lock().unwrap();
    assert_eq!(log.role_changes.len(), 1);
    let (at, from, to) = log.role_changes[0];
    assert_eq!(at, flip.completed);
    assert_eq!(from, EngineRole::Decode);
    assert_eq!(to, EngineRole::Prefill);

    // ...and every KV import it accepted precedes the drain's end: the
    // drain waited for committed transfers instead of dropping them.
    assert!(!log.imports.is_empty(), "victim served imported KV");
    assert!(log.imports.iter().all(|&t| t <= flip.drained));
}

#[test]
fn flip_into_partially_shipped_chunked_migrations_lands_every_chunk() {
    // Same storm, but migrations ship as 16-chunk pipelined trains: when
    // the flip is requested, trains are mid-flight — head chunks on the
    // wire, tail chunks still pending behind them. The drain gate counts
    // a migration in flight until its *last* chunk lands, so every
    // committed chunk must arrive before the role change.
    let slow = LinkSpec {
        name: "slow",
        bandwidth_bytes_per_s: 5e8,
        latency: SimDuration::from_millis(2),
    };
    let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 2.0, 16)
        .seed(0xF11)
        .pools(1, 2)
        .link(slow)
        .transfer_chunks(16)
        .autoscale(AutoscalePolicy::Schedule(vec![(
            SimTime::from_secs_f64(3.0),
            FlipDirection::DecodeToPrefill,
        )]));
    let mut sim = DisaggSim::new(cfg);
    let logs: Vec<Arc<Mutex<FlipLog>>> = (0..3)
        .map(|r| {
            let log = Arc::new(Mutex::new(FlipLog::default()));
            sim.set_replica_observer(r, Box::new(FlipLogObserver(log.clone())));
            log
        })
        .collect();
    let r = sim.run();
    assert_eq!(r.completed, 16, "no request lost to the flip");
    assert_eq!(r.flips.len(), 1, "the scheduled flip executed");
    let flip = &r.flips[0];

    // FlipRecord timestamps still telescope around the chunked drain.
    assert!(flip.requested <= flip.drained);
    assert!(flip.drained <= flip.completed);

    let log = logs[flip.replica as usize].lock().unwrap();
    assert_eq!(log.role_changes.len(), 1);
    assert_eq!(log.role_changes[0].0, flip.completed);

    // Every committed chunked migration the victim accepted landed
    // before the drain finished — no train was cut off mid-flight.
    assert!(!log.imports.is_empty(), "victim served imported KV");
    assert!(log.imports.iter().all(|&t| t <= flip.drained));

    // Pipelining moved the same bytes, and chunked trains really ran
    // (more wire chunks than migrations on at least one link).
    assert!(r.transferred_bytes > 0);
    assert!(
        r.links.iter().any(|l| l.chunks > l.transfers),
        "migrations should have shipped as multi-chunk trains"
    );
}
