//! Golden determinism tests: pinned `DisaggReport` fingerprints for the
//! disaggregated split and the colocated baseline.
//!
//! The disaggregated simulator must stay bit-deterministic for a given
//! configuration and seed: any drift here means an engine, transfer, or
//! routing change altered simulation semantics, not just speed.
//!
//! Floats are pinned via `f64::to_bits` — exact equality, no tolerance.

use agentsim_disagg::{DisaggConfig, DisaggReport, DisaggSim, DisaggWorkload};

#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    completed: u64,
    migrated: u64,
    transferred_bytes: u64,
    p95_bits: u64,
    ttft_p95_bits: u64,
    tpot_p99_bits: u64,
}

impl Fingerprint {
    fn of(r: &DisaggReport) -> Self {
        let mut ttft = r.ttft();
        let mut tpot = r.tpot();
        Fingerprint {
            completed: r.completed,
            migrated: r.migrated_calls,
            transferred_bytes: r.transferred_bytes,
            p95_bits: r.p95_s.to_bits(),
            ttft_p95_bits: ttft.p95().to_bits(),
            tpot_p99_bits: tpot.percentile(99.0).to_bits(),
        }
    }
}

fn run(cfg: DisaggConfig) -> Fingerprint {
    Fingerprint::of(&DisaggSim::new(cfg).run())
}

fn disagg_cfg() -> DisaggConfig {
    DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.0, 16).seed(0xD15A)
}

fn colocated_cfg() -> DisaggConfig {
    DisaggConfig::colocated(DisaggWorkload::react_hotpotqa(), 2, 1.0, 16).seed(0xD15A)
}

macro_rules! golden {
    ($test:ident, $cfg:expr, $completed:literal, $migrated:literal, $bytes:literal,
     $p95:literal, $ttft:literal, $tpot:literal) => {
        #[test]
        fn $test() {
            let got = run($cfg);
            let want = Fingerprint {
                completed: $completed,
                migrated: $migrated,
                transferred_bytes: $bytes,
                p95_bits: $p95,
                ttft_p95_bits: $ttft,
                tpot_p99_bits: $tpot,
            };
            assert_eq!(
                got, want,
                "disagg fingerprint drifted — an engine, transfer, or routing \
                 change altered simulation semantics (run \
                 `print_disagg_fingerprints` to see current values)"
            );
        }
    };
}

// Capture helper: `cargo test -p agentsim-disagg --test golden \
// print_disagg_fingerprints -- --ignored --nocapture` prints the
// constants in the macro's argument order.
golden!(
    disagg_1p1d,
    disagg_cfg(),
    16,
    85,
    18614321152,
    0x4032c7dc486ad2dd,
    0x3fb12c16df3f9618,
    0x3f90baa582dbe7f3
);
golden!(
    colocated_baseline,
    colocated_cfg(),
    16,
    0,
    0,
    0x403261c9f72f76e6,
    0x3fba8f6cefed6345,
    0x3f956fb8f57f737e
);

#[test]
#[ignore]
fn print_disagg_fingerprints() {
    for (name, cfg) in [
        ("disagg_1p1d", disagg_cfg()),
        ("colocated", colocated_cfg()),
    ] {
        let f = run(cfg);
        println!(
            "{name}: {}, {}, {}, {:#x}, {:#x}, {:#x}",
            f.completed,
            f.migrated,
            f.transferred_bytes,
            f.p95_bits,
            f.ttft_p95_bits,
            f.tpot_p99_bits
        );
    }
}
