//! Golden determinism tests: pinned `DisaggReport` fingerprints for the
//! disaggregated split and the colocated baseline.
//!
//! The disaggregated simulator must stay bit-deterministic for a given
//! configuration and seed: any drift here means an engine, transfer, or
//! routing change altered simulation semantics, not just speed.
//!
//! Floats are pinned via `f64::to_bits` — exact equality, no tolerance.

use agentsim_disagg::{
    AutoscalePolicy, DisaggConfig, DisaggReport, DisaggSim, DisaggWorkload, FlipDirection,
};
use agentsim_gpu::FlipCostModel;
use agentsim_simkit::SimTime;

#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    completed: u64,
    migrated: u64,
    transferred_bytes: u64,
    p95_bits: u64,
    ttft_p95_bits: u64,
    tpot_p99_bits: u64,
}

impl Fingerprint {
    fn of(r: &DisaggReport) -> Self {
        let mut ttft = r.ttft();
        let mut tpot = r.tpot();
        Fingerprint {
            completed: r.completed,
            migrated: r.migrated_calls,
            transferred_bytes: r.transferred_bytes,
            p95_bits: r.p95_s.to_bits(),
            ttft_p95_bits: ttft.p95().to_bits(),
            tpot_p99_bits: tpot.percentile(99.0).to_bits(),
        }
    }
}

fn run(cfg: DisaggConfig) -> Fingerprint {
    Fingerprint::of(&DisaggSim::new(cfg).run())
}

fn disagg_cfg() -> DisaggConfig {
    DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.0, 16).seed(0xD15A)
}

fn colocated_cfg() -> DisaggConfig {
    DisaggConfig::colocated(DisaggWorkload::react_hotpotqa(), 2, 1.0, 16).seed(0xD15A)
}

/// A deterministic one-flip schedule over a 2P+2D split: at t=8s a
/// prefill replica drains and joins the decode pool.
fn flip_cfg() -> DisaggConfig {
    DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.0, 16)
        .seed(0xD15A)
        .pools(2, 2)
        .flip_cost(FlipCostModel::warm())
        .autoscale(AutoscalePolicy::Schedule(vec![(
            SimTime::from_secs_f64(8.0),
            FlipDirection::PrefillToDecode,
        )]))
}

macro_rules! golden {
    ($test:ident, $cfg:expr, $completed:literal, $migrated:literal, $bytes:literal,
     $p95:literal, $ttft:literal, $tpot:literal) => {
        #[test]
        fn $test() {
            let got = run($cfg);
            let want = Fingerprint {
                completed: $completed,
                migrated: $migrated,
                transferred_bytes: $bytes,
                p95_bits: $p95,
                ttft_p95_bits: $ttft,
                tpot_p99_bits: $tpot,
            };
            assert_eq!(
                got, want,
                "disagg fingerprint drifted — an engine, transfer, or routing \
                 change altered simulation semantics (run \
                 `print_disagg_fingerprints` to see current values)"
            );
        }
    };
}

// Capture helper: `cargo test -p agentsim-disagg --test golden \
// print_disagg_fingerprints -- --ignored --nocapture` prints the
// constants in the macro's argument order.
golden!(
    disagg_1p1d,
    disagg_cfg(),
    16,
    85,
    18614321152,
    0x4032c7dc486ad2dd,
    0x3fb12c16df3f9618,
    0x3f90baa582dbe7f3
);
golden!(
    colocated_baseline,
    colocated_cfg(),
    16,
    0,
    0,
    0x403261c9f72f76e6,
    0x3fba8f6cefed6345,
    0x3f956fb8f57f737e
);
golden!(
    autoscale_flip_schedule,
    flip_cfg(),
    16,
    89,
    20497563648,
    0x403430316a055758,
    0x3fb1b25f633ce63a,
    0x3f8fb69984a0e411
);

/// The flip-schedule golden really does flip (the fingerprint alone
/// cannot tell a dropped schedule from an executed one).
#[test]
fn autoscale_flip_schedule_executes_exactly_one_flip() {
    let r = DisaggSim::new(flip_cfg()).run();
    assert_eq!(r.flips.len(), 1);
    let f = &r.flips[0];
    assert_eq!(f.direction, FlipDirection::PrefillToDecode);
    assert!(f.requested >= SimTime::from_secs_f64(8.0));
    assert_eq!(
        f.completed.saturating_since(f.drained),
        FlipCostModel::warm().flip_time()
    );
}

/// The four static-split goldens above must also be reproduced when the
/// full controller plumbing runs but never flips: the pinned controller
/// proves autoscaling's observation path is bit-exactly free.
#[test]
fn pinned_controller_reproduces_static_split_goldens() {
    let pinned = run(disagg_cfg().autoscale(AutoscalePolicy::Pinned));
    let golden = run(disagg_cfg());
    assert_eq!(pinned, golden, "pinned controller perturbed the run");

    let report = DisaggSim::new(disagg_cfg().autoscale(AutoscalePolicy::Pinned)).run();
    assert!(report.flips.is_empty(), "pinned controller must never flip");
}

#[test]
#[ignore]
fn print_disagg_fingerprints() {
    for (name, cfg) in [
        ("disagg_1p1d", disagg_cfg()),
        ("colocated", colocated_cfg()),
        ("flip_2p2d", flip_cfg()),
    ] {
        let f = run(cfg);
        println!(
            "{name}: {}, {}, {}, {:#x}, {:#x}, {:#x}",
            f.completed,
            f.migrated,
            f.transferred_bytes,
            f.p95_bits,
            f.ttft_p95_bits,
            f.tpot_p99_bits
        );
    }
}
