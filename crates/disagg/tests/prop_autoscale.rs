//! Property-based tests for pool autoscaling: arbitrary flip schedules
//! against arbitrary arrival patterns must never lose, duplicate, or
//! conjure work.
//!
//! Each case builds a random topology (pool sizes, load, workload kind,
//! flip-cost model) plus a random [`ScheduleController`] flip schedule
//! drawn via `prop_flat_map` (an entry count chooses how many entries to
//! draw), runs it to completion, and checks:
//!
//! 1. every request completes exactly once (the driver additionally
//!    asserts no KV sequence leaks and no transfer is left behind);
//! 2. KV-byte conservation: the link moved exactly the bytes the
//!    per-call records account for;
//! 3. the five-phase span partitions end-to-end latency exactly for
//!    every call, flips or no flips;
//! 4. completed flips telescope (requested ≤ drained ≤ completed, gap
//!    equal to the flip-cost model) and never exceed the schedule;
//! 5. the same configuration replays bit-identically.

use agentsim_disagg::{AutoscalePolicy, DisaggConfig, DisaggSim, DisaggWorkload, FlipDirection};
use agentsim_gpu::FlipCostModel;
use agentsim_simkit::SimTime;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    prefill: u32,
    decode: u32,
    qps: f64,
    requests: u64,
    chatbot: bool,
    warm_flip: bool,
    seed: u64,
    schedule: Vec<(u64, bool)>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    // The entry count drawn first parameterizes the schedule length —
    // exactly what `prop_flat_map` exists for.
    (0usize..6).prop_flat_map(|entries| {
        (
            (1u32..4, 1u32..4, 1u64..40),
            0.5f64..3.0,
            6u64..14,
            any::<bool>(),
            any::<bool>(),
            prop::collection::vec((0u64..30_000_000, any::<bool>()), entries..entries + 1),
        )
            .prop_map(
                |((prefill, decode, seed), qps, requests, chatbot, warm_flip, schedule)| Scenario {
                    prefill,
                    decode,
                    qps,
                    requests,
                    chatbot,
                    warm_flip,
                    seed,
                    schedule,
                },
            )
    })
}

fn run(s: &Scenario) -> agentsim_disagg::DisaggReport {
    let workload = if s.chatbot {
        DisaggWorkload::Chatbot
    } else {
        DisaggWorkload::react_hotpotqa()
    };
    let schedule: Vec<(SimTime, FlipDirection)> = s
        .schedule
        .iter()
        .map(|&(us, to_decode)| {
            (
                SimTime::from_micros(us),
                if to_decode {
                    FlipDirection::PrefillToDecode
                } else {
                    FlipDirection::DecodeToPrefill
                },
            )
        })
        .collect();
    let cfg = DisaggConfig::new(workload, s.qps, s.requests)
        .seed(s.seed)
        .pools(s.prefill, s.decode)
        .flip_cost(if s.warm_flip {
            FlipCostModel::warm()
        } else {
            FlipCostModel::zero()
        })
        .autoscale(AutoscalePolicy::Schedule(schedule));
    DisaggSim::new(cfg).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn flip_schedules_conserve_every_request_and_byte(s in scenario()) {
        let r = run(&s);
        // 1. Nothing lost, nothing double-completed. (`run` itself
        //    asserts session totals, zero outstanding transfers, zero
        //    live KV sequences, and per-engine KV invariants.)
        prop_assert_eq!(r.completed, s.requests);
        prop_assert_eq!(
            r.migrated_calls,
            r.calls.iter().filter(|c| c.migrated()).count() as u64
        );

        // 2. KV-byte conservation across however many flips occurred.
        prop_assert_eq!(
            r.transferred_bytes,
            r.calls.iter().map(|c| c.kv_bytes).sum::<u64>()
        );

        // 3. The five-phase span partitions e2e exactly for every call,
        //    and the transfer phase is nonzero only for migrated calls
        //    on a non-free link.
        for c in &r.calls {
            prop_assert_eq!(c.span().total(), c.e2e());
            if !c.migrated() {
                prop_assert_eq!(c.span().transfer, agentsim_simkit::SimDuration::ZERO);
            }
        }

        // 4. Completed flips telescope and follow the cost model.
        prop_assert!(r.flips.len() <= s.schedule.len());
        let gap = if s.warm_flip {
            FlipCostModel::warm().flip_time()
        } else {
            FlipCostModel::zero().flip_time()
        };
        for f in &r.flips {
            prop_assert!(f.requested <= f.drained);
            prop_assert!(f.drained <= f.completed);
            prop_assert_eq!(f.completed.saturating_since(f.drained), gap);
            prop_assert!(f.replica < s.prefill + s.decode);
        }
    }

    #[test]
    fn flip_schedules_replay_bit_identically(s in scenario()) {
        let a = run(&s);
        let b = run(&s);
        prop_assert_eq!(a.calls, b.calls);
        prop_assert_eq!(a.flips, b.flips);
        prop_assert_eq!(a.p95_s.to_bits(), b.p95_s.to_bits());
        prop_assert_eq!(a.energy_wh.to_bits(), b.energy_wh.to_bits());
        prop_assert_eq!(a.transferred_bytes, b.transferred_bytes);
    }
}
