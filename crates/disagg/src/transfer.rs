//! The KV-transfer scheduler: moves migrated sequences' KV blocks from
//! the prefill pool to a decode replica over a modeled interconnect.
//!
//! Each replica owns one ingress [`Link`] (its NVLink/PCIe/RDMA port),
//! keyed by *global* replica index so pool autoscaling can retarget a
//! flipped replica without relabeling links; transfers targeting the
//! same replica serialize FIFO on that link, so a prefill burst shows up
//! as *transfer queueing*, not as a magic infinite-bandwidth hop. Links
//! of replicas that never receive a migration stay idle and contribute
//! nothing. The scheduler hands the driver an arrival time for each
//! migration and keeps conservation totals the tests check against the
//! prefill-side KV footprint.

use std::collections::HashMap;

use agentsim_gpu::{Link, LinkSpec, Transfer};
use agentsim_llm::MigratedRequest;
use agentsim_simkit::{SimDuration, SimTime};

/// A migration in flight: where it is going and on what schedule.
#[derive(Debug, Clone)]
pub struct PendingTransfer {
    /// Destination replica index (global).
    pub dst: usize,
    /// The migrated request (KV payload + resume state).
    pub migration: MigratedRequest,
    /// The link-level schedule (wait + wire time).
    pub transfer: Transfer,
}

/// Schedules KV migrations onto per-replica ingress links.
#[derive(Debug)]
pub struct TransferScheduler {
    links: Vec<Link>,
    pending: HashMap<u64, PendingTransfer>,
    in_flight: Vec<u32>,
    next_id: u64,
    total_bytes: u64,
    completed: u64,
}

impl TransferScheduler {
    /// One ingress link per replica (global index), all with the same
    /// spec.
    pub fn new(spec: LinkSpec, replicas: usize) -> Self {
        TransferScheduler {
            links: (0..replicas).map(|_| Link::new(spec.clone())).collect(),
            pending: HashMap::new(),
            in_flight: vec![0; replicas],
            next_id: 0,
            total_bytes: 0,
            completed: 0,
        }
    }

    /// Schedules `migration`'s KV blocks onto `dst`'s ingress link.
    /// Returns the transfer id and the arrival time at the decode
    /// replica (when the driver may resubmit the request there).
    pub fn schedule(
        &mut self,
        now: SimTime,
        dst: usize,
        migration: MigratedRequest,
    ) -> (u64, SimTime) {
        let transfer = self.links[dst].schedule(now, migration.kv_bytes);
        let id = self.next_id;
        self.next_id += 1;
        self.in_flight[dst] += 1;
        self.total_bytes += migration.kv_bytes;
        let arrival = transfer.end;
        self.pending.insert(
            id,
            PendingTransfer {
                dst,
                migration,
                transfer,
            },
        );
        (id, arrival)
    }

    /// Completes transfer `id` (at its arrival time), handing back the
    /// migration for decode-side resubmission.
    ///
    /// # Panics
    ///
    /// Panics on an unknown or already-completed id.
    pub fn complete(&mut self, id: u64) -> PendingTransfer {
        let pt = self
            .pending
            .remove(&id)
            .unwrap_or_else(|| panic!("unknown transfer {id}"));
        self.in_flight[pt.dst] -= 1;
        self.completed += 1;
        pt
    }

    /// Transfers currently in the air toward replica `dst` (decode-side
    /// least-loaded routing counts these as imminent work, and a
    /// draining replica may not flip until this reaches zero).
    pub fn in_flight(&self, dst: usize) -> u32 {
        self.in_flight[dst]
    }

    /// The per-replica ingress links (for stats: bytes moved, busy/wait
    /// time, transfer counts).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Total KV bytes accepted for transfer so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Transfers completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Transfers scheduled but not yet completed.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Total time transfers spent queued behind earlier transfers.
    pub fn total_wait(&self) -> SimDuration {
        self.links.iter().map(|l| l.wait_time()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim_kvcache::TokenBuf;
    use agentsim_llm::RequestId;

    fn migration(kv_bytes: u64) -> MigratedRequest {
        MigratedRequest {
            id: RequestId(0),
            arrived: SimTime::ZERO,
            started: SimTime::ZERO,
            released: SimTime::ZERO,
            prompt_tokens: 64,
            cached_tokens: 0,
            priority: 0,
            ctx: TokenBuf::from_segment(1, 65),
            generated: 1,
            target_out: 8,
            gen_seed: 7,
            prefill_time: SimDuration::ZERO,
            flops: 0.0,
            preemptions: 0,
            kv_blocks: (kv_bytes >> 20) as u32,
            kv_bytes,
        }
    }

    #[test]
    fn transfers_to_one_replica_serialize() {
        // 1 GB/s link: 1 MB takes 1 ms (+1µs latency).
        let spec = LinkSpec {
            name: "test",
            bandwidth_bytes_per_s: 1e9,
            latency: SimDuration::from_micros(1),
        };
        let mut sched = TransferScheduler::new(spec, 2);
        let (a, end_a) = sched.schedule(SimTime::ZERO, 0, migration(1_000_000));
        let (b, end_b) = sched.schedule(SimTime::ZERO, 0, migration(1_000_000));
        let (_c, end_c) = sched.schedule(SimTime::ZERO, 1, migration(1_000_000));
        assert!(end_b > end_a, "same-replica transfers queue FIFO");
        assert_eq!(end_c, end_a, "distinct replicas have distinct links");
        assert_eq!(sched.in_flight(0), 2);
        assert_eq!(sched.outstanding(), 3);

        let pt = sched.complete(a);
        assert_eq!(pt.dst, 0);
        assert_eq!(sched.in_flight(0), 1);
        sched.complete(b);
        assert_eq!(sched.in_flight(0), 0);
        assert_eq!(sched.completed(), 2);
        assert_eq!(sched.total_bytes(), 3_000_000);
        assert!(sched.total_wait() > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "unknown transfer")]
    fn double_completion_rejected() {
        let mut sched = TransferScheduler::new(LinkSpec::zero_cost(), 1);
        let (id, _) = sched.schedule(SimTime::ZERO, 0, migration(100));
        sched.complete(id);
        sched.complete(id);
    }
}
