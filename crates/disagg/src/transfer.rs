//! The KV-transfer scheduler: moves migrated sequences' KV blocks from
//! the prefill pool to a decode replica over a modeled interconnect.
//!
//! Each replica owns one ingress [`Link`] (its NVLink/PCIe/RDMA port),
//! keyed by *global* replica index so pool autoscaling can retarget a
//! flipped replica without relabeling links; transfers targeting the
//! same replica serialize FIFO on that link, so a prefill burst shows up
//! as *transfer queueing*, not as a magic infinite-bandwidth hop. Links
//! of replicas that never receive a migration stay idle and contribute
//! nothing. The scheduler hands the driver an arrival time for each
//! migration and keeps conservation totals the tests check against the
//! prefill-side KV footprint.
//!
//! # Layer-wise pipelining
//!
//! With [`TransferScheduler::with_chunks`] above 1, each migration ships
//! as a train of layer chunks instead of one lump: chunk `k` of `n`
//! became shippable `prefill_time * (n-1-k) / n` *before* the release
//! (its layers finished prefilling that much earlier — see
//! [`MigratedRequest::chunk_ready`]), so most of the wire time
//! retroactively overlaps the prefill compute and only the last chunk's
//! residual lands on the TTFT path. Chunk pricing telescopes to exactly
//! the serial wire time ([`Link::schedule_chunked`]), so a chunked
//! arrival is never later than the serial one, and a single-chunk plan
//! is bit-identical to the serial path. Small adjacent chunks coalesce
//! up to a floor ([`TransferScheduler::with_coalesce_floor`]) so a tiny
//! footprint does not fragment into per-chunk latency noise.

use std::collections::HashMap;

use agentsim_gpu::{ChunkedTransfer, Link, LinkSpec};
use agentsim_llm::MigratedRequest;
use agentsim_simkit::{SimDuration, SimTime};

/// Below this many bytes, adjacent layer chunks of one migration merge
/// into a single wire chunk: fragmenting a small footprint buys no
/// overlap worth the per-chunk scheduling noise.
pub const DEFAULT_COALESCE_FLOOR: u64 = 1 << 20;

/// A migration in flight: where it is going and on what schedule.
#[derive(Debug, Clone)]
pub struct PendingTransfer {
    /// Destination replica index (global).
    pub dst: usize,
    /// The migrated request (KV payload + resume state).
    pub migration: MigratedRequest,
    /// The link-level schedule (per-chunk wire times; one chunk when the
    /// scheduler runs serially).
    pub transfer: ChunkedTransfer,
}

/// Schedules KV migrations onto per-replica ingress links.
#[derive(Debug)]
pub struct TransferScheduler {
    links: Vec<Link>,
    chunks: u32,
    coalesce_floor: u64,
    pending: HashMap<u64, PendingTransfer>,
    in_flight: Vec<u32>,
    next_id: u64,
    total_bytes: u64,
    completed: u64,
    cancelled: u64,
}

impl TransferScheduler {
    /// One ingress link per replica (global index), all with the same
    /// spec. Serial (single-chunk) transfers by default.
    pub fn new(spec: LinkSpec, replicas: usize) -> Self {
        TransferScheduler {
            links: (0..replicas).map(|_| Link::new(spec.clone())).collect(),
            chunks: 1,
            coalesce_floor: DEFAULT_COALESCE_FLOOR,
            pending: HashMap::new(),
            in_flight: vec![0; replicas],
            next_id: 0,
            total_bytes: 0,
            completed: 0,
            cancelled: 0,
        }
    }

    /// Ships each migration as up to `chunks` layer chunks pipelined
    /// against the prefill that produced them. `1` is the serial path.
    pub fn with_chunks(mut self, chunks: u32) -> Self {
        assert!(chunks >= 1, "transfer chunks must be >= 1, got {chunks}");
        self.chunks = chunks;
        self
    }

    /// Overrides the coalescing floor: adjacent chunks merge until a
    /// merged chunk carries at least this many bytes. `0` disables
    /// coalescing.
    pub fn with_coalesce_floor(mut self, bytes: u64) -> Self {
        self.coalesce_floor = bytes;
        self
    }

    /// The chunk count migrations are split into.
    pub fn chunks(&self) -> u32 {
        self.chunks
    }

    /// Builds the `(ready, bytes)` chunk plan for one migration
    /// committed at `now`: an exact byte split across the chunk count
    /// (never finer than one byte per chunk), readiness back-dated by
    /// per-layer prefill progress, small adjacent chunks coalesced. The
    /// last chunk is always ready exactly at `now`.
    fn chunk_plan(&self, now: SimTime, migration: &MigratedRequest) -> Vec<(SimTime, u64)> {
        let n = u64::from(self.chunks).min(migration.kv_bytes.max(1)) as u32;
        let base = migration.kv_bytes / u64::from(n);
        let rem = migration.kv_bytes % u64::from(n);
        let mut plan: Vec<(SimTime, u64)> = Vec::with_capacity(n as usize);
        for k in 0..n {
            let bytes = base + u64::from(u64::from(k) < rem);
            let ready = migration.chunk_ready(now, k, n);
            // Coalesce: while the previous chunk is still under the
            // floor, fold this one in. Readiness is nondecreasing in k,
            // so the merged chunk ships at its newest constituent.
            match plan.last_mut() {
                Some(prev) if prev.1 < self.coalesce_floor => {
                    prev.0 = ready;
                    prev.1 += bytes;
                }
                _ => plan.push((ready, bytes)),
            }
        }
        plan
    }

    /// Schedules `migration`'s KV blocks onto `dst`'s ingress link.
    /// Returns the transfer id and the arrival time at the decode
    /// replica (when the driver may resubmit the request there).
    pub fn schedule(
        &mut self,
        now: SimTime,
        dst: usize,
        migration: MigratedRequest,
    ) -> (u64, SimTime) {
        let plan = self.chunk_plan(now, &migration);
        let transfer = self.links[dst].schedule_chunked(&plan);
        let id = self.next_id;
        self.next_id += 1;
        self.in_flight[dst] += 1;
        self.total_bytes += migration.kv_bytes;
        let arrival = transfer.end();
        self.pending.insert(
            id,
            PendingTransfer {
                dst,
                migration,
                transfer,
            },
        );
        (id, arrival)
    }

    /// Completes transfer `id` (at its arrival time), handing back the
    /// migration for decode-side resubmission.
    ///
    /// # Panics
    ///
    /// Panics on an unknown or already-completed id.
    pub fn complete(&mut self, id: u64) -> PendingTransfer {
        let pt = self
            .pending
            .remove(&id)
            .unwrap_or_else(|| panic!("unknown transfer {id}"));
        self.in_flight[pt.dst] -= 1;
        self.completed += 1;
        pt
    }

    /// Cancels a scheduled-but-unfinished transfer: releases its
    /// in-flight slot, rolls its bytes out of the conservation total,
    /// and reclaims the link reservation so later traffic stops queueing
    /// behind KV that will never ship ([`Link::reclaim`]). Returns the
    /// abandoned transfer.
    ///
    /// # Panics
    ///
    /// Panics on an unknown or already-completed id.
    pub fn cancel(&mut self, id: u64) -> PendingTransfer {
        let pt = self
            .pending
            .remove(&id)
            .unwrap_or_else(|| panic!("unknown transfer {id}"));
        self.in_flight[pt.dst] -= 1;
        self.total_bytes -= pt.migration.kv_bytes;
        self.cancelled += 1;
        self.links[pt.dst].reclaim(&pt.transfer);
        pt
    }

    /// Transfers currently in the air toward replica `dst` (decode-side
    /// least-loaded routing counts these as imminent work, and a
    /// draining replica may not flip until this reaches zero).
    pub fn in_flight(&self, dst: usize) -> u32 {
        self.in_flight[dst]
    }

    /// The per-replica ingress links (for stats: bytes moved, busy/wait
    /// time, transfer counts).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Total KV bytes accepted for transfer so far (cancelled bytes are
    /// rolled back out).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Transfers completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Transfers cancelled before arrival.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Transfers scheduled but not yet completed.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Total time transfers spent queued behind earlier transfers.
    pub fn total_wait(&self) -> SimDuration {
        self.links.iter().map(|l| l.wait_time()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim_kvcache::TokenBuf;
    use agentsim_llm::RequestId;

    fn migration(kv_bytes: u64) -> MigratedRequest {
        MigratedRequest {
            id: RequestId(0),
            arrived: SimTime::ZERO,
            started: SimTime::ZERO,
            released: SimTime::ZERO,
            prompt_tokens: 64,
            cached_tokens: 0,
            priority: 0,
            ctx: TokenBuf::from_segment(1, 65),
            generated: 1,
            target_out: 8,
            gen_seed: 7,
            prefill_time: SimDuration::ZERO,
            flops: 0.0,
            preemptions: 0,
            kv_blocks: (kv_bytes >> 20) as u32,
            kv_bytes,
        }
    }

    fn migration_with_prefill(kv_bytes: u64, prefill_us: u64) -> MigratedRequest {
        MigratedRequest {
            prefill_time: SimDuration::from_micros(prefill_us),
            ..migration(kv_bytes)
        }
    }

    fn test_spec() -> LinkSpec {
        // 1 GB/s link: 1 MB takes 1 ms (+1µs latency).
        LinkSpec {
            name: "test",
            bandwidth_bytes_per_s: 1e9,
            latency: SimDuration::from_micros(1),
        }
    }

    #[test]
    fn transfers_to_one_replica_serialize() {
        let mut sched = TransferScheduler::new(test_spec(), 2);
        let (a, end_a) = sched.schedule(SimTime::ZERO, 0, migration(1_000_000));
        let (b, end_b) = sched.schedule(SimTime::ZERO, 0, migration(1_000_000));
        let (_c, end_c) = sched.schedule(SimTime::ZERO, 1, migration(1_000_000));
        assert!(end_b > end_a, "same-replica transfers queue FIFO");
        assert_eq!(end_c, end_a, "distinct replicas have distinct links");
        assert_eq!(sched.in_flight(0), 2);
        assert_eq!(sched.outstanding(), 3);

        let pt = sched.complete(a);
        assert_eq!(pt.dst, 0);
        assert_eq!(sched.in_flight(0), 1);
        sched.complete(b);
        assert_eq!(sched.in_flight(0), 0);
        assert_eq!(sched.completed(), 2);
        assert_eq!(sched.total_bytes(), 3_000_000);
        assert!(sched.total_wait() > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "unknown transfer")]
    fn double_completion_rejected() {
        let mut sched = TransferScheduler::new(LinkSpec::zero_cost(), 1);
        let (id, _) = sched.schedule(SimTime::ZERO, 0, migration(100));
        sched.complete(id);
        sched.complete(id);
    }

    #[test]
    fn chunked_arrival_beats_serial_when_prefill_overlaps() {
        let now = SimTime::from_secs_f64(1.0);
        // 8 MB over 1 GB/s = 8 ms wire; prefill ran for 6 ms, so most
        // of the train back-fills wire time before `now`.
        let mig = || migration_with_prefill(8_000_000, 6_000);
        let mut serial = TransferScheduler::new(test_spec(), 1);
        let (_, serial_end) = serial.schedule(now, 0, mig());
        let mut chunked = TransferScheduler::new(test_spec(), 1).with_chunks(8);
        let (_, chunked_end) = chunked.schedule(now, 0, mig());
        assert!(chunked_end < serial_end);
        assert!(chunked_end >= now, "arrival may not precede the release");
        assert_eq!(chunked.total_bytes(), serial.total_bytes());
        assert_eq!(
            chunked.links()[0].bytes_moved(),
            serial.links()[0].bytes_moved()
        );
    }

    #[test]
    fn chunk_plan_conserves_bytes_and_ends_ready_now() {
        let now = SimTime::from_secs_f64(2.0);
        let sched = TransferScheduler::new(test_spec(), 1)
            .with_chunks(7)
            .with_coalesce_floor(0);
        let mig = migration_with_prefill(10_000_001, 3_500);
        let plan = sched.chunk_plan(now, &mig);
        assert_eq!(plan.len(), 7);
        assert_eq!(plan.iter().map(|&(_, b)| b).sum::<u64>(), 10_000_001);
        assert_eq!(plan.last().unwrap().0, now);
        for w in plan.windows(2) {
            assert!(w[1].0 >= w[0].0, "readiness must be nondecreasing");
        }
    }

    #[test]
    fn small_footprints_coalesce_to_fewer_chunks() {
        let sched = TransferScheduler::new(test_spec(), 1)
            .with_chunks(8)
            .with_coalesce_floor(1 << 20);
        // 2 MB over 8 chunks would be 256 KB each, all under the 1 MB
        // floor — adjacent chunks must fold together.
        let plan = sched.chunk_plan(SimTime::ZERO, &migration_with_prefill(2 << 20, 1_000));
        assert!(plan.len() < 8, "coalescing must reduce the chunk count");
        assert_eq!(plan.iter().map(|&(_, b)| b).sum::<u64>(), 2 << 20);
    }

    #[test]
    fn cancel_reclaims_the_link_reservation() {
        let mut sched = TransferScheduler::new(test_spec(), 1).with_chunks(4);
        let (a, end_a) = sched.schedule(SimTime::ZERO, 0, migration(1_000_000));
        let (b, _) = sched.schedule(SimTime::ZERO, 0, migration(4_000_000));
        assert_eq!(sched.in_flight(0), 2);
        sched.cancel(b);
        assert_eq!(sched.in_flight(0), 1);
        assert_eq!(sched.cancelled(), 1);
        assert_eq!(sched.total_bytes(), 1_000_000);
        assert_eq!(sched.outstanding(), 1);
        // The reclaimed reservation frees the wire: a new transfer now
        // queues behind `a` alone, not behind the cancelled 4 MB.
        let (_, end_c) = sched.schedule(SimTime::ZERO, 0, migration(1_000));
        assert!(end_c < end_a + SimDuration::from_micros(10));
        sched.complete(a);
    }

    #[test]
    #[should_panic(expected = "unknown transfer")]
    fn cancel_after_completion_rejected() {
        let mut sched = TransferScheduler::new(LinkSpec::zero_cost(), 1);
        let (id, _) = sched.schedule(SimTime::ZERO, 0, migration(100));
        sched.complete(id);
        sched.cancel(id);
    }
}
