//! Per-call records, exact five-phase spans, and run-level reports for
//! disaggregated serving.

use std::fmt;

use agentsim_metrics::{json, Samples};
use agentsim_simkit::{SimDuration, SimTime};

use crate::autoscale::FlipDirection;

/// Everything the driver knows about one finished LLM call, across both
/// pools. Timestamps telescope: [`CallRecord::span`] partitions the
/// end-to-end latency exactly into queue / prefill / transfer / decode /
/// stall with no residual.
#[derive(Debug, Clone, PartialEq)]
pub struct CallRecord {
    /// The session (request) this call belongs to.
    pub session: u64,
    /// Replica (global index) that served the prompt — a prefill-pool
    /// member at routing time, or any replica in colocated mode.
    pub prefill_replica: u32,
    /// Replica (global index) that continued generation (`None` when the
    /// call finished on the prefill side: single-token outputs, or any
    /// call in colocated mode). Under pool autoscaling an index names
    /// the physical replica, not a within-pool slot — the same index can
    /// appear as a prefill server earlier in the run and a decode server
    /// later.
    pub decode_replica: Option<u32>,
    /// When the call entered the prefill replica's queue.
    pub arrived: SimTime,
    /// When the prefill replica first scheduled it.
    pub prefill_started: SimTime,
    /// When the first token was produced (prefill release, or completion
    /// for local calls).
    pub released: SimTime,
    /// When the migrated KV arrived and the call entered the decode
    /// replica's queue.
    pub decode_submitted: Option<SimTime>,
    /// When the decode replica first scheduled it (KV imported).
    pub decode_started: Option<SimTime>,
    /// When the last token was produced.
    pub finished: SimTime,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Prompt tokens served from the prefill-side prefix cache.
    pub cached_tokens: u32,
    /// Tokens generated in total (both sides).
    pub output_tokens: u32,
    /// Wall time in prefill steps (prefill side only, by construction).
    pub prefill_time: SimDuration,
    /// Wall time in decode steps (decode side; or the serving replica in
    /// colocated mode).
    pub decode_time: SimDuration,
    /// Time the KV transfer spent queued behind earlier transfers on the
    /// destination's ingress link (part of the transfer phase).
    pub transfer_wait: SimDuration,
    /// KV bytes migrated (0 for local calls).
    pub kv_bytes: u64,
    /// Preemptions suffered on either side.
    pub preemptions: u32,
}

/// An exact five-phase partition of a call's end-to-end latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CallSpan {
    /// Waiting for admission (both pools).
    pub queue: SimDuration,
    /// In prefill steps.
    pub prefill: SimDuration,
    /// KV blocks on the wire (queueing + serialization + latency).
    pub transfer: SimDuration,
    /// In decode steps.
    pub decode: SimDuration,
    /// Admitted but not advancing (both pools).
    pub stall: SimDuration,
}

impl CallSpan {
    /// Sum of all phases — equals the call's end-to-end latency exactly.
    pub fn total(&self) -> SimDuration {
        self.queue + self.prefill + self.transfer + self.decode + self.stall
    }
}

impl CallRecord {
    /// Whether the call migrated to the decode pool.
    pub fn migrated(&self) -> bool {
        self.decode_replica.is_some()
    }

    /// End-to-end latency.
    pub fn e2e(&self) -> SimDuration {
        self.finished.saturating_since(self.arrived)
    }

    /// Time to first token. For migrated calls the first token only
    /// becomes servable once its KV (and the token) reach the decode
    /// replica, so TTFT includes the transfer; for local calls it is
    /// queue + prefill.
    pub fn ttft(&self) -> SimDuration {
        match self.decode_started {
            Some(started_d) => started_d.saturating_since(self.arrived),
            None => self.prefill_started.saturating_since(self.arrived) + self.prefill_time,
        }
    }

    /// Time per output token after the first (`None` for single-token
    /// outputs, which have no inter-token interval). This is inter-token
    /// *latency* — `(e2e - ttft) / (tokens - 1)` — so it includes
    /// scheduling stalls between tokens (a colocated replica's prefill
    /// bursts blocking decode), not just decode step wall time. That
    /// interference is precisely what disaggregation removes.
    pub fn tpot(&self) -> Option<SimDuration> {
        if self.output_tokens <= 1 {
            return None;
        }
        let after_first = self.e2e().saturating_sub(self.ttft());
        Some(after_first / (self.output_tokens as u64 - 1))
    }

    /// The exact five-phase partition of [`CallRecord::e2e`].
    ///
    /// Telescoping identities (all integer microseconds, no float
    /// residual): prefill-side queue is arrival→first-schedule, prefill
    /// is step wall time, prefill-side stall is the rest until release;
    /// transfer is release→decode-arrival; decode-side queue is
    /// arrival→first-schedule there, decode is step wall time, and
    /// decode-side stall absorbs the remainder.
    pub fn span(&self) -> CallSpan {
        let queue_p = self.prefill_started.saturating_since(self.arrived);
        match (self.decode_submitted, self.decode_started) {
            (Some(submitted_d), Some(started_d)) => {
                let stall_p = self
                    .released
                    .saturating_since(self.prefill_started)
                    .saturating_sub(self.prefill_time);
                let transfer = submitted_d.saturating_since(self.released);
                let queue_d = started_d.saturating_since(submitted_d);
                let stall_d = self
                    .finished
                    .saturating_since(started_d)
                    .saturating_sub(self.decode_time);
                CallSpan {
                    queue: queue_p + queue_d,
                    prefill: self.prefill_time,
                    transfer,
                    decode: self.decode_time,
                    stall: stall_p + stall_d,
                }
            }
            _ => {
                let stall = self
                    .finished
                    .saturating_since(self.prefill_started)
                    .saturating_sub(self.prefill_time + self.decode_time);
                CallSpan {
                    queue: queue_p,
                    prefill: self.prefill_time,
                    transfer: SimDuration::ZERO,
                    decode: self.decode_time,
                    stall,
                }
            }
        }
    }
}

/// One completed role flip under pool autoscaling.
///
/// Timestamps telescope: `requested` (controller decision) ≤ `drained`
/// (last in-flight request and inbound transfer gone) ≤ `completed`
/// (`drained` + the flip-cost gap; the replica serves its new role from
/// here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlipRecord {
    /// The flipped replica (global index).
    pub replica: u32,
    /// Which way it flipped.
    pub direction: FlipDirection,
    /// When the controller requested the flip (drain start).
    pub requested: SimTime,
    /// When the replica finished draining.
    pub drained: SimTime,
    /// When the replica joined the target pool.
    pub completed: SimTime,
}

impl FlipRecord {
    /// Time spent draining in-flight work.
    pub fn drain_time(&self) -> SimDuration {
        self.drained.saturating_since(self.requested)
    }

    /// Idle reconfiguration gap (the flip-cost model's price).
    pub fn flip_gap(&self) -> SimDuration {
        self.completed.saturating_since(self.drained)
    }
}

/// What a disaggregated (or colocated-baseline) run measured.
#[derive(Debug, Clone)]
pub struct DisaggReport {
    /// Offered load (requests/second).
    pub offered_qps: f64,
    /// Prefill-pool replicas.
    pub prefill_replicas: u32,
    /// Decode-pool replicas (0 for the colocated baseline).
    pub decode_replicas: u32,
    /// Sessions completed.
    pub completed: u64,
    /// Sessions whose task was solved.
    pub solved: u64,
    /// Sessions shed at the coordinator admission gate (their turn never
    /// ran; `completed + abandoned` covers every issued turn).
    pub abandoned: u64,
    /// Ops removed from the dispatch queue unserved. Equals `abandoned`
    /// today (one queued op per session at a time); reported separately
    /// so the two stay distinguishable if that changes.
    pub dropped: u64,
    /// Time from first arrival to last completion.
    pub makespan: SimDuration,
    /// Per-session end-to-end latencies (seconds).
    pub latencies: Samples,
    /// Median session latency (seconds).
    pub p50_s: f64,
    /// 95th-percentile session latency (seconds).
    pub p95_s: f64,
    /// Every finished LLM call with its cross-pool record.
    pub calls: Vec<CallRecord>,
    /// Calls that migrated prefill→decode.
    pub migrated_calls: u64,
    /// KV bytes moved over the interconnect.
    pub transferred_bytes: u64,
    /// Total time transfers spent queued on ingress links.
    pub transfer_wait: SimDuration,
    /// Per-prefill-replica utilization over the makespan.
    pub prefill_utilization: Vec<f64>,
    /// Per-decode-replica utilization over the makespan.
    pub decode_utilization: Vec<f64>,
    /// Total GPU energy over the run, watt-hours (both pools).
    pub energy_wh: f64,
    /// Prefix-cache hit rate over prefill-side prompt tokens.
    pub kv_hit_rate: f64,
    /// KV blocks demoted out of HBM into the offload tiers, both pools.
    pub offload_demoted_blocks: u64,
    /// KV blocks promoted back into HBM from the offload tiers.
    pub offload_promoted_blocks: u64,
    /// Prompt tokens whose recompute was avoided by promotion.
    pub offload_promoted_tokens: u64,
    /// KV blocks that fell off the bottom tier entirely.
    pub offload_dropped_blocks: u64,
    /// Preemptions across both pools.
    pub preemptions: u64,
    /// Completed role flips, in completion order (empty without
    /// autoscaling).
    pub flips: Vec<FlipRecord>,
    /// Per-replica ingress-link counters, for replicas that received at
    /// least one migration (empty in colocated mode).
    pub links: Vec<LinkStats>,
}

/// Utilization and queueing counters for one replica's ingress link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkStats {
    /// Global replica index the link feeds.
    pub replica: u32,
    /// Migrations scheduled onto the link.
    pub transfers: u64,
    /// Wire chunks those migrations shipped as (== `transfers` for
    /// serial transfers; higher when pipelined).
    pub chunks: u64,
    /// KV bytes moved.
    pub bytes: u64,
    /// Total wire time (seconds).
    pub busy_s: f64,
    /// Total head-of-line queueing delay (seconds).
    pub wait_s: f64,
    /// Wire time as a fraction of the run's makespan.
    pub utilization: f64,
}

impl DisaggReport {
    /// Achieved throughput in sessions/second.
    pub fn throughput(&self) -> f64 {
        let t = self.makespan.as_secs_f64();
        if t <= 0.0 {
            0.0
        } else {
            self.completed as f64 / t
        }
    }

    /// Per-call TTFT samples, seconds.
    pub fn ttft(&self) -> Samples {
        self.calls.iter().map(|c| c.ttft().as_secs_f64()).collect()
    }

    /// Per-call TPOT samples, seconds/token (multi-token calls only).
    pub fn tpot(&self) -> Samples {
        self.calls
            .iter()
            .filter_map(|c| c.tpot())
            .map(|d| d.as_secs_f64())
            .collect()
    }

    /// Goodput: calls per second meeting both SLOs (TTFT and TPOT;
    /// single-token calls only need the TTFT SLO).
    pub fn goodput(&self, ttft_slo_s: f64, tpot_slo_s: f64) -> f64 {
        let t = self.makespan.as_secs_f64();
        if t <= 0.0 {
            return 0.0;
        }
        let good = self
            .calls
            .iter()
            .filter(|c| {
                c.ttft().as_secs_f64() <= ttft_slo_s
                    && c.tpot().is_none_or(|d| d.as_secs_f64() <= tpot_slo_s)
            })
            .count();
        good as f64 / t
    }

    /// Sums every call's five-phase span (seconds per phase). The totals
    /// partition the summed end-to-end time exactly.
    pub fn phase_totals(&self) -> [(&'static str, f64); 5] {
        let mut sums = [SimDuration::ZERO; 5];
        for call in &self.calls {
            let s = call.span();
            sums[0] += s.queue;
            sums[1] += s.prefill;
            sums[2] += s.transfer;
            sums[3] += s.decode;
            sums[4] += s.stall;
        }
        [
            ("queue", sums[0].as_secs_f64()),
            ("prefill", sums[1].as_secs_f64()),
            ("transfer", sums[2].as_secs_f64()),
            ("decode", sums[3].as_secs_f64()),
            ("stall", sums[4].as_secs_f64()),
        ]
    }

    /// Summary as one JSON object (valid per `agentsim_metrics::json`).
    pub fn to_json(&self) -> String {
        let mut ttft = self.ttft();
        let mut tpot = self.tpot();
        let phases = self.phase_totals();
        // Percentiles over possibly empty sets (an all-shed run has no
        // calls; chatbot runs have no multi-token TPOT samples) must
        // degrade to null, not panic.
        let json_f64 = |v: Option<f64>| match v {
            Some(v) if v.is_finite() => format!("{v}"),
            _ => "null".to_owned(),
        };
        let mut out = format!(
            "{{\"offered_qps\":{},\"prefill_replicas\":{},\"decode_replicas\":{},\
             \"completed\":{},\"solved\":{},\"abandoned\":{},\"dropped\":{},\
             \"makespan_s\":{},\"throughput\":{},\
             \"p50_s\":{},\"p95_s\":{},\"ttft_p50_s\":{},\"ttft_p95_s\":{},\
             \"tpot_p50_s\":{},\"tpot_p99_s\":{},\"calls\":{},\"migrated_calls\":{},\
             \"transferred_bytes\":{},\"transfer_wait_s\":{},\"energy_wh\":{},\
             \"kv_hit_rate\":{},\"offload_demoted_blocks\":{},\
             \"offload_promoted_blocks\":{},\"offload_promoted_tokens\":{},\
             \"offload_dropped_blocks\":{},\
             \"preemptions\":{},\"flips\":{},\"phases_s\":{{",
            self.offered_qps,
            self.prefill_replicas,
            self.decode_replicas,
            self.completed,
            self.solved,
            self.abandoned,
            self.dropped,
            self.makespan.as_secs_f64(),
            self.throughput(),
            json_f64(Some(self.p50_s)),
            json_f64(Some(self.p95_s)),
            json_f64(ttft.try_median()),
            json_f64(ttft.try_p95()),
            json_f64(tpot.try_median()),
            json_f64(tpot.try_percentile(99.0)),
            self.calls.len(),
            self.migrated_calls,
            self.transferred_bytes,
            self.transfer_wait.as_secs_f64(),
            self.energy_wh,
            self.kv_hit_rate,
            self.offload_demoted_blocks,
            self.offload_promoted_blocks,
            self.offload_promoted_tokens,
            self.offload_dropped_blocks,
            self.preemptions,
            self.flips.len(),
        );
        for (i, (name, secs)) in phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{secs}"));
        }
        out.push_str("},\"links\":[");
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"replica\":{},\"transfers\":{},\"chunks\":{},\"bytes\":{},\
                 \"busy_s\":{},\"wait_s\":{},\"utilization\":{}}}",
                l.replica, l.transfers, l.chunks, l.bytes, l.busy_s, l.wait_s, l.utilization
            ));
        }
        out.push_str("]}");
        debug_assert!(json::validate(&out).is_ok());
        out
    }
}

impl fmt::Display for DisaggReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut ttft = self.ttft();
        let mut tpot = self.tpot();
        write!(
            f,
            "{}P+{}D qps {:.2} -> tput {:.2}, p95 {:.1}s, ttft p95 {:.2}s, \
             tpot p99 {:.0}ms, {} migrations ({:.1} MB)",
            self.prefill_replicas,
            self.decode_replicas,
            self.offered_qps,
            self.throughput(),
            self.p95_s,
            ttft.try_p95().unwrap_or(f64::NAN),
            tpot.try_percentile(99.0).unwrap_or(f64::NAN) * 1e3,
            self.migrated_calls,
            self.transferred_bytes as f64 / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    fn migrated_call() -> CallRecord {
        CallRecord {
            session: 0,
            prefill_replica: 0,
            decode_replica: Some(1),
            arrived: us(100),
            prefill_started: us(300),
            released: us(900),
            decode_submitted: Some(us(1_150)),
            decode_started: Some(us(1_200)),
            finished: us(2_500),
            prompt_tokens: 512,
            cached_tokens: 0,
            output_tokens: 9,
            prefill_time: SimDuration::from_micros(500),
            decode_time: SimDuration::from_micros(1_200),
            transfer_wait: SimDuration::from_micros(30),
            kv_bytes: 1 << 21,
            preemptions: 0,
        }
    }

    #[test]
    fn migrated_span_telescopes_exactly() {
        let c = migrated_call();
        let s = c.span();
        assert_eq!(s.queue, SimDuration::from_micros(200 + 50));
        assert_eq!(s.prefill, SimDuration::from_micros(500));
        assert_eq!(s.stall, SimDuration::from_micros(100 + 100));
        assert_eq!(s.transfer, SimDuration::from_micros(250));
        assert_eq!(s.decode, SimDuration::from_micros(1_200));
        assert_eq!(s.total(), c.e2e(), "no residual");
    }

    #[test]
    fn local_span_telescopes_exactly() {
        let mut c = migrated_call();
        c.decode_replica = None;
        c.decode_submitted = None;
        c.decode_started = None;
        c.released = c.finished;
        c.kv_bytes = 0;
        let s = c.span();
        assert_eq!(s.transfer, SimDuration::ZERO);
        assert_eq!(s.total(), c.e2e(), "no residual");
    }

    #[test]
    fn ttft_includes_transfer_for_migrated_calls() {
        let c = migrated_call();
        // arrival 100 -> decode_started 1200.
        assert_eq!(c.ttft(), SimDuration::from_micros(1_100));
        let mut local = migrated_call();
        local.decode_started = None;
        // queue 200 + prefill 500.
        assert_eq!(local.ttft(), SimDuration::from_micros(700));
    }

    #[test]
    fn tpot_averages_inter_token_latency() {
        let c = migrated_call();
        // After the first token: e2e 2400µs - ttft 1100µs = 1300µs over 8
        // inter-token gaps (integer µs division truncates).
        assert_eq!(c.tpot(), Some(SimDuration::from_micros(1_300 / 8)));
        // Stalls count: inter-token latency exceeds pure decode step time.
        assert!(c.tpot().unwrap() > c.decode_time / 8);
        let mut single = migrated_call();
        single.output_tokens = 1;
        assert_eq!(single.tpot(), None);
    }

    fn report() -> DisaggReport {
        DisaggReport {
            offered_qps: 2.0,
            prefill_replicas: 1,
            decode_replicas: 1,
            completed: 4,
            solved: 2,
            abandoned: 0,
            dropped: 0,
            makespan: SimDuration::from_secs(2),
            latencies: [1.0, 2.0].into_iter().collect(),
            p50_s: 1.5,
            p95_s: 2.0,
            calls: vec![migrated_call()],
            migrated_calls: 1,
            transferred_bytes: 1 << 21,
            transfer_wait: SimDuration::from_micros(30),
            prefill_utilization: vec![0.5],
            decode_utilization: vec![0.4],
            energy_wh: 1.0,
            kv_hit_rate: 0.3,
            offload_demoted_blocks: 0,
            offload_promoted_blocks: 0,
            offload_promoted_tokens: 0,
            offload_dropped_blocks: 0,
            preemptions: 0,
            flips: vec![],
            links: vec![LinkStats {
                replica: 1,
                transfers: 1,
                chunks: 4,
                bytes: 1 << 21,
                busy_s: 0.001,
                wait_s: 3e-5,
                utilization: 0.0005,
            }],
        }
    }

    #[test]
    fn flip_record_telescopes() {
        let f = FlipRecord {
            replica: 2,
            direction: FlipDirection::PrefillToDecode,
            requested: us(1_000),
            drained: us(3_500),
            completed: us(3_750),
        };
        assert_eq!(f.drain_time(), SimDuration::from_micros(2_500));
        assert_eq!(f.flip_gap(), SimDuration::from_micros(250));
    }

    #[test]
    fn goodput_applies_both_slos() {
        let r = report();
        assert_eq!(r.throughput(), 2.0);
        // TTFT 1.1ms, TPOT 150µs: generous SLOs admit the call.
        assert_eq!(r.goodput(1.0, 0.1), 0.5);
        // TTFT SLO of 1ms rejects it.
        assert_eq!(r.goodput(1e-3, 0.1), 0.0);
        // TPOT SLO of 0.1ms rejects it.
        assert_eq!(r.goodput(1.0, 1e-4), 0.0);
    }

    #[test]
    fn json_summary_is_valid_and_phases_partition() {
        let r = report();
        let text = r.to_json();
        json::validate(&text).unwrap();
        assert!(text.contains("\"transfer\":"));
        assert!(text.contains("\"links\":[{\"replica\":1,"));
        let total: f64 = r.phase_totals().iter().map(|(_, s)| s).sum();
        let e2e: f64 = r.calls.iter().map(|c| c.e2e().as_secs_f64()).sum();
        assert!((total - e2e).abs() < 1e-9);
        assert!(r.to_string().contains("1P+1D"));
    }
}
