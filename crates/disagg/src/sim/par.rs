//! Parallel disaggregated execution: the coordinator loop.
//!
//! Same event loop as [`DisaggSim::run`], with engine stepping offloaded
//! to an [`agentsim_session::ShardPool`]. Routing, transfers, and the
//! autoscaler all stay on this thread and read the pool's delta-exact
//! load mirrors; step-done events keep their sequential queue rank
//! through reserved slots. See the [`agentsim_session::shard`] module
//! docs for the full determinism argument.
//!
//! The one extra sync rule beyond the fleet driver: before the
//! controller takes a [`PoolObservation`](crate::autoscale::PoolObservation),
//! every in-flight kick is resolved. The *sum* `waiting + running` is
//! exact at all times (admissions conserve it), but the controller reads
//! the split, and the mirror only learns a step's admissions when the
//! step resolves. Draining the pending kicks first reproduces the
//! sequential engine state bit-exactly. Drain detection and routing need
//! no such barrier.

use agentsim_session::ShardPool;

use super::{DisaggReport, DisaggSim, Event};

impl DisaggSim {
    pub(super) fn run_parallel(mut self, threads: usize) -> DisaggReport {
        assert!(
            self.replicas.iter().all(|e| !e.has_observer()),
            "parallel disagg execution does not support engine observers; use threads(1)"
        );
        let replicas = self.replicas.len();
        let engines = std::mem::take(&mut self.replicas);
        // The pool derives each replica's conservative-sync floor from
        // its own engine — heterogeneous pools have no single lookahead.
        let mut pool = ShardPool::spawn(engines, threads);
        loop {
            // Bank any resolutions that are already in, so the pop gate
            // below sees the tightest pending-kick window.
            while let Some(r) = pool.try_resolve() {
                self.queue
                    .push_reserved(r.slot, r.ends, Event::Step(r.replica));
            }
            let Some(key) = self.queue.peek_key() else {
                if !pool.has_pending() {
                    break;
                }
                let r = pool.wait_resolve();
                self.queue
                    .push_reserved(r.slot, r.ends, Event::Step(r.replica));
                continue;
            };
            if !pool.safe_before(key) {
                let r = pool.wait_resolve();
                self.queue
                    .push_reserved(r.slot, r.ends, Event::Step(r.replica));
                continue;
            }
            let (now, event) = self.queue.pop().expect("peeked head");
            match event {
                Event::Arrival(a) => self.on_arrival(Some(&mut pool), a, now),
                Event::Step(replica) => {
                    let out = pool.take_step(replica);
                    for completion in &out.completions {
                        self.finish_completion(Some(&mut pool), replica, completion, now);
                    }
                    for migration in out.migrations {
                        self.start_migration(Some(&pool), replica, migration, now);
                    }
                }
                Event::TransferDone(tid) => self.on_transfer_done(Some(&mut pool), tid, now),
                Event::ToolsDone(sid) => {
                    let cmd = self.sessions[sid as usize]
                        .as_mut()
                        .expect("live session")
                        .on_tools_done(&self.tools, now);
                    self.exec(Some(&mut pool), sid, cmd, now);
                }
                Event::FlipDone(r) => self.on_flip_done(Some(&mut pool), r, now),
            }
            // Same once-per-event admission drain as the sequential loop
            // (coordinator state only, so the decisions replay exactly).
            self.drain_dispatch(Some(&mut pool), now);
            // Resolve every in-flight kick before the controller looks at
            // the pools (see the module docs); the same gate the
            // sequential driver uses for calling observe() at all.
            if self.controller.is_some() && self.flip.is_none() {
                while pool.has_pending() {
                    let r = pool.wait_resolve();
                    self.queue
                        .push_reserved(r.slot, r.ends, Event::Step(r.replica));
                }
            }
            self.maybe_autoscale(Some(&mut pool), now);
            // Same kick sweep as the sequential loop: wants_kick is true
            // exactly when start_step_if_idle would form a step, so the
            // reserved queue ranks match the sequential push order.
            for replica in 0..replicas {
                if pool.wants_kick(replica) {
                    let slot = self.queue.reserve_slot();
                    pool.kick(replica, now, slot);
                }
            }
        }
        let expected = self.config.client.total_turns(self.config.num_requests);
        assert_eq!(
            self.completed + self.abandoned,
            expected,
            "every turn must resolve exactly once"
        );
        self.replicas = pool.shutdown();
        self.check_end_state();
        self.into_report()
    }
}
