//! Disaggregated-serving configuration: pool sizes, interconnect, and
//! routing policies.

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_gpu::{FlipCostModel, LinkSpec};
use agentsim_llm::EngineConfig;
use agentsim_session::{validate_load, ClientModel, QueueDiscipline};
use agentsim_simkit::SimDuration;
use agentsim_workloads::Benchmark;

use crate::autoscale::AutoscalePolicy;

/// What kind of traffic the disaggregated cluster receives. Mirrors the
/// colocated drivers so a what-if comparison changes *only* the serving
/// topology.
#[derive(Debug, Clone)]
pub enum DisaggWorkload {
    /// Non-agentic single-turn chatbot traffic (ShareGPT).
    Chatbot,
    /// Agentic traffic: every request runs this agent on this benchmark.
    Agent {
        /// The agent framework.
        kind: AgentKind,
        /// The benchmark tasks are drawn from.
        benchmark: Benchmark,
        /// The agent configuration.
        config: AgentConfig,
    },
    /// A blend: each arrival is an agent session with probability
    /// `agent_fraction`, otherwise a chatbot request. Uses the same
    /// per-turn class draw as the colocated driver's mixed workload, so
    /// the identical seed classifies identically.
    Mixed {
        /// Probability that an arrival is an agent session.
        agent_fraction: f64,
        /// The agent framework for agent arrivals.
        kind: AgentKind,
        /// The benchmark agent tasks are drawn from.
        benchmark: Benchmark,
        /// The agent configuration.
        config: AgentConfig,
    },
}

impl DisaggWorkload {
    /// A ReAct-on-HotpotQA workload with default configuration (the
    /// paper's canonical agent serving setup; prefill-heavy because every
    /// iteration re-reads the growing history).
    pub fn react_hotpotqa() -> Self {
        DisaggWorkload::Agent {
            kind: AgentKind::React,
            benchmark: Benchmark::HotpotQa,
            config: AgentConfig::default(),
        }
    }
}

/// How a call is assigned to a replica within one pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolRouting {
    /// Rotate across the pool's replicas.
    RoundRobin,
    /// Pick the replica with the least work in flight (queued + running;
    /// for decode pools, KV transfers still in the air count too).
    LeastLoaded,
}

impl std::fmt::Display for PoolRouting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PoolRouting::RoundRobin => "round-robin",
            PoolRouting::LeastLoaded => "least-loaded",
        })
    }
}

/// Configuration of one disaggregated (or colocated-baseline) run.
#[derive(Debug, Clone)]
pub struct DisaggConfig {
    /// Engine configuration of the prefill pool's replicas (every
    /// replica, in colocated mode). The driver overrides the role per
    /// pool ([`agentsim_llm::EngineRole::Prefill`] /
    /// [`agentsim_llm::EngineRole::Decode`]), or leaves every replica
    /// [`agentsim_llm::EngineRole::Colocated`] when `decode_replicas`
    /// is zero.
    pub prefill_engine: EngineConfig,
    /// Engine configuration of the decode pool's replicas. Usually
    /// identical to `prefill_engine` (set both via
    /// [`DisaggConfig::engine`]), but heterogeneous splits — e.g.
    /// bandwidth-rich decode hardware — may differ. A replica keeps its
    /// pool-of-birth hardware across autoscaler role flips; only the
    /// role changes.
    pub decode_engine: EngineConfig,
    /// Replicas in the prefill pool (every replica, in colocated mode).
    pub prefill_replicas: u32,
    /// Replicas in the decode pool. Zero selects the colocated baseline:
    /// no role split, no transfers, same driver and arrivals.
    pub decode_replicas: u32,
    /// The KV-migration interconnect (one ingress link per decode
    /// replica). Ignored in colocated mode.
    pub link: LinkSpec,
    /// How new calls pick a prefill replica.
    pub prefill_routing: PoolRouting,
    /// How migrated calls pick a decode replica.
    pub decode_routing: PoolRouting,
    /// Traffic description.
    pub workload: DisaggWorkload,
    /// Offered load, requests per second.
    pub qps: f64,
    /// Requests (sessions) to issue.
    pub num_requests: u64,
    /// Root seed. Shares the colocated drivers' derivation so a
    /// disaggregated and a colocated run at the same seed see identical
    /// arrival processes and task draws.
    pub seed: u64,
    /// Who submits the turns, and when.
    pub client: ClientModel,
    /// Pool autoscaling policy ([`AutoscalePolicy::Disabled`] keeps the
    /// static split).
    pub autoscale: AutoscalePolicy,
    /// The reconfiguration gap a replica pays per role flip.
    pub flip_cost: FlipCostModel,
    /// Worker threads for engine stepping. `1` (the default) runs the
    /// sequential driver; higher counts shard replicas across threads
    /// with conservative sync. Reports are bit-identical either way.
    pub threads: u32,
    /// Coordinator-side admission gate: the most prefill-leg calls
    /// allowed in flight at once. New LLM ops queue at the coordinator
    /// until capacity frees; `None` (the default) submits immediately and
    /// is bit-identical to the pre-gate driver. Must be at least 1.
    pub max_inflight_prefill: Option<u32>,
    /// Ordering of the coordinator dispatch queue (only meaningful with
    /// an admission gate, which is what makes the queue non-empty).
    /// [`QueueDiscipline::DeadlineDrop`] additionally sheds sessions
    /// whose deadline already passed at dequeue time, before they cost
    /// any GPU work.
    pub discipline: QueueDiscipline,
    /// Per-session deadline, measured from the session's arrival. The
    /// disaggregated driver never cancels work already on an engine —
    /// the deadline acts purely at the coordinator dispatch queue, so it
    /// requires [`QueueDiscipline::DeadlineDrop`] (and vice versa).
    pub deadline: Option<SimDuration>,
    /// Layer chunks each KV migration ships as (pipelined against the
    /// prefill that produced them). `1` (the default) is the serial
    /// whole-footprint transfer, bit-identical to the pre-pipeline
    /// driver. Clamped to the model's layer count at sim construction —
    /// a transfer cannot be split finer than the layers that exist.
    pub transfer_chunks: u32,
}

impl DisaggConfig {
    /// A 1-prefill + 1-decode split over NVLink, default 8B replicas.
    pub fn new(workload: DisaggWorkload, qps: f64, num_requests: u64) -> Self {
        validate_load(qps, num_requests);
        DisaggConfig {
            prefill_engine: EngineConfig::a100_llama8b(),
            decode_engine: EngineConfig::a100_llama8b(),
            prefill_replicas: 1,
            decode_replicas: 1,
            link: LinkSpec::nvlink4(),
            prefill_routing: PoolRouting::RoundRobin,
            decode_routing: PoolRouting::LeastLoaded,
            workload,
            qps,
            num_requests,
            seed: 0,
            client: ClientModel::OpenLoopPoisson,
            autoscale: AutoscalePolicy::Disabled,
            flip_cost: FlipCostModel::warm(),
            threads: 1,
            max_inflight_prefill: None,
            discipline: QueueDiscipline::Fifo,
            deadline: None,
            transfer_chunks: 1,
        }
    }

    /// The colocated baseline at iso-GPU count: `replicas` role-free
    /// engines, no transfers, same arrivals. What-if comparisons hold
    /// everything else fixed.
    pub fn colocated(workload: DisaggWorkload, replicas: u32, qps: f64, num_requests: u64) -> Self {
        assert!(replicas > 0, "need at least one replica");
        let mut cfg = DisaggConfig::new(workload, qps, num_requests);
        cfg.prefill_replicas = replicas;
        cfg.decode_replicas = 0;
        cfg
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the engine configuration of *both* pools (role is
    /// ignored; the driver assigns roles per pool).
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.prefill_engine = engine.clone();
        self.decode_engine = engine;
        self
    }

    /// Replaces the prefill pool's engine configuration only.
    pub fn prefill_engine(mut self, engine: EngineConfig) -> Self {
        self.prefill_engine = engine;
        self
    }

    /// Replaces the decode pool's engine configuration only.
    pub fn decode_engine(mut self, engine: EngineConfig) -> Self {
        self.decode_engine = engine;
        self
    }

    /// Sets pool sizes: `prefill` + `decode` replicas.
    pub fn pools(mut self, prefill: u32, decode: u32) -> Self {
        assert!(prefill > 0, "need at least one prefill replica");
        self.prefill_replicas = prefill;
        self.decode_replicas = decode;
        self
    }

    /// Sets the KV-migration interconnect.
    pub fn link(mut self, link: LinkSpec) -> Self {
        link.validate();
        self.link = link;
        self
    }

    /// Sets the prefill-side routing policy.
    pub fn prefill_routing(mut self, routing: PoolRouting) -> Self {
        self.prefill_routing = routing;
        self
    }

    /// Sets the decode-side routing policy.
    pub fn decode_routing(mut self, routing: PoolRouting) -> Self {
        self.decode_routing = routing;
        self
    }

    /// Replaces the client model.
    pub fn client(mut self, client: ClientModel) -> Self {
        self.client = client;
        self
    }

    /// Sets the pool-autoscaling policy. Requires a decode pool — the
    /// colocated baseline has no roles to flip.
    pub fn autoscale(mut self, policy: AutoscalePolicy) -> Self {
        self.autoscale = policy;
        self
    }

    /// Sets the per-flip reconfiguration cost model.
    pub fn flip_cost(mut self, model: FlipCostModel) -> Self {
        model.validate().expect("invalid flip cost model");
        self.flip_cost = model;
        self
    }

    /// Sets the worker-thread count for engine stepping. Any count
    /// yields bit-identical reports; `1` keeps the sequential driver.
    pub fn threads(mut self, threads: u32) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Caps prefill-leg calls in flight; further ops queue at the
    /// coordinator until capacity frees.
    pub fn max_inflight_prefill(mut self, limit: u32) -> Self {
        assert!(limit >= 1, "the admission gate needs capacity for a call");
        self.max_inflight_prefill = Some(limit);
        self
    }

    /// Ships each KV migration as up to `chunks` layer chunks pipelined
    /// against prefill progress. `1` keeps the serial transfer.
    pub fn transfer_chunks(mut self, chunks: u32) -> Self {
        assert!(chunks >= 1, "transfer chunks must be >= 1");
        self.transfer_chunks = chunks;
        self
    }

    /// Sets the coordinator dispatch-queue discipline.
    pub fn discipline(mut self, discipline: QueueDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Sets the per-session deadline (from arrival) honoured by
    /// [`QueueDiscipline::DeadlineDrop`].
    pub fn deadline(mut self, deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "a deadline must be positive");
        self.deadline = Some(deadline);
        self
    }

    /// Cross-field validation, called by the simulator constructor.
    ///
    /// # Panics
    ///
    /// Panics when [`QueueDiscipline::DeadlineDrop`] is configured
    /// without a deadline, or a deadline without `DeadlineDrop` — this
    /// driver has no cancellation path, so a deadline nothing reads (or
    /// a drop rule with nothing to compare against) is a config error.
    pub fn validate_overload(&self) {
        match (self.discipline, self.deadline) {
            (QueueDiscipline::DeadlineDrop, None) => {
                panic!("DeadlineDrop needs a deadline to compare against")
            }
            (QueueDiscipline::Fifo | QueueDiscipline::Lifo, Some(_)) => {
                panic!("a disagg deadline is only acted on by DeadlineDrop")
            }
            _ => {}
        }
    }

    /// Whether this run is the colocated baseline (no role split).
    pub fn is_colocated(&self) -> bool {
        self.decode_replicas == 0
    }

    /// Total GPUs-worth of replicas (the iso-GPU budget of a what-if).
    pub fn total_replicas(&self) -> u32 {
        self.prefill_replicas + self.decode_replicas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_split_one_one_over_nvlink() {
        let cfg = DisaggConfig::new(DisaggWorkload::Chatbot, 1.0, 10);
        assert_eq!(cfg.prefill_replicas, 1);
        assert_eq!(cfg.decode_replicas, 1);
        assert!(!cfg.is_colocated());
        assert_eq!(cfg.total_replicas(), 2);
        assert_eq!(cfg.link.name, LinkSpec::nvlink4().name);
    }

    #[test]
    fn colocated_mode_has_no_decode_pool() {
        let cfg = DisaggConfig::colocated(DisaggWorkload::Chatbot, 2, 1.0, 10);
        assert!(cfg.is_colocated());
        assert_eq!(cfg.total_replicas(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one prefill replica")]
    fn empty_prefill_pool_rejected() {
        let _ = DisaggConfig::new(DisaggWorkload::Chatbot, 1.0, 1).pools(0, 1);
    }

    #[test]
    fn overload_knobs_default_off() {
        let cfg = DisaggConfig::new(DisaggWorkload::Chatbot, 1.0, 10);
        assert!(cfg.max_inflight_prefill.is_none());
        assert!(cfg.deadline.is_none());
        assert_eq!(cfg.discipline, QueueDiscipline::Fifo);
        cfg.validate_overload();
    }

    #[test]
    #[should_panic(expected = "needs a deadline")]
    fn deadline_drop_without_deadline_rejected() {
        DisaggConfig::new(DisaggWorkload::Chatbot, 1.0, 10)
            .discipline(QueueDiscipline::DeadlineDrop)
            .validate_overload();
    }

    #[test]
    #[should_panic(expected = "only acted on by DeadlineDrop")]
    fn deadline_without_deadline_drop_rejected() {
        DisaggConfig::new(DisaggWorkload::Chatbot, 1.0, 10)
            .deadline(SimDuration::from_secs(10))
            .validate_overload();
    }

    #[test]
    #[should_panic(expected = "positive finite qps")]
    fn non_finite_load_rejected() {
        let _ = DisaggConfig::new(DisaggWorkload::Chatbot, f64::NAN, 10);
    }

    #[test]
    #[should_panic(expected = "capacity for a call")]
    fn zero_wide_gate_rejected() {
        let _ = DisaggConfig::new(DisaggWorkload::Chatbot, 1.0, 10).max_inflight_prefill(0);
    }

    #[test]
    fn autoscale_defaults_off_with_warm_flips() {
        let cfg = DisaggConfig::new(DisaggWorkload::Chatbot, 1.0, 10);
        assert!(matches!(cfg.autoscale, AutoscalePolicy::Disabled));
        assert_eq!(cfg.flip_cost, FlipCostModel::warm());
        let cfg = cfg
            .autoscale(AutoscalePolicy::Pinned)
            .flip_cost(FlipCostModel::zero());
        assert!(matches!(cfg.autoscale, AutoscalePolicy::Pinned));
        assert!(cfg.flip_cost.flip_time().is_zero());
    }
}
