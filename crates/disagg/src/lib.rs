//! # agentsim-disagg
//!
//! Disaggregated prefill/decode serving (Splitwise/DistServe-style) for
//! the agent-infrastructure simulator:
//!
//! - **Role-split pools** — requests prefill on a dedicated prefill
//!   pool whose engines release each sequence at its first token, then
//!   decode on a separate pool that admits mid-life requests with
//!   pre-populated KV ([`agentsim_llm::EngineRole`]).
//! - **KV-transfer interconnect** — migrated KV blocks move over a
//!   modeled link (NVLink/PCIe/RDMA presets in [`agentsim_gpu::LinkSpec`])
//!   with per-link bandwidth, latency, and FIFO serialization queueing
//!   ([`TransferScheduler`]).
//! - **What-if baseline** — the colocated configuration
//!   ([`DisaggConfig::colocated`]) runs through the *same* driver with
//!   the same arrivals and task draws, so colocated-vs-disaggregated
//!   comparisons at iso-GPU count change nothing but topology.
//! - **Pool autoscaling** — a [`PoolController`] watches
//!   prefill-vs-decode demand and flips replicas between roles mid-run
//!   ([`AutoscalePolicy`]); a flipping replica drains (refuses new
//!   admissions, finishes or hands off in-flight work, lands in-flight
//!   KV transfers), pays a [`agentsim_gpu::FlipCostModel`]
//!   reconfiguration gap, and rejoins the other pool.
//!
//! The driver is [`DisaggSim`]; it reports a [`DisaggReport`] whose
//! per-call [`CallRecord`]s partition end-to-end latency exactly into
//! queue / prefill / transfer / decode / stall ([`CallSpan`]), plus one
//! [`FlipRecord`] per completed role flip.

#![warn(missing_docs)]

pub mod autoscale;
pub mod config;
pub mod report;
pub mod sim;
pub mod transfer;

pub use autoscale::{
    AutoscalePolicy, FlipDirection, HysteresisConfig, HysteresisController, PinnedController,
    PoolController, PoolObservation, ScheduleController,
};
pub use config::{DisaggConfig, DisaggWorkload, PoolRouting};
pub use report::{CallRecord, CallSpan, DisaggReport, FlipRecord, LinkStats};
pub use sim::DisaggSim;
pub use transfer::{PendingTransfer, TransferScheduler};
