//! Pool autoscaling: controllers that flip replicas between the prefill
//! and decode pools at runtime.
//!
//! The right prefill/decode split depends on the workflow mix (ReAct's
//! short interleaved calls are prefill-heavy; chatbot and deep-rollout
//! traffic is decode-heavy) and drifts over a run. A [`PoolController`]
//! watches per-pool demand each event and may ask the driver to *flip*
//! one replica to the other pool. The driver then drains the replica —
//! it stops admitting new work, finishes or migrates everything in
//! flight, waits for committed inbound KV transfers to land — pays the
//! [`agentsim_gpu::FlipCostModel`] reconfiguration gap, and re-inserts
//! the replica into the target pool, emitting
//! [`agentsim_llm::EngineEvent::RoleChanged`] on the replica's observer
//! stream.
//!
//! Controllers are deliberately sans-IO: they see a [`PoolObservation`]
//! snapshot and answer with an optional [`FlipDirection`]. That keeps
//! them deterministic and unit-testable, and lets property tests drive
//! the whole drain machinery from arbitrary [`ScheduleController`] flip
//! schedules.

use agentsim_simkit::{SimDuration, SimTime};

/// Which way a replica should flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipDirection {
    /// Move one prefill replica into the decode pool.
    PrefillToDecode,
    /// Move one decode replica into the prefill pool.
    DecodeToPrefill,
}

impl FlipDirection {
    /// Stable lowercase name (used in reports and traces).
    pub fn name(self) -> &'static str {
        match self {
            FlipDirection::PrefillToDecode => "prefill_to_decode",
            FlipDirection::DecodeToPrefill => "decode_to_prefill",
        }
    }
}

/// A point-in-time snapshot of pool demand, handed to
/// [`PoolController::observe`] once per simulation event.
#[derive(Debug, Clone, Copy)]
pub struct PoolObservation {
    /// Current simulated time.
    pub now: SimTime,
    /// Live prefill-pool members (excludes any draining replica).
    pub prefill_replicas: usize,
    /// Live decode-pool members (excludes any draining replica).
    pub decode_replicas: usize,
    /// Whether a flip is already in progress (the driver ignores new
    /// flip requests while one is).
    pub flip_in_progress: bool,
    /// Requests queued across the prefill pool.
    pub prefill_queue: usize,
    /// Sequences running across the prefill pool.
    pub prefill_running: usize,
    /// Requests queued across the decode pool.
    pub decode_queue: usize,
    /// Sequences running across the decode pool.
    pub decode_running: usize,
    /// KV transfers in the air toward the decode pool (imminent decode
    /// work).
    pub transfers_in_flight: usize,
}

impl PoolObservation {
    /// Prefill demand per live prefill replica.
    pub fn prefill_demand(&self) -> f64 {
        if self.prefill_replicas == 0 {
            return 0.0;
        }
        (self.prefill_queue + self.prefill_running) as f64 / self.prefill_replicas as f64
    }

    /// Decode demand per live decode replica (in-flight transfers count:
    /// they are committed decode work).
    pub fn decode_demand(&self) -> f64 {
        if self.decode_replicas == 0 {
            return 0.0;
        }
        (self.decode_queue + self.decode_running + self.transfers_in_flight) as f64
            / self.decode_replicas as f64
    }
}

/// Decides when to flip a replica between pools.
///
/// Implementations must be deterministic functions of the observation
/// stream — the driver calls [`PoolController::observe`] after every
/// simulation event, in event order, and reports stay bit-reproducible
/// only if controllers never consult outside state.
pub trait PoolController: std::fmt::Debug {
    /// Observes current demand; returns a flip request, or `None` to
    /// leave the pools alone. Called once per simulation event. The
    /// driver ignores requests while a flip is in progress or when the
    /// source pool is at its floor of one replica.
    fn observe(&mut self, obs: &PoolObservation) -> Option<FlipDirection>;
}

/// Tuning for the default [`HysteresisController`].
#[derive(Debug, Clone, PartialEq)]
pub struct HysteresisConfig {
    /// Flip decode→prefill once the prefill/decode demand ratio has
    /// stayed above this for `dwell`.
    pub high: f64,
    /// Flip prefill→decode once the ratio has stayed below this for
    /// `dwell`.
    pub low: f64,
    /// How long the ratio must stay out of band before a flip fires
    /// (guards against reacting to one bursty batch).
    pub dwell: SimDuration,
    /// Never shrink the prefill pool below this.
    pub min_prefill: usize,
    /// Never shrink the decode pool below this.
    pub min_decode: usize,
}

impl Default for HysteresisConfig {
    fn default() -> Self {
        HysteresisConfig {
            high: 2.0,
            low: 0.5,
            dwell: SimDuration::from_secs(5),
            min_prefill: 1,
            min_decode: 1,
        }
    }
}

/// The default controller: a hysteresis band on the per-replica
/// prefill/decode demand ratio, with a dwell timer.
///
/// The ratio must leave the `[low, high]` band and *stay* out for
/// `dwell` simulated time before a flip fires; after a flip both timers
/// reset, so consecutive flips are at least `dwell` apart. The band plus
/// the dwell is what prevents ping-ponging when demand sits near the
/// boundary.
#[derive(Debug)]
pub struct HysteresisController {
    config: HysteresisConfig,
    above_since: Option<SimTime>,
    below_since: Option<SimTime>,
}

impl HysteresisController {
    /// Creates the controller with the given tuning.
    pub fn new(config: HysteresisConfig) -> Self {
        assert!(
            config.low < config.high,
            "hysteresis band must be non-empty: low {} >= high {}",
            config.low,
            config.high
        );
        HysteresisController {
            config,
            above_since: None,
            below_since: None,
        }
    }
}

impl PoolController for HysteresisController {
    fn observe(&mut self, obs: &PoolObservation) -> Option<FlipDirection> {
        if obs.flip_in_progress {
            // Demand during a drain is distorted (one replica is
            // leaving); restart the timers afterwards.
            self.above_since = None;
            self.below_since = None;
            return None;
        }
        // An idle cluster (no demand anywhere) says nothing about the
        // split; keep the timers running only on live signal.
        let prefill = obs.prefill_demand();
        let decode = obs.decode_demand();
        if prefill == 0.0 && decode == 0.0 {
            self.above_since = None;
            self.below_since = None;
            return None;
        }
        // Ratio with a protected denominator: an empty decode pool under
        // prefill load reads as "very prefill-heavy".
        let ratio = if decode == 0.0 {
            f64::INFINITY
        } else {
            prefill / decode
        };
        if ratio > self.config.high {
            self.below_since = None;
            let since = *self.above_since.get_or_insert(obs.now);
            if obs.now.saturating_since(since) >= self.config.dwell
                && obs.decode_replicas > self.config.min_decode
            {
                self.above_since = None;
                return Some(FlipDirection::DecodeToPrefill);
            }
        } else if ratio < self.config.low {
            self.above_since = None;
            let since = *self.below_since.get_or_insert(obs.now);
            if obs.now.saturating_since(since) >= self.config.dwell
                && obs.prefill_replicas > self.config.min_prefill
            {
                self.below_since = None;
                return Some(FlipDirection::PrefillToDecode);
            }
        } else {
            self.above_since = None;
            self.below_since = None;
        }
        None
    }
}

/// Replays a fixed flip schedule: each entry fires once its time is
/// reached (in order). Infeasible entries (source pool at its floor) are
/// dropped by the driver, deterministically.
#[derive(Debug)]
pub struct ScheduleController {
    schedule: Vec<(SimTime, FlipDirection)>,
    next: usize,
}

impl ScheduleController {
    /// Creates the controller. The schedule is sorted by time (stable,
    /// so same-time entries keep their given order).
    pub fn new(mut schedule: Vec<(SimTime, FlipDirection)>) -> Self {
        schedule.sort_by_key(|&(at, _)| at);
        ScheduleController { schedule, next: 0 }
    }
}

impl PoolController for ScheduleController {
    fn observe(&mut self, obs: &PoolObservation) -> Option<FlipDirection> {
        if obs.flip_in_progress {
            return None;
        }
        match self.schedule.get(self.next) {
            Some(&(at, direction)) if at <= obs.now => {
                self.next += 1;
                Some(direction)
            }
            _ => None,
        }
    }
}

/// A controller pinned to the static split: observes everything, flips
/// nothing. Exists to prove the controller plumbing itself does not
/// perturb a run (the pinned report must match the autoscaling-disabled
/// golden fingerprints bit for bit).
#[derive(Debug, Default)]
pub struct PinnedController;

impl PoolController for PinnedController {
    fn observe(&mut self, _obs: &PoolObservation) -> Option<FlipDirection> {
        None
    }
}

/// Which controller (if any) a [`crate::DisaggConfig`] runs with.
#[derive(Debug, Clone)]
pub enum AutoscalePolicy {
    /// No controller at all — the exact static-split code path.
    Disabled,
    /// A [`PinnedController`]: full controller plumbing, zero flips.
    Pinned,
    /// The default [`HysteresisController`].
    Hysteresis(HysteresisConfig),
    /// A fixed [`ScheduleController`] flip schedule.
    Schedule(Vec<(SimTime, FlipDirection)>),
}

impl AutoscalePolicy {
    /// Builds the controller, or `None` for [`AutoscalePolicy::Disabled`].
    pub fn build(&self) -> Option<Box<dyn PoolController>> {
        match self {
            AutoscalePolicy::Disabled => None,
            AutoscalePolicy::Pinned => Some(Box::new(PinnedController)),
            AutoscalePolicy::Hysteresis(cfg) => {
                Some(Box::new(HysteresisController::new(cfg.clone())))
            }
            AutoscalePolicy::Schedule(entries) => {
                Some(Box::new(ScheduleController::new(entries.clone())))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(now_s: u64, pq: usize, dq: usize) -> PoolObservation {
        PoolObservation {
            now: SimTime::from_secs_f64(now_s as f64),
            prefill_replicas: 2,
            decode_replicas: 2,
            flip_in_progress: false,
            prefill_queue: pq,
            prefill_running: 0,
            decode_queue: dq,
            decode_running: 0,
            transfers_in_flight: 0,
        }
    }

    #[test]
    fn hysteresis_needs_dwell_before_flipping() {
        let mut c = HysteresisController::new(HysteresisConfig {
            dwell: SimDuration::from_secs(5),
            ..HysteresisConfig::default()
        });
        // Prefill-heavy (ratio 10/1 per-replica): above the band.
        assert_eq!(c.observe(&obs(0, 20, 2)), None, "dwell starts");
        assert_eq!(c.observe(&obs(4, 20, 2)), None, "still dwelling");
        assert_eq!(
            c.observe(&obs(5, 20, 2)),
            Some(FlipDirection::DecodeToPrefill)
        );
        // Timers reset after the flip fires.
        assert_eq!(c.observe(&obs(5, 20, 2)), None);
    }

    #[test]
    fn hysteresis_in_band_resets_the_timer() {
        let mut c = HysteresisController::new(HysteresisConfig {
            dwell: SimDuration::from_secs(5),
            ..HysteresisConfig::default()
        });
        assert_eq!(c.observe(&obs(0, 20, 2)), None);
        assert_eq!(c.observe(&obs(3, 4, 4)), None, "back in band");
        assert_eq!(c.observe(&obs(6, 20, 2)), None, "dwell restarts");
        assert_eq!(c.observe(&obs(10, 20, 2)), None);
        assert_eq!(
            c.observe(&obs(11, 20, 2)),
            Some(FlipDirection::DecodeToPrefill)
        );
    }

    #[test]
    fn hysteresis_flips_toward_decode_when_decode_heavy() {
        let mut c = HysteresisController::new(HysteresisConfig {
            dwell: SimDuration::ZERO,
            ..HysteresisConfig::default()
        });
        assert_eq!(
            c.observe(&obs(1, 1, 20)),
            Some(FlipDirection::PrefillToDecode)
        );
    }

    #[test]
    fn hysteresis_respects_pool_floors() {
        let mut c = HysteresisController::new(HysteresisConfig {
            dwell: SimDuration::ZERO,
            min_decode: 2,
            ..HysteresisConfig::default()
        });
        // Would flip decode→prefill, but the decode pool is at its floor.
        assert_eq!(c.observe(&obs(1, 20, 1)), None);
    }

    #[test]
    fn hysteresis_ignores_idle_and_mid_flip_observations() {
        let mut c = HysteresisController::new(HysteresisConfig {
            dwell: SimDuration::ZERO,
            ..HysteresisConfig::default()
        });
        assert_eq!(c.observe(&obs(1, 0, 0)), None, "idle cluster");
        let mut busy = obs(2, 20, 2);
        busy.flip_in_progress = true;
        assert_eq!(c.observe(&busy), None, "mid-flip");
    }

    #[test]
    #[should_panic(expected = "band must be non-empty")]
    fn inverted_band_rejected() {
        let _ = HysteresisController::new(HysteresisConfig {
            low: 3.0,
            high: 2.0,
            ..HysteresisConfig::default()
        });
    }

    #[test]
    fn schedule_fires_in_time_order() {
        let mut c = ScheduleController::new(vec![
            (SimTime::from_secs_f64(10.0), FlipDirection::DecodeToPrefill),
            (SimTime::from_secs_f64(2.0), FlipDirection::PrefillToDecode),
        ]);
        assert_eq!(c.observe(&obs(1, 0, 0)), None);
        assert_eq!(
            c.observe(&obs(3, 0, 0)),
            Some(FlipDirection::PrefillToDecode)
        );
        assert_eq!(c.observe(&obs(3, 0, 0)), None, "one fire per entry");
        assert_eq!(
            c.observe(&obs(11, 0, 0)),
            Some(FlipDirection::DecodeToPrefill)
        );
        assert_eq!(c.observe(&obs(12, 0, 0)), None, "schedule exhausted");
    }

    #[test]
    fn pinned_never_flips() {
        let mut c = PinnedController;
        assert_eq!(c.observe(&obs(1, 100, 0)), None);
        assert_eq!(c.observe(&obs(2, 0, 100)), None);
    }

    #[test]
    fn policy_builds_the_matching_controller() {
        assert!(AutoscalePolicy::Disabled.build().is_none());
        assert!(AutoscalePolicy::Pinned.build().is_some());
        assert!(AutoscalePolicy::Hysteresis(HysteresisConfig::default())
            .build()
            .is_some());
        assert!(AutoscalePolicy::Schedule(Vec::new()).build().is_some());
    }
}
